"""Pytest bootstrap: make the ``src`` layout importable without installation.

The package is normally installed with ``pip install -e .`` (or
``python setup.py develop`` on offline toolchains without the ``wheel``
package); this fallback keeps ``pytest`` working straight from a source
checkout either way.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
