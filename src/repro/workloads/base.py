"""Workload abstraction and runner.

A :class:`Workload` knows two things: the key space it needs initialized, and
how to issue the operations of one client transaction.  The
:func:`run_workload` driver opens the requested number of sessions on a
simulated database, initializes the key space, and then executes transactions
round-robin-ish across sessions (with a seeded random session choice, the way
history-collection frameworks multiplex client threads), returning the
recorded history.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.core.model import History
from repro.db.config import DatabaseConfig
from repro.db.database import ClientTransaction, SimulatedDatabase

__all__ = ["Workload", "WorkloadRunConfig", "run_workload", "collect_history"]


class Workload(abc.ABC):
    """Base class for workload generators."""

    #: Short name used by the CLI and the benchmark harness.
    name: str = "workload"

    @abc.abstractmethod
    def initial_keys(self) -> List[str]:
        """The keys that must exist before the measured run starts."""

    @abc.abstractmethod
    def run_transaction(
        self, txn: ClientTransaction, rng: random.Random, session_id: int, index: int
    ) -> None:
        """Issue the reads and writes of one client transaction."""

    def describe(self) -> str:
        """Human-readable workload description."""
        return f"{self.name} workload over {len(self.initial_keys())} keys"


@dataclass
class WorkloadRunConfig:
    """Parameters of one history-collection run."""

    num_sessions: int = 50
    num_transactions: int = 1000
    seed: Optional[int] = None

    def validate(self) -> None:
        """Raise ``ValueError`` on nonsensical settings."""
        if self.num_sessions <= 0:
            raise ValueError("num_sessions must be positive")
        if self.num_transactions < 0:
            raise ValueError("num_transactions must be non-negative")


def run_workload(
    workload: Workload,
    database: SimulatedDatabase,
    config: WorkloadRunConfig,
) -> History:
    """Run ``workload`` against ``database`` and return the recorded history."""
    config.validate()
    rng = random.Random(config.seed)
    sessions = database.sessions(config.num_sessions)
    database.initialize(workload.initial_keys(), session=sessions[0])
    for index in range(config.num_transactions):
        session = sessions[rng.randrange(config.num_sessions)]
        txn = session.begin()
        workload.run_transaction(txn, rng, session.session_id, index)
        if not txn._finished:
            txn.commit()
    return database.history()


def collect_history(
    workload: Workload,
    db_config: DatabaseConfig,
    num_sessions: int,
    num_transactions: int,
    seed: Optional[int] = None,
) -> History:
    """Convenience wrapper: build a database, run the workload, return the history."""
    database = SimulatedDatabase(db_config)
    run_config = WorkloadRunConfig(
        num_sessions=num_sessions, num_transactions=num_transactions, seed=seed
    )
    return run_workload(workload, database, run_config)
