"""Workload generators driving the simulated database.

The paper's evaluation collects histories from three benchmarks -- TPC-C,
C-Twitter (from the Cobra framework), and RUBiS -- plus a custom benchmark
with scalable transaction sizes for the Fig. 9 (right) experiment.  This
package provides workload generators with the same flavour:

* :class:`TPCCWorkload` -- an OLTP mix of new-order / payment / order-status /
  delivery / stock-level transactions over warehouses, districts, customers
  and stock.
* :class:`CTwitterWorkload` -- tweets, follows, and timeline reads over a
  synthetic social graph (~7-8 operations per transaction on average, as the
  paper reports for C-Twitter).
* :class:`RUBiSWorkload` -- an auction-site mix of bids, buy-nows, comments,
  and browsing.
* :class:`ScalableTransactionWorkload` -- a uniform read/write mix whose
  transaction size is a parameter (the paper's custom benchmark).

:func:`run_workload` drives any of them against a
:class:`~repro.db.database.SimulatedDatabase` and returns the recorded
history; :func:`collect_history` is the one-call convenience wrapper used by
benchmarks.
"""

from repro.workloads.base import Workload, WorkloadRunConfig, collect_history, run_workload
from repro.workloads.ctwitter import CTwitterWorkload
from repro.workloads.custom import ScalableTransactionWorkload
from repro.workloads.rubis import RUBiSWorkload
from repro.workloads.tpcc import TPCCWorkload

__all__ = [
    "Workload",
    "WorkloadRunConfig",
    "run_workload",
    "collect_history",
    "TPCCWorkload",
    "CTwitterWorkload",
    "RUBiSWorkload",
    "ScalableTransactionWorkload",
    "workload_by_name",
]


def workload_by_name(name: str, **kwargs) -> Workload:
    """Instantiate a workload from its short name (``tpcc``, ``ctwitter``, ``rubis``, ``custom``)."""
    normalized = name.strip().lower().replace("-", "").replace("_", "")
    if normalized in ("tpcc", "tpc"):
        return TPCCWorkload(**kwargs)
    if normalized in ("ctwitter", "twitter"):
        return CTwitterWorkload(**kwargs)
    if normalized in ("rubis", "auction"):
        return RUBiSWorkload(**kwargs)
    if normalized in ("custom", "scalable"):
        return ScalableTransactionWorkload(**kwargs)
    raise ValueError(f"unknown workload {name!r}")
