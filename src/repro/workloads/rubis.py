"""A RUBiS-like auction-site workload.

RUBiS models an eBay-style auction site: users browse items, place bids, buy
items outright, and leave comments on sellers.  The generator follows the
read-heavy browsing mix of the original benchmark with a smaller fraction of
write transactions:

* ``view_item`` -- read an item's price, bid count, and seller rating,
* ``place_bid`` -- read the current price and bid count, then update both,
* ``buy_now`` -- read and clear an item's availability, update the buyer's
  purchase count,
* ``comment`` -- update the seller's rating and comment count,
* ``browse`` -- read the prices of several items in one category.
"""

from __future__ import annotations

import random
from typing import List

from repro.db.database import ClientTransaction
from repro.workloads.base import Workload

__all__ = ["RUBiSWorkload"]


class RUBiSWorkload(Workload):
    """Auction-site transactions over items, users, and categories."""

    name = "rubis"

    def __init__(
        self, num_users: int = 40, num_items: int = 120, num_categories: int = 8
    ) -> None:
        self.num_users = num_users
        self.num_items = num_items
        self.num_categories = num_categories

    # -- key naming ----------------------------------------------------------------

    def _price(self, item: int) -> str:
        return f"item{item}:price"

    def _bids(self, item: int) -> str:
        return f"item{item}:bids"

    def _available(self, item: int) -> str:
        return f"item{item}:available"

    def _rating(self, user: int) -> str:
        return f"user{user}:rating"

    def _purchases(self, user: int) -> str:
        return f"user{user}:purchases"

    def _comments(self, user: int) -> str:
        return f"user{user}:comments"

    def initial_keys(self) -> List[str]:
        keys: List[str] = []
        for item in range(self.num_items):
            keys.extend([self._price(item), self._bids(item), self._available(item)])
        for user in range(self.num_users):
            keys.extend([self._rating(user), self._purchases(user), self._comments(user)])
        return keys

    def _category_items(self, category: int) -> List[int]:
        return [i for i in range(self.num_items) if i % self.num_categories == category]

    # -- transaction programs --------------------------------------------------------

    def run_transaction(
        self, txn: ClientTransaction, rng: random.Random, session_id: int, index: int
    ) -> None:
        choice = rng.random()
        if choice < 0.35:
            self._view_item(txn, rng)
        elif choice < 0.60:
            self._place_bid(txn, rng)
        elif choice < 0.70:
            self._buy_now(txn, rng)
        elif choice < 0.80:
            self._comment(txn, rng)
        else:
            self._browse(txn, rng)

    def _view_item(self, txn: ClientTransaction, rng: random.Random) -> None:
        item = rng.randrange(self.num_items)
        seller = item % self.num_users
        txn.read(self._price(item))
        txn.read(self._bids(item))
        txn.read(self._rating(seller))

    def _place_bid(self, txn: ClientTransaction, rng: random.Random) -> None:
        item = rng.randrange(self.num_items)
        txn.read(self._price(item))
        txn.read(self._bids(item))
        txn.write(self._price(item))
        txn.write(self._bids(item))

    def _buy_now(self, txn: ClientTransaction, rng: random.Random) -> None:
        item = rng.randrange(self.num_items)
        buyer = rng.randrange(self.num_users)
        txn.read(self._available(item))
        txn.write(self._available(item))
        txn.read(self._purchases(buyer))
        txn.write(self._purchases(buyer))

    def _comment(self, txn: ClientTransaction, rng: random.Random) -> None:
        seller = rng.randrange(self.num_users)
        txn.read(self._rating(seller))
        txn.write(self._rating(seller))
        txn.read(self._comments(seller))
        txn.write(self._comments(seller))

    def _browse(self, txn: ClientTransaction, rng: random.Random) -> None:
        category = rng.randrange(self.num_categories)
        items = self._category_items(category)
        rng.shuffle(items)
        for item in items[: rng.randint(3, 8)]:
            txn.read(self._price(item))
