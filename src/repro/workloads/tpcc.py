"""A TPC-C-like OLTP workload.

TPC-C models an order-entry system over warehouses, districts, customers,
stock, and orders.  This generator reproduces the standard transaction mix
(new-order 45%, payment 43%, order-status 4%, delivery 4%, stock-level 4%)
and the key-access shape of each transaction type at key-value granularity:
each relational row the benchmark touches becomes one key, and each
SELECT/UPDATE becomes a read or a read-modify-write of that key.
"""

from __future__ import annotations

import random
from typing import List

from repro.db.database import ClientTransaction
from repro.workloads.base import Workload

__all__ = ["TPCCWorkload"]


class TPCCWorkload(Workload):
    """TPC-C-like transaction mix over a warehouse/district/customer key space."""

    name = "tpcc"

    def __init__(
        self,
        num_warehouses: int = 2,
        districts_per_warehouse: int = 10,
        customers_per_district: int = 30,
        num_items: int = 100,
        max_order_lines: int = 10,
    ) -> None:
        self.num_warehouses = num_warehouses
        self.districts_per_warehouse = districts_per_warehouse
        self.customers_per_district = customers_per_district
        self.num_items = num_items
        self.max_order_lines = max_order_lines

    # -- key naming ----------------------------------------------------------------

    def _warehouse(self, w: int) -> str:
        return f"w{w}:ytd"

    def _district(self, w: int, d: int) -> str:
        return f"w{w}:d{d}:ytd"

    def _district_next_oid(self, w: int, d: int) -> str:
        return f"w{w}:d{d}:next_oid"

    def _customer(self, w: int, d: int, c: int) -> str:
        return f"w{w}:d{d}:c{c}:balance"

    def _stock(self, w: int, i: int) -> str:
        return f"w{w}:s{i}:qty"

    def _last_order(self, w: int, d: int) -> str:
        return f"w{w}:d{d}:last_order"

    def initial_keys(self) -> List[str]:
        keys: List[str] = []
        for w in range(self.num_warehouses):
            keys.append(self._warehouse(w))
            for d in range(self.districts_per_warehouse):
                keys.append(self._district(w, d))
                keys.append(self._district_next_oid(w, d))
                keys.append(self._last_order(w, d))
                for c in range(self.customers_per_district):
                    keys.append(self._customer(w, d, c))
            for i in range(self.num_items):
                keys.append(self._stock(w, i))
        return keys

    # -- transaction programs --------------------------------------------------------

    def run_transaction(
        self, txn: ClientTransaction, rng: random.Random, session_id: int, index: int
    ) -> None:
        choice = rng.random()
        if choice < 0.45:
            self._new_order(txn, rng)
        elif choice < 0.88:
            self._payment(txn, rng)
        elif choice < 0.92:
            self._order_status(txn, rng)
        elif choice < 0.96:
            self._delivery(txn, rng)
        else:
            self._stock_level(txn, rng)

    def _pick_warehouse_district(self, rng: random.Random):
        w = rng.randrange(self.num_warehouses)
        d = rng.randrange(self.districts_per_warehouse)
        return w, d

    def _new_order(self, txn: ClientTransaction, rng: random.Random) -> None:
        w, d = self._pick_warehouse_district(rng)
        txn.read(self._district_next_oid(w, d))
        txn.write(self._district_next_oid(w, d))
        lines = rng.randint(1, self.max_order_lines)
        for _ in range(lines):
            item = rng.randrange(self.num_items)
            txn.read(self._stock(w, item))
            txn.write(self._stock(w, item))
        txn.write(self._last_order(w, d))

    def _payment(self, txn: ClientTransaction, rng: random.Random) -> None:
        w, d = self._pick_warehouse_district(rng)
        c = rng.randrange(self.customers_per_district)
        txn.read(self._warehouse(w))
        txn.write(self._warehouse(w))
        txn.read(self._district(w, d))
        txn.write(self._district(w, d))
        txn.read(self._customer(w, d, c))
        txn.write(self._customer(w, d, c))

    def _order_status(self, txn: ClientTransaction, rng: random.Random) -> None:
        w, d = self._pick_warehouse_district(rng)
        c = rng.randrange(self.customers_per_district)
        txn.read(self._customer(w, d, c))
        txn.read(self._last_order(w, d))

    def _delivery(self, txn: ClientTransaction, rng: random.Random) -> None:
        w, d = self._pick_warehouse_district(rng)
        c = rng.randrange(self.customers_per_district)
        txn.read(self._last_order(w, d))
        txn.write(self._last_order(w, d))
        txn.read(self._customer(w, d, c))
        txn.write(self._customer(w, d, c))

    def _stock_level(self, txn: ClientTransaction, rng: random.Random) -> None:
        w, d = self._pick_warehouse_district(rng)
        txn.read(self._district_next_oid(w, d))
        for _ in range(rng.randint(3, 8)):
            item = rng.randrange(self.num_items)
            txn.read(self._stock(w, item))
