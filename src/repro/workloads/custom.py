"""The custom scalable-transaction-size workload.

The Fig. 9 (right) experiment of the paper scales the number of operations
per transaction while keeping the total history size and the number of
sessions fixed; C-Twitter cannot do that, so the authors use a custom
benchmark from the Cobra framework.  This workload is the analogue: every
transaction performs ``ops_per_transaction`` operations, a seeded mix of
reads and writes over a uniform key space.
"""

from __future__ import annotations

import random
from typing import List

from repro.db.database import ClientTransaction
from repro.workloads.base import Workload

__all__ = ["ScalableTransactionWorkload"]


class ScalableTransactionWorkload(Workload):
    """Uniform read/write transactions of a configurable, fixed size."""

    name = "custom"

    def __init__(
        self,
        num_keys: int = 200,
        ops_per_transaction: int = 8,
        read_fraction: float = 0.5,
    ) -> None:
        if ops_per_transaction <= 0:
            raise ValueError("ops_per_transaction must be positive")
        if not (0.0 <= read_fraction <= 1.0):
            raise ValueError("read_fraction must be in [0, 1]")
        self.num_keys = num_keys
        self.ops_per_transaction = ops_per_transaction
        self.read_fraction = read_fraction

    def initial_keys(self) -> List[str]:
        return [f"key{i}" for i in range(self.num_keys)]

    def run_transaction(
        self, txn: ClientTransaction, rng: random.Random, session_id: int, index: int
    ) -> None:
        for _ in range(self.ops_per_transaction):
            key = f"key{rng.randrange(self.num_keys)}"
            if rng.random() < self.read_fraction:
                txn.read(key)
            else:
                txn.write(key)
