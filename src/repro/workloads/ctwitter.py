"""A C-Twitter-like social-network workload.

C-Twitter (from the Cobra framework) simulates Twitter-style real-time
operations: posting tweets, following users, and reading timelines.  In the
paper's experiments this workload averages about 7.6 operations per
transaction; this generator matches that shape with a mix of:

* ``tweet`` -- append a tweet to the author's wall and bump their tweet
  counter,
* ``follow`` / ``unfollow`` -- update the follower edge key of a pair of
  users,
* ``timeline`` -- read the walls of a handful of followed users,
* ``profile`` -- read a user's counters.
"""

from __future__ import annotations

import random
from typing import List

from repro.db.database import ClientTransaction
from repro.workloads.base import Workload

__all__ = ["CTwitterWorkload"]


class CTwitterWorkload(Workload):
    """Tweets, follows, and timeline reads over a synthetic user base."""

    name = "ctwitter"

    def __init__(self, num_users: int = 50, timeline_fanout: int = 6) -> None:
        self.num_users = num_users
        self.timeline_fanout = timeline_fanout

    # -- key naming ----------------------------------------------------------------

    def _wall(self, user: int) -> str:
        return f"user{user}:wall"

    def _tweet_count(self, user: int) -> str:
        return f"user{user}:tweets"

    def _followers(self, user: int) -> str:
        return f"user{user}:followers"

    def _follows(self, follower: int, followee: int) -> str:
        return f"follows:{follower}->{followee}"

    def initial_keys(self) -> List[str]:
        keys: List[str] = []
        for user in range(self.num_users):
            keys.append(self._wall(user))
            keys.append(self._tweet_count(user))
            keys.append(self._followers(user))
        return keys

    # -- transaction programs --------------------------------------------------------

    def run_transaction(
        self, txn: ClientTransaction, rng: random.Random, session_id: int, index: int
    ) -> None:
        choice = rng.random()
        if choice < 0.35:
            self._tweet(txn, rng)
        elif choice < 0.55:
            self._follow(txn, rng)
        elif choice < 0.90:
            self._timeline(txn, rng)
        else:
            self._profile(txn, rng)

    def _tweet(self, txn: ClientTransaction, rng: random.Random) -> None:
        user = rng.randrange(self.num_users)
        txn.read(self._tweet_count(user))
        txn.write(self._tweet_count(user))
        txn.write(self._wall(user))

    def _follow(self, txn: ClientTransaction, rng: random.Random) -> None:
        follower = rng.randrange(self.num_users)
        followee = rng.randrange(self.num_users)
        txn.read(self._followers(followee))
        txn.write(self._followers(followee))
        txn.write(self._follows(follower, followee))

    def _timeline(self, txn: ClientTransaction, rng: random.Random) -> None:
        fanout = rng.randint(2, self.timeline_fanout + 4)
        for _ in range(fanout):
            user = rng.randrange(self.num_users)
            txn.read(self._wall(user))

    def _profile(self, txn: ClientTransaction, rng: random.Random) -> None:
        user = rng.randrange(self.num_users)
        txn.read(self._tweet_count(user))
        txn.read(self._followers(user))
        txn.read(self._wall(user))
