"""Sharded parallel checking on the compiled IR.

The package splits the AWDIT checkers' work across N shards:

* :mod:`repro.shard.plan` -- deterministic partitions (sessions and
  transaction-id chunks) of one history across shards;
* :mod:`repro.shard.ingest` -- per-shard
  :class:`~repro.core.compiled.ir.CompiledHistoryBuilder` accumulators fed
  from the parsers' raw ``stream_ops`` layer, and the intern-table merge
  that remaps per-shard ids into one global
  :class:`~repro.core.compiled.ir.CompiledHistory`;
* :mod:`repro.shard.parallel` -- the parallel check phase itself
  (:func:`check_sharded`), byte-identical to the single-process compiled
  engine for every ``jobs`` value.

Entry points: ``check(history, level, engine="sharded", jobs=N)`` and
``awdit check HISTORY --jobs N``.
"""

from repro.shard.ingest import (
    ShardIngestStats,
    load_compiled_sharded,
    merge_shard_builders,
    sharded_ingest,
)
from repro.shard.parallel import (
    MODES,
    check_all_levels_sharded,
    check_sharded,
    default_jobs,
    will_parallelize,
)
from repro.shard.plan import ShardPlan, plan_shards, shard_of_external
from repro.shard.split import (
    RangeSummary,
    parse_byte_range,
    split_byte_ranges,
    splittable,
    validate_range_summaries,
)

__all__ = [
    "MODES",
    "RangeSummary",
    "ShardIngestStats",
    "ShardPlan",
    "check_all_levels_sharded",
    "check_sharded",
    "default_jobs",
    "load_compiled_sharded",
    "merge_shard_builders",
    "parse_byte_range",
    "plan_shards",
    "shard_of_external",
    "sharded_ingest",
    "split_byte_ranges",
    "splittable",
    "validate_range_summaries",
]
