"""Byte-range splitting of line-oriented history files.

Parallel ingestion used to replicate the parse: every worker read the whole
file and kept only its own sessions' records.  For the line-oriented formats
(plume, cobra) the file can instead be cut into byte regions aligned to
*record boundaries*, so each region is parsed exactly once, by one worker,
and the regions concatenate back to the original record sequence (regions
are in file order, and a session's records keep their relative order across
regions).

Formats opt in with a ``BYTE_RANGE_RECORDS`` module attribute:

* ``"line"`` (plume): one transaction per line -- any newline is a boundary.
* ``"cobra"``: a transaction is a run of lines sharing a ``(session,
  txn_index)`` ident -- a candidate cut is advanced line by line until the
  ident changes, so no transaction is ever split across regions.

Two validations the serial parsers run per file must instead run *across*
regions at merge time (each region parser only sees its slice):
plume's duplicate-``txn=`` check and cobra's per-session index-contiguity
check.  The region parsers export the needed per-session state
(``labels_out`` / ``spans_out``) in a :class:`RangeSummary`;
:func:`validate_range_summaries` chains them in region order and raises the
same :class:`~repro.core.exceptions.ParseError` the serial parse would.
Error messages carry the region's byte offsets instead of absolute line
numbers (a region parser cannot know how many lines precede it without
re-reading the prefix, which is exactly what splitting avoids).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.exceptions import ParseError
from repro.histories.formats import _module_for
from repro.histories.formats._raw import RawTransaction, RecordBatch

__all__ = [
    "RangeSummary",
    "parse_byte_range",
    "parse_byte_range_batches",
    "split_byte_ranges",
    "splittable",
    "validate_range_summaries",
]


def splittable(path: str, fmt: Optional[str] = None) -> bool:
    """Whether the (detected) format of ``path`` supports byte-range splits."""
    module = _module_for(fmt, path)
    return getattr(module, "BYTE_RANGE_RECORDS", None) is not None


@dataclass
class RangeSummary:
    """Per-region record counts plus the cross-region validation state."""

    start: int
    end: int
    records: int = 0
    #: plume: per-session sets of ``txn=`` labels seen in this region.
    labels: Dict[int, Set[str]] = field(default_factory=dict)
    #: cobra: per-session ``(first, last)`` txn indices seen in this region.
    spans: Dict[int, Tuple[int, int]] = field(default_factory=dict)


def _align_to_line(handle, offset: int) -> int:
    """The first line-start position at or after ``offset``."""
    if offset <= 0:
        return 0
    handle.seek(offset)
    handle.readline()  # discard the (possibly partial) current line
    return handle.tell()


def _cobra_ident(line: bytes) -> Optional[Tuple[bytes, bytes]]:
    """The ``(session, txn_index)`` ident of a cobra line (None for blanks)."""
    stripped = line.strip()
    if not stripped:
        return None
    fields = stripped.split(b",", 2)
    if len(fields) < 2:
        return (stripped, b"")
    return (fields[0], fields[1])


def _align_to_record(handle, offset: int, size: int, kind: str) -> int:
    """The first record-boundary position at or after ``offset``."""
    position = _align_to_line(handle, offset)
    if kind == "line" or position >= size:
        return min(position, size)
    # cobra: advance past the lines that continue the transaction the
    # previous region will finish (same (session, txn_index) ident).
    first_ident = None
    while position < size:
        line = handle.readline()
        if not line:
            break
        ident = _cobra_ident(line)
        if ident is not None:
            if first_ident is None:
                first_ident = ident
            elif ident != first_ident:
                return position
        position += len(line)
    return min(position, size)


def _contains_byte(path: str, needle: bytes) -> bool:
    """Whether the file contains ``needle`` (chunked scan, C-level find)."""
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                return False
            if needle in chunk:
                return True


def split_byte_ranges(
    path: str, parts: int, fmt: Optional[str] = None
) -> Optional[List[Tuple[int, int]]]:
    """Split ``path`` into up to ``parts`` record-aligned byte ranges.

    Returns ``None`` when the file cannot be safely split: the JSON formats
    have no line-level record boundaries, and a cobra file containing any
    CSV quoting (``"``) may hold values with embedded newlines, which only
    the serial csv parse can cross -- a newline inside a quoted field is
    not a record boundary.  The returned ranges are non-empty, contiguous,
    in file order, and cover the file exactly; fewer than ``parts`` ranges
    come back when record boundaries are sparse (e.g. one huge
    transaction).
    """
    module = _module_for(fmt, path)
    kind = getattr(module, "BYTE_RANGE_RECORDS", None)
    if kind is None:
        return None
    if kind == "cobra" and _contains_byte(path, b'"'):
        return None
    size = os.path.getsize(path)
    if parts <= 1 or size == 0:
        return [(0, size)]
    cuts = {0, size}
    with open(path, "rb") as handle:
        for i in range(1, parts):
            target = size * i // parts
            cuts.add(_align_to_record(handle, target, size, kind))
    ordered = sorted(cuts)
    return [
        (lo, hi) for lo, hi in zip(ordered, ordered[1:]) if hi > lo
    ]


def parse_byte_range_batches(
    path: str,
    start: int,
    end: int,
    fmt: Optional[str] = None,
    batch_ops: Optional[int] = None,
) -> Tuple[List[RecordBatch], RangeSummary]:
    """Parse the byte region ``[start, end)`` of ``path`` into record batches.

    The columnar sibling of :func:`parse_byte_range` and the worker body of
    parallel sharded ingestion: the region's records come back as
    :class:`RecordBatch` columns of up to ``batch_ops`` operations (in file
    order), which pickle far smaller across the worker pool than per-record
    tuples, plus the :class:`RangeSummary` that
    :func:`validate_range_summaries` chains.  Parse failures carry the
    region's byte offsets for context.
    """
    module = _module_for(fmt, path)
    kind = getattr(module, "BYTE_RANGE_RECORDS", None)
    if kind is None:
        raise ParseError(f"{path}: format does not support byte-range parsing")
    with open(path, "rb") as handle:
        handle.seek(start)
        data = handle.read(end - start)
    # Split on '\n' only, exactly like text-mode file iteration: splitlines()
    # would additionally cut on unicode line separators (U+2028 etc.) inside
    # values, diverging from the serial parse.  A trailing '\r' (CRLF files)
    # is stripped like universal-newlines decoding would.
    lines = data.decode("utf-8").split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    lines = [
        line[:-1] if line.endswith("\r") else line for line in lines
    ]
    summary = RangeSummary(start=start, end=end)
    try:
        if kind == "line":
            batches = list(
                module.stream_batches(
                    lines,
                    batch_ops=batch_ops,
                    allow_empty=True,
                    labels_out=summary.labels,
                )
            )
        else:
            batches = list(
                module.stream_batches(
                    lines,
                    batch_ops=batch_ops,
                    allow_empty=True,
                    spans_out=summary.spans,
                )
            )
    except ParseError as exc:
        raise ParseError(f"byte range {start}-{end}: {exc}") from exc
    summary.records = sum(len(batch.txn_end) for batch in batches)
    return batches, summary


def parse_byte_range(
    path: str, start: int, end: int, fmt: Optional[str] = None
) -> Tuple[List[Tuple[int, RawTransaction]], RangeSummary]:
    """Parse the record-aligned byte region ``[start, end)`` of ``path``.

    The record-at-a-time wrapper over :func:`parse_byte_range_batches`:
    returns the region's raw records (in file order) plus the
    :class:`RangeSummary` that :func:`validate_range_summaries` chains.
    """
    batches, summary = parse_byte_range_batches(path, start, end, fmt=fmt)
    records: List[Tuple[int, RawTransaction]] = []
    for batch in batches:
        records.extend(batch.iter_records())
    return records, summary


def validate_range_summaries(
    path: str, summaries: List[RangeSummary], fmt: Optional[str] = None
) -> None:
    """Run the cross-region validations the serial parsers do per file.

    ``summaries`` must be in region (= file) order.  Raises the same
    :class:`ParseError` kinds the serial parse would: an entirely empty
    history, a ``txn=`` label repeated within one session (plume), or
    per-session txn indices that do not increase across regions (cobra).
    """
    module = _module_for(fmt, path)
    kind = getattr(module, "BYTE_RANGE_RECORDS", None)
    if sum(summary.records for summary in summaries) == 0:
        if kind == "cobra":
            raise ParseError("empty cobra-style history")
        raise ParseError("history file contains no transactions")
    if kind == "line":
        merged: Dict[int, Set[str]] = {}
        for summary in summaries:
            for sid, labels in summary.labels.items():
                seen = merged.setdefault(sid, set())
                duplicates = seen & labels
                if duplicates:
                    label = sorted(duplicates)[0]
                    raise ParseError(
                        f"byte range {summary.start}-{summary.end}: duplicate "
                        f"transaction id {label!r} in session {sid}"
                    )
                seen |= labels
    else:
        last_index: Dict[int, int] = {}
        for summary in summaries:
            for sid, (first, last) in summary.spans.items():
                previous = last_index.get(sid)
                if previous is not None and first <= previous:
                    raise ParseError(
                        f"byte range {summary.start}-{summary.end}: rows of "
                        f"session {sid} are not contiguous per transaction "
                        f"(saw txn index {first} after {previous})"
                    )
                last_index[sid] = last
