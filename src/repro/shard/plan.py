"""Shard planning: deterministic partitions of a history across N shards.

The sharded engine (:mod:`repro.shard.parallel`) splits the checkers' work
along the two independence axes the algorithms already have:

* the **per-transaction** passes (read consistency, repeatable reads, RC
  saturation) carry no cross-transaction state, so they shard into
  contiguous transaction-id chunks;
* the **per-session** passes (the RA frontier, CC saturation) reset their
  state at session boundaries, so they shard by dense session index.

A :class:`ShardPlan` records both partitions.  The partition never affects
results -- the merge step re-applies every shard's output in global
transaction/session order -- so the assignment only matters for load
balance.  The default assignment is round-robin; tests exercise randomized
assignments to prove the independence claim.

Ingestion sharding (:mod:`repro.shard.ingest`) partitions *external* session
ids before any dense numbering exists; :func:`shard_of_external` is the
stable hash it uses, deterministic across processes (unlike ``hash()`` on
strings, which is salted per interpreter).
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Sequence, Tuple

__all__ = ["ShardPlan", "plan_shards", "shard_of_external"]


def shard_of_external(external_session_id: object, jobs: int) -> int:
    """Deterministically map an external session id to a shard in ``[0, jobs)``.

    Uses CRC-32 of the id's ``repr`` so parallel ingestion workers in
    separate processes agree on the routing without coordination.
    """
    return zlib.crc32(repr(external_session_id).encode("utf-8")) % jobs


class ShardPlan:
    """A partition of one history's checking work across ``jobs`` shards."""

    __slots__ = ("jobs", "session_shard", "tid_chunks")

    def __init__(
        self,
        jobs: int,
        session_shard: Sequence[int],
        num_transactions: int,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        for sid, shard in enumerate(session_shard):
            if not (0 <= shard < jobs):
                raise ValueError(
                    f"session {sid} assigned to shard {shard}, "
                    f"outside [0, {jobs})"
                )
        self.jobs = jobs
        #: Dense session index -> shard index.
        self.session_shard: List[int] = list(session_shard)
        #: Contiguous ``[lo, hi)`` transaction-id ranges, one per shard (some
        #: may be empty on small histories).
        self.tid_chunks: List[Tuple[int, int]] = _even_chunks(num_transactions, jobs)

    def sessions_of(self, shard: int) -> List[int]:
        """The dense session indices assigned to ``shard``, in global order."""
        return [sid for sid, s in enumerate(self.session_shard) if s == shard]

    @property
    def num_sessions(self) -> int:
        return len(self.session_shard)

    def describe(self) -> str:
        sizes = [len(self.sessions_of(s)) for s in range(self.jobs)]
        return f"ShardPlan(jobs={self.jobs}, sessions_per_shard={sizes})"

    def __repr__(self) -> str:
        return f"<{self.describe()}>"


def _even_chunks(total: int, jobs: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into ``jobs`` contiguous near-even ranges."""
    base, extra = divmod(total, jobs)
    chunks: List[Tuple[int, int]] = []
    lo = 0
    for shard in range(jobs):
        hi = lo + base + (1 if shard < extra else 0)
        chunks.append((lo, hi))
        lo = hi
    return chunks


def plan_shards(
    num_sessions: int,
    num_transactions: int,
    jobs: int,
    session_shard: Optional[Sequence[int]] = None,
) -> ShardPlan:
    """Build a :class:`ShardPlan` for a history of the given dimensions.

    ``session_shard`` overrides the default round-robin session assignment
    (used by the parity tests to prove assignment-independence).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if session_shard is None:
        session_shard = [sid % jobs for sid in range(num_sessions)]
    elif len(session_shard) != num_sessions:
        raise ValueError(
            f"session_shard has {len(session_shard)} entries "
            f"for {num_sessions} sessions"
        )
    return ShardPlan(jobs, session_shard, num_transactions)
