"""The sharded parallel check phase: compiled checkers across worker processes.

``check_sharded`` produces results byte-identical to
:func:`repro.core.compiled.checkers.check_compiled` -- same verdicts,
violation kinds, witness renderings, and inferred-edge counts -- while
running the data-parallel phases of each algorithm on ``jobs`` forked
workers:

* the **read-consistency pass** and the **repeatable-reads pre-check**
  shard into contiguous transaction-id chunks;
* **RC saturation** shards the same way (its state is per-transaction);
* the **RA frontier** and **CC saturation** shard by session (their state
  resets at session boundaries), with one final merge pass applying every
  shard's inferred edges to the packed commit relation in global order.

The sequentially-inherent phases (happens-before clocks, the ``so ∪ wr``
relation build, Tarjan cycle extraction) stay in the parent -- the relation
build is overlapped with worker compute where the dependency order allows.

Workers run the *same* saturation kernels as the single-process engine
(:mod:`repro.core.compiled.kernels`, via the restriction parameters --
``tid_range=`` / ``sessions=`` -- the kernels honor), each appending its
inferred edges into a private scratch :class:`CommitRelation` co log (flat
packed rows, nothing deduplicated worker-side); the parent concatenates the
per-shard log slices in global transaction/session order -- one C-level
``extend`` per shard, no re-hashing -- which reproduces the sequential
engine's log bit for bit.  The kernels pick vectorized or fallback per
call, so large shards ride numpy inside the worker while the injected
``scratch`` / ``writers_by_key`` state keeps the fallback allocation-free.
Dedup, the inferred-edge count, and witness labels all happen at the
relation's CSR freeze, exactly where the sequential run does them, so every
witness matches a sequential run exactly.

Workers are forked (POSIX only): the compiled IR is published in a module
global before the pool is created and reaches workers by copy-on-write, so
nothing history-sized is ever pickled.  Where ``fork`` is unavailable -- or
``jobs == 1`` -- every task runs inline in the parent, preserving results
exactly.
"""

from __future__ import annotations

import multiprocessing
import os
from array import array
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.commit import CommitRelation
from repro.core.compiled.checkers import (
    CompiledReadReport,
    _compiled,
    _relation_from_compiled,
    _result,
    check_all_levels_compiled,
    check_compiled,
    check_ra_single_session_compiled,
    check_read_consistency_compiled,
    check_repeatable_reads_compiled,
    compute_happens_before_compiled,
)
from repro.core.compiled.ir import CompiledHistory
# ``WritesIndex`` / ``resolve_reads`` / ``ParkQueue`` / ``join_clocks`` are
# imported (and re-exported) here so worker bootstrap shares the streaming
# fold's flat writes registry, columnar park queue, and batched clock join:
# a shard task that folds its byte range incrementally resolves reads and
# joins clocks through the same kernels the single-process stream uses, and
# importing them at worker module scope keeps fork/spawn bootstrap failures
# loud instead of mid-task (tests/test_resolve_kernel.py asserts this
# import surface).
from repro.core.compiled.kernels import (
    ParkQueue,
    WritesIndex,
    _writers_by_key_compiled,
    join_clocks,
    resolve_reads,
    saturate_cc_compiled,
    saturate_ra_compiled,
    saturate_rc_compiled,
)
from repro.core.isolation import IsolationLevel
from repro.core.result import CheckResult, Stopwatch
from repro.core.violations import Violation
from repro.shard.plan import ShardPlan, plan_shards

__all__ = [
    "check_sharded",
    "check_all_levels_sharded",
    "default_jobs",
    "will_parallelize",
    "MODES",
]

#: Execution modes of :func:`check_sharded`.  Results are byte-identical in
#: every mode; only how the work is scheduled differs.
#:
#: * ``"auto"`` -- fork a worker pool when it can actually help (``jobs > 1``,
#:   the platform has the ``fork`` start method, and more than one CPU is
#:   available to this process); otherwise fall back to ``"serial"``.
#:   Forking on a single-CPU machine is pure overhead, so a production
#:   deployment never pays it by accident.
#: * ``"fork"`` -- always fork (useful to measure/parity-test the transport
#:   even on one CPU); falls back to ``"inline"`` where ``fork`` is missing.
#: * ``"inline"`` -- run the sharded task/merge pipeline in-process, without
#:   workers.  Exercises the exact shard-merge code path (scratch relations,
#:   ordered replay) at function-call cost; the parity suite leans on it.
#: * ``"serial"`` -- delegate to the single-process compiled engine.
MODES = ("auto", "fork", "inline", "serial")


def default_jobs() -> int:
    """The default worker count: one per CPU available to this process."""
    return effective_cpus()


def effective_cpus() -> int:
    """CPUs actually usable by this process (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


# -- worker-shared state --------------------------------------------------------

#: The compiled history under check.  Set in the parent immediately before
#: the worker pool is forked (children inherit it copy-on-write) and read by
#: every task body; in inline mode the tasks read it from the parent directly.
_SHARED_CH: Optional[CompiledHistory] = None

#: Per-process cache of the ``_writers_by_key_compiled`` result (its
#: ``(buckets, num_buckets)`` tuple) keyed by IR identity -- it depends only
#: on the IR, so one computation serves every CC task a worker receives.
_WRITERS_CACHE: Optional[Tuple[CompiledHistory, Tuple[List, int]]] = None


def _shared_ch() -> CompiledHistory:
    ch = _SHARED_CH
    if ch is None:  # pragma: no cover - indicates an executor lifecycle bug
        raise RuntimeError("shard task executed outside a _ShardExecutor scope")
    return ch


def _writers_for(ch: CompiledHistory) -> Tuple[List, int]:
    global _WRITERS_CACHE
    if _WRITERS_CACHE is None or _WRITERS_CACHE[0] is not ch:
        _WRITERS_CACHE = (ch, _writers_by_key_compiled(ch))
    return _WRITERS_CACHE[1]


def _scratch_relation(ch: CompiledHistory) -> CommitRelation:
    """A throwaway relation for a worker's saturation run.

    Only its co log is ever read back: the saturators append the shard's
    inferred edges (packed) plus key ids there, and the parent concatenates
    the slices into the global relation.  Names are never rendered and
    nothing is frozen worker-side, so placeholders suffice.
    """
    return CommitRelation(
        num_vertices=ch.num_transactions,
        committed=(),
        key_names=ch.key_table.values,
    )


# -- task bodies (run in a forked worker, or inline) ----------------------------


def _task_read_consistency(
    chunk: Tuple[int, int],
) -> Tuple[List[Violation], Set[int]]:
    report = check_read_consistency_compiled(_shared_ch(), tid_range=chunk)
    return report.violations, report.bad_ops


def _task_repeatable_reads(
    chunk: Tuple[int, int], bad_ops: Set[int]
) -> List[Violation]:
    return check_repeatable_reads_compiled(_shared_ch(), bad_ops, tid_range=chunk)


def _extract_co_edges(relation: CommitRelation) -> Tuple[array, array]:
    """The scratch relation's co log as parallel ``(edges, key_ids)`` rows.

    Flat ``array`` rows pickle as raw bytes -- the fork transport ships a
    shard's whole edge log in two buffer copies instead of one tuple per
    edge.
    """
    return relation._co_log, relation._co_keys


def _task_rc_saturation(
    chunk: Tuple[int, int], bad_ops: Set[int]
) -> Tuple[array, array]:
    ch = _shared_ch()
    relation = _scratch_relation(ch)
    saturate_rc_compiled(ch, relation, bad_ops, tid_range=chunk)
    return _extract_co_edges(relation)


def _task_ra_saturation(
    sids: Sequence[int], bad_ops: Set[int]
) -> List[Tuple[int, Tuple[array, array]]]:
    """RA-saturate each of the shard's sessions; edges grouped per session.

    One scratch relation serves all of the shard's sessions (its co log is
    append-ordered, so each session's new edges are a suffix slice).
    """
    ch = _shared_ch()
    relation = _scratch_relation(ch)
    cuts = [0]
    for sid in sids:
        saturate_ra_compiled(ch, relation, bad_ops, sessions=(sid,))
        cuts.append(len(relation._co_log))
    edges, keys = _extract_co_edges(relation)
    return [
        (sid, (edges[cuts[i] : cuts[i + 1]], keys[cuts[i] : cuts[i + 1]]))
        for i, sid in enumerate(sids)
    ]


def _task_cc_saturation(
    sids: Sequence[int],
    bad_ops: Set[int],
    hb_rows: Dict[int, Optional[List[int]]],
) -> List[Tuple[int, Tuple[array, array]]]:
    """CC-saturate each of the shard's sessions (see :func:`_task_ra_saturation`)."""
    ch = _shared_ch()
    writers_by_key = _writers_for(ch)
    num_buckets = writers_by_key[1]
    # One pointer-state scratch for the whole task: each per-session call
    # leaves it pristine, so the O(num_buckets) allocation happens once per
    # task instead of once per session.  Only the fallback kernel touches
    # it -- the vectorized kernel is stateless and ignores the scratch.
    scratch = (
        array("q", bytes(8 * num_buckets)),
        array("q", [-1]) * num_buckets,
        [],
    )
    relation = _scratch_relation(ch)
    cuts = [0]
    for sid in sids:
        saturate_cc_compiled(
            ch,
            relation,
            hb_rows,
            bad_ops,
            sessions=(sid,),
            writers_by_key=writers_by_key,
            scratch=scratch,
        )
        cuts.append(len(relation._co_log))
    edges, keys = _extract_co_edges(relation)
    return [
        (sid, (edges[cuts[i] : cuts[i + 1]], keys[cuts[i] : cuts[i + 1]]))
        for i, sid in enumerate(sids)
    ]


# -- executor -------------------------------------------------------------------


class _Immediate:
    """An already-computed result with the ``AsyncResult.get`` interface."""

    __slots__ = ("_value",)

    def __init__(self, value) -> None:
        self._value = value

    def get(self):
        return self._value


class _ShardExecutor:
    """Runs shard tasks on a forked pool, or inline when that is unavailable.

    The executor publishes the IR in :data:`_SHARED_CH` *before* forking so
    workers inherit it by copy-on-write; ``close`` clears it again.  Inline
    mode (``jobs == 1``, or no ``fork`` start method, e.g. Windows) executes
    each task eagerly at submit time -- results are identical, only the
    concurrency is lost.
    """

    def __init__(self, ch: CompiledHistory, jobs: int, use_pool: bool) -> None:
        global _SHARED_CH
        self.jobs = jobs
        self._pool = None
        _SHARED_CH = ch
        if use_pool:
            context = multiprocessing.get_context("fork")
            self._pool = context.Pool(processes=jobs)

    @property
    def parallel(self) -> bool:
        return self._pool is not None

    def submit(self, fn, *args):
        if self._pool is None:
            return _Immediate(fn(*args))
        return self._pool.apply_async(fn, args)

    def close(self) -> None:
        global _SHARED_CH, _WRITERS_CACHE
        _SHARED_CH = None
        # The inline-mode writers cache lives in this process and would
        # otherwise pin the whole IR until the next sharded CC check.
        _WRITERS_CACHE = None
        if self._pool is not None:
            # All results have been fetched by the time we get here (or an
            # exception is unwinding); terminate() skips the drain that
            # close() would wait for.
            self._pool.terminate()
            self._pool.join()
            self._pool = None


# -- merges ---------------------------------------------------------------------


def _merge_reports(handles) -> CompiledReadReport:
    """Concatenate chunked read-consistency reports in ascending-chunk order."""
    violations: List[Violation] = []
    bad_ops: Set[int] = set()
    for handle in handles:
        chunk_violations, chunk_bad = handle.get()
        violations.extend(chunk_violations)
        bad_ops.update(chunk_bad)
    return CompiledReadReport(violations, bad_ops)


def _merge_inferred(
    relation: CommitRelation,
    edge_logs: Iterable[Tuple[array, array]],
) -> None:
    """Concatenate shard co logs into the global relation, in order.

    Each shard ships the same appends the sequential saturators would have
    made for its slice; concatenating the slices in global order reproduces
    the sequential log bit for bit (one C-level ``extend`` per shard, no
    per-edge Python).  Dedup, the inferred count, and witness labels all
    happen at the relation's freeze, exactly as in a sequential run.
    """
    co_log = relation._co_log
    co_keys = relation._co_keys
    for edges, keys in edge_logs:
        co_log.extend(edges)
        co_keys.extend(keys)


_EMPTY_LOG: Tuple[array, array] = (array("Q"), array("q"))


def _sessions_by_shard(plan: ShardPlan) -> List[List[int]]:
    """Non-empty per-shard session lists (each ascending, hence merge-safe)."""
    groups = [plan.sessions_of(shard) for shard in range(plan.jobs)]
    return [group for group in groups if group]


def _merge_session_edges(
    relation: CommitRelation, handles, num_sessions: int
) -> None:
    per_session: Dict[int, Tuple[array, array]] = {}
    for handle in handles:
        for sid, edges in handle.get():
            per_session[sid] = edges
    _merge_inferred(
        relation,
        (per_session.get(sid, _EMPTY_LOG) for sid in range(num_sessions)),
    )


# -- per-level drivers ----------------------------------------------------------


def _chunked_read_consistency(
    plan: ShardPlan, executor: _ShardExecutor
) -> List:
    """Submit the chunked read-consistency pass; returns the result handles."""
    return [
        executor.submit(_task_read_consistency, chunk) for chunk in plan.tid_chunks
    ]


def _check_rc_sharded(
    ch: CompiledHistory,
    plan: ShardPlan,
    executor: _ShardExecutor,
    max_witnesses: Optional[int],
    report: Optional[CompiledReadReport] = None,
) -> CheckResult:
    watch = Stopwatch()
    if report is None:
        pending = _chunked_read_consistency(plan, executor)
        relation = _relation_from_compiled(ch)  # overlapped with the workers
        report = _merge_reports(pending)
    else:
        relation = _relation_from_compiled(ch)
    watch.lap("read_consistency")

    pending = [
        executor.submit(_task_rc_saturation, chunk, report.bad_ops)
        for chunk in plan.tid_chunks
    ]
    _merge_inferred(relation, (handle.get() for handle in pending))
    watch.lap("saturation")

    violations = list(report.violations)
    violations.extend(relation.find_cycles(max_witnesses=max_witnesses))
    watch.lap("cycle_check")
    return _result(
        ch,
        IsolationLevel.READ_COMMITTED,
        violations,
        "awdit",
        watch,
        stats={
            "inferred_edges": relation.num_inferred_edges,
            "co_edges": relation.num_edges,
            "jobs": executor.jobs,
            **relation.timings,
        },
    )


def _check_ra_sharded(
    ch: CompiledHistory,
    plan: ShardPlan,
    executor: _ShardExecutor,
    max_witnesses: Optional[int],
    report: Optional[CompiledReadReport] = None,
) -> CheckResult:
    watch = Stopwatch()
    if report is None:
        pending = _chunked_read_consistency(plan, executor)
        relation = _relation_from_compiled(ch)  # overlapped with the workers
        report = _merge_reports(pending)
    else:
        relation = _relation_from_compiled(ch)
    watch.lap("read_consistency")

    violations = list(report.violations)
    pending = [
        executor.submit(_task_repeatable_reads, chunk, report.bad_ops)
        for chunk in plan.tid_chunks
    ]
    for handle in pending:
        violations.extend(handle.get())
    watch.lap("repeatable_reads")

    pending = [
        executor.submit(_task_ra_saturation, sids, report.bad_ops)
        for sids in _sessions_by_shard(plan)
    ]
    _merge_session_edges(relation, pending, ch.num_sessions)
    watch.lap("saturation")

    violations.extend(relation.find_cycles(max_witnesses=max_witnesses))
    watch.lap("cycle_check")
    return _result(
        ch,
        IsolationLevel.READ_ATOMIC,
        violations,
        "awdit",
        watch,
        stats={
            "inferred_edges": relation.num_inferred_edges,
            "co_edges": relation.num_edges,
            "jobs": executor.jobs,
            **relation.timings,
        },
    )


def _check_cc_sharded(
    ch: CompiledHistory,
    plan: ShardPlan,
    executor: _ShardExecutor,
    max_witnesses: Optional[int],
    report: Optional[CompiledReadReport] = None,
) -> CheckResult:
    watch = Stopwatch()
    if report is None:
        report = _merge_reports(_chunked_read_consistency(plan, executor))
    watch.lap("read_consistency")

    violations = list(report.violations)
    hb, cycle_violations = compute_happens_before_compiled(ch, report.bad_ops)
    watch.lap("happens_before")
    if hb is None:
        violations.extend(cycle_violations)
        return _result(
            ch,
            IsolationLevel.CAUSAL_CONSISTENCY,
            violations,
            "awdit",
            watch,
            stats={"jobs": executor.jobs},
        )

    pending = []
    for sids in _sessions_by_shard(plan):
        # Each shard only dereferences the clocks of its own sessions'
        # transactions, so ship just those rows (the IR itself travels by
        # fork, but hb is computed after the fork).
        hb_rows = {tid: hb[tid] for sid in sids for tid in ch.sessions[sid]}
        pending.append(
            executor.submit(_task_cc_saturation, sids, report.bad_ops, hb_rows)
        )
    relation = _relation_from_compiled(ch)  # overlapped with the workers
    _merge_session_edges(relation, pending, ch.num_sessions)
    watch.lap("saturation")

    violations.extend(relation.find_cycles(max_witnesses=max_witnesses))
    watch.lap("cycle_check")
    return _result(
        ch,
        IsolationLevel.CAUSAL_CONSISTENCY,
        violations,
        "awdit",
        watch,
        stats={
            "inferred_edges": relation.num_inferred_edges,
            "co_edges": relation.num_edges,
            "jobs": executor.jobs,
            **relation.timings,
        },
    )


# -- public API -----------------------------------------------------------------


def _resolve_execution(jobs: int, mode: str) -> Tuple[bool, bool]:
    """Resolve ``(use_pool, tasked)`` for a ``jobs``/``mode`` combination.

    ``tasked`` selects the shard task/merge pipeline at all; ``use_pool``
    additionally forks workers for it.  See :data:`MODES`.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
    fork_available = "fork" in multiprocessing.get_all_start_methods()
    if mode == "fork":
        return jobs > 1 and fork_available, jobs > 1
    if mode == "inline":
        return False, True
    if mode == "serial":
        return False, False
    use_pool = jobs > 1 and fork_available and effective_cpus() > 1
    return use_pool, use_pool


def will_parallelize(jobs: Optional[int] = None, mode: str = "auto") -> bool:
    """Whether :func:`check_sharded` would actually fork workers.

    Callers can skip shard-specific preparation (e.g. sharded file ingest)
    when the execution will fall back to the single-process engine anyway --
    the CLI uses this so ``--jobs`` never pays merge overhead on a machine
    where forking cannot help.
    """
    if jobs is None:
        jobs = default_jobs()
    use_pool, _tasked = _resolve_execution(jobs, mode)
    return use_pool


def check_sharded(
    source,
    level: IsolationLevel = IsolationLevel.CAUSAL_CONSISTENCY,
    jobs: Optional[int] = None,
    max_witnesses: Optional[int] = None,
    use_single_session_fast_path: bool = True,
    session_shard: Optional[Sequence[int]] = None,
    mode: str = "auto",
) -> CheckResult:
    """Check a history against ``level`` with ``jobs``-way sharded parallelism.

    Accepts a :class:`~repro.core.model.History` or a
    :class:`CompiledHistory` (compiling the former single-threaded, like the
    compiled engine).  Results are byte-identical to
    ``check_compiled(source, level)`` for every ``jobs`` value, every
    ``mode`` (see :data:`MODES`), and every session assignment;
    ``session_shard`` overrides the round-robin assignment (exercised by the
    parity tests).  ``jobs=None`` uses one worker per available CPU.

    The single-session RA fast path (Theorem 1.6) is inherently sequential
    and already linear; it is delegated unchanged.
    """
    ch = _compiled(source)
    if jobs is None:
        jobs = default_jobs()
    use_pool, tasked = _resolve_execution(jobs, mode)
    if (
        level is IsolationLevel.READ_ATOMIC
        and use_single_session_fast_path
        and ch.num_sessions <= 1
    ):
        return check_ra_single_session_compiled(ch, max_witnesses=max_witnesses)

    if not tasked:
        # One effective worker: the sharded pipeline would only add
        # scratch/replay overhead, so run the identical sequential loops
        # directly (this IS the single-process engine).
        result = check_compiled(
            ch,
            level,
            max_witnesses=max_witnesses,
            use_single_session_fast_path=use_single_session_fast_path,
        )
        result.stats["jobs"] = 1
        return result

    plan = plan_shards(ch.num_sessions, ch.num_transactions, jobs, session_shard)
    executor = _ShardExecutor(ch, jobs, use_pool)
    try:
        if level is IsolationLevel.READ_COMMITTED:
            return _check_rc_sharded(ch, plan, executor, max_witnesses)
        if level is IsolationLevel.READ_ATOMIC:
            return _check_ra_sharded(ch, plan, executor, max_witnesses)
        if level is IsolationLevel.CAUSAL_CONSISTENCY:
            return _check_cc_sharded(ch, plan, executor, max_witnesses)
        raise ValueError(f"unsupported isolation level: {level!r}")
    finally:
        executor.close()


def check_all_levels_sharded(
    source,
    jobs: Optional[int] = None,
    max_witnesses: Optional[int] = None,
    use_single_session_fast_path: bool = True,
    mode: str = "auto",
) -> Dict[IsolationLevel, CheckResult]:
    """Check RC, RA, and CC with the sharded engine.

    Mirrors ``check_all_levels_compiled``'s sharing: the history is compiled
    once, one chunked Read Consistency pass serves all three levels, and a
    single worker pool is forked for the whole run.
    """
    ch = _compiled(source)
    if jobs is None:
        jobs = default_jobs()
    use_pool, tasked = _resolve_execution(jobs, mode)
    if not tasked:
        results = check_all_levels_compiled(
            ch,
            max_witnesses=max_witnesses,
            use_single_session_fast_path=use_single_session_fast_path,
        )
        for result in results.values():
            result.stats["jobs"] = 1
        return results

    plan = plan_shards(ch.num_sessions, ch.num_transactions, jobs, None)
    executor = _ShardExecutor(ch, jobs, use_pool)
    try:
        report = _merge_reports(_chunked_read_consistency(plan, executor))
        if use_single_session_fast_path and ch.num_sessions <= 1:
            ra = check_ra_single_session_compiled(
                ch, max_witnesses=max_witnesses, report=report
            )
        else:
            ra = _check_ra_sharded(ch, plan, executor, max_witnesses, report=report)
        return {
            IsolationLevel.READ_COMMITTED: _check_rc_sharded(
                ch, plan, executor, max_witnesses, report=report
            ),
            IsolationLevel.READ_ATOMIC: ra,
            IsolationLevel.CAUSAL_CONSISTENCY: _check_cc_sharded(
                ch, plan, executor, max_witnesses, report=report
            ),
        }
    finally:
        executor.close()
