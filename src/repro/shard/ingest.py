"""Sharded ingestion: per-shard builders, intern-table merge, parallel parse.

The columnar ``stream_batches`` layer of the history formats yields
:class:`~repro.histories.formats._raw.RecordBatch` columns.  Sharded
ingestion partitions each batch across ``jobs``
:class:`~repro.core.compiled.ir.CompiledHistoryBuilder` accumulators --
whole sessions stay on one shard (:func:`~repro.shard.plan.shard_of_external`)
because arrival order within a session must be preserved -- and then merges
the shards into one global :class:`~repro.core.compiled.ir.CompiledHistory`:
each shard's private key/value intern ids are remapped through the global
tables (``CompiledHistoryBuilder.absorb``) and the usual ``finalize`` pass
resolves the write-read relation over the merged arrays.

Two feeding modes:

* **routed** (default): one streaming parse in this process, records routed
  to shard builders as they arrive.  One file pass, bounded parser memory.
* **parallel**: the file is cut into record-aligned byte regions
  (:mod:`repro.shard.split`) and ``jobs`` worker processes each parse *one
  region once* into a private builder; the merge absorbs the builders in
  region order, which reconstructs every session's record order exactly
  (regions are in file order).  Cross-region validations (duplicate plume
  ``txn=`` labels, cobra index contiguity) run at merge time on the
  regions' summaries.  Formats without line-level record boundaries (the
  JSON ones) fall back to the legacy replicated parse, where each worker
  reads the whole file and keeps only its own sessions; no ``fork`` support
  at all falls back to routed mode.

Global intern ids are assigned in shard-major first-seen order rather than
file order, so they may differ from :func:`~repro.histories.formats.load_compiled`'s
-- verdicts and witnesses are unaffected (the checkers never compare raw
ids), with the same equality-class caveat as the IR itself: a history mixing
``1`` and ``True`` as values may render the other representative.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.compiled.ir import CompiledHistory, CompiledHistoryBuilder
from repro.shard.plan import shard_of_external

__all__ = [
    "ShardIngestStats",
    "load_compiled_sharded",
    "merge_shard_builders",
    "sharded_ingest",
]


@dataclass
class ShardIngestStats:
    """Pre-merge intern-table cardinalities of one ingestion shard."""

    shard: int
    transactions: int
    sessions: int
    keys: int
    values: int


def merge_shard_builders(
    builders: List[CompiledHistoryBuilder],
    sort_sessions: bool = True,
    fill_gaps: bool = False,
) -> CompiledHistory:
    """Merge per-shard builders into one finalized :class:`CompiledHistory`.

    Shard 0's builder becomes the global accumulator; the others are absorbed
    into it in shard order (remapping their intern ids), then the standard
    ``finalize`` sorts sessions by external id and infers ``wr`` -- identical
    post-merge behaviour to a single-builder ingest.
    """
    if not builders:
        return CompiledHistoryBuilder().finalize(
            sort_sessions=sort_sessions, fill_gaps=fill_gaps
        )
    master = builders[0]
    for other in builders[1:]:
        master.absorb(other)
    return master.finalize(sort_sessions=sort_sessions, fill_gaps=fill_gaps)


def _ingest_shard_from_file(
    path: str,
    fmt: Optional[str],
    jobs: int,
    shard: int,
    batch_ops: Optional[int] = None,
) -> CompiledHistoryBuilder:
    """Parse ``path`` keeping only sessions routed to ``shard`` (worker body)."""
    from repro.histories.formats import stream_raw_batches

    builder = CompiledHistoryBuilder()
    for batch in stream_raw_batches(path, fmt, batch_ops=batch_ops):
        kept = batch.filter_records(
            lambda sid: shard_of_external(sid, jobs) == shard
        )
        if kept is not None:
            builder.add_batch(kept)
    return builder


def _ingest_byte_range(
    path: str,
    fmt: Optional[str],
    start: int,
    end: int,
    batch_ops: Optional[int] = None,
):
    """Parse one record-aligned byte region into a builder (worker body)."""
    from repro.shard.split import parse_byte_range_batches

    builder = CompiledHistoryBuilder()
    batches, summary = parse_byte_range_batches(
        path, start, end, fmt=fmt, batch_ops=batch_ops
    )
    for batch in batches:
        builder.add_batch(batch)
    return builder, summary


def sharded_ingest(
    path: str,
    jobs: int,
    fmt: Optional[str] = None,
    parallel: bool = False,
    batch_ops: Optional[int] = None,
) -> Tuple[CompiledHistory, List[ShardIngestStats]]:
    """Ingest ``path`` through ``jobs`` shard builders; return IR + shard stats.

    The stats snapshot each shard's pre-merge intern cardinalities (the
    cross-shard state the merge reconciles); ``awdit stats --jobs N`` prints
    them.  ``batch_ops`` tunes the record-batch granularity of every mode
    (parse batches, worker-pool payloads, builder folds); the merged IR is
    identical for any value.
    """
    from repro.histories.formats import _module_for, detect_format, stream_raw_batches

    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    fmt_name = fmt or detect_format(path)
    module = _module_for(fmt_name, path)
    fill_gaps = bool(getattr(module, "COMPILED_SESSION_GAPS", False))

    if parallel and jobs > 1 and "fork" in multiprocessing.get_all_start_methods():
        from repro.shard.split import split_byte_ranges, validate_range_summaries

        ranges = split_byte_ranges(path, jobs, fmt=fmt_name)
        ctx = multiprocessing.get_context("fork")
        if ranges is not None:
            # Byte-range mode: each region parsed once, by one worker.
            with ctx.Pool(processes=min(jobs, len(ranges))) as pool:
                handles = [
                    pool.apply_async(
                        _ingest_byte_range, (path, fmt_name, lo, hi, batch_ops)
                    )
                    for lo, hi in ranges
                ]
                outcomes = [handle.get() for handle in handles]
            builders = [builder for builder, _summary in outcomes]
            validate_range_summaries(
                path, [summary for _builder, summary in outcomes], fmt=fmt_name
            )
        else:
            # No line-level record boundaries: replicate the parse, each
            # worker keeping only its own sessions.
            with ctx.Pool(processes=jobs) as pool:
                handles = [
                    pool.apply_async(
                        _ingest_shard_from_file,
                        (path, fmt_name, jobs, shard, batch_ops),
                    )
                    for shard in range(jobs)
                ]
                builders = [handle.get() for handle in handles]
    else:
        builders = [CompiledHistoryBuilder() for _ in range(jobs)]
        for batch in stream_raw_batches(path, fmt_name, batch_ops=batch_ops):
            for shard, part in enumerate(batch.partition(jobs, shard_of_external)):
                if part is not None:
                    builders[shard].add_batch(part)

    stats = [
        ShardIngestStats(
            shard=shard,
            transactions=builder.num_transactions,
            sessions=builder.num_sessions,
            keys=builder.num_keys,
            values=builder.num_values,
        )
        for shard, builder in enumerate(builders)
    ]
    compiled = merge_shard_builders(builders, sort_sessions=True, fill_gaps=fill_gaps)
    return compiled, stats


def load_compiled_sharded(
    path: str,
    jobs: int,
    fmt: Optional[str] = None,
    parallel: bool = False,
    batch_ops: Optional[int] = None,
) -> CompiledHistory:
    """:func:`sharded_ingest` without the stats (drop-in for ``load_compiled``)."""
    compiled, _stats = sharded_ingest(
        path, jobs, fmt=fmt, parallel=parallel, batch_ops=batch_ops
    )
    return compiled
