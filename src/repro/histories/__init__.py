"""History construction, generation, and serialization.

* :mod:`repro.histories.builder` -- a fluent builder for hand-written
  histories (used throughout the tests to encode the paper's figures).
* :mod:`repro.histories.generator` -- random history generation with
  controllable consistency level and anomaly injection.
* :mod:`repro.histories.formats` -- on-disk formats: the native JSON format
  plus parsers/serializers in the spirit of the formats consumed by Plume,
  DBCop, and Cobra (Section 5 of the paper).
"""

from repro.histories.builder import HistoryBuilder
from repro.histories.generator import RandomHistoryConfig, generate_random_history

__all__ = [
    "HistoryBuilder",
    "RandomHistoryConfig",
    "generate_random_history",
]
