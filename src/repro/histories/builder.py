"""A fluent builder for hand-written histories.

Histories in tests and examples are most naturally written session by
session, transaction by transaction, the way the paper draws them.  The
builder keeps that structure::

    history = (
        HistoryBuilder()
        .session()
            .txn("t1").write("x", 1).write("y", 1).end()
            .txn("t2").write("x", 2).end()
        .session()
            .txn("t3").read("x", 2).read("x", 1).end()
        .build()
    )

Values default to the unique-writes convention, so the write-read relation is
inferred automatically; an explicit ``wr`` mapping can be supplied to
:meth:`HistoryBuilder.build` for adversarial cases (thin-air reads, aborted
reads, and so on).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.exceptions import UsageError
from repro.core.model import History, Operation, OpRef, Transaction, read, write

__all__ = ["HistoryBuilder", "TransactionBuilder"]


class TransactionBuilder:
    """Builder for a single transaction; returned by :meth:`HistoryBuilder.txn`."""

    def __init__(self, parent: "HistoryBuilder", label: Optional[str], committed: bool) -> None:
        self._parent = parent
        self._label = label
        self._committed = committed
        self._operations: List[Operation] = []

    def read(self, key: str, value: object) -> "TransactionBuilder":
        """Append a read ``R(key, value)``."""
        self._operations.append(read(key, value))
        return self

    def write(self, key: str, value: object) -> "TransactionBuilder":
        """Append a write ``W(key, value)``."""
        self._operations.append(write(key, value))
        return self

    def op(self, operation: Operation) -> "TransactionBuilder":
        """Append an already-constructed operation."""
        self._operations.append(operation)
        return self

    def end(self) -> "HistoryBuilder":
        """Finish the transaction and return to the history builder."""
        txn = Transaction(self._operations, committed=self._committed, label=self._label)
        self._parent._append(txn)
        return self._parent


class HistoryBuilder:
    """Builds a :class:`History` session by session."""

    def __init__(self) -> None:
        self._sessions: List[List[Transaction]] = []
        self._label_to_txn: Dict[str, Transaction] = {}

    # -- structure -------------------------------------------------------------

    def session(self) -> "HistoryBuilder":
        """Start a new session; subsequent transactions belong to it."""
        self._sessions.append([])
        return self

    def txn(self, label: Optional[str] = None, committed: bool = True) -> TransactionBuilder:
        """Start a new transaction in the current session."""
        if not self._sessions:
            self._sessions.append([])
        return TransactionBuilder(self, label, committed)

    def add_transaction(self, txn: Transaction) -> "HistoryBuilder":
        """Append a pre-built transaction to the current session."""
        if not self._sessions:
            self._sessions.append([])
        self._append(txn)
        return self

    def _append(self, txn: Transaction) -> None:
        self._sessions[-1].append(txn)
        if txn.label is not None:
            if txn.label in self._label_to_txn:
                raise UsageError(f"duplicate transaction label {txn.label!r}")
            self._label_to_txn[txn.label] = txn

    # -- finalization ------------------------------------------------------------

    def transaction_by_label(self, label: str) -> Transaction:
        """Look up a transaction previously added with the given label."""
        if label not in self._label_to_txn:
            raise UsageError(f"no transaction labelled {label!r}")
        return self._label_to_txn[label]

    def build(self, wr: Optional[Dict[OpRef, OpRef]] = None) -> History:
        """Construct the :class:`History` (inferring ``wr`` unless given)."""
        if not self._sessions:
            raise UsageError("cannot build an empty history")
        return History.from_sessions(self._sessions, wr=wr)
