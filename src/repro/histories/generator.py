"""Random history generation and anomaly injection.

Two complementary tools for producing test and benchmark inputs:

* :func:`generate_random_history` -- simulate clients executing read/write
  transactions against an idealized store.  In ``serializable`` mode each
  transaction observes the latest committed writes, so the resulting history
  satisfies every weak isolation level (used as the "consistent" population
  in tests and benchmarks).  In ``random_reads`` mode reads observe an
  arbitrary earlier write, which almost always produces anomalies (used for
  fuzzing the checkers against the naive reference implementations).

* :func:`inject_anomaly` -- append a small self-contained gadget of fresh
  transactions over fresh keys that introduces exactly one anomaly of the
  requested kind (future read, causality cycle, an RC / RA / CC violation,
  ...).  Because the gadget uses keys disjoint from the base history, the
  injected anomaly is the only new violation, which is what the Table 1
  reproduction needs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.model import History, Operation, Transaction, read, write
from repro.core.violations import ViolationKind

__all__ = [
    "RandomHistoryConfig",
    "generate_random_history",
    "generate_random_stream",
    "inject_anomaly",
    "INJECTABLE_ANOMALIES",
]


@dataclass
class RandomHistoryConfig:
    """Parameters for :func:`generate_random_history`.

    ``mode`` is ``"serializable"`` (reads observe the latest committed write;
    history is consistent at every level) or ``"random_reads"`` (reads observe
    a uniformly random earlier write; history is almost always inconsistent).
    """

    num_sessions: int = 4
    num_transactions: int = 40
    num_keys: int = 10
    min_ops_per_txn: int = 2
    max_ops_per_txn: int = 6
    read_fraction: float = 0.5
    abort_probability: float = 0.0
    mode: str = "serializable"
    seed: Optional[int] = None

    def validate(self) -> None:
        """Raise ``ValueError`` for inconsistent parameter combinations."""
        if self.num_sessions <= 0:
            raise ValueError("num_sessions must be positive")
        if self.num_transactions < 0:
            raise ValueError("num_transactions must be non-negative")
        if self.num_keys <= 0:
            raise ValueError("num_keys must be positive")
        if not (0 < self.min_ops_per_txn <= self.max_ops_per_txn):
            raise ValueError("need 0 < min_ops_per_txn <= max_ops_per_txn")
        if not (0.0 <= self.read_fraction <= 1.0):
            raise ValueError("read_fraction must be in [0, 1]")
        if not (0.0 <= self.abort_probability < 1.0):
            raise ValueError("abort_probability must be in [0, 1)")
        if self.mode not in ("serializable", "random_reads"):
            raise ValueError(f"unknown mode {self.mode!r}")


def generate_random_history(config: RandomHistoryConfig) -> History:
    """Generate a random history according to ``config`` (see the module docstring)."""
    sessions, _arrival = _generate_sessions(config)
    return History.from_sessions(sessions)


def generate_random_stream(config: RandomHistoryConfig) -> Tuple[History, List[int]]:
    """Generate a random history plus its *arrival order*.

    The simulation picks a random session per transaction in generation
    order; :meth:`History.from_sessions` renumbers session-blocked and loses
    that interleaving.  The returned order lists the dense transaction ids in
    generation (arrival) order -- the realistic input order for the streaming
    checkers, and the one that keeps cross-session reads resolvable on
    arrival (a session-blocked replay parks every cross-session read until
    the writer's whole session has been fed, which stalls watermark-based
    retirement).  Same seed, same history as :func:`generate_random_history`.
    """
    sessions, arrival = _generate_sessions(config)
    history = History.from_sessions(sessions)
    order = [history.sessions[sid][sidx] for sid, sidx in arrival]
    return history, order


def _generate_sessions(
    config: RandomHistoryConfig,
) -> Tuple[List[List[Transaction]], List[Tuple[int, int]]]:
    """The shared simulation: per-session transactions plus arrival order.

    ``arrival`` holds one ``(session, session_index)`` pair per generated
    transaction, in generation order.
    """
    config.validate()
    rng = random.Random(config.seed)
    keys = [f"k{i}" for i in range(config.num_keys)]

    sessions: List[List[Transaction]] = [[] for _ in range(config.num_sessions)]
    arrival: List[Tuple[int, int]] = []
    latest_value: Dict[str, Optional[int]] = {key: None for key in keys}
    all_values: Dict[str, List[int]] = {key: [] for key in keys}
    next_value = 1

    for index in range(config.num_transactions):
        session = rng.randrange(config.num_sessions)
        num_ops = rng.randint(config.min_ops_per_txn, config.max_ops_per_txn)
        committed = rng.random() >= config.abort_probability
        operations: List[Operation] = []
        local_latest: Dict[str, int] = {}
        for _ in range(num_ops):
            key = rng.choice(keys)
            if rng.random() < config.read_fraction:
                if key in local_latest:
                    operations.append(read(key, local_latest[key]))
                    continue
                if config.mode == "serializable":
                    value = latest_value[key]
                else:
                    choices = all_values[key]
                    value = rng.choice(choices) if choices else None
                if value is None:
                    # Nothing written to this key yet; write instead so the
                    # history stays free of accidental thin-air reads.
                    operations.append(write(key, next_value))
                    local_latest[key] = next_value
                    next_value += 1
                else:
                    operations.append(read(key, value))
            else:
                operations.append(write(key, next_value))
                local_latest[key] = next_value
                next_value += 1
        if committed:
            for key, value in local_latest.items():
                latest_value[key] = value
                all_values[key].append(value)
        arrival.append((session, len(sessions[session])))
        sessions[session].append(
            Transaction(operations, committed=committed, label=f"g{index}")
        )

    # Sessions may legitimately end up empty; History supports that.
    return sessions, arrival


# --------------------------------------------------------------------------
# Anomaly injection gadgets
# --------------------------------------------------------------------------

INJECTABLE_ANOMALIES: Tuple[ViolationKind, ...] = (
    ViolationKind.THIN_AIR_READ,
    ViolationKind.ABORTED_READ,
    ViolationKind.FUTURE_READ,
    ViolationKind.NOT_OWN_WRITE,
    ViolationKind.NOT_LATEST_WRITE,
    ViolationKind.NON_REPEATABLE_READ,
    ViolationKind.CAUSALITY_CYCLE,
    ViolationKind.COMMIT_ORDER_CYCLE,
)


def _fresh_key_base(history: History) -> str:
    """A key prefix guaranteed not to collide with existing keys."""
    existing = history.keys
    index = 0
    while True:
        base = f"anomaly{index}"
        if not any(str(key).startswith(base) for key in existing):
            return base
        index += 1


def _fresh_value(history: History) -> int:
    """An integer value larger than any integer value in the history."""
    largest = 0
    for txn in history.transactions:
        for op in txn.operations:
            if isinstance(op.value, int) and op.value > largest:
                largest = op.value
    return largest + 1


def inject_anomaly(
    history: History,
    kind: ViolationKind,
    rng: Optional[random.Random] = None,
) -> History:
    """Return a copy of ``history`` extended with one anomaly gadget of ``kind``.

    The gadget transactions use fresh keys and fresh values, so the only new
    violations introduced are the ones inherent to the gadget.  The kinds in
    :data:`INJECTABLE_ANOMALIES` are supported.
    """
    if kind not in INJECTABLE_ANOMALIES:
        raise ValueError(f"cannot inject anomaly of kind {kind}")
    rng = rng or random.Random(0)
    base = _fresh_key_base(history)
    value = _fresh_value(history)
    x, y, z = f"{base}_x", f"{base}_y", f"{base}_z"
    v1, v2, v3 = value, value + 1, value + 2

    sessions: List[List[Transaction]] = [
        [history.transactions[tid] for tid in session] for session in history.sessions
    ]
    if not sessions:
        sessions = [[]]

    def clone_transactions() -> List[List[Transaction]]:
        # Transactions carry dense ids assigned by their owning history;
        # rebuild fresh Transaction objects so the new history can re-assign.
        rebuilt: List[List[Transaction]] = []
        for session in sessions:
            rebuilt.append(
                [
                    Transaction(t.operations, committed=t.committed, label=t.label)
                    for t in session
                ]
            )
        return rebuilt

    new_sessions = clone_transactions()

    def pick_session() -> int:
        return rng.randrange(len(new_sessions))

    if kind is ViolationKind.THIN_AIR_READ:
        new_sessions[pick_session()].append(
            Transaction([read(x, v1)], label="inj_thin_air")
        )
    elif kind is ViolationKind.ABORTED_READ:
        sid = pick_session()
        new_sessions[sid].append(
            Transaction([write(x, v1)], committed=False, label="inj_aborted_writer")
        )
        other = (sid + 1) % len(new_sessions) if len(new_sessions) > 1 else sid
        new_sessions[other].append(
            Transaction([read(x, v1)], label="inj_aborted_reader")
        )
    elif kind is ViolationKind.FUTURE_READ:
        new_sessions[pick_session()].append(
            Transaction([read(x, v1), write(x, v1)], label="inj_future_read")
        )
    elif kind is ViolationKind.NOT_OWN_WRITE:
        sid = pick_session()
        new_sessions[sid].append(Transaction([write(x, v1)], label="inj_now_writer"))
        new_sessions[sid].append(
            Transaction([write(x, v2), read(x, v1)], label="inj_now_reader")
        )
    elif kind is ViolationKind.NOT_LATEST_WRITE:
        sid = pick_session()
        new_sessions[sid].append(
            Transaction([write(x, v1), write(x, v2)], label="inj_nlw_writer")
        )
        other = (sid + 1) % len(new_sessions) if len(new_sessions) > 1 else sid
        new_sessions[other].append(Transaction([read(x, v1)], label="inj_nlw_reader"))
    elif kind is ViolationKind.NON_REPEATABLE_READ:
        sid = pick_session()
        new_sessions[sid].append(Transaction([write(x, v1)], label="inj_nrr_w1"))
        new_sessions[sid].append(Transaction([write(x, v2)], label="inj_nrr_w2"))
        other = (sid + 1) % len(new_sessions) if len(new_sessions) > 1 else sid
        new_sessions[other].append(
            Transaction([read(x, v1), read(x, v2)], label="inj_nrr_reader")
        )
    elif kind is ViolationKind.CAUSALITY_CYCLE:
        # Two transactions in different sessions, each reading the other's
        # write: a wr cycle.
        sid_a = pick_session()
        sid_b = (sid_a + 1) % len(new_sessions) if len(new_sessions) > 1 else sid_a
        new_sessions[sid_a].append(
            Transaction([write(x, v1), read(y, v2)], label="inj_cycle_a")
        )
        new_sessions[sid_b].append(
            Transaction([write(y, v2), read(x, v1)], label="inj_cycle_b")
        )
    elif kind is ViolationKind.COMMIT_ORDER_CYCLE:
        # The Fig. 4a gadget: an RC violation (hence a co' cycle at every
        # level) without any causality cycle.
        sid_a = pick_session()
        sid_b = (sid_a + 1) % len(new_sessions) if len(new_sessions) > 1 else sid_a
        new_sessions[sid_a].append(Transaction([write(x, v1)], label="inj_co_w1"))
        new_sessions[sid_a].append(Transaction([write(x, v2)], label="inj_co_w2"))
        new_sessions[sid_b].append(
            Transaction([read(x, v2), read(x, v1)], label="inj_co_reader")
        )
    return History.from_sessions(new_sessions)
