"""A CSV-like operation-per-line format in the style of Cobra's logs.

Each line records one operation::

    session,txn_index,op,key,value,committed
    0,0,W,x,1,1
    0,0,W,y,1,1
    1,0,R,x,1,1

``txn_index`` is the transaction's position within its session; consecutive
lines with the same ``(session, txn_index)`` pair belong to the same
transaction, in program order.  ``committed`` is ``1`` or ``0`` and must be
consistent across the lines of one transaction.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.exceptions import ParseError
from repro.core.model import History, Operation, OpKind, Transaction
from repro.histories.formats._raw import (
    DEFAULT_BATCH_OPS,
    RawOps,
    RawTransaction,
    RecordBatch,
    transaction_from_raw,
)

__all__ = ["dumps", "loads", "stream", "stream_batches", "stream_ops"]

#: Missing integer session ids denote empty sessions (``loads`` pads to
#: ``max(session) + 1``).
COMPILED_SESSION_GAPS = True

#: Record boundaries are lines whose ``(session, txn_index)`` ident differs
#: from the previous line's, so byte-range splitting must align cuts to
#: ident changes (:mod:`repro.shard.split`).
BYTE_RANGE_RECORDS = "cobra"

_HEADER = ["session", "txn_index", "op", "key", "value", "committed"]


def _parse_row(line_number: int, row: List[str]) -> Tuple[int, int, bool, str, object, bool]:
    """Parse one data row into ``(session, txn_index, is_write, key, value, committed)``."""
    if len(row) != 6:
        raise ParseError(f"line {line_number}: expected 6 columns, got {len(row)}")
    try:
        sid = int(row[0])
        txn_index = int(row[1])
    except ValueError as exc:
        raise ParseError(f"line {line_number}: bad session/txn index") from exc
    if sid < 0:
        # Both loaders must agree on what a negative session means; loads'
        # positional session assembly would silently drop such rows, so
        # reject them outright on every path.
        raise ParseError(f"line {line_number}: negative session id {sid}")
    kind = row[2].strip()
    if kind not in ("R", "W"):
        raise ParseError(f"line {line_number}: op must be R or W, got {kind!r}")
    key = row[3]
    raw_value = row[4]
    try:
        value: object = int(raw_value)
    except ValueError:
        value = raw_value
    is_committed = row[5].strip() not in ("0", "false", "False")
    return sid, txn_index, kind == "W", key, value, is_committed


def stream_batches(
    handle: Iterable[str],
    batch_ops: Optional[int] = None,
    allow_empty: bool = False,
    spans_out: Optional[Dict[int, Tuple[int, int]]] = None,
) -> Iterator[RecordBatch]:
    """Iterate :class:`RecordBatch` columns of up to ``batch_ops`` operations.

    Consecutive rows with the same ``(session, txn_index)`` pair form one
    transaction; a transaction's rows must be contiguous and its per-session
    indices strictly increasing across transactions (files written by
    :func:`dumps` always are -- the batch :func:`loads` additionally
    tolerates interleaved rows by buffering the whole file).  A repeated
    index is rejected as a duplicate transaction id.  A transaction lands in
    a batch only once its last row is seen, so memory stays bounded by one
    batch plus one open transaction plus one index per session.

    ``allow_empty`` and ``spans_out`` exist for the byte-range splitter
    (:mod:`repro.shard.split`): a mid-file region may hold no records, and
    ``spans_out`` receives each session's ``(first, last)`` txn indices so
    the contiguity check can chain *across* regions at merge time.
    """
    if batch_ops is None:
        batch_ops = DEFAULT_BATCH_OPS
    if batch_ops < 1:
        raise ValueError(f"batch_ops must be >= 1, got {batch_ops}")
    current: Optional[Tuple[int, int]] = None
    current_line = 0
    ops: RawOps = []
    committed = True
    before_first_row = True
    last_index: Dict[int, int] = {}
    batch = RecordBatch()
    for line_number, row in enumerate(csv.reader(handle), start=1):
        if not row:
            continue
        if before_first_row:
            before_first_row = False
            if [cell.strip() for cell in row] == _HEADER:
                continue
        sid, txn_index, is_write, key, value, is_committed = _parse_row(line_number, row)
        ident = (sid, txn_index)
        if ident != current:
            if current is not None:
                batch.add_record(current[0], None, committed, ops, line=current_line)
                if batch.full(batch_ops):
                    yield batch
                    batch = RecordBatch()
            # A repeated or smaller index means rows of an already-emitted
            # transaction turned up again (a duplicate transaction id, or
            # rows that are non-contiguous / out of order).
            previous_index = last_index.get(sid)
            if previous_index is not None and previous_index >= txn_index:
                raise ParseError(
                    f"line {line_number}: rows of session {sid} are not "
                    f"contiguous per transaction (saw txn index {txn_index} "
                    f"after {previous_index})"
                )
            if txn_index < 0:
                raise ParseError(
                    f"line {line_number}: negative txn index {txn_index}"
                )
            last_index[sid] = txn_index
            if spans_out is not None:
                span = spans_out.get(sid)
                spans_out[sid] = (
                    (txn_index, txn_index) if span is None else (span[0], txn_index)
                )
            current = ident
            current_line = line_number
            ops = []
            committed = is_committed
        elif committed != is_committed:
            raise ParseError(
                f"line {line_number}: inconsistent committed flag for transaction {ident}"
            )
        ops.append((is_write, key, value))
    if current is None:
        if len(batch.txn_end):  # pragma: no cover - current is None only at 0 records
            yield batch
        if allow_empty:
            return
        raise ParseError("empty cobra-style history")
    batch.add_record(current[0], None, committed, ops, line=current_line)
    yield batch


def stream_ops(
    handle: Iterable[str],
    allow_empty: bool = False,
    spans_out: Optional[Dict[int, Tuple[int, int]]] = None,
) -> Iterator[Tuple[int, RawTransaction]]:
    """Iterate raw ``(session_id, (label, committed, ops))`` records.

    The per-record unbatching shim over :func:`stream_batches`;
    ``batch_ops=1`` keeps the legacy error timing exactly (a closed
    transaction is yielded before the row after it can raise).
    """
    for batch in stream_batches(
        handle, batch_ops=1, allow_empty=allow_empty, spans_out=spans_out
    ):
        for record in batch.iter_records():
            yield record


def stream(handle: Iterable[str]) -> Iterator[Tuple[int, Transaction]]:
    """Iterate ``(session_id, transaction)`` pairs off an open cobra-style file.

    The object-yielding wrapper over :func:`stream_ops`.
    """
    for sid, raw in stream_ops(handle):
        yield sid, transaction_from_raw(raw)


def dumps(history: History) -> str:
    """Serialize ``history`` to the CSV-like Cobra-style format."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_HEADER)
    for sid, session in enumerate(history.sessions):
        for index, tid in enumerate(session):
            txn = history.transactions[tid]
            for op in txn.operations:
                writer.writerow(
                    [sid, index, op.kind.value, op.key, op.value, int(txn.committed)]
                )
    return buffer.getvalue()


def loads(text: str) -> History:
    """Parse a history from the CSV-like Cobra-style format."""
    reader = csv.reader(io.StringIO(text))
    rows = [row for row in reader if row]
    if not rows:
        raise ParseError("empty cobra-style history")
    if [cell.strip() for cell in rows[0]] == _HEADER:
        rows = rows[1:]
    transactions: Dict[Tuple[int, int], List[Operation]] = {}
    committed: Dict[Tuple[int, int], bool] = {}
    for line_number, row in enumerate(rows, start=2):
        sid, txn_index, is_write, key, value, is_committed = _parse_row(line_number, row)
        ident = (sid, txn_index)
        operation = Operation(OpKind.WRITE if is_write else OpKind.READ, key, value)
        transactions.setdefault(ident, []).append(operation)
        previous = committed.setdefault(ident, is_committed)
        if previous != is_committed:
            raise ParseError(
                f"line {line_number}: inconsistent committed flag for transaction {ident}"
            )
    num_sessions = max(sid for sid, _ in transactions) + 1
    sessions: List[List[Transaction]] = [[] for _ in range(num_sessions)]
    for sid in range(num_sessions):
        indices = sorted(idx for s, idx in transactions if s == sid)
        for idx in indices:
            ident = (sid, idx)
            sessions[sid].append(
                Transaction(transactions[ident], committed=committed[ident])
            )
    return History.from_sessions(sessions)
