"""A nested-JSON history format in the style of DBCop's histories.

DBCop stores a history as a list of sessions, each a list of transactions,
each a list of events with ``write``/``variable``/``value``/``success``
fields.  This module follows that shape::

    {
      "id": 0,
      "sessions": [
        [
          {"events": [{"write": true, "variable": "x", "value": 1, "success": true}],
           "success": true},
          ...
        ]
      ]
    }

``success`` on a transaction maps to committed/aborted; ``success`` on an
event is retained for compatibility but events with ``success: false`` are
dropped on load (they never reached the database).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional, TextIO, Tuple

from repro.core.exceptions import ParseError
from repro.core.model import History, Transaction
from repro.histories.formats._jsonstream import iter_session_objects
from repro.histories.formats._raw import (
    DEFAULT_BATCH_OPS,
    RawOps,
    RawTransaction,
    RecordBatch,
    transaction_from_raw,
)

__all__ = ["dumps", "loads", "stream", "stream_batches", "stream_ops"]

#: Missing integer session ids denote empty sessions (positional format).
COMPILED_SESSION_GAPS = True


def _raw_from_doc(txn_doc: object) -> RawTransaction:
    """Convert one DBCop transaction document to a raw record.

    Malformed events (a non-object, or one missing ``variable``/``value``)
    raise :class:`ParseError` rather than leaking ``KeyError``/``TypeError``
    from a truncated or hand-edited capture.
    """
    if not isinstance(txn_doc, dict):
        raise ParseError(f"each transaction must be an object, got {txn_doc!r}")
    events = txn_doc.get("events", [])
    if not isinstance(events, list):
        raise ParseError(f"'events' must be a list, got {events!r}")
    ops: RawOps = []
    for event in events:
        if not isinstance(event, dict):
            raise ParseError(f"each event must be an object, got {event!r}")
        if not event.get("success", True):
            continue
        if "variable" not in event or "value" not in event:
            raise ParseError(f"event missing 'variable'/'value' field: {event!r}")
        ops.append((bool(event.get("write")), event["variable"], event["value"]))
    return None, bool(txn_doc.get("success", True)), ops


def _transaction_from_doc(txn_doc: object) -> Transaction:
    """Convert one DBCop transaction document to a :class:`Transaction`."""
    return transaction_from_raw(_raw_from_doc(txn_doc))


def stream_batches(
    handle: TextIO, batch_ops: Optional[int] = None
) -> Iterator[RecordBatch]:
    """Iterate :class:`RecordBatch` columns of up to ``batch_ops`` operations.

    The columnar layer under :func:`stream_ops`: transaction documents are
    decoded one at a time from the sliding JSON buffer and accumulated into
    flat batch columns.  A malformed document raises immediately with its
    line context; the partially-filled batch is discarded, never yielded.
    """
    if batch_ops is None:
        batch_ops = DEFAULT_BATCH_OPS
    if batch_ops < 1:
        raise ValueError(f"batch_ops must be >= 1, got {batch_ops}")
    batch = RecordBatch()
    for sid, txn_doc, line in iter_session_objects(handle):
        try:
            label, committed, ops = _raw_from_doc(txn_doc)
        except ParseError as exc:
            raise ParseError(f"line {line}: {exc}") from exc
        batch.add_record(sid, label, committed, ops, line=line)
        if batch.full(batch_ops):
            yield batch
            batch = RecordBatch()
    if len(batch.txn_end):
        yield batch


def stream_ops(handle: TextIO) -> Iterator[Tuple[int, RawTransaction]]:
    """Iterate raw ``(session_index, (label, committed, ops))`` records.

    A thin unbatching shim over :func:`stream_batches` (``batch_ops=1``
    keeps the legacy record-at-a-time error timing).
    """
    for batch in stream_batches(handle, batch_ops=1):
        for record in batch.iter_records():
            yield record


def stream(handle: TextIO) -> Iterator[Tuple[int, Transaction]]:
    """Iterate ``(session_index, transaction)`` pairs off an open DBCop-style file.

    Transactions are decoded one at a time from a sliding buffer, so the
    history is never materialized.
    """
    for sid, raw in stream_ops(handle):
        yield sid, transaction_from_raw(raw)


def dumps(history: History) -> str:
    """Serialize ``history`` to DBCop-style JSON."""
    sessions: List[List[Dict[str, Any]]] = []
    for session in history.sessions:
        rendered: List[Dict[str, Any]] = []
        for tid in session:
            txn = history.transactions[tid]
            events = [
                {
                    "write": op.is_write,
                    "variable": op.key,
                    "value": op.value,
                    "success": True,
                }
                for op in txn.operations
            ]
            rendered.append({"events": events, "success": txn.committed})
        sessions.append(rendered)
    return json.dumps({"id": 0, "sessions": sessions}, indent=2)


def loads(text: str) -> History:
    """Parse a DBCop-style JSON history."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParseError(f"invalid JSON: {exc}") from exc
    sessions_doc = document.get("sessions") if isinstance(document, dict) else None
    if not isinstance(sessions_doc, list):
        raise ParseError("expected an object with a 'sessions' list")
    sessions: List[List[Transaction]] = []
    for session_doc in sessions_doc:
        sessions.append([_transaction_from_doc(txn_doc) for txn_doc in session_doc])
    return History.from_sessions(sessions)
