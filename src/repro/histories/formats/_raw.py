"""The raw record layer shared by the streaming parsers.

Every format's ``stream_batches`` iterator yields :class:`RecordBatch`
containers: flat parallel columns (operation kinds, keys, values; per-record
session ids, labels, committed flags, source lines) covering up to
``batch_ops`` operations each.  The batch layer exists so the hot consumers
-- :meth:`repro.core.compiled.ir.CompiledHistoryBuilder.add_batch` and
:meth:`repro.core.compiled.online.CompiledIncrementalChecker.append_batch`
-- can bulk-intern whole columns and amortize per-record dispatch, and so
parallel ingestion ships one picklable column container per region instead
of thousands of nested tuples.

The per-record view is preserved on top of it: ``stream_ops`` yields
``(session_id, raw)`` pairs where ``raw`` is a :data:`RawTransaction`
(``(label, committed, ops)`` with plain ``(is_write, key, value)`` operation
tuples), and the object-yielding ``stream`` iterators wrap that with
:func:`transaction_from_raw`.
"""

from __future__ import annotations

from array import array
from typing import Callable, Iterator, List, Optional, Tuple

from repro.core.model import Operation, OpKind, Transaction

__all__ = [
    "DEFAULT_BATCH_OPS",
    "RawOps",
    "RawTransaction",
    "RecordBatch",
    "transaction_from_raw",
]

#: ``(is_write, key, value)`` per operation, in program order.
RawOps = List[Tuple[bool, object, object]]

#: ``(label, committed, ops)``.
RawTransaction = Tuple[Optional[str], bool, RawOps]

#: Default operations per :class:`RecordBatch`.  Large enough to amortize
#: per-batch dispatch to nothing, small enough that one in-flight batch stays
#: trivially within the streaming memory bound.
DEFAULT_BATCH_OPS = 4096


class RecordBatch:
    """A columnar slice of parsed history records.

    Operations live in three parallel columns (``kinds``/``keys``/``values``,
    one entry per op, file order); records live in five parallel columns
    (``txn_session``/``txn_labels``/``txn_committed``/``txn_line``/
    ``txn_end``).  Record ``t`` owns the operation rows
    ``txn_end[t-1]:txn_end[t]`` (``txn_end`` is cumulative, ``txn_end[-1]``
    is the total op count).  ``txn_line`` records each record's source line
    (0 when the producer has no line numbers, e.g. a mid-file byte region).
    """

    __slots__ = (
        "kinds",
        "keys",
        "values",
        "txn_end",
        "txn_session",
        "txn_labels",
        "txn_committed",
        "txn_line",
    )

    def __init__(self) -> None:
        self.kinds = bytearray()  # 1 = write, 0 = read
        self.keys: List[object] = []
        self.values: List[object] = []
        self.txn_end = array("q")
        self.txn_session: List[object] = []
        self.txn_labels: List[Optional[str]] = []
        self.txn_committed = bytearray()
        self.txn_line = array("q")

    @property
    def num_records(self) -> int:
        """Number of records (transactions) in the batch."""
        return len(self.txn_end)

    @property
    def num_ops(self) -> int:
        """Number of operations in the batch."""
        return len(self.kinds)

    def __len__(self) -> int:
        return len(self.txn_end)

    def add_record(
        self,
        session: object,
        label: Optional[str],
        committed: bool,
        ops: RawOps,
        line: int = 0,
    ) -> None:
        """Append one raw record (the tuple-shaped producer surface)."""
        kinds = self.kinds
        keys = self.keys
        values = self.values
        for is_write, key, value in ops:
            kinds.append(1 if is_write else 0)
            keys.append(key)
            values.append(value)
        self.txn_session.append(session)
        self.txn_labels.append(label)
        self.txn_committed.append(1 if committed else 0)
        self.txn_line.append(line)
        self.txn_end.append(len(kinds))

    def full(self, batch_ops: int) -> bool:
        """Whether the batch has reached the flush threshold.

        Counted in operations, with a record-count backstop so batches of
        empty transactions still flush (``batch_ops=1`` must yield one
        record per batch even when records carry no ops).
        """
        return len(self.kinds) >= batch_ops or len(self.txn_end) >= batch_ops

    def iter_records(self) -> Iterator[Tuple[object, RawTransaction]]:
        """Yield the records back as ``(session, (label, committed, ops))``.

        The exact per-record tuples the pre-batch ``stream_ops`` layer
        yielded, so unbatching shims preserve every consumer's view.
        """
        kinds = self.kinds
        keys = self.keys
        values = self.values
        lo = 0
        for t, hi in enumerate(self.txn_end):
            ops = [
                (bool(kinds[i]), keys[i], values[i]) for i in range(lo, hi)
            ]
            yield self.txn_session[t], (
                self.txn_labels[t],
                bool(self.txn_committed[t]),
                ops,
            )
            lo = hi

    def tail(self, skip: int) -> "RecordBatch":
        """The batch without its first ``skip`` records (checkpoint resume).

        Columns are sliced, not copied record by record; ``skip`` larger
        than the batch returns an empty batch.
        """
        if skip <= 0:
            return self
        if skip >= len(self.txn_end):
            return RecordBatch()
        cut = self.txn_end[skip - 1]
        out = RecordBatch()
        out.kinds = self.kinds[cut:]
        out.keys = self.keys[cut:]
        out.values = self.values[cut:]
        out.txn_end = array("q", (end - cut for end in self.txn_end[skip:]))
        out.txn_session = self.txn_session[skip:]
        out.txn_labels = self.txn_labels[skip:]
        out.txn_committed = self.txn_committed[skip:]
        out.txn_line = self.txn_line[skip:]
        return out

    def _append_slice(self, other: "RecordBatch", t: int, lo: int, hi: int) -> None:
        """Append record ``t`` of ``other`` (op rows ``lo:hi``) to this batch."""
        self.kinds += other.kinds[lo:hi]
        self.keys.extend(other.keys[lo:hi])
        self.values.extend(other.values[lo:hi])
        self.txn_session.append(other.txn_session[t])
        self.txn_labels.append(other.txn_labels[t])
        self.txn_committed.append(other.txn_committed[t])
        self.txn_line.append(other.txn_line[t])
        self.txn_end.append(len(self.kinds))

    def partition(
        self, num_shards: int, shard_of: Callable[[object, int], int]
    ) -> List[Optional["RecordBatch"]]:
        """Split into per-shard sub-batches by ``shard_of(session, num_shards)``.

        Entry ``s`` holds shard ``s``'s records in their original relative
        order (``None`` when the shard got nothing), so feeding each
        sub-batch to its shard builder reproduces per-record routing
        exactly -- including each shard's intern-table order.
        """
        parts: List[Optional[RecordBatch]] = [None] * num_shards
        lo = 0
        for t, hi in enumerate(self.txn_end):
            shard = shard_of(self.txn_session[t], num_shards)
            sub = parts[shard]
            if sub is None:
                sub = parts[shard] = RecordBatch()
            sub._append_slice(self, t, lo, hi)
            lo = hi
        return parts

    def filter_records(
        self, keep: Callable[[object], bool]
    ) -> Optional["RecordBatch"]:
        """Sub-batch of the records whose session satisfies ``keep``.

        Order-preserving; returns ``None`` when nothing matches (the
        replicated parallel-parse workers drop most batches whole).
        """
        out: Optional[RecordBatch] = None
        lo = 0
        for t, hi in enumerate(self.txn_end):
            if keep(self.txn_session[t]):
                if out is None:
                    out = RecordBatch()
                out._append_slice(self, t, lo, hi)
            lo = hi
        return out


def transaction_from_raw(raw: RawTransaction) -> Transaction:
    """Materialize a :class:`Transaction` from a raw record."""
    label, committed, ops = raw
    return Transaction(
        [
            Operation(OpKind.WRITE if is_write else OpKind.READ, key, value)
            for is_write, key, value in ops
        ],
        committed=committed,
        label=label,
    )
