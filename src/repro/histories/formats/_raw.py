"""The raw record layer shared by the streaming parsers.

Every format's ``stream_ops`` iterator yields ``(session_id, raw)`` pairs
where ``raw`` is a :data:`RawTransaction`: a ``(label, committed, ops)``
triple whose operations are plain ``(is_write, key, value)`` tuples.  The
layer exists so the compiled-history builder
(:class:`repro.core.compiled.CompiledHistoryBuilder`) can ingest a file
without constructing any :class:`~repro.core.model.Operation` or
:class:`~repro.core.model.Transaction` objects; the object-yielding
``stream`` iterators wrap it with :func:`transaction_from_raw`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.model import Operation, OpKind, Transaction

__all__ = ["RawOps", "RawTransaction", "transaction_from_raw"]

#: ``(is_write, key, value)`` per operation, in program order.
RawOps = List[Tuple[bool, object, object]]

#: ``(label, committed, ops)``.
RawTransaction = Tuple[Optional[str], bool, RawOps]


def transaction_from_raw(raw: RawTransaction) -> Transaction:
    """Materialize a :class:`Transaction` from a raw record."""
    label, committed, ops = raw
    return Transaction(
        [
            Operation(OpKind.WRITE if is_write else OpKind.READ, key, value)
            for is_write, key, value in ops
        ],
        committed=committed,
        label=label,
    )
