"""Incremental parsing support for the JSON-based history formats.

Both the native and the DBCop-style formats store a history as a JSON object
whose ``"sessions"`` field is a list of sessions, each a list of transaction
objects.  :func:`iter_session_objects` walks that structure directly off a
file handle, decoding one transaction object at a time with
:meth:`json.JSONDecoder.raw_decode` over a bounded sliding buffer, so
multi-gigabyte histories never need to be resident in memory.
"""

from __future__ import annotations

import json
from typing import Callable, Iterator, Optional, TextIO, Tuple

from repro.core.exceptions import ParseError

__all__ = ["iter_session_objects"]

_WHITESPACE = " \t\r\n"


class _Cursor:
    """A sliding window over a text stream with JSON-value decoding.

    The cursor tracks the 1-based line number of its position so parse errors
    can carry line context even though the consumed prefix is discarded.
    """

    def __init__(self, handle: TextIO, chunk_size: int = 1 << 16) -> None:
        self._handle = handle
        self._chunk_size = chunk_size
        self.buffer = ""
        self.pos = 0
        self.eof = False
        self._decoder = json.JSONDecoder()
        # Newlines are counted incrementally: `_counted_lines` covers every
        # dropped prefix plus ``buffer[:_counted_pos]``.  ``pos`` only moves
        # forward between fills, so each character is scanned at most once no
        # matter how often ``line`` is queried (it is read per transaction).
        self._counted_pos = 0
        self._counted_lines = 0

    @property
    def line(self) -> int:
        """1-based line number of the current position."""
        if self.pos > self._counted_pos:
            self._counted_lines += self.buffer.count("\n", self._counted_pos, self.pos)
            self._counted_pos = self.pos
        return self._counted_lines + 1

    def _fill(self) -> bool:
        """Read one more chunk; drop the consumed prefix to bound memory."""
        if self.eof:
            return False
        if self.pos > 0:
            if self.pos > self._counted_pos:
                self._counted_lines += self.buffer.count(
                    "\n", self._counted_pos, self.pos
                )
            self.buffer = self.buffer[self.pos :]
            self.pos = 0
            self._counted_pos = 0
        chunk = self._handle.read(self._chunk_size)
        if not chunk:
            self.eof = True
            return False
        self.buffer += chunk
        return True

    def peek(self) -> str:
        """The next non-whitespace character, or ``""`` at end of input."""
        while True:
            while self.pos < len(self.buffer) and self.buffer[self.pos] in _WHITESPACE:
                self.pos += 1
            if self.pos < len(self.buffer):
                return self.buffer[self.pos]
            if not self._fill():
                return ""

    def expect(self, wanted: str) -> None:
        found = self.peek()
        if found != wanted:
            at = found if found else "end of input"
            raise ParseError(f"line {self.line}: expected {wanted!r}, found {at!r}")
        self.pos += 1

    def decode_value(self) -> object:
        """Decode one JSON value at the cursor, reading more input as needed."""
        self.peek()  # position on the first value character
        while True:
            try:
                value, end = self._decoder.raw_decode(self.buffer, self.pos)
            except json.JSONDecodeError as exc:
                # The buffer may simply end mid-value; retry with more input
                # and only report a real syntax error (or mid-record EOF) at
                # end of input.
                if self._fill():
                    continue
                raise ParseError(f"line {self.line}: invalid JSON: {exc}") from exc
            if end == len(self.buffer) and not self.eof:
                # A scalar at the buffer boundary (`12` vs `123`) may be a
                # prefix of the real value; delimited values are complete.
                head = self.buffer[self.pos] if self.pos < len(self.buffer) else ""
                if head not in "{[\"" and self._fill():
                    continue
            self.pos = end
            return value


def iter_session_objects(
    handle: TextIO,
    on_header: Optional[Callable[[str, object], None]] = None,
) -> Iterator[Tuple[int, object, int]]:
    """Yield ``(session_index, transaction_object, line)`` triples incrementally.

    Walks ``{..., "sessions": [[obj, ...], ...], ...}``; every top-level
    field other than ``"sessions"`` is decoded whole and reported through
    ``on_header`` (e.g. to validate a format marker).  ``line`` is the
    1-based line the transaction object starts on, for error context.
    """
    cursor = _Cursor(handle)
    cursor.expect("{")
    seen_sessions = False
    if cursor.peek() == "}":
        cursor.pos += 1
    else:
        while True:
            key = cursor.decode_value()
            if not isinstance(key, str):
                raise ParseError(f"object keys must be strings, got {key!r}")
            cursor.expect(":")
            if key == "sessions":
                if seen_sessions:
                    raise ParseError("duplicate 'sessions' field")
                seen_sessions = True
                for item in _iter_sessions(cursor):
                    yield item
            else:
                value = cursor.decode_value()
                if on_header is not None:
                    on_header(key, value)
            token = cursor.peek()
            if token == ",":
                cursor.pos += 1
                continue
            cursor.expect("}")
            break
    if not seen_sessions:
        raise ParseError("expected a JSON object with a 'sessions' field")
    trailing = cursor.peek()
    if trailing != "":
        # Match the batch parser, which rejects concatenated/rewritten files
        # ("Extra data"); trailing garbage must not pass as a valid history.
        raise ParseError(f"unexpected trailing data after history object: {trailing!r}")


def _iter_sessions(cursor: _Cursor) -> Iterator[Tuple[int, object, int]]:
    cursor.expect("[")
    if cursor.peek() == "]":
        cursor.pos += 1
        return
    sid = 0
    while True:
        cursor.expect("[")
        if cursor.peek() == "]":
            cursor.pos += 1
        else:
            while True:
                cursor.peek()  # land on the object start for line reporting
                line = cursor.line
                yield sid, cursor.decode_value(), line
                token = cursor.peek()
                if token == ",":
                    cursor.pos += 1
                    continue
                cursor.expect("]")
                break
        sid += 1
        token = cursor.peek()
        if token == ",":
            cursor.pos += 1
            continue
        cursor.expect("]")
        break
