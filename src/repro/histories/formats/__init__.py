"""On-disk history formats.

The AWDIT tool of the paper parses histories in the formats used by other
isolation testers (Plume, PolySI, DBCop, Cobra).  The exact external formats
are tied to those tools' artifacts; this package provides four formats with
the same flavour and information content, all loss-lessly round-tripping the
:class:`~repro.core.model.History` model:

* ``native`` -- a JSON document (:mod:`repro.histories.formats.native`).
* ``plume`` -- a line-oriented text format with one transaction per line,
  in the style of Plume's text histories
  (:mod:`repro.histories.formats.plume_text`).
* ``dbcop`` -- a nested-JSON format in the style of DBCop's histories
  (:mod:`repro.histories.formats.dbcop`).
* ``cobra`` -- a CSV-like operation-per-line format in the style of Cobra's
  logs (:mod:`repro.histories.formats.cobra`).

:func:`load_history` / :func:`save_history` dispatch on a format name or on
the file extension.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, Optional, Tuple

from repro.core.compiled import CompiledHistory, CompiledHistoryBuilder
from repro.core.exceptions import ParseError, UsageError
from repro.core.model import History, Transaction
from repro.histories.formats import cobra, dbcop, native, plume_text
from repro.histories.formats._raw import RawTransaction, RecordBatch

__all__ = [
    "load_history",
    "load_compiled",
    "save_history",
    "stream_history",
    "stream_raw_batches",
    "stream_raw_history",
    "FORMATS",
    "detect_format",
]

FORMATS: Dict[str, object] = {
    "native": native,
    "json": native,
    "plume": plume_text,
    "dbcop": dbcop,
    "cobra": cobra,
}

_EXTENSIONS = {
    ".json": "native",
    ".plume": "plume",
    ".txt": "plume",
    ".dbcop": "dbcop",
    ".cobra": "cobra",
    ".csv": "cobra",
}


def detect_format(path: str) -> str:
    """Guess the format name from a file extension."""
    _, ext = os.path.splitext(path)
    if ext.lower() in _EXTENSIONS:
        return _EXTENSIONS[ext.lower()]
    raise UsageError(f"cannot detect history format from extension {ext!r}")


def _module_for(fmt: Optional[str], path: str):
    name = fmt or detect_format(path)
    if name not in FORMATS:
        raise UsageError(f"unknown history format {name!r}; known: {sorted(FORMATS)}")
    return FORMATS[name]


def load_history(path: str, fmt: Optional[str] = None) -> History:
    """Load a history from ``path`` in the given (or detected) format."""
    module = _module_for(fmt, path)
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return module.loads(text)  # type: ignore[attr-defined]


def save_history(history: History, path: str, fmt: Optional[str] = None) -> None:
    """Save a history to ``path`` in the given (or detected) format."""
    module = _module_for(fmt, path)
    text = module.dumps(history)  # type: ignore[attr-defined]
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


def stream_history(
    path: str, fmt: Optional[str] = None
) -> Iterator[Tuple[int, Transaction]]:
    """Iterate ``(session_id, transaction)`` pairs from ``path``, one pass.

    Unlike :func:`load_history`, the file is parsed incrementally and the
    history is never materialized; memory stays proportional to one
    transaction (plus the parser's sliding buffer).  Feed the pairs to
    :class:`repro.stream.IncrementalChecker` to check logs larger than RAM.
    Parse failures carry the file path next to the parser's line context.
    """
    module = _module_for(fmt, path)
    # newline="" keeps the csv-based cobra parser happy; harmless elsewhere.
    with open(path, "r", encoding="utf-8", newline="") as handle:
        try:
            for item in module.stream(handle):  # type: ignore[attr-defined]
                yield item
        except ParseError as exc:
            raise ParseError(f"{path}: {exc}") from exc


def stream_raw_history(
    path: str, fmt: Optional[str] = None
) -> Iterator[Tuple[int, RawTransaction]]:
    """Iterate raw ``(session_id, (label, committed, ops))`` records from ``path``.

    The allocation-light sibling of :func:`stream_history`: operations are
    plain tuples, so no model objects are created at all.  This is the
    ingestion path of :func:`load_compiled`.
    """
    module = _module_for(fmt, path)
    with open(path, "r", encoding="utf-8", newline="") as handle:
        try:
            for item in module.stream_ops(handle):  # type: ignore[attr-defined]
                yield item
        except ParseError as exc:
            raise ParseError(f"{path}: {exc}") from exc


def stream_raw_batches(
    path: str, fmt: Optional[str] = None, batch_ops: Optional[int] = None
) -> Iterator[RecordBatch]:
    """Iterate :class:`RecordBatch` columns from ``path``, one pass.

    The columnar sibling of :func:`stream_raw_history` and the ingestion
    path of every compiled consumer: each batch covers up to ``batch_ops``
    operations (``None`` = the formats' default) in flat parallel columns,
    ready for bulk interning.  Parse failures carry the file path next to
    the parser's line context.
    """
    module = _module_for(fmt, path)
    with open(path, "r", encoding="utf-8", newline="") as handle:
        try:
            for batch in module.stream_batches(  # type: ignore[attr-defined]
                handle, batch_ops=batch_ops
            ):
                yield batch
        except ParseError as exc:
            raise ParseError(f"{path}: {exc}") from exc


def load_compiled(
    path: str,
    fmt: Optional[str] = None,
    timings: Optional[Dict[str, float]] = None,
    batch_ops: Optional[int] = None,
) -> CompiledHistory:
    """Load ``path`` directly into a :class:`CompiledHistory`.

    The file is parsed with the columnar record-batch layer and compiled on
    the fly, skipping ``Operation``/``Transaction`` objects entirely: peak
    memory is the compiled arrays plus the intern tables plus one in-flight
    batch, not the object graph.  The result is identical to
    ``compile_history(load_history(path))`` up to trailing empty sessions
    (which a one-pass parse cannot observe).

    ``timings`` (for ``awdit check --profile``) receives separate ``parse``
    and ``build`` wall seconds, measured per batch around the generator pull
    and the builder fold -- no materialization needed.  ``batch_ops`` tunes
    the operations per batch (``--batch-ops``).
    """
    module = _module_for(fmt, path)
    builder = CompiledHistoryBuilder()
    if timings is None:
        for batch in stream_raw_batches(path, fmt, batch_ops=batch_ops):
            builder.add_batch(batch)
    else:
        import time

        parse_lap = 0.0
        build_lap = 0.0
        batches = stream_raw_batches(path, fmt, batch_ops=batch_ops)
        while True:
            start = time.perf_counter()
            batch = next(batches, None)
            parse_lap += time.perf_counter() - start
            if batch is None:
                break
            start = time.perf_counter()
            builder.add_batch(batch)
            build_lap += time.perf_counter() - start
        timings["parse"] = parse_lap
        start = time.perf_counter()
    compiled = builder.finalize(
        sort_sessions=True,
        fill_gaps=getattr(module, "COMPILED_SESSION_GAPS", False),
    )
    if timings is not None:
        timings["build"] = build_lap + time.perf_counter() - start
    return compiled
