"""A line-oriented text format in the style of Plume's history files.

One transaction per line::

    # comments and blank lines are ignored
    session=0 txn=t1 committed ops= W(x,1) W(y,1)
    session=1 txn=t2 committed ops= R(x,1) W(x,2)
    session=1 txn=t3 aborted   ops= W(z,9)

Transactions appear in session order within each session (lines of the same
session are taken in file order).  Values are parsed as integers when
possible and kept as strings otherwise.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.exceptions import ParseError
from repro.core.model import History, Transaction
from repro.histories.formats._raw import RawOps, RawTransaction, transaction_from_raw

__all__ = ["dumps", "loads", "stream", "stream_ops"]

#: Sparse session ids are compacted, not filled (matching ``loads``).
COMPILED_SESSION_GAPS = False

#: One transaction per line: any newline is a record boundary, so the format
#: supports byte-range splitting (:mod:`repro.shard.split`).
BYTE_RANGE_RECORDS = "line"

_OP_PATTERN = re.compile(r"([RW])\(([^,()]+),([^()]*)\)")
_LINE_PATTERN = re.compile(
    r"session=(\d+)\s+txn=(\S+)\s+(committed|aborted)\s+ops=\s*(.*)"
)
#: Fast-path check: the whole ops field is well-formed operations and
#: whitespace, so the malformed-gap bookkeeping below can be skipped.
_OPS_WELL_FORMED = re.compile(r"\s*(?:[RW]\([^,()]+,[^()]*\)\s*)*\Z")


def _render_value(value: object) -> str:
    return str(value)


def _parse_value(text: str) -> object:
    # int() tolerates surrounding whitespace itself, so the common
    # integer-valued case skips the strip.
    try:
        return int(text)
    except ValueError:
        return text.strip()


def dumps(history: History) -> str:
    """Serialize ``history`` to the line-oriented text format."""
    lines = ["# AWDIT reproduction history (plume-style text format)"]
    for sid, session in enumerate(history.sessions):
        for tid in session:
            txn = history.transactions[tid]
            ops = " ".join(
                f"{op.kind.value}({op.key},{_render_value(op.value)})"
                for op in txn.operations
            )
            status = "committed" if txn.committed else "aborted"
            label = txn.label if txn.label is not None else f"t{tid}"
            lines.append(f"session={sid} txn={label} {status} ops= {ops}")
    return "\n".join(lines) + "\n"


def _parse_line(line_number: int, line: str) -> Optional[Tuple[int, RawTransaction]]:
    """Parse one line into a raw record; ``None`` for comments and blank lines."""
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    match = _LINE_PATTERN.match(line)
    if match is None:
        raise ParseError(f"line {line_number}: cannot parse {line!r}")
    sid = int(match.group(1))
    label = match.group(2)
    committed = match.group(3) == "committed"
    ops_text = match.group(4)
    if _OPS_WELL_FORMED.match(ops_text):
        # Hot path: no gaps or truncation possible, so findall's C loop
        # replaces the per-match slicing below.
        return sid, (
            label,
            committed,
            [
                (kind == "W", key.strip(), _parse_value(value))
                for kind, key, value in _OP_PATTERN.findall(ops_text)
            ],
        )
    ops: RawOps = []
    # Anything between or after the matched operations is a malformed or
    # truncated operation (e.g. a mid-record EOF cutting `W(y,` off);
    # dropping it silently would pass a damaged capture as consistent.
    pos = 0
    for op_match in _OP_PATTERN.finditer(ops_text):
        gap = ops_text[pos : op_match.start()].strip()
        if gap:
            raise ParseError(
                f"line {line_number}: malformed or truncated operation {gap!r}"
            )
        kind, key, value = op_match.groups()
        ops.append((kind == "W", key.strip(), _parse_value(value)))
        pos = op_match.end()
    if ops_text.strip() and not ops:
        raise ParseError(f"line {line_number}: no operations parsed from {ops_text!r}")
    leftover = ops_text[pos:].strip()
    if leftover:
        raise ParseError(
            f"line {line_number}: malformed or truncated operation {leftover!r}"
        )
    return sid, (label, committed, ops)


def stream_ops(
    handle: Iterable[str],
    allow_empty: bool = False,
    labels_out: Optional[Dict[int, set]] = None,
) -> Iterator[Tuple[int, RawTransaction]]:
    """Iterate raw ``(session_id, (label, committed, ops))`` records.

    One line is one transaction, so the parse is naturally one-pass; lines of
    one session must appear in session order (they always do in files written
    by :func:`dumps`).  Like :func:`loads`, a file with no transactions at
    all is rejected (a truncated capture must not pass as consistent), and a
    ``txn=`` id repeated within one session is rejected as a duplicate
    transaction id (memory cost: one label reference per transaction).

    ``allow_empty`` and ``labels_out`` exist for the byte-range splitter
    (:mod:`repro.shard.split`): a mid-file region may legitimately hold no
    records, and ``labels_out`` exposes the per-session label sets so the
    duplicate check can run *across* regions at merge time.
    """
    empty = True
    seen_labels: Dict[int, set] = labels_out if labels_out is not None else {}
    for line_number, raw_line in enumerate(handle, start=1):
        parsed = _parse_line(line_number, raw_line)
        if parsed is None:
            continue
        sid, raw = parsed
        label = raw[0]
        session_labels = seen_labels.setdefault(sid, set())
        if label in session_labels:
            raise ParseError(
                f"line {line_number}: duplicate transaction id {label!r} "
                f"in session {sid}"
            )
        session_labels.add(label)
        empty = False
        yield sid, raw
    if empty and not allow_empty:
        raise ParseError("history file contains no transactions")


def stream(handle: Iterable[str]) -> Iterator[Tuple[int, Transaction]]:
    """Iterate ``(session_id, transaction)`` pairs off an open plume-style file.

    The object-yielding wrapper over :func:`stream_ops`.
    """
    for sid, raw in stream_ops(handle):
        yield sid, transaction_from_raw(raw)


def loads(text: str) -> History:
    """Parse a history from the line-oriented text format."""
    sessions: Dict[int, List[Transaction]] = {}
    # stream() rejects input with no transactions, so `sessions` is non-empty.
    for sid, transaction in stream(text.splitlines()):
        sessions.setdefault(sid, []).append(transaction)
    ordered = [sessions[sid] for sid in sorted(sessions)]
    return History.from_sessions(ordered)
