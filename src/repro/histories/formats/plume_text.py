"""A line-oriented text format in the style of Plume's history files.

One transaction per line::

    # comments and blank lines are ignored
    session=0 txn=t1 committed ops= W(x,1) W(y,1)
    session=1 txn=t2 committed ops= R(x,1) W(x,2)
    session=1 txn=t3 aborted   ops= W(z,9)

Transactions appear in session order within each session (lines of the same
session are taken in file order).  Values are parsed as integers when
possible and kept as strings otherwise.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.exceptions import ParseError
from repro.core.model import History, Transaction
from repro.histories.formats._raw import (
    DEFAULT_BATCH_OPS,
    RawTransaction,
    RecordBatch,
    transaction_from_raw,
)

__all__ = ["dumps", "loads", "stream", "stream_batches", "stream_ops"]

#: Sparse session ids are compacted, not filled (matching ``loads``).
COMPILED_SESSION_GAPS = False

#: One transaction per line: any newline is a record boundary, so the format
#: supports byte-range splitting (:mod:`repro.shard.split`).
BYTE_RANGE_RECORDS = "line"

_OP_PATTERN = re.compile(r"([RW])\(([^,()]+),([^()]*)\)")
_LINE_PATTERN = re.compile(
    r"session=(\d+)\s+txn=(\S+)\s+(committed|aborted)\s+ops=\s*(.*)"
)
#: Fast-path check: the whole ops field is well-formed operations and
#: whitespace, so the malformed-gap bookkeeping below can be skipped.
_OPS_WELL_FORMED = re.compile(r"\s*(?:[RW]\([^,()]+,[^()]*\)\s*)*\Z")


def _render_value(value: object) -> str:
    return str(value)


def _parse_value(text: str) -> object:
    # int() tolerates surrounding whitespace itself, so the common
    # integer-valued case skips the strip.
    try:
        return int(text)
    except ValueError:
        return text.strip()


def dumps(history: History, order: Optional[Iterable[int]] = None) -> str:
    """Serialize ``history`` to the line-oriented text format.

    Every line carries its ``session=`` tag, so interleaved files are
    expressible: ``order`` optionally lists the dense transaction ids in the
    file order to emit (e.g. an arrival order from the generator).
    Transactions of one session must stay in session order within ``order``
    (arrival orders always do).  The default is session-blocked order.
    """
    lines = ["# AWDIT reproduction history (plume-style text format)"]
    if order is None:
        order = (tid for session in history.sessions for tid in session)
    sid_of = [0] * len(history.transactions)
    for sid, session in enumerate(history.sessions):
        for tid in session:
            sid_of[tid] = sid
    for tid in order:
        txn = history.transactions[tid]
        ops = " ".join(
            f"{op.kind.value}({op.key},{_render_value(op.value)})"
            for op in txn.operations
        )
        status = "committed" if txn.committed else "aborted"
        label = txn.label if txn.label is not None else f"t{tid}"
        lines.append(f"session={sid_of[tid]} txn={label} {status} ops= {ops}")
    return "\n".join(lines) + "\n"


def _parse_line_into(batch: RecordBatch, line_number: int, raw_line: str) -> bool:
    """Parse one line straight into ``batch``'s columns.

    Returns ``False`` for comments and blank lines.  On a parse error the
    batch may hold a partially-appended record; the caller discards the
    whole batch on error, so no rollback is needed.
    """
    line = raw_line.strip()
    if not line or line.startswith("#"):
        return False
    match = _LINE_PATTERN.match(line)
    if match is None:
        raise ParseError(f"line {line_number}: cannot parse {line!r}")
    sid = int(match.group(1))
    ops_text = match.group(4)
    kinds = batch.kinds
    keys = batch.keys
    values = batch.values
    if _OPS_WELL_FORMED.match(ops_text):
        # Hot path: no gaps or truncation possible, so findall's C loop
        # replaces the per-match slicing below, and the operations land in
        # the batch columns with no per-op tuples at all.
        for kind, key, value in _OP_PATTERN.findall(ops_text):
            kinds.append(1 if kind == "W" else 0)
            keys.append(key.strip())
            values.append(_parse_value(value))
    else:
        # Anything between or after the matched operations is a malformed or
        # truncated operation (e.g. a mid-record EOF cutting `W(y,` off);
        # dropping it silently would pass a damaged capture as consistent.
        pos = 0
        appended = 0
        for op_match in _OP_PATTERN.finditer(ops_text):
            gap = ops_text[pos : op_match.start()].strip()
            if gap:
                raise ParseError(
                    f"line {line_number}: malformed or truncated operation {gap!r}"
                )
            kind, key, value = op_match.groups()
            kinds.append(1 if kind == "W" else 0)
            keys.append(key.strip())
            values.append(_parse_value(value))
            appended += 1
            pos = op_match.end()
        if ops_text.strip() and not appended:
            raise ParseError(
                f"line {line_number}: no operations parsed from {ops_text!r}"
            )
        leftover = ops_text[pos:].strip()
        if leftover:
            raise ParseError(
                f"line {line_number}: malformed or truncated operation {leftover!r}"
            )
    batch.txn_session.append(sid)
    batch.txn_labels.append(match.group(2))
    batch.txn_committed.append(1 if match.group(3) == "committed" else 0)
    batch.txn_line.append(line_number)
    batch.txn_end.append(len(kinds))
    return True


def stream_batches(
    handle: Iterable[str],
    batch_ops: Optional[int] = None,
    allow_empty: bool = False,
    labels_out: Optional[Dict[int, set]] = None,
) -> Iterator[RecordBatch]:
    """Iterate :class:`RecordBatch` columns of up to ``batch_ops`` operations.

    One line is one transaction, so the parse is naturally one-pass; lines of
    one session must appear in session order (they always do in files written
    by :func:`dumps`).  Like :func:`loads`, a file with no transactions at
    all is rejected (a truncated capture must not pass as consistent), and a
    ``txn=`` id repeated within one session is rejected as a duplicate
    transaction id (memory cost: one label reference per transaction).
    Errors surface immediately with the offending line's context; the
    partially-filled batch holding earlier, well-formed records is
    discarded, never yielded.

    ``allow_empty`` and ``labels_out`` exist for the byte-range splitter
    (:mod:`repro.shard.split`): a mid-file region may legitimately hold no
    records, and ``labels_out`` exposes the per-session label sets so the
    duplicate check can run *across* regions at merge time.
    """
    if batch_ops is None:
        batch_ops = DEFAULT_BATCH_OPS
    if batch_ops < 1:
        raise ValueError(f"batch_ops must be >= 1, got {batch_ops}")
    empty = True
    seen_labels: Dict[int, set] = labels_out if labels_out is not None else {}
    batch = RecordBatch()
    for line_number, raw_line in enumerate(handle, start=1):
        if not _parse_line_into(batch, line_number, raw_line):
            continue
        sid = batch.txn_session[-1]
        label = batch.txn_labels[-1]
        session_labels = seen_labels.setdefault(sid, set())
        if label in session_labels:
            raise ParseError(
                f"line {line_number}: duplicate transaction id {label!r} "
                f"in session {sid}"
            )
        session_labels.add(label)
        empty = False
        if batch.full(batch_ops):
            yield batch
            batch = RecordBatch()
    if len(batch.txn_end):
        yield batch
    if empty and not allow_empty:
        raise ParseError("history file contains no transactions")


def stream_ops(
    handle: Iterable[str],
    allow_empty: bool = False,
    labels_out: Optional[Dict[int, set]] = None,
) -> Iterator[Tuple[int, RawTransaction]]:
    """Iterate raw ``(session_id, (label, committed, ops))`` records.

    The per-record unbatching shim over :func:`stream_batches`;
    ``batch_ops=1`` keeps the legacy error timing exactly (every record is
    yielded before the line after it can raise).
    """
    for batch in stream_batches(
        handle, batch_ops=1, allow_empty=allow_empty, labels_out=labels_out
    ):
        for record in batch.iter_records():
            yield record


def stream(handle: Iterable[str]) -> Iterator[Tuple[int, Transaction]]:
    """Iterate ``(session_id, transaction)`` pairs off an open plume-style file.

    The object-yielding wrapper over :func:`stream_ops`.
    """
    for sid, raw in stream_ops(handle):
        yield sid, transaction_from_raw(raw)


def loads(text: str) -> History:
    """Parse a history from the line-oriented text format."""
    sessions: Dict[int, List[Transaction]] = {}
    # stream() rejects input with no transactions, so `sessions` is non-empty.
    for sid, transaction in stream(text.splitlines()):
        sessions.setdefault(sid, []).append(transaction)
    ordered = [sessions[sid] for sid in sorted(sessions)]
    return History.from_sessions(ordered)
