"""The native JSON history format.

A history is a JSON object::

    {
      "format": "awdit-native",
      "version": 1,
      "sessions": [
        [
          {"label": "t1", "committed": true,
           "ops": [["W", "x", 1], ["R", "y", 2]]},
          ...
        ],
        ...
      ]
    }

The write-read relation is not stored: it is re-inferred from the
unique-writes convention on load, exactly as the black-box testing setting of
the paper assumes.  Values may be any JSON scalar.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional, TextIO, Tuple

from repro.core.exceptions import ParseError
from repro.core.model import History, Transaction
from repro.histories.formats._jsonstream import iter_session_objects
from repro.histories.formats._raw import (
    DEFAULT_BATCH_OPS,
    RawOps,
    RawTransaction,
    RecordBatch,
    transaction_from_raw,
)

__all__ = ["dumps", "loads", "stream", "stream_batches", "stream_ops"]

FORMAT_NAME = "awdit-native"
FORMAT_VERSION = 1

#: Missing integer session ids denote empty sessions (positional format).
COMPILED_SESSION_GAPS = True


def _raw_from_doc(txn_doc: object) -> RawTransaction:
    """Convert one transaction document to a raw record (no model objects)."""
    if not isinstance(txn_doc, dict) or "ops" not in txn_doc:
        raise ParseError("each transaction must be an object with an 'ops' field")
    ops: RawOps = []
    for op_doc in txn_doc["ops"]:
        if not (isinstance(op_doc, list) and len(op_doc) == 3):
            raise ParseError(f"malformed operation {op_doc!r}")
        kind, key, value = op_doc
        if kind not in ("R", "W"):
            raise ParseError(f"operation kind must be 'R' or 'W', got {kind!r}")
        ops.append((kind == "W", key, value))
    return txn_doc.get("label"), bool(txn_doc.get("committed", True)), ops


def _transaction_from_doc(txn_doc: object) -> Transaction:
    """Convert one transaction document to a :class:`Transaction`."""
    return transaction_from_raw(_raw_from_doc(txn_doc))


def stream_batches(
    handle: TextIO, batch_ops: Optional[int] = None
) -> Iterator[RecordBatch]:
    """Iterate :class:`RecordBatch` columns of up to ``batch_ops`` operations.

    The columnar layer under :func:`stream_ops`: transaction documents are
    decoded one at a time from the sliding JSON buffer and accumulated into
    flat batch columns, so the compiled consumers can bulk-intern them.  A
    malformed document raises immediately with its line context; the
    partially-filled batch is discarded, never yielded.
    """
    if batch_ops is None:
        batch_ops = DEFAULT_BATCH_OPS
    if batch_ops < 1:
        raise ValueError(f"batch_ops must be >= 1, got {batch_ops}")

    def check_header(key: str, value: object) -> None:
        if key == "format" and value not in (None, FORMAT_NAME):
            raise ParseError(f"unexpected format marker {value!r}")

    batch = RecordBatch()
    for sid, txn_doc, line in iter_session_objects(handle, on_header=check_header):
        try:
            label, committed, ops = _raw_from_doc(txn_doc)
        except ParseError as exc:
            raise ParseError(f"line {line}: {exc}") from exc
        batch.add_record(sid, label, committed, ops, line=line)
        if batch.full(batch_ops):
            yield batch
            batch = RecordBatch()
    if len(batch.txn_end):
        yield batch


def stream_ops(handle: TextIO) -> Iterator[Tuple[int, RawTransaction]]:
    """Iterate raw ``(session_index, (label, committed, ops))`` records.

    The allocation-light layer under :func:`stream`: operations are plain
    ``(is_write, key, value)`` tuples, so per-record consumers can read a
    file without creating any ``Operation`` objects.  A thin unbatching
    shim over :func:`stream_batches` (``batch_ops=1`` keeps the legacy
    record-at-a-time error timing).
    """
    for batch in stream_batches(handle, batch_ops=1):
        for record in batch.iter_records():
            yield record


def stream(handle: TextIO) -> Iterator[Tuple[int, Transaction]]:
    """Iterate ``(session_index, transaction)`` pairs off an open native-JSON file.

    Transactions are decoded one at a time from a sliding buffer, so the
    history is never materialized; feed the pairs to
    :class:`repro.stream.IncrementalChecker` for a one-pass check.
    """
    for sid, raw in stream_ops(handle):
        yield sid, transaction_from_raw(raw)


def dumps(history: History) -> str:
    """Serialize ``history`` to a JSON string."""
    sessions: List[List[Dict[str, Any]]] = []
    for session in history.sessions:
        rendered: List[Dict[str, Any]] = []
        for tid in session:
            txn = history.transactions[tid]
            rendered.append(
                {
                    "label": txn.label,
                    "committed": txn.committed,
                    "ops": [[op.kind.value, op.key, op.value] for op in txn.operations],
                }
            )
        sessions.append(rendered)
    document = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "sessions": sessions,
    }
    return json.dumps(document, indent=2)


def loads(text: str) -> History:
    """Parse a history from a JSON string produced by :func:`dumps`."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParseError(f"invalid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise ParseError("expected a JSON object with a 'sessions' field")
    if document.get("format") not in (None, FORMAT_NAME):
        raise ParseError(f"unexpected format marker {document.get('format')!r}")
    sessions_doc = document.get("sessions")
    if not isinstance(sessions_doc, list):
        raise ParseError("'sessions' must be a list of sessions")
    sessions: List[List[Transaction]] = []
    for session_doc in sessions_doc:
        if not isinstance(session_doc, list):
            raise ParseError("each session must be a list of transactions")
        session: List[Transaction] = []
        for txn_doc in session_doc:
            session.append(_transaction_from_doc(txn_doc))
        sessions.append(session)
    return History.from_sessions(sessions)
