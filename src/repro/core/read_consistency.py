"""Read Consistency checking (Definition 2.3, Algorithm 4).

Every isolation level of the paper requires *Read Consistency*: each read on
a key ``x`` observes either an earlier write on ``x`` in its own transaction
or, if no such write exists, the final write on ``x`` of a committed
transaction.  This decomposes into five axioms (Fig. 2):

(a) no thin-air reads,
(b) no aborted reads,
(c) no future reads,
(d) observe own writes,
(e) observe latest write.

The check runs in ``O(n)`` time and reports *every* offending read (Section
3.4), which allows the isolation-level checkers to keep going by discarding
the anomalous reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.core.model import History, OpRef
from repro.core.violations import ReadConsistencyViolation, Violation, ViolationKind

__all__ = ["ReadConsistencyReport", "check_read_consistency"]


@dataclass
class ReadConsistencyReport:
    """Result of the Read Consistency check.

    ``violations`` lists one entry per offending read; ``bad_reads`` collects
    the :class:`OpRef` of every read that failed some axiom, so that the
    isolation-level checkers can skip them and continue producing witnesses
    (the strategy described in Section 3.4).
    """

    violations: List[Violation] = field(default_factory=list)
    bad_reads: Set[OpRef] = field(default_factory=set)

    @property
    def ok(self) -> bool:
        """True when the history satisfies all five Read Consistency axioms."""
        return not self.violations

    def _add(self, violation: ReadConsistencyViolation) -> None:
        self.violations.append(violation)
        if violation.read is not None:
            self.bad_reads.add(violation.read)


def check_read_consistency(history: History) -> ReadConsistencyReport:
    """Check the five Read Consistency axioms of Definition 2.3.

    Mirrors Algorithm 4 of the paper: a first pass over all committed reads
    checks for thin-air, aborted, and future reads; a per-transaction pass
    checks observe-own-writes and the same-transaction half of
    observe-latest-write; a final pass checks the different-transaction half
    of observe-latest-write (a read from another transaction must observe
    that transaction's final write to the key).
    """
    report = ReadConsistencyReport()
    transactions = history.transactions

    # Final write to each key of each committed transaction ("lastWrites" in
    # Algorithm 4): a read from another transaction must observe one of these.
    final_writes: Set[OpRef] = set()
    for tid, txn in enumerate(transactions):
        if not txn.committed:
            continue
        latest: Dict[str, int] = {}
        for index, op in enumerate(txn.operations):
            if op.is_write:
                latest[op.key] = index
        for key, index in latest.items():
            final_writes.add(OpRef(tid, index))

    for tid, txn in enumerate(transactions):
        if not txn.committed:
            continue
        # Latest own write to each key seen so far in program order.
        latest_own_write: Dict[str, int] = {}
        for index, op in enumerate(txn.operations):
            if op.is_write:
                latest_own_write[op.key] = index
                continue
            read_ref = OpRef(tid, index)
            write_ref = history.writer_of(read_ref)

            # (a) thin-air reads: the observed value was never written.
            if write_ref is None:
                report._add(
                    ReadConsistencyViolation(
                        kind=ViolationKind.THIN_AIR_READ,
                        message=(
                            f"{txn.name} reads {op!r} but no transaction writes "
                            f"{op.value!r} to {op.key!r}"
                        ),
                        read=read_ref,
                    )
                )
                continue

            writer_txn = transactions[write_ref.txn]

            # (b) aborted reads.
            if not writer_txn.committed:
                report._add(
                    ReadConsistencyViolation(
                        kind=ViolationKind.ABORTED_READ,
                        message=(
                            f"{txn.name} reads {op!r} written by aborted "
                            f"transaction {writer_txn.name}"
                        ),
                        read=read_ref,
                        write=write_ref,
                    )
                )
                continue

            # (c) future reads: the observed write is po-after the read in the
            # same transaction.
            if write_ref.txn == tid and write_ref.index > index:
                report._add(
                    ReadConsistencyViolation(
                        kind=ViolationKind.FUTURE_READ,
                        message=(
                            f"{txn.name} reads {op!r} before writing it "
                            f"(write at position {write_ref.index}, read at {index})"
                        ),
                        read=read_ref,
                        write=write_ref,
                    )
                )
                continue

            if write_ref.txn != tid:
                # (d) observe own writes: a read may not observe an external
                # write when an own write to the key precedes it.
                if op.key in latest_own_write:
                    report._add(
                        ReadConsistencyViolation(
                            kind=ViolationKind.NOT_OWN_WRITE,
                            message=(
                                f"{txn.name} reads {op!r} from {writer_txn.name} "
                                f"although it wrote {op.key!r} earlier itself"
                            ),
                            read=read_ref,
                            write=write_ref,
                        )
                    )
                    continue
                # (e) observe latest write, different-transaction case: the
                # observed write must be the writer's final write to the key.
                if write_ref not in final_writes:
                    report._add(
                        ReadConsistencyViolation(
                            kind=ViolationKind.NOT_LATEST_WRITE,
                            message=(
                                f"{txn.name} reads {op!r} from a non-final write "
                                f"of {writer_txn.name} to {op.key!r}"
                            ),
                            read=read_ref,
                            write=write_ref,
                        )
                    )
                continue

            # Same-transaction case of (e): the read must observe the latest
            # own write to the key that precedes it in program order.
            own_index = latest_own_write.get(op.key)
            if own_index is None:
                # A same-transaction writer that is not po-earlier would have
                # been reported as a future read above; nothing to do here.
                continue
            if own_index != write_ref.index:
                report._add(
                    ReadConsistencyViolation(
                        kind=ViolationKind.NOT_LATEST_WRITE,
                        message=(
                            f"{txn.name} reads {op!r} from a stale own write to "
                            f"{op.key!r} (a later own write precedes the read)"
                        ),
                        read=read_ref,
                        write=write_ref,
                    )
                )
    return report
