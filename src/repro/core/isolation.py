"""Isolation levels and the strength lattice between them.

The paper studies the three common weak isolation levels:

* Read Committed (``RC``), Definition 2.4,
* Read Atomic (``RA``), Definition 2.6,
* Causal Consistency (``CC``), Definition 2.8,

with the strength ordering ``CC ⊑ RA ⊑ RC`` (a history satisfying a stronger
level satisfies every weaker one).  The lattice is used in tests (monotonicity
properties) and by the CLI to select checkers.
"""

from __future__ import annotations

import enum
from typing import Dict, List

__all__ = ["IsolationLevel", "is_stronger_or_equal", "weaker_levels", "stronger_levels"]


class IsolationLevel(enum.Enum):
    """The weak isolation levels supported by the tester."""

    READ_COMMITTED = "RC"
    READ_ATOMIC = "RA"
    CAUSAL_CONSISTENCY = "CC"

    @classmethod
    def from_string(cls, name: str) -> "IsolationLevel":
        """Parse a level from a short or long name (case-insensitive)."""
        normalized = name.strip().upper().replace("-", "_").replace(" ", "_")
        aliases: Dict[str, IsolationLevel] = {
            "RC": cls.READ_COMMITTED,
            "READ_COMMITTED": cls.READ_COMMITTED,
            "READCOMMITTED": cls.READ_COMMITTED,
            "RA": cls.READ_ATOMIC,
            "READ_ATOMIC": cls.READ_ATOMIC,
            "READATOMIC": cls.READ_ATOMIC,
            "CC": cls.CAUSAL_CONSISTENCY,
            "CAUSAL": cls.CAUSAL_CONSISTENCY,
            "CAUSAL_CONSISTENCY": cls.CAUSAL_CONSISTENCY,
            "CAUSALCONSISTENCY": cls.CAUSAL_CONSISTENCY,
            "TCC": cls.CAUSAL_CONSISTENCY,
        }
        if normalized not in aliases:
            raise ValueError(f"unknown isolation level: {name!r}")
        return aliases[normalized]

    @property
    def short_name(self) -> str:
        """The two-letter name used in the paper (RC, RA, CC)."""
        return self.value

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


# Strength rank: larger rank = stronger level.  CC ⊑ RA ⊑ RC.
_STRENGTH: Dict[IsolationLevel, int] = {
    IsolationLevel.READ_COMMITTED: 0,
    IsolationLevel.READ_ATOMIC: 1,
    IsolationLevel.CAUSAL_CONSISTENCY: 2,
}


def is_stronger_or_equal(left: IsolationLevel, right: IsolationLevel) -> bool:
    """True when ``left ⊑ right`` (every ``left``-consistent history is ``right``-consistent)."""
    return _STRENGTH[left] >= _STRENGTH[right]


def weaker_levels(level: IsolationLevel) -> List[IsolationLevel]:
    """All levels weaker than or equal to ``level`` (including itself)."""
    return [lvl for lvl in IsolationLevel if _STRENGTH[lvl] <= _STRENGTH[level]]


def stronger_levels(level: IsolationLevel) -> List[IsolationLevel]:
    """All levels stronger than or equal to ``level`` (including itself)."""
    return [lvl for lvl in IsolationLevel if _STRENGTH[lvl] >= _STRENGTH[level]]
