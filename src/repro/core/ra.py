"""Read Atomic checking (Definition 2.6, Algorithm 2, Theorem 1.6).

The RA axiom (Fig. 3b): if transaction ``t3`` reads ``x`` from ``t1``, a
*different* transaction ``t2`` writes ``x``, and ``t2 -so∪wr-> t3``, then
every valid commit order must place ``t2`` before ``t1``.  Atomicity follows:
observing part of a transaction forces observing all of it.

Algorithm 2 first checks *repeatable reads* (a committed transaction may not
read the same key from two different transactions -- implied by the RA axiom)
and then saturates a minimal commit relation, handling the ``so`` and ``wr``
cases of the premise separately.  The ``wr`` case intersects
``KeysWt(t2) ∩ KeysRd(t3)`` iterating over the smaller set, which yields the
``O(n^{3/2})`` bound of Lemma 3.6.

For single-session histories RA is checkable in linear time (Theorem 1.6);
:func:`check_ra_single_session` implements that specialization.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.commit import CommitRelation
from repro.core.isolation import IsolationLevel
from repro.core.model import History, OpRef, Operation
from repro.core.read_consistency import ReadConsistencyReport, check_read_consistency
from repro.core.result import CheckResult, Stopwatch
from repro.core.violations import RepeatableReadViolation, Violation, ViolationKind

__all__ = [
    "check_ra",
    "check_ra_single_session",
    "check_repeatable_reads",
    "saturate_ra",
]


def check_repeatable_reads(
    history: History, bad_reads: Set[OpRef]
) -> List[Violation]:
    """Check the repeatable-reads property (``CheckRepeatableReads`` in Algorithm 2).

    A committed transaction must not read the same key from two different
    transactions; a violation is a two-transaction RA anomaly on its own.
    """
    violations: List[Violation] = []
    transactions = history.transactions
    for tid, txn in enumerate(transactions):
        if not txn.committed:
            continue
        last_writer: Dict[str, int] = {}
        for index, op in enumerate(txn.operations):
            if not op.is_read:
                continue
            ref = OpRef(tid, index)
            if ref in bad_reads:
                continue
            writer_ref = history.writer_of(ref)
            if writer_ref is None:
                continue
            writer = writer_ref.txn
            previous = last_writer.get(op.key)
            if writer != tid and previous is not None and previous != writer:
                violations.append(
                    RepeatableReadViolation(
                        kind=ViolationKind.NON_REPEATABLE_READ,
                        message=(
                            f"{txn.name} reads {op.key!r} from both "
                            f"{transactions[previous].name} and "
                            f"{transactions[writer].name}"
                        ),
                        txn=tid,
                        key=op.key,
                        writers=(previous, writer),
                    )
                )
            else:
                last_writer[op.key] = writer
    return violations


def _external_reads(
    history: History, tid: int, bad_reads: Set[OpRef]
) -> List[Tuple[int, Operation, int]]:
    """Good reads of ``tid`` observing a different committed transaction."""
    result: List[Tuple[int, Operation, int]] = []
    transactions = history.transactions
    for writer, index, op in history.txn_read_froms(tid):
        if OpRef(tid, index) in bad_reads:
            continue
        if not transactions[writer].committed:
            continue
        result.append((index, op, writer))
    return result


def saturate_ra(
    history: History, relation: CommitRelation, bad_reads: Set[OpRef]
) -> None:
    """Add to ``relation`` the commit edges forced by the RA axiom.

    The ``so`` case uses a per-session ``lastWrite`` map (only the so-latest
    writer of a key needs an explicit edge; earlier ones follow through
    ``so``).  The ``wr`` case intersects the writer's written keys with the
    reader's read keys, iterating over the smaller set.
    """
    transactions = history.transactions
    for sid in range(history.num_sessions):
        last_write: Dict[str, int] = {}
        for t3 in history.committed_in_session(sid):
            reads = _external_reads(history, t3, bad_reads)

            # First external writer of each key read by t3.  Under repeatable
            # reads it is unique; if not, the first one still yields a valid
            # witness edge and the violation itself was reported separately.
            reader_of_key: Dict[str, int] = {}
            distinct_writers: List[int] = []
            seen_writers: Set[int] = set()
            for _index, op, writer in reads:
                reader_of_key.setdefault(op.key, writer)
                if writer not in seen_writers:
                    seen_writers.add(writer)
                    distinct_writers.append(writer)

            # Case t2 -so-> t3: the latest earlier writer of x in this session
            # must commit before the transaction t3 reads x from.
            for _index, op, t1 in reads:
                t2 = last_write.get(op.key)
                if t2 is not None and t2 != t1:
                    relation.add_inferred(t2, t1, key=op.key)

            # Case t2 -wr-> t3: every transaction t3 reads from that also
            # writes a key t3 reads elsewhere must commit before that key's
            # writer.  The smaller side of the intersection is iterated in a
            # deterministic order (first-write / po-first) so edge insertion
            # does not depend on string hashing.
            keys_read = reader_of_key.keys()
            for t2 in distinct_writers:
                keys_written = transactions[t2].keys_written
                if len(keys_written) <= len(keys_read):
                    candidates = (
                        x
                        for x in transactions[t2].keys_written_ordered
                        if x in reader_of_key
                    )
                else:
                    candidates = (x for x in keys_read if x in keys_written)
                for x in candidates:
                    t1 = reader_of_key[x]
                    if t1 != t2:
                        relation.add_inferred(t2, t1, key=x)

            for key in transactions[t3].keys_written:
                last_write[key] = t3


def check_ra(
    history: History,
    max_witnesses: Optional[int] = None,
    read_consistency: Optional[ReadConsistencyReport] = None,
) -> CheckResult:
    """Check whether ``history`` satisfies Read Atomic (Lemma 3.5)."""
    watch = Stopwatch()
    report = read_consistency or check_read_consistency(history)
    watch.lap("read_consistency")

    violations: List[Violation] = list(report.violations)
    violations.extend(check_repeatable_reads(history, report.bad_reads))
    watch.lap("repeatable_reads")

    relation = CommitRelation(history)
    saturate_ra(history, relation, report.bad_reads)
    watch.lap("saturation")

    violations.extend(relation.find_cycles(max_witnesses=max_witnesses))
    watch.lap("cycle_check")

    return CheckResult(
        level=IsolationLevel.READ_ATOMIC,
        violations=violations,
        checker="awdit",
        elapsed_seconds=watch.total,
        num_operations=history.num_operations,
        num_transactions=history.num_transactions,
        num_sessions=history.num_sessions,
        stats={
            "inferred_edges": relation.num_inferred_edges,
            "co_edges": relation.num_edges,
            **watch.laps,
        },
    )


def check_ra_single_session(
    history: History,
    max_witnesses: Optional[int] = None,
    read_consistency: Optional[ReadConsistencyReport] = None,
) -> CheckResult:
    """Linear-time RA check for single-session histories (Theorem 1.6).

    With one session, the commit order must equal the session order, so it
    suffices to scan the session once: a read of ``x`` from ``t1`` is a
    violation whenever a *different* transaction wrote ``x`` between ``t1``
    and the reader.
    """
    if history.num_sessions > 1:
        raise ValueError(
            "check_ra_single_session requires a single-session history; "
            f"got {history.num_sessions} sessions"
        )
    watch = Stopwatch()
    report = read_consistency or check_read_consistency(history)
    watch.lap("read_consistency")

    violations: List[Violation] = list(report.violations)
    violations.extend(check_repeatable_reads(history, report.bad_reads))

    relation = CommitRelation(history)
    transactions = history.transactions
    last_write: Dict[str, int] = {}
    if history.num_sessions == 1:
        for t3 in history.committed_in_session(0):
            for _index, op, t1 in _external_reads(history, t3, report.bad_reads):
                t2 = last_write.get(op.key)
                if t2 is not None and t2 != t1:
                    relation.add_inferred(t2, t1, key=op.key)
            for key in transactions[t3].keys_written:
                last_write[key] = t3
    watch.lap("scan")

    violations.extend(relation.find_cycles(max_witnesses=max_witnesses))
    watch.lap("cycle_check")

    return CheckResult(
        level=IsolationLevel.READ_ATOMIC,
        violations=violations,
        checker="awdit-1session",
        elapsed_seconds=watch.total,
        num_operations=history.num_operations,
        num_transactions=history.num_transactions,
        num_sessions=history.num_sessions,
        stats={"inferred_edges": relation.num_inferred_edges, **watch.laps},
    )
