"""Saturation kernels: one vectorized core for batch, streaming, and shards.

The profile after the CSR relation core (``BENCH_5.json``/``BENCH_6.json``)
put the remaining batch cost almost entirely in the saturation loops of
:mod:`repro.core.compiled.checkers` -- interpreted Python over the IR's flat
rows, ~470k per-(session, key) slot visits on the fig9 log -- and the online
fold's clock-join runs the very same loop shape.  This module is the single
home of those loops now: every consumer (batch checkers, shard workers via
``sessions=``/``tid_range=`` restrictions, and the online fold's deferred
probe flush) dispatches here.

Each kernel exists twice, selected exactly like :func:`repro.graph.csr.freeze_packed`:

* a **vectorized** implementation over numpy views of the IR's parallel
  arrays, used when numpy imports, the ``AWDIT_NO_NUMPY`` env flag is unset,
  and the input is large enough to amortize array setup
  (``_MIN_VECTOR_READS``); and
* a **pure-Python fallback** -- the original interpreted loops, moved here
  verbatim -- used everywhere else.

Both produce byte-identical packed-edge logs in the identical order, so
verdicts, violation lists, and witness renderings never depend on which ran
(property-tested in ``tests/test_kernels.py``).  The key argument for the CC
kernel: along one session the happens-before clocks are monotone
(``hb[t3'][s] >= hb[t3][s]`` for ``t3'`` after ``t3``), so the fallback's
memoized monotone pointer per (key, session) bucket always lands on *the
latest writer with session index <= clock bound* -- a stateless query the
vectorized path answers for every probe at once with one ``searchsorted``
against a flat sorted writer index.

Two 32-bit boundaries shape the vectorized encodings (mirroring the packed
edges of :mod:`repro.graph.csr`):

* packed edges ``(t2 << EDGE_SHIFT) | t1`` are built in ``uint64`` -- a
  signed intermediate would flip sign for ``t2 >= 2^31``; and
* the writer index is probed through a composite ``bucket * 2^32 + sidx``
  key.  The span must be ``2^32`` (not ``2^31``): a probe carrying the
  "empty clock" bound ``-1`` sits at ``bucket * span - 1``, and only a span
  strictly above every possible session index keeps that probe below the
  previous bucket's largest entry.
"""

from __future__ import annotations

import os
from array import array
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.commit import CommitRelation
from repro.core.compiled.ir import CompiledHistory
from repro.graph.digraph import EDGE_SHIFT

try:  # pragma: no cover - exercised implicitly by every test run
    import numpy as _np
except ImportError:  # pragma: no cover - CI runners without numpy
    _np = None
if os.environ.get("AWDIT_NO_NUMPY"):
    # Forces the pure-Python fallbacks even where numpy is installed, so the
    # fallback kernels are testable on any machine (the CI leg sets this).
    _np = None

__all__ = [
    "HAVE_NUMPY",
    "kernel_impl",
    "saturate_rc_compiled",
    "saturate_ra_compiled",
    "saturate_cc_compiled",
    "compact_writer_registry",
]

#: Whether the vectorized kernels are selectable in this process.
HAVE_NUMPY = _np is not None

#: Below this many external reads the numpy array setup costs more than the
#: interpreted loop it replaces; both paths are bit-identical, so the cutoff
#: is pure tuning (tests pin it to 0 to force the vectorized path).
_MIN_VECTOR_READS = 192

#: Composite writer-index span: ``bucket * _SIDX_SPAN + session_index``.
#: Must exceed every session index (< 2^31, see the transaction-count guard
#: in :func:`saturate_cc_compiled`) *strictly*, so a ``bound = -1`` probe
#: cannot collide with the previous bucket's last entry; see module docstring.
_SIDX_SPAN = 1 << 32

#: Bucket ids above this would overflow the int64 composite; such histories
#: (>2^31 distinct (key, session) writer buckets) take the fallback.
_MAX_BUCKETS = 1 << 31

_UNSET = object()


def kernel_impl() -> str:
    """Which kernel family this process selects for large inputs."""
    return "vectorized" if _np is not None else "fallback"


# -- shared read gathering -----------------------------------------------------


def _external_good_reads(
    ch: CompiledHistory, tid: int, bad_ops: Set[int]
) -> List[Tuple[int, int, int]]:
    """Good external committed reads of ``tid``: ``(po, key_id, writer_tid)``."""
    xr_start = ch._xr_start
    xr_po = ch._xr_po
    xr_key = ch._xr_key
    xr_writer = ch._xr_writer
    committed = ch.txn_committed
    check_bad = bool(bad_ops)  # empty on clean histories; skip the arithmetic
    base = ch.txn_start[tid]
    result: List[Tuple[int, int, int]] = []
    for j in range(xr_start[tid], xr_start[tid + 1]):
        if check_bad and base + xr_po[j] in bad_ops:
            continue
        writer = xr_writer[j]
        if not committed[writer]:
            continue
        result.append((xr_po[j], xr_key[j], writer))
    return result


def _xr_span(ch: CompiledHistory, tids) -> int:
    """Total external-read rows of ``tids`` (the vectorization size metric)."""
    xr_start = ch._xr_start
    return sum(xr_start[tid + 1] - xr_start[tid] for tid in tids)


def _gather_good_reads(ch: CompiledHistory, bad_ops: Set[int], tid_list):
    """Vectorized :func:`_external_good_reads` over many transactions at once.

    Returns ``(starts, po, key, writer)``: three flat Python lists of the
    surviving reads in transaction-major program order, plus the per-position
    offsets aligned to ``tid_list`` (transaction ``tid_list[i]``'s reads are
    rows ``starts[i]:starts[i+1]``).  The classification -- drop bad reads,
    drop uncommitted writers -- runs as one boolean mask over the ``xr_*``
    columns instead of a Python conditional per read.
    """
    np = _np
    tids = np.asarray(tid_list, dtype=np.int64)
    xr_start = np.frombuffer(ch._xr_start, dtype=np.int64)
    starts = xr_start[tids]
    counts = xr_start[tids + 1] - starts
    total = int(counts.sum())
    n = tids.shape[0]
    if total == 0:
        return [0] * (n + 1), [], [], []
    row_of = np.repeat(np.arange(n, dtype=np.int64), counts)
    base = np.cumsum(counts) - counts
    pos = np.arange(total, dtype=np.int64) - base[row_of] + starts[row_of]
    po = np.asarray(ch._xr_po, dtype=np.int64)[pos]
    writer = np.asarray(ch._xr_writer, dtype=np.int64)[pos]
    committed = np.frombuffer(ch.txn_committed, dtype=np.uint8)
    good = committed[writer] != 0
    if bad_ops:
        txn_start = np.frombuffer(ch.txn_start, dtype=np.int64)
        opidx = txn_start[tids][row_of] + po
        bad = np.fromiter(bad_ops, dtype=np.int64, count=len(bad_ops))
        good &= ~np.isin(opidx, bad)
    key = np.asarray(ch._xr_key, dtype=np.int64)[pos]
    if not good.all():
        row_of = row_of[good]
        po = po[good]
        key = key[good]
        writer = writer[good]
    good_counts = np.bincount(row_of, minlength=n)
    starts_out = np.empty(n + 1, dtype=np.int64)
    starts_out[0] = 0
    np.cumsum(good_counts, out=starts_out[1:])
    return starts_out.tolist(), po.tolist(), key.tolist(), writer.tolist()


# -- RC (Algorithm 1) ----------------------------------------------------------


def saturate_rc_compiled(
    ch: CompiledHistory,
    relation: CommitRelation,
    bad_ops: Set[int],
    tid_range: Optional[Tuple[int, int]] = None,
) -> str:
    """Algorithm 1's main loop on the IR (mirror of ``saturate_rc``).

    ``tid_range`` restricts saturation to the reads of transactions
    ``[lo, hi)``; the per-transaction state (``earliest``, ``read_keys``) is
    local, so chunked runs emit exactly the edges of a full run, in the same
    per-transaction order.

    Returns the kernel implementation that ran (``"vectorized"`` /
    ``"fallback"``).  The vectorized side batches the read classification
    (:func:`_gather_good_reads`); the per-transaction backward pass stays
    interpreted -- its state is tiny and order-critical.
    """
    committed = ch.txn_committed
    kw_start = ch._kw_start
    kw_key = ch._kw_key
    # Every inferred edge is two raw appends into the relation's co log
    # (packed edge + key id); dedup and labels happen at freeze.
    co_append = relation._co_log.append
    cok_append = relation._co_keys.append
    lo_tid, hi_tid = tid_range if tid_range is not None else (0, ch.num_transactions)
    gathered = None
    span = ch._xr_start[hi_tid] - ch._xr_start[lo_tid]
    if _np is not None and span >= _MIN_VECTOR_READS:
        gathered = _gather_good_reads(ch, bad_ops, _np.arange(lo_tid, hi_tid))
    for tid in range(lo_tid, hi_tid):
        if not committed[tid]:
            continue
        if gathered is None:
            reads = _external_good_reads(ch, tid, bad_ops)
        else:
            g_starts, g_po, g_key, g_writer = gathered
            a, b = g_starts[tid - lo_tid], g_starts[tid - lo_tid + 1]
            reads = list(zip(g_po[a:b], g_key[a:b], g_writer[a:b]))
        if not reads:
            continue

        # Forward pass: record the po-first read of each observed transaction.
        seen_txns: Set[int] = set()
        first_txn_reads: Set[int] = set()
        for po, _key, writer in reads:
            if writer not in seen_txns:
                seen_txns.add(writer)
                first_txn_reads.add(po)

        # Backward pass (see saturate_rc for the invariants; read_keys is a
        # dict so the smaller-side iteration below is deterministic).
        earliest: Dict[int, Tuple[Optional[int], Optional[int]]] = {}
        read_keys: Dict[int, None] = {}
        for po, key, t2 in reversed(reads):
            if po in first_txn_reads:
                lo, hi = kw_start[t2], kw_start[t2 + 1]
                if hi - lo <= len(read_keys):
                    candidates = [x for x in kw_key[lo:hi] if x in read_keys]
                else:
                    kw_set = ch.keys_written_set(t2)
                    candidates = [x for x in read_keys if x in kw_set]
                for x in candidates:
                    older, newer = earliest[x]
                    t1 = newer
                    if t1 == t2:
                        t1 = older
                    if t1 is not None and t1 != t2:
                        co_append((t2 << EDGE_SHIFT) | t1)
                        cok_append(x)
            pair = earliest.get(key)
            if pair is None:
                earliest[key] = (None, t2)
            elif pair[1] != t2:
                earliest[key] = (pair[1], t2)
            read_keys[key] = None
    return "fallback" if gathered is None else "vectorized"


# -- RA (Algorithm 2) ----------------------------------------------------------


def saturate_ra_compiled(
    ch: CompiledHistory,
    relation: CommitRelation,
    bad_ops: Set[int],
    sessions: Optional[Sequence[int]] = None,
) -> str:
    """Algorithm 2's saturation on the IR (mirror of ``saturate_ra``).

    ``sessions`` restricts the pass to the given dense session indices; the
    RA frontier (``last_write``) resets per session, so a session-restricted
    run emits exactly that session's edges of a full run, in order.  Returns
    the kernel implementation that ran, as in :func:`saturate_rc_compiled`.
    """
    committed = ch.txn_committed
    kw_start = ch._kw_start
    kw_key = ch._kw_key
    # Raw co-log appends, as in saturate_rc_compiled.
    co_append = relation._co_log.append
    cok_append = relation._co_keys.append
    session_lists = (
        ch.sessions if sessions is None else [ch.sessions[sid] for sid in sessions]
    )
    all_t3 = [t3 for session in session_lists for t3 in session]
    gathered = None
    if _np is not None and _xr_span(ch, all_t3) >= _MIN_VECTOR_READS:
        gathered = _gather_good_reads(ch, bad_ops, all_t3)
    position = 0
    for session in session_lists:
        last_write: Dict[int, int] = {}
        for t3 in session:
            p = position
            position += 1
            if not committed[t3]:
                continue
            if gathered is None:
                reads = _external_good_reads(ch, t3, bad_ops)
            else:
                g_starts, g_po, g_key, g_writer = gathered
                a, b = g_starts[p], g_starts[p + 1]
                reads = list(zip(g_po[a:b], g_key[a:b], g_writer[a:b]))

            reader_of_key: Dict[int, int] = {}
            distinct_writers: List[int] = []
            seen_writers: Set[int] = set()
            for _po, key, writer in reads:
                reader_of_key.setdefault(key, writer)
                if writer not in seen_writers:
                    seen_writers.add(writer)
                    distinct_writers.append(writer)

            # Case t2 -so-> t3.
            for _po, key, t1 in reads:
                t2 = last_write.get(key)
                if t2 is not None and t2 != t1:
                    co_append((t2 << EDGE_SHIFT) | t1)
                    cok_append(key)

            # Case t2 -wr-> t3: intersect written keys with read keys,
            # iterating the smaller side in deterministic order.
            for t2 in distinct_writers:
                lo, hi = kw_start[t2], kw_start[t2 + 1]
                if hi - lo <= len(reader_of_key):
                    candidates = [x for x in kw_key[lo:hi] if x in reader_of_key]
                else:
                    kw_set = ch.keys_written_set(t2)
                    candidates = [x for x in reader_of_key if x in kw_set]
                for x in candidates:
                    t1 = reader_of_key[x]
                    if t1 != t2:
                        co_append((t2 << EDGE_SHIFT) | t1)
                        cok_append(x)

            for x in kw_key[kw_start[t3] : kw_start[t3 + 1]]:
                last_write[x] = t3
    return "fallback" if gathered is None else "vectorized"


# -- CC (Algorithm 3) ----------------------------------------------------------


def _writers_by_key_compiled(
    ch: CompiledHistory,
) -> Tuple[List[Optional[List[Tuple[int, List[int], List[int], int, int]]]], int]:
    """``Writes_s[x]`` indexed by key id (mirror of ``_writers_by_key_per_session``).

    Returns ``(buckets, num_buckets)``.  Each bucket entry is ``(session,
    writer_tids, writer_session_indices, len(writer_tids), bucket_id)`` --
    the length is precomputed for the saturation loop, and ``bucket_id`` is a
    dense index over all ``(key, session)`` buckets so the saturation's
    monotone pointers can live in flat arrays instead of dicts.
    """
    writes: List[Optional[List[Tuple[int, List[int], List[int], int, int]]]] = [
        None
    ] * ch.num_keys
    committed = ch.txn_committed
    txn_session_index = ch.txn_session_index
    kw_start = ch._kw_start
    kw_key = ch._kw_key
    num_buckets = 0
    for sid, session in enumerate(ch.sessions):
        per_key: Dict[int, List[int]] = {}
        for tid in session:
            if not committed[tid]:
                continue
            for key in kw_key[kw_start[tid] : kw_start[tid + 1]]:
                per_key.setdefault(key, []).append(tid)
        for key, tids in per_key.items():
            indices = [txn_session_index[tid] for tid in tids]
            bucket = writes[key]
            if bucket is None:
                bucket = []
                writes[key] = bucket
            bucket.append((sid, tids, indices, len(tids), num_buckets))
            num_buckets += 1
    return writes, num_buckets


class _CCIndex:
    """Flat writer index for the vectorized CC kernel.

    ``wb_comp`` holds one int64 per committed (writer, key) pair, sorted by
    the composite ``bucket_id * _SIDX_SPAN + session_index`` (buckets are
    dense ids over the (key, session) pairs that write the key, numbered in
    (key, session)-ascending order -- the same per-key session order the
    fallback's bucket lists use).  ``wb_tid`` is the aligned writer id.  A
    probe "latest writer of bucket b with session index <= bound" is then
    ``searchsorted(wb_comp, b * span + bound, side='right')``, a hit iff the
    insertion point is past ``bucket_start[b]``.
    """

    __slots__ = (
        "xr_start",
        "xr_po",
        "xr_key",
        "xr_writer",
        "txn_start",
        "committed",
        "wb_comp",
        "wb_tid",
        "bucket_start",
        "bucket_sid",
        "key_bucket_start",
        "key_bucket_count",
        "num_buckets",
    )


def _build_cc_index(ch: CompiledHistory) -> Optional[_CCIndex]:
    """Build the flat writer index, or ``None`` when the encoding can't hold.

    Returns ``None`` (fallback territory) when the composite would overflow
    int64 (``>= 2^31`` buckets / huge ``key * num_sessions`` products) or
    when session lists are not ascending in transaction id -- the IR builders
    always produce ascending sessions, but a hand-built ``History`` may not,
    and the writer rows must be session-ordered for ``searchsorted``.
    """
    np = _np
    num_txn = ch.num_transactions
    num_keys = ch.num_keys
    k = ch.num_sessions
    idx = _CCIndex()
    idx.xr_start = np.frombuffer(ch._xr_start, dtype=np.int64)
    idx.xr_po = np.asarray(ch._xr_po, dtype=np.int64)
    idx.xr_key = np.asarray(ch._xr_key, dtype=np.int64)
    idx.xr_writer = np.asarray(ch._xr_writer, dtype=np.int64)
    idx.txn_start = np.frombuffer(ch.txn_start, dtype=np.int64)
    idx.committed = np.frombuffer(ch.txn_committed, dtype=np.uint8) != 0

    kw_key = np.frombuffer(ch._kw_key, dtype=np.int64)
    total = kw_key.shape[0]
    if total == 0 or num_keys == 0 or k == 0:
        idx.wb_comp = np.zeros(0, dtype=np.int64)
        idx.wb_tid = np.zeros(0, dtype=np.int64)
        idx.bucket_start = np.zeros(0, dtype=np.int64)
        idx.bucket_sid = np.zeros(0, dtype=np.int64)
        idx.key_bucket_start = np.zeros(num_keys, dtype=np.int64)
        idx.key_bucket_count = np.zeros(num_keys, dtype=np.int64)
        idx.num_buckets = 0
        return idx
    if num_keys > (1 << 62) // max(k, 1):
        return None

    # One row per (committed writer, distinct written key).  The IR only
    # materializes kw rows for committed transactions (aborted ones get empty
    # slices in _freeze), so no committed filter is needed here.
    kw_start = np.frombuffer(ch._kw_start, dtype=np.int64)
    counts = np.diff(kw_start)
    tid_of = np.repeat(np.arange(num_txn, dtype=np.int64), counts)
    sid_of = np.frombuffer(ch.txn_session, dtype=np.int64)[tid_of]
    sidx_of = np.frombuffer(ch.txn_session_index, dtype=np.int64)[tid_of]

    # Group rows into (key, session) buckets; the stable sort keeps writers
    # in transaction order within each bucket, which for builder-produced
    # IRs is exactly session order (ascending session index).
    group = kw_key * k + sid_of
    order = np.argsort(group, kind="stable")
    g_sorted = group[order]
    boundary = np.empty(total, dtype=bool)
    boundary[0] = True
    np.not_equal(g_sorted[1:], g_sorted[:-1], out=boundary[1:])
    bucket_of = np.cumsum(boundary) - 1
    num_buckets = int(bucket_of[-1]) + 1
    if num_buckets >= _MAX_BUCKETS:
        return None
    first_rows = np.flatnonzero(boundary)
    bucket_key = kw_key[order[first_rows]]
    bucket_sid = sid_of[order[first_rows]]
    key_bucket_count = np.bincount(bucket_key, minlength=num_keys)
    wb_comp = bucket_of * _SIDX_SPAN + sidx_of[order]
    if not np.all(wb_comp[1:] > wb_comp[:-1]):
        # Non-ascending session lists (exotic hand-built histories): the
        # fallback's per-session pointer walk handles any order.
        return None

    idx.wb_comp = wb_comp
    idx.wb_tid = tid_of[order]
    idx.bucket_start = first_rows
    idx.bucket_sid = bucket_sid
    idx.key_bucket_count = key_bucket_count
    kb_cum = np.cumsum(key_bucket_count)
    idx.key_bucket_start = kb_cum - key_bucket_count
    idx.num_buckets = num_buckets
    return idx


def _cc_index(ch: CompiledHistory) -> Optional[_CCIndex]:
    """The cached :class:`_CCIndex` of ``ch`` (built at most once per IR)."""
    cache = ch._kernel_cache
    if cache is None:
        cache = {}
        ch._kernel_cache = cache
    idx = cache.get("cc", _UNSET)
    if idx is _UNSET:
        idx = _build_cc_index(ch)
        cache["cc"] = idx
    return idx


def _saturate_cc_vectorized(
    ch: CompiledHistory,
    idx: _CCIndex,
    relation: CommitRelation,
    hb,
    bad_ops: Set[int],
    session_lists: Sequence[Sequence[int]],
) -> None:
    """All CC edge attempts of ``session_lists`` in five batched passes.

    Emission order matches the fallback exactly: transactions expand in
    session-major order, each transaction's surviving reads in program
    order, and each read's probes over its key's buckets in ascending
    session order -- the masks preserve positions, so the filtered edge run
    appends in the same sequence the interpreted loop's appends would.
    """
    np = _np
    committed = ch.txn_committed
    t3s: List[int] = []
    rows: List[List[int]] = []
    for session in session_lists:
        for t3 in session:
            if not committed[t3]:
                continue
            clock = hb[t3]
            if clock is None:
                continue
            t3s.append(t3)
            rows.append(clock)
    if not t3s:
        return
    tids = np.asarray(t3s, dtype=np.int64)
    clock_mat = np.asarray(rows, dtype=np.int64)

    # Pass 1: expand every external read of the selected transactions.
    starts = idx.xr_start[tids]
    counts = idx.xr_start[tids + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return
    row_of = np.repeat(np.arange(tids.shape[0], dtype=np.int64), counts)
    base = np.cumsum(counts) - counts
    pos = np.arange(total, dtype=np.int64) - base[row_of] + starts[row_of]

    # Pass 2: classify (drop bad reads and uncommitted writers).
    t1 = idx.xr_writer[pos]
    good = idx.committed[t1]
    if bad_ops:
        opidx = idx.txn_start[tids][row_of] + idx.xr_po[pos]
        bad = np.fromiter(bad_ops, dtype=np.int64, count=len(bad_ops))
        good &= ~np.isin(opidx, bad)
    if not good.all():
        pos = pos[good]
        row_of = row_of[good]
        t1 = t1[good]
    if pos.shape[0] == 0:
        return
    keys = idx.xr_key[pos]

    # Pass 3: expand each read over its key's (key, session) writer buckets.
    per_read = idx.key_bucket_count[keys]
    total2 = int(per_read.sum())
    if total2 == 0:
        return
    read_of = np.repeat(np.arange(keys.shape[0], dtype=np.int64), per_read)
    base2 = np.cumsum(per_read) - per_read
    probe_bucket = (
        np.arange(total2, dtype=np.int64)
        - base2[read_of]
        + idx.key_bucket_start[keys][read_of]
    )

    # Pass 4: one searchsorted answers every "latest writer <= clock bound"
    # query (the fallback's memoized monotone pointers compute exactly this;
    # clocks are monotone along a session, so the memo never lags the query).
    bound = clock_mat[row_of[read_of], idx.bucket_sid[probe_bucket]]
    where = np.searchsorted(idx.wb_comp, probe_bucket * _SIDX_SPAN + bound, side="right")
    has = where > idx.bucket_start[probe_bucket]
    t2 = idx.wb_tid[np.maximum(where - 1, 0)]

    # Pass 5: pack and append the surviving edges wholesale.
    t1e = t1[read_of]
    emit = has & (t2 != t1e)
    if not emit.any():
        return
    packed = (t2[emit].astype(np.uint64) << np.uint64(EDGE_SHIFT)) | t1e[emit].astype(
        np.uint64
    )
    relation._co_log.frombytes(packed.tobytes())
    relation._co_keys.frombytes(keys[read_of[emit]].astype(np.int64).tobytes())


def saturate_cc_compiled(
    ch: CompiledHistory,
    relation: CommitRelation,
    hb,
    bad_ops: Set[int],
    sessions: Optional[Sequence[int]] = None,
    writers_by_key: Optional[Tuple[List, int]] = None,
    scratch: Optional[Tuple["array", "array", List[int]]] = None,
) -> str:
    """CC saturation on the IR (mirror of ``saturate_cc``).

    Dispatches to the vectorized kernel (:func:`_saturate_cc_vectorized`)
    when numpy is active and the selected transactions carry enough reads;
    otherwise runs the interpreted monotone-pointer walk.  Both emit the
    same packed edges in the same order; returns which implementation ran.

    The per-(session, key) monotone pointers of the fallback live in two
    flat ``array('q')`` rows indexed by the dense bucket ids of
    :func:`_writers_by_key_compiled` -- a C-level indexed read per probe,
    where a dict of packed ``(ptr << EDGE_SHIFT) | t2`` values would box a
    fresh big int per pointer advance.  Only the slots a session actually
    touched are reset between sessions, so sessions with few reads stay
    cheap.

    ``sessions`` restricts the pass to the given dense session indices (the
    pointer state resets per session, so restricted runs compose like
    :func:`saturate_ra_compiled`); ``hb`` only needs to support ``hb[tid]``
    for the restricted transactions (a dict of clocks works for shard
    workers).  ``writers_by_key`` injects a precomputed
    :func:`_writers_by_key_compiled` result -- it depends only on the IR, so
    shard workers compute it once per process and reuse it across tasks.
    ``scratch`` injects the ``(ptrs, t2s, touched)`` pointer state to reuse
    across calls: the arrays must be sized ``num_buckets`` and pristine
    (zeros / -1 / empty); the function leaves them pristine again on return
    -- the vectorized kernel simply never touches them -- so shard workers
    making one call per session allocate them once instead of re-zeroing
    ``O(num_buckets)`` memory per session.
    """
    if ch.num_transactions > (1 << 31):
        # The t2 scratch row stores writers pre-shifted by EDGE_SHIFT in a
        # signed array('q') (and the vectorized composite assumes session
        # indices below 2^31); a tid >= 2^31 would overflow the store deep
        # in the loop below, so reject it here with the cause attached.
        raise ValueError(
            "CC saturation's pre-shifted writer rows support at most "
            f"2^31 transactions; got {ch.num_transactions}"
        )
    session_lists = (
        ch.sessions if sessions is None else [ch.sessions[sid] for sid in sessions]
    )
    if (
        _np is not None
        and isinstance(relation._co_keys, array)
        and _xr_span(ch, (t3 for session in session_lists for t3 in session))
        >= _MIN_VECTOR_READS
    ):
        idx = _cc_index(ch)
        if idx is not None:
            _saturate_cc_vectorized(ch, idx, relation, hb, bad_ops, session_lists)
            return "vectorized"

    if writers_by_key is None:
        writers_by_key = _writers_by_key_compiled(ch)
    writers_index, num_buckets = writers_by_key
    committed = ch.txn_committed
    xr_start = ch._xr_start
    xr_po = ch._xr_po
    xr_key = ch._xr_key
    xr_writer = ch._xr_writer
    txn_start = ch.txn_start
    # This loop attempts an edge per (read, writing-session) pair; each
    # attempt is at most two raw appends into the relation's co log (the
    # freeze collapses the duplicates).  The monotone pointer (ptr) and the
    # hb-latest writer per bucket live in the two flat rows below; a stored
    # ptr is always >= 1, so ptr == 0 doubles as the "never touched" marker
    # the reset pass relies on.  The t2 row stores the writer *pre-shifted*
    # (``t2 << EDGE_SHIFT``): the packed edge is then a single bitwise-or
    # against the read's writer, and -1 still flags "no hb-latest writer".
    co_append = relation._co_log.append
    cok_append = relation._co_keys.append
    check_bad = bool(bad_ops)
    if scratch is None:
        ptrs = array("q", bytes(8 * num_buckets))
        t2s = array("q", [-1]) * num_buckets
        touched: List[int] = []
    else:
        ptrs, t2s, touched = scratch

    for session in session_lists:
        for t3 in session:
            if not committed[t3]:
                continue
            clock = hb[t3]
            if clock is None:
                continue
            base = txn_start[t3]
            for j in range(xr_start[t3], xr_start[t3 + 1]):
                if check_bad and base + xr_po[j] in bad_ops:
                    continue
                t1 = xr_writer[j]
                if not committed[t1]:
                    continue
                key = xr_key[j]
                key_writers = writers_index[key]
                if not key_writers:
                    continue
                t1s = t1 << EDGE_SHIFT
                for other, writer_list, writer_indices, count, bid in key_writers:
                    ptr = ptrs[bid]
                    bound = clock[other]
                    if ptr < count and writer_indices[ptr] <= bound:
                        while ptr < count and writer_indices[ptr] <= bound:
                            ptr += 1
                        t2s_val = writer_list[ptr - 1] << EDGE_SHIFT
                        if not ptrs[bid]:
                            touched.append(bid)
                        ptrs[bid] = ptr
                        t2s[bid] = t2s_val
                    else:
                        t2s_val = t2s[bid]
                    if t2s_val >= 0 and t2s_val != t1s:
                        co_append(t2s_val | t1)
                        cok_append(key)
        # Pointer state is per-session: clear only the touched slots.
        for bid in touched:
            ptrs[bid] = 0
            t2s[bid] = -1
        del touched[:]
    return "fallback"


# -- retirement support --------------------------------------------------------


def _compact_writer_registry_fallback(
    wb_bucket: "array",
    wb_sidx: "array",
    wb_tid: "array",
    removed: Dict[int, int],
):
    seen: Dict[int, int] = {}
    new_bucket = array("q")
    new_sidx = array("q")
    new_tid = array("q")
    get_removed = removed.get
    for i in range(len(wb_bucket)):
        bid = wb_bucket[i]
        rank = seen.get(bid, 0)
        seen[bid] = rank + 1
        if rank < get_removed(bid, 0):
            continue
        new_bucket.append(bid)
        new_sidx.append(wb_sidx[i])
        new_tid.append(wb_tid[i])
    return new_bucket, new_sidx, new_tid


def compact_writer_registry(
    wb_bucket: "array",
    wb_sidx: "array",
    wb_tid: "array",
    removed: Dict[int, int],
    num_buckets: int,
):
    """Drop each bucket's first ``removed[bucket]`` rows from the flat registry.

    The online fold's writer registry (``bucket``/``sidx``/``tid`` parallel
    ``array('q')`` rows, appended in arrival order) is what the deferred
    probe flush sorts into the composite ``bucket * 2^32 + sidx`` index.
    Retirement removes a *prefix* of each bucket -- rows are appended in
    ascending session index per bucket, and the retired rows are exactly the
    oldest -- so compaction is "skip the first N occurrences of each bucket"
    while preserving the original append order (future stable argsorts then
    still see ascending session indices per bucket).

    Returns three fresh ``array('q')`` rows.  Vectorized and fallback
    implementations are bit-identical (property-tested in
    ``tests/test_retire.py``).
    """
    if _np is None or len(wb_bucket) < _MIN_VECTOR_READS or num_buckets <= 0:
        return _compact_writer_registry_fallback(wb_bucket, wb_sidx, wb_tid, removed)
    np = _np
    bucket = np.frombuffer(wb_bucket, dtype=np.int64)
    total = len(bucket)
    order = np.argsort(bucket, kind="stable")
    sorted_bucket = bucket[order]
    # Rank of each row within its bucket: position in the stable sort minus
    # the index of the bucket's first sorted occurrence.
    first = np.searchsorted(sorted_bucket, sorted_bucket, side="left")
    rank = np.arange(total, dtype=np.int64) - first
    drop = np.zeros(num_buckets, dtype=np.int64)
    for bid, count in removed.items():
        drop[bid] = count
    keep_sorted = rank >= drop[sorted_bucket]
    keep = np.empty(total, dtype=bool)
    keep[order] = keep_sorted
    new_bucket = array("q")
    new_sidx = array("q")
    new_tid = array("q")
    new_bucket.frombytes(bucket[keep].tobytes())
    new_sidx.frombytes(np.frombuffer(wb_sidx, dtype=np.int64)[keep].tobytes())
    new_tid.frombytes(np.frombuffer(wb_tid, dtype=np.int64)[keep].tobytes())
    return new_bucket, new_sidx, new_tid
