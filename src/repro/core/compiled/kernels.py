"""Saturation kernels: one vectorized core for batch, streaming, and shards.

The profile after the CSR relation core (``BENCH_5.json``/``BENCH_6.json``)
put the remaining batch cost almost entirely in the saturation loops of
:mod:`repro.core.compiled.checkers` -- interpreted Python over the IR's flat
rows, ~470k per-(session, key) slot visits on the fig9 log -- and the online
fold's clock-join runs the very same loop shape.  This module is the single
home of those loops now: every consumer (batch checkers, shard workers via
``sessions=``/``tid_range=`` restrictions, and the online fold's deferred
probe flush) dispatches here.

Each kernel exists twice, selected exactly like :func:`repro.graph.csr.freeze_packed`:

* a **vectorized** implementation over numpy views of the IR's parallel
  arrays, used when numpy imports, the ``AWDIT_NO_NUMPY`` env flag is unset,
  and the input is large enough to amortize array setup
  (``_MIN_VECTOR_READS``); and
* a **pure-Python fallback** -- the original interpreted loops, moved here
  verbatim -- used everywhere else.

Both produce byte-identical packed-edge logs in the identical order, so
verdicts, violation lists, and witness renderings never depend on which ran
(property-tested in ``tests/test_kernels.py``).  The key argument for the CC
kernel: along one session the happens-before clocks are monotone
(``hb[t3'][s] >= hb[t3][s]`` for ``t3'`` after ``t3``), so the fallback's
memoized monotone pointer per (key, session) bucket always lands on *the
latest writer with session index <= clock bound* -- a stateless query the
vectorized path answers for every probe at once with one ``searchsorted``
against a flat sorted writer index.

Two 32-bit boundaries shape the vectorized encodings (mirroring the packed
edges of :mod:`repro.graph.csr`):

* packed edges ``(t2 << EDGE_SHIFT) | t1`` are built in ``uint64`` -- a
  signed intermediate would flip sign for ``t2 >= 2^31``; and
* the writer index is probed through a composite ``bucket * 2^32 + sidx``
  key.  The span must be ``2^32`` (not ``2^31``): a probe carrying the
  "empty clock" bound ``-1`` sits at ``bucket * span - 1``, and only a span
  strictly above every possible session index keeps that probe below the
  previous bucket's largest entry.
"""

from __future__ import annotations

import os
from array import array
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.commit import CommitRelation
from repro.core.compiled.ir import CompiledHistory, _VALUE_SHIFT
from repro.graph.digraph import EDGE_SHIFT

try:  # pragma: no cover - exercised implicitly by every test run
    import numpy as _np
except ImportError:  # pragma: no cover - CI runners without numpy
    _np = None
if os.environ.get("AWDIT_NO_NUMPY"):
    # Forces the pure-Python fallbacks even where numpy is installed, so the
    # fallback kernels are testable on any machine (the CI leg sets this).
    _np = None

__all__ = [
    "HAVE_NUMPY",
    "kernel_impl",
    "saturate_rc_compiled",
    "saturate_ra_compiled",
    "saturate_cc_compiled",
    "compact_writer_registry",
    "join_clocks",
    "ParkQueue",
    "ResolvedBatch",
    "WritesIndex",
    "WriterProbeIndex",
    "resolve_reads",
    "resolve_unique_writes",
]

#: Whether the vectorized kernels are selectable in this process.
HAVE_NUMPY = _np is not None

#: Below this many external reads the numpy array setup costs more than the
#: interpreted loop it replaces; both paths are bit-identical, so the cutoff
#: is pure tuning (tests pin it to 0 to force the vectorized path).
_MIN_VECTOR_READS = 192

#: Composite writer-index span: ``bucket * _SIDX_SPAN + session_index``.
#: Must exceed every session index (< 2^31, see the transaction-count guard
#: in :func:`saturate_cc_compiled`) *strictly*, so a ``bound = -1`` probe
#: cannot collide with the previous bucket's last entry; see module docstring.
_SIDX_SPAN = 1 << 32

#: Bucket ids above this would overflow the int64 composite; such histories
#: (>2^31 distinct (key, session) writer buckets) take the fallback.
_MAX_BUCKETS = 1 << 31

_UNSET = object()


def kernel_impl() -> str:
    """Which kernel family this process selects for large inputs."""
    return "vectorized" if _np is not None else "fallback"


# -- shared read gathering -----------------------------------------------------


def _external_good_reads(
    ch: CompiledHistory, tid: int, bad_ops: Set[int]
) -> List[Tuple[int, int, int]]:
    """Good external committed reads of ``tid``: ``(po, key_id, writer_tid)``."""
    xr_start = ch._xr_start
    xr_po = ch._xr_po
    xr_key = ch._xr_key
    xr_writer = ch._xr_writer
    committed = ch.txn_committed
    check_bad = bool(bad_ops)  # empty on clean histories; skip the arithmetic
    base = ch.txn_start[tid]
    result: List[Tuple[int, int, int]] = []
    for j in range(xr_start[tid], xr_start[tid + 1]):
        if check_bad and base + xr_po[j] in bad_ops:
            continue
        writer = xr_writer[j]
        if not committed[writer]:
            continue
        result.append((xr_po[j], xr_key[j], writer))
    return result


def _xr_span(ch: CompiledHistory, tids) -> int:
    """Total external-read rows of ``tids`` (the vectorization size metric)."""
    xr_start = ch._xr_start
    return sum(xr_start[tid + 1] - xr_start[tid] for tid in tids)


def _gather_good_reads(ch: CompiledHistory, bad_ops: Set[int], tid_list):
    """Vectorized :func:`_external_good_reads` over many transactions at once.

    Returns ``(starts, po, key, writer)``: three flat Python lists of the
    surviving reads in transaction-major program order, plus the per-position
    offsets aligned to ``tid_list`` (transaction ``tid_list[i]``'s reads are
    rows ``starts[i]:starts[i+1]``).  The classification -- drop bad reads,
    drop uncommitted writers -- runs as one boolean mask over the ``xr_*``
    columns instead of a Python conditional per read.
    """
    np = _np
    tids = np.asarray(tid_list, dtype=np.int64)
    xr_start = np.frombuffer(ch._xr_start, dtype=np.int64)
    starts = xr_start[tids]
    counts = xr_start[tids + 1] - starts
    total = int(counts.sum())
    n = tids.shape[0]
    if total == 0:
        return [0] * (n + 1), [], [], []
    row_of = np.repeat(np.arange(n, dtype=np.int64), counts)
    base = np.cumsum(counts) - counts
    pos = np.arange(total, dtype=np.int64) - base[row_of] + starts[row_of]
    po = np.asarray(ch._xr_po, dtype=np.int64)[pos]
    writer = np.asarray(ch._xr_writer, dtype=np.int64)[pos]
    committed = np.frombuffer(ch.txn_committed, dtype=np.uint8)
    good = committed[writer] != 0
    if bad_ops:
        txn_start = np.frombuffer(ch.txn_start, dtype=np.int64)
        opidx = txn_start[tids][row_of] + po
        bad = np.fromiter(bad_ops, dtype=np.int64, count=len(bad_ops))
        good &= ~np.isin(opidx, bad)
    key = np.asarray(ch._xr_key, dtype=np.int64)[pos]
    if not good.all():
        row_of = row_of[good]
        po = po[good]
        key = key[good]
        writer = writer[good]
    good_counts = np.bincount(row_of, minlength=n)
    starts_out = np.empty(n + 1, dtype=np.int64)
    starts_out[0] = 0
    np.cumsum(good_counts, out=starts_out[1:])
    return starts_out.tolist(), po.tolist(), key.tolist(), writer.tolist()


# -- RC (Algorithm 1) ----------------------------------------------------------


def saturate_rc_compiled(
    ch: CompiledHistory,
    relation: CommitRelation,
    bad_ops: Set[int],
    tid_range: Optional[Tuple[int, int]] = None,
) -> str:
    """Algorithm 1's main loop on the IR (mirror of ``saturate_rc``).

    ``tid_range`` restricts saturation to the reads of transactions
    ``[lo, hi)``; the per-transaction state (``earliest``, ``read_keys``) is
    local, so chunked runs emit exactly the edges of a full run, in the same
    per-transaction order.

    Returns the kernel implementation that ran (``"vectorized"`` /
    ``"fallback"``).  The vectorized side batches the read classification
    (:func:`_gather_good_reads`); the per-transaction backward pass stays
    interpreted -- its state is tiny and order-critical.
    """
    committed = ch.txn_committed
    kw_start = ch._kw_start
    kw_key = ch._kw_key
    # Every inferred edge is two raw appends into the relation's co log
    # (packed edge + key id); dedup and labels happen at freeze.
    co_append = relation._co_log.append
    cok_append = relation._co_keys.append
    lo_tid, hi_tid = tid_range if tid_range is not None else (0, ch.num_transactions)
    gathered = None
    span = ch._xr_start[hi_tid] - ch._xr_start[lo_tid]
    if _np is not None and span >= _MIN_VECTOR_READS:
        gathered = _gather_good_reads(ch, bad_ops, _np.arange(lo_tid, hi_tid))
    for tid in range(lo_tid, hi_tid):
        if not committed[tid]:
            continue
        if gathered is None:
            reads = _external_good_reads(ch, tid, bad_ops)
        else:
            g_starts, g_po, g_key, g_writer = gathered
            a, b = g_starts[tid - lo_tid], g_starts[tid - lo_tid + 1]
            reads = list(zip(g_po[a:b], g_key[a:b], g_writer[a:b]))
        if not reads:
            continue

        # Forward pass: record the po-first read of each observed transaction.
        seen_txns: Set[int] = set()
        first_txn_reads: Set[int] = set()
        for po, _key, writer in reads:
            if writer not in seen_txns:
                seen_txns.add(writer)
                first_txn_reads.add(po)

        # Backward pass (see saturate_rc for the invariants; read_keys is a
        # dict so the smaller-side iteration below is deterministic).
        earliest: Dict[int, Tuple[Optional[int], Optional[int]]] = {}
        read_keys: Dict[int, None] = {}
        for po, key, t2 in reversed(reads):
            if po in first_txn_reads:
                lo, hi = kw_start[t2], kw_start[t2 + 1]
                if hi - lo <= len(read_keys):
                    candidates = [x for x in kw_key[lo:hi] if x in read_keys]
                else:
                    kw_set = ch.keys_written_set(t2)
                    candidates = [x for x in read_keys if x in kw_set]
                for x in candidates:
                    older, newer = earliest[x]
                    t1 = newer
                    if t1 == t2:
                        t1 = older
                    if t1 is not None and t1 != t2:
                        co_append((t2 << EDGE_SHIFT) | t1)
                        cok_append(x)
            pair = earliest.get(key)
            if pair is None:
                earliest[key] = (None, t2)
            elif pair[1] != t2:
                earliest[key] = (pair[1], t2)
            read_keys[key] = None
    return "fallback" if gathered is None else "vectorized"


# -- RA (Algorithm 2) ----------------------------------------------------------


def saturate_ra_compiled(
    ch: CompiledHistory,
    relation: CommitRelation,
    bad_ops: Set[int],
    sessions: Optional[Sequence[int]] = None,
) -> str:
    """Algorithm 2's saturation on the IR (mirror of ``saturate_ra``).

    ``sessions`` restricts the pass to the given dense session indices; the
    RA frontier (``last_write``) resets per session, so a session-restricted
    run emits exactly that session's edges of a full run, in order.  Returns
    the kernel implementation that ran, as in :func:`saturate_rc_compiled`.
    """
    committed = ch.txn_committed
    kw_start = ch._kw_start
    kw_key = ch._kw_key
    # Raw co-log appends, as in saturate_rc_compiled.
    co_append = relation._co_log.append
    cok_append = relation._co_keys.append
    session_lists = (
        ch.sessions if sessions is None else [ch.sessions[sid] for sid in sessions]
    )
    all_t3 = [t3 for session in session_lists for t3 in session]
    gathered = None
    if _np is not None and _xr_span(ch, all_t3) >= _MIN_VECTOR_READS:
        gathered = _gather_good_reads(ch, bad_ops, all_t3)
    position = 0
    for session in session_lists:
        last_write: Dict[int, int] = {}
        for t3 in session:
            p = position
            position += 1
            if not committed[t3]:
                continue
            if gathered is None:
                reads = _external_good_reads(ch, t3, bad_ops)
            else:
                g_starts, g_po, g_key, g_writer = gathered
                a, b = g_starts[p], g_starts[p + 1]
                reads = list(zip(g_po[a:b], g_key[a:b], g_writer[a:b]))

            reader_of_key: Dict[int, int] = {}
            distinct_writers: List[int] = []
            seen_writers: Set[int] = set()
            for _po, key, writer in reads:
                reader_of_key.setdefault(key, writer)
                if writer not in seen_writers:
                    seen_writers.add(writer)
                    distinct_writers.append(writer)

            # Case t2 -so-> t3.
            for _po, key, t1 in reads:
                t2 = last_write.get(key)
                if t2 is not None and t2 != t1:
                    co_append((t2 << EDGE_SHIFT) | t1)
                    cok_append(key)

            # Case t2 -wr-> t3: intersect written keys with read keys,
            # iterating the smaller side in deterministic order.
            for t2 in distinct_writers:
                lo, hi = kw_start[t2], kw_start[t2 + 1]
                if hi - lo <= len(reader_of_key):
                    candidates = [x for x in kw_key[lo:hi] if x in reader_of_key]
                else:
                    kw_set = ch.keys_written_set(t2)
                    candidates = [x for x in reader_of_key if x in kw_set]
                for x in candidates:
                    t1 = reader_of_key[x]
                    if t1 != t2:
                        co_append((t2 << EDGE_SHIFT) | t1)
                        cok_append(x)

            for x in kw_key[kw_start[t3] : kw_start[t3 + 1]]:
                last_write[x] = t3
    return "fallback" if gathered is None else "vectorized"


# -- CC (Algorithm 3) ----------------------------------------------------------


def _writers_by_key_compiled(
    ch: CompiledHistory,
) -> Tuple[List[Optional[List[Tuple[int, List[int], List[int], int, int]]]], int]:
    """``Writes_s[x]`` indexed by key id (mirror of ``_writers_by_key_per_session``).

    Returns ``(buckets, num_buckets)``.  Each bucket entry is ``(session,
    writer_tids, writer_session_indices, len(writer_tids), bucket_id)`` --
    the length is precomputed for the saturation loop, and ``bucket_id`` is a
    dense index over all ``(key, session)`` buckets so the saturation's
    monotone pointers can live in flat arrays instead of dicts.
    """
    writes: List[Optional[List[Tuple[int, List[int], List[int], int, int]]]] = [
        None
    ] * ch.num_keys
    committed = ch.txn_committed
    txn_session_index = ch.txn_session_index
    kw_start = ch._kw_start
    kw_key = ch._kw_key
    num_buckets = 0
    for sid, session in enumerate(ch.sessions):
        per_key: Dict[int, List[int]] = {}
        for tid in session:
            if not committed[tid]:
                continue
            for key in kw_key[kw_start[tid] : kw_start[tid + 1]]:
                per_key.setdefault(key, []).append(tid)
        for key, tids in per_key.items():
            indices = [txn_session_index[tid] for tid in tids]
            bucket = writes[key]
            if bucket is None:
                bucket = []
                writes[key] = bucket
            bucket.append((sid, tids, indices, len(tids), num_buckets))
            num_buckets += 1
    return writes, num_buckets


class _CCIndex:
    """Flat writer index for the vectorized CC kernel.

    ``wb_comp`` holds one int64 per committed (writer, key) pair, sorted by
    the composite ``bucket_id * _SIDX_SPAN + session_index`` (buckets are
    dense ids over the (key, session) pairs that write the key, numbered in
    (key, session)-ascending order -- the same per-key session order the
    fallback's bucket lists use).  ``wb_tid`` is the aligned writer id.  A
    probe "latest writer of bucket b with session index <= bound" is then
    ``searchsorted(wb_comp, b * span + bound, side='right')``, a hit iff the
    insertion point is past ``bucket_start[b]``.
    """

    __slots__ = (
        "xr_start",
        "xr_po",
        "xr_key",
        "xr_writer",
        "txn_start",
        "committed",
        "wb_comp",
        "wb_tid",
        "bucket_start",
        "bucket_sid",
        "key_bucket_start",
        "key_bucket_count",
        "num_buckets",
    )


def _build_cc_index(ch: CompiledHistory) -> Optional[_CCIndex]:
    """Build the flat writer index, or ``None`` when the encoding can't hold.

    Returns ``None`` (fallback territory) when the composite would overflow
    int64 (``>= 2^31`` buckets / huge ``key * num_sessions`` products) or
    when session lists are not ascending in transaction id -- the IR builders
    always produce ascending sessions, but a hand-built ``History`` may not,
    and the writer rows must be session-ordered for ``searchsorted``.
    """
    np = _np
    num_txn = ch.num_transactions
    num_keys = ch.num_keys
    k = ch.num_sessions
    idx = _CCIndex()
    idx.xr_start = np.frombuffer(ch._xr_start, dtype=np.int64)
    idx.xr_po = np.asarray(ch._xr_po, dtype=np.int64)
    idx.xr_key = np.asarray(ch._xr_key, dtype=np.int64)
    idx.xr_writer = np.asarray(ch._xr_writer, dtype=np.int64)
    idx.txn_start = np.frombuffer(ch.txn_start, dtype=np.int64)
    idx.committed = np.frombuffer(ch.txn_committed, dtype=np.uint8) != 0

    kw_key = np.frombuffer(ch._kw_key, dtype=np.int64)
    total = kw_key.shape[0]
    if total == 0 or num_keys == 0 or k == 0:
        idx.wb_comp = np.zeros(0, dtype=np.int64)
        idx.wb_tid = np.zeros(0, dtype=np.int64)
        idx.bucket_start = np.zeros(0, dtype=np.int64)
        idx.bucket_sid = np.zeros(0, dtype=np.int64)
        idx.key_bucket_start = np.zeros(num_keys, dtype=np.int64)
        idx.key_bucket_count = np.zeros(num_keys, dtype=np.int64)
        idx.num_buckets = 0
        return idx
    if num_keys > (1 << 62) // max(k, 1):
        return None

    # One row per (committed writer, distinct written key).  The IR only
    # materializes kw rows for committed transactions (aborted ones get empty
    # slices in _freeze), so no committed filter is needed here.
    kw_start = np.frombuffer(ch._kw_start, dtype=np.int64)
    counts = np.diff(kw_start)
    tid_of = np.repeat(np.arange(num_txn, dtype=np.int64), counts)
    sid_of = np.frombuffer(ch.txn_session, dtype=np.int64)[tid_of]
    sidx_of = np.frombuffer(ch.txn_session_index, dtype=np.int64)[tid_of]

    # Group rows into (key, session) buckets; the stable sort keeps writers
    # in transaction order within each bucket, which for builder-produced
    # IRs is exactly session order (ascending session index).
    group = kw_key * k + sid_of
    order = np.argsort(group, kind="stable")
    g_sorted = group[order]
    boundary = np.empty(total, dtype=bool)
    boundary[0] = True
    np.not_equal(g_sorted[1:], g_sorted[:-1], out=boundary[1:])
    bucket_of = np.cumsum(boundary) - 1
    num_buckets = int(bucket_of[-1]) + 1
    if num_buckets >= _MAX_BUCKETS:
        return None
    first_rows = np.flatnonzero(boundary)
    bucket_key = kw_key[order[first_rows]]
    bucket_sid = sid_of[order[first_rows]]
    key_bucket_count = np.bincount(bucket_key, minlength=num_keys)
    wb_comp = bucket_of * _SIDX_SPAN + sidx_of[order]
    if not np.all(wb_comp[1:] > wb_comp[:-1]):
        # Non-ascending session lists (exotic hand-built histories): the
        # fallback's per-session pointer walk handles any order.
        return None

    idx.wb_comp = wb_comp
    idx.wb_tid = tid_of[order]
    idx.bucket_start = first_rows
    idx.bucket_sid = bucket_sid
    idx.key_bucket_count = key_bucket_count
    kb_cum = np.cumsum(key_bucket_count)
    idx.key_bucket_start = kb_cum - key_bucket_count
    idx.num_buckets = num_buckets
    return idx


def _cc_index(ch: CompiledHistory) -> Optional[_CCIndex]:
    """The cached :class:`_CCIndex` of ``ch`` (built at most once per IR)."""
    cache = ch._kernel_cache
    if cache is None:
        cache = {}
        ch._kernel_cache = cache
    idx = cache.get("cc", _UNSET)
    if idx is _UNSET:
        idx = _build_cc_index(ch)
        cache["cc"] = idx
    return idx


def _saturate_cc_vectorized(
    ch: CompiledHistory,
    idx: _CCIndex,
    relation: CommitRelation,
    hb,
    bad_ops: Set[int],
    session_lists: Sequence[Sequence[int]],
) -> None:
    """All CC edge attempts of ``session_lists`` in five batched passes.

    Emission order matches the fallback exactly: transactions expand in
    session-major order, each transaction's surviving reads in program
    order, and each read's probes over its key's buckets in ascending
    session order -- the masks preserve positions, so the filtered edge run
    appends in the same sequence the interpreted loop's appends would.
    """
    np = _np
    committed = ch.txn_committed
    t3s: List[int] = []
    rows: List[List[int]] = []
    for session in session_lists:
        for t3 in session:
            if not committed[t3]:
                continue
            clock = hb[t3]
            if clock is None:
                continue
            t3s.append(t3)
            rows.append(clock)
    if not t3s:
        return
    tids = np.asarray(t3s, dtype=np.int64)
    clock_mat = np.asarray(rows, dtype=np.int64)

    # Pass 1: expand every external read of the selected transactions.
    starts = idx.xr_start[tids]
    counts = idx.xr_start[tids + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return
    row_of = np.repeat(np.arange(tids.shape[0], dtype=np.int64), counts)
    base = np.cumsum(counts) - counts
    pos = np.arange(total, dtype=np.int64) - base[row_of] + starts[row_of]

    # Pass 2: classify (drop bad reads and uncommitted writers).
    t1 = idx.xr_writer[pos]
    good = idx.committed[t1]
    if bad_ops:
        opidx = idx.txn_start[tids][row_of] + idx.xr_po[pos]
        bad = np.fromiter(bad_ops, dtype=np.int64, count=len(bad_ops))
        good &= ~np.isin(opidx, bad)
    if not good.all():
        pos = pos[good]
        row_of = row_of[good]
        t1 = t1[good]
    if pos.shape[0] == 0:
        return
    keys = idx.xr_key[pos]

    # Pass 3: expand each read over its key's (key, session) writer buckets.
    per_read = idx.key_bucket_count[keys]
    total2 = int(per_read.sum())
    if total2 == 0:
        return
    read_of = np.repeat(np.arange(keys.shape[0], dtype=np.int64), per_read)
    base2 = np.cumsum(per_read) - per_read
    probe_bucket = (
        np.arange(total2, dtype=np.int64)
        - base2[read_of]
        + idx.key_bucket_start[keys][read_of]
    )

    # Pass 4: one searchsorted answers every "latest writer <= clock bound"
    # query (the fallback's memoized monotone pointers compute exactly this;
    # clocks are monotone along a session, so the memo never lags the query).
    bound = clock_mat[row_of[read_of], idx.bucket_sid[probe_bucket]]
    where = np.searchsorted(idx.wb_comp, probe_bucket * _SIDX_SPAN + bound, side="right")
    has = where > idx.bucket_start[probe_bucket]
    t2 = idx.wb_tid[np.maximum(where - 1, 0)]

    # Pass 5: pack and append the surviving edges wholesale.
    t1e = t1[read_of]
    emit = has & (t2 != t1e)
    if not emit.any():
        return
    packed = (t2[emit].astype(np.uint64) << np.uint64(EDGE_SHIFT)) | t1e[emit].astype(
        np.uint64
    )
    relation._co_log.frombytes(packed.tobytes())
    relation._co_keys.frombytes(keys[read_of[emit]].astype(np.int64).tobytes())


def saturate_cc_compiled(
    ch: CompiledHistory,
    relation: CommitRelation,
    hb,
    bad_ops: Set[int],
    sessions: Optional[Sequence[int]] = None,
    writers_by_key: Optional[Tuple[List, int]] = None,
    scratch: Optional[Tuple["array", "array", List[int]]] = None,
) -> str:
    """CC saturation on the IR (mirror of ``saturate_cc``).

    Dispatches to the vectorized kernel (:func:`_saturate_cc_vectorized`)
    when numpy is active and the selected transactions carry enough reads;
    otherwise runs the interpreted monotone-pointer walk.  Both emit the
    same packed edges in the same order; returns which implementation ran.

    The per-(session, key) monotone pointers of the fallback live in two
    flat ``array('q')`` rows indexed by the dense bucket ids of
    :func:`_writers_by_key_compiled` -- a C-level indexed read per probe,
    where a dict of packed ``(ptr << EDGE_SHIFT) | t2`` values would box a
    fresh big int per pointer advance.  Only the slots a session actually
    touched are reset between sessions, so sessions with few reads stay
    cheap.

    ``sessions`` restricts the pass to the given dense session indices (the
    pointer state resets per session, so restricted runs compose like
    :func:`saturate_ra_compiled`); ``hb`` only needs to support ``hb[tid]``
    for the restricted transactions (a dict of clocks works for shard
    workers).  ``writers_by_key`` injects a precomputed
    :func:`_writers_by_key_compiled` result -- it depends only on the IR, so
    shard workers compute it once per process and reuse it across tasks.
    ``scratch`` injects the ``(ptrs, t2s, touched)`` pointer state to reuse
    across calls: the arrays must be sized ``num_buckets`` and pristine
    (zeros / -1 / empty); the function leaves them pristine again on return
    -- the vectorized kernel simply never touches them -- so shard workers
    making one call per session allocate them once instead of re-zeroing
    ``O(num_buckets)`` memory per session.
    """
    if ch.num_transactions > (1 << 31):
        # The t2 scratch row stores writers pre-shifted by EDGE_SHIFT in a
        # signed array('q') (and the vectorized composite assumes session
        # indices below 2^31); a tid >= 2^31 would overflow the store deep
        # in the loop below, so reject it here with the cause attached.
        raise ValueError(
            "CC saturation's pre-shifted writer rows support at most "
            f"2^31 transactions; got {ch.num_transactions}"
        )
    session_lists = (
        ch.sessions if sessions is None else [ch.sessions[sid] for sid in sessions]
    )
    if (
        _np is not None
        and isinstance(relation._co_keys, array)
        and _xr_span(ch, (t3 for session in session_lists for t3 in session))
        >= _MIN_VECTOR_READS
    ):
        idx = _cc_index(ch)
        if idx is not None:
            _saturate_cc_vectorized(ch, idx, relation, hb, bad_ops, session_lists)
            return "vectorized"

    if writers_by_key is None:
        writers_by_key = _writers_by_key_compiled(ch)
    writers_index, num_buckets = writers_by_key
    committed = ch.txn_committed
    xr_start = ch._xr_start
    xr_po = ch._xr_po
    xr_key = ch._xr_key
    xr_writer = ch._xr_writer
    txn_start = ch.txn_start
    # This loop attempts an edge per (read, writing-session) pair; each
    # attempt is at most two raw appends into the relation's co log (the
    # freeze collapses the duplicates).  The monotone pointer (ptr) and the
    # hb-latest writer per bucket live in the two flat rows below; a stored
    # ptr is always >= 1, so ptr == 0 doubles as the "never touched" marker
    # the reset pass relies on.  The t2 row stores the writer *pre-shifted*
    # (``t2 << EDGE_SHIFT``): the packed edge is then a single bitwise-or
    # against the read's writer, and -1 still flags "no hb-latest writer".
    co_append = relation._co_log.append
    cok_append = relation._co_keys.append
    check_bad = bool(bad_ops)
    if scratch is None:
        ptrs = array("q", bytes(8 * num_buckets))
        t2s = array("q", [-1]) * num_buckets
        touched: List[int] = []
    else:
        ptrs, t2s, touched = scratch

    for session in session_lists:
        for t3 in session:
            if not committed[t3]:
                continue
            clock = hb[t3]
            if clock is None:
                continue
            base = txn_start[t3]
            for j in range(xr_start[t3], xr_start[t3 + 1]):
                if check_bad and base + xr_po[j] in bad_ops:
                    continue
                t1 = xr_writer[j]
                if not committed[t1]:
                    continue
                key = xr_key[j]
                key_writers = writers_index[key]
                if not key_writers:
                    continue
                t1s = t1 << EDGE_SHIFT
                for other, writer_list, writer_indices, count, bid in key_writers:
                    ptr = ptrs[bid]
                    bound = clock[other]
                    if ptr < count and writer_indices[ptr] <= bound:
                        while ptr < count and writer_indices[ptr] <= bound:
                            ptr += 1
                        t2s_val = writer_list[ptr - 1] << EDGE_SHIFT
                        if not ptrs[bid]:
                            touched.append(bid)
                        ptrs[bid] = ptr
                        t2s[bid] = t2s_val
                    else:
                        t2s_val = t2s[bid]
                    if t2s_val >= 0 and t2s_val != t1s:
                        co_append(t2s_val | t1)
                        cok_append(key)
        # Pointer state is per-session: clear only the touched slots.
        for bid in touched:
            ptrs[bid] = 0
            t2s[bid] = -1
        del touched[:]
    return "fallback"


# -- retirement support --------------------------------------------------------


def _compact_writer_registry_fallback(
    wb_bucket: "array",
    wb_sidx: "array",
    wb_tid: "array",
    removed: Dict[int, int],
):
    seen: Dict[int, int] = {}
    new_bucket = array("q")
    new_sidx = array("q")
    new_tid = array("q")
    get_removed = removed.get
    for i in range(len(wb_bucket)):
        bid = wb_bucket[i]
        rank = seen.get(bid, 0)
        seen[bid] = rank + 1
        if rank < get_removed(bid, 0):
            continue
        new_bucket.append(bid)
        new_sidx.append(wb_sidx[i])
        new_tid.append(wb_tid[i])
    return new_bucket, new_sidx, new_tid


def compact_writer_registry(
    wb_bucket: "array",
    wb_sidx: "array",
    wb_tid: "array",
    removed: Dict[int, int],
    num_buckets: int,
):
    """Drop each bucket's first ``removed[bucket]`` rows from the flat registry.

    The online fold's writer registry (``bucket``/``sidx``/``tid`` parallel
    ``array('q')`` rows, appended in arrival order) is what the deferred
    probe flush sorts into the composite ``bucket * 2^32 + sidx`` index.
    Retirement removes a *prefix* of each bucket -- rows are appended in
    ascending session index per bucket, and the retired rows are exactly the
    oldest -- so compaction is "skip the first N occurrences of each bucket"
    while preserving the original append order (future stable argsorts then
    still see ascending session indices per bucket).

    Returns three fresh ``array('q')`` rows.  Vectorized and fallback
    implementations are bit-identical (property-tested in
    ``tests/test_retire.py``).
    """
    if _np is None or len(wb_bucket) < _MIN_VECTOR_READS or num_buckets <= 0:
        return _compact_writer_registry_fallback(wb_bucket, wb_sidx, wb_tid, removed)
    np = _np
    bucket = np.frombuffer(wb_bucket, dtype=np.int64)
    total = len(bucket)
    order = np.argsort(bucket, kind="stable")
    sorted_bucket = bucket[order]
    # Rank of each row within its bucket: position in the stable sort minus
    # the index of the bucket's first sorted occurrence.
    first = np.searchsorted(sorted_bucket, sorted_bucket, side="left")
    rank = np.arange(total, dtype=np.int64) - first
    drop = np.zeros(num_buckets, dtype=np.int64)
    for bid, count in removed.items():
        drop[bid] = count
    keep_sorted = rank >= drop[sorted_bucket]
    keep = np.empty(total, dtype=bool)
    keep[order] = keep_sorted
    new_bucket = array("q")
    new_sidx = array("q")
    new_tid = array("q")
    new_bucket.frombytes(bucket[keep].tobytes())
    new_sidx.frombytes(np.frombuffer(wb_sidx, dtype=np.int64)[keep].tobytes())
    new_tid.frombytes(np.frombuffer(wb_tid, dtype=np.int64)[keep].tobytes())
    return new_bucket, new_sidx, new_tid


# -- online columnar fold state (clock join + park queue) ----------------------

#: Below this many joined cells (writer rows x clock stride) the numpy view
#: setup costs more than the interpreted max loop; both paths are
#: bit-identical, so the cutoff is pure tuning (small-session histories --
#: the fig9 shape -- stay scalar on purpose, which the ``join_kernel`` stat
#: reports as ``fallback``/``mixed`` without that being a regression).
_MIN_JOIN_CELLS = 1024


def _join_clocks_fallback(hb_data, stride, sc_data, soff, rows, wsids, wsidxs):
    out = sc_data[soff : soff + stride]
    for wj in rows:
        boff = wj * stride
        for s in range(stride):
            value = hb_data[boff + s]
            if value > out[s]:
                out[s] = value
    for i, wsid in enumerate(wsids):
        if wsidxs[i] > out[wsid]:
            out[wsid] = wsidxs[i]
    return out


def join_clocks(hb_data, stride, sc_data, soff, rows, wsids, wsidxs):
    """Join one transaction's causal clock from its writers' hb matrix rows.

    ``hb_data`` is the flat row-major hb matrix (``array('q')``, one
    ``stride``-wide row per resident transaction, ``-1`` = "no entry") and
    ``sc_data[soff:soff+stride]`` the reader session's base clock row.
    ``rows`` are the matrix row indices of the (pre-filtered) external
    writers to join, and ``wsids``/``wsidxs`` their session id / session
    index pairs for the per-writer bump.  Returns ``(row, vectorized)``
    where ``row`` is a fresh ``array('q')`` of the joined clock.

    The join is a pure elementwise maximum -- the base clock, every
    writer's full row, and a scatter-max of each writer's own session
    index -- so the two implementations are bit-identical by construction
    (hypothesis-pinned in ``tests/test_columnar_fold.py``); the caller
    applies the same-session and dominated-writer pre-filters identically
    on both paths.  Vector-clock transitivity makes the commuted order
    safe: every installed hb entry carries that transaction's full causal
    past, so joining a dominated or repeated writer is a value-level no-op.
    """
    if _np is None or len(rows) * stride < _MIN_JOIN_CELLS:
        return (
            _join_clocks_fallback(hb_data, stride, sc_data, soff, rows, wsids, wsidxs),
            False,
        )
    np = _np
    hb_view = np.frombuffer(hb_data, dtype=np.int64).reshape(-1, stride)
    out = hb_view[np.asarray(rows, dtype=np.int64)].max(axis=0)
    base = np.frombuffer(sc_data, dtype=np.int64)[soff : soff + stride]
    np.maximum(out, base, out=out)
    np.maximum.at(
        out,
        np.asarray(wsids, dtype=np.int64),
        np.asarray(wsidxs, dtype=np.int64),
    )
    row = array("q")
    row.frombytes(out.tobytes())
    return row, True


class ParkQueue:
    """Columnar park queue: packed write id -> flat ``(tid, slot)`` pairs.

    The streaming fold's multimap of reads waiting for a write to arrive,
    with no per-read objects resident: each value is one ``array('q')`` of
    interleaved pairs in arrival order.  ``slot >= 0`` indexes the reader's
    live-read list (the general slow path); ``slot < 0`` encodes a
    clean-parked read of a prefold transaction as ``-(read_index) - 1``
    (its key/value ids are recoverable from the packed wid, and its
    eventual binding is already known to the resolve kernel).  Pops
    preserve arrival order exactly, and iteration order over wids is
    insertion order -- both are contractual for park/rebind/thin-air
    timing.  Plain dict-of-arrays, so checkpoints pickle it directly.
    """

    __slots__ = ("_rows",)

    def __init__(self) -> None:
        self._rows: Dict[int, "array"] = {}

    def add(self, wid: int, tid: int, slot: int) -> None:
        row = self._rows.get(wid)
        if row is None:
            row = array("q")
            self._rows[wid] = row
        row.append(tid)
        row.append(slot)

    def pop(self, wid: int):
        """Remove and return the wid's pair row (``None`` when absent)."""
        return self._rows.pop(wid, None)

    def wids(self):
        """Parked wids in first-park order (the thin-air drain order)."""
        return self._rows.keys()

    def items(self):
        return self._rows.items()

    def rows(self):
        return self._rows.values()

    def clear(self) -> None:
        self._rows.clear()

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __contains__(self, wid: int) -> bool:
        return wid in self._rows

    def __getstate__(self):
        return self._rows

    def __setstate__(self, rows) -> None:
        self._rows = rows


# -- online read resolution (the streaming fold's classify kernel) -------------

#: Tail entries beyond ``max(this, min(main_len / 4, _TAIL_MERGE_MAX))``
#: trigger a merge of the incrementally sorted indexes below; amortized
#: O(log) merges per doubling, with the cap bounding how much tail the
#: per-batch sync ever has to carry on multi-hundred-k-write streams.
_TAIL_MERGE_MIN = 4096
_TAIL_MERGE_MAX = 65536


class ResolvedBatch:
    """Read-resolution answers for one record batch, plain Python columns.

    Produced by :func:`resolve_reads`.  Rows are CSR-sliced per transaction:
    transaction ``t``'s reads are rows ``r_start[t]:r_start[t+1]`` of the
    ``r_*`` columns (committed transactions only -- aborted reads never
    resolve), its writes rows ``w_start[t]:w_start[t+1]`` of the ``w_*``
    columns.  A read is *clean* when its wid resolves uniquely to a final
    write of a committed external transaction and the reader has no earlier
    own write to the key: ``r_fast[j]`` marks a clean read whose writer is
    already registered (or earlier in the batch) -- bindable at the
    reader's consume without probing the writes dict -- while a clean read
    of a *later* batch transaction still parks, exactly like the scalar
    fold, and binds when that writer registers.  ``r_writer``/``r_windex``
    carry the (eventual) binding for every clean row and ``-1`` otherwise.
    ``txn_fast[t]`` is true when every read of a committed transaction is
    fast (the fold folds it straight off these columns); ``txn_clean[t]``
    when every read is at least clean (the fold precomputes the fold-time
    structures and skips rebind tracking -- no in-batch supersede can ever
    touch a clean wid); ``txn_hazard[t]`` is true when any write of the
    transaction collides with the registry or with another batch write
    (registration must replay the exact scalar supersede protocol).

    The ``nh_*`` columns carry the registration notes for every write of a
    *non-hazardous* transaction (batch order, ``nh_tid`` absolute,
    ``nh_flag = final<<1 | committed``): those wids are fresh and unique by
    construction, so the fold hands them to
    :meth:`WritesIndex.note_insert_columns` in one call per batch instead
    of one note per transaction.  Hazardous registrations stay scalar.
    """

    __slots__ = (
        "kernel",
        "r_start",
        "r_index",
        "r_kid",
        "r_vid",
        "r_wid",
        "r_own_prev",
        "r_fast",
        "r_writer",
        "r_windex",
        "w_start",
        "w_index",
        "w_kid",
        "w_wid",
        "w_final",
        "nh_wid",
        "nh_tid",
        "nh_windex",
        "nh_flag",
        "txn_fast",
        "txn_clean",
        "txn_hazard",
    )


class WritesIndex:
    """Incrementally sorted flat mirror of the online writes registry.

    The vectorized :func:`resolve_reads` answers "is this packed write id
    registered, by whom, final, committed?" for a whole batch with one
    ``searchsorted`` -- which needs the registry as sorted flat arrays, not
    a dict.  This class maintains that mirror *incrementally*: a sorted
    ``main`` (wid-sorted int64 columns) plus a small append ``tail`` (plain
    Python lists, with a sorted array cache synced by delta-merge each
    batch), merged into ``main`` only when the tail outgrows
    ``max(_TAIL_MERGE_MIN, min(len(main) / 4, _TAIL_MERGE_MAX))``, so
    per-batch upkeep is O(batch) amortized instead of an O(registry)
    re-sort per batch.

    The mirror is derived state: it is never pickled (checkpoints carry the
    dict; ``__setstate__`` starts a fresh dirty mirror), and retirement
    compaction / value-id remapping simply :meth:`invalidate` it -- the next
    vectorized batch rebuilds from the dict.  The ``committed`` bit is
    cached per entry at registration; a transaction's committed flag never
    changes after creation, so the cache cannot go stale.
    """

    __slots__ = (
        "_enabled",
        "_dirty",
        "m_wid",
        "m_tid",
        "m_wx",
        "m_flag",
        "t_wid",
        "t_tid",
        "t_wx",
        "t_flag",
        "t_pos",
        "t_synced",
        "_tail_stale",
        "s_wid",
        "s_tid",
        "s_wx",
        "s_flag",
    )

    def __init__(self) -> None:
        self._enabled = _np is not None
        self._dirty = True
        if self._enabled:
            self._reset()

    def _reset(self) -> None:
        np = _np
        self.m_wid = np.zeros(0, dtype=np.int64)
        self.m_tid = np.zeros(0, dtype=np.int64)
        self.m_wx = np.zeros(0, dtype=np.int64)
        self.m_flag = np.zeros(0, dtype=np.uint8)
        self.t_wid: List[int] = []
        self.t_tid: List[int] = []
        self.t_wx: List[int] = []
        self.t_flag: List[int] = []
        self.t_pos: Optional[Dict[int, int]] = None
        self.t_synced = 0
        self._tail_stale = False
        self.s_wid = self.m_wid
        self.s_tid = self.m_tid
        self.s_wx = self.m_wx
        self.s_flag = self.m_flag

    def invalidate(self) -> None:
        """Drop the mirror; the next :meth:`ensure` rebuilds from the dict.

        Called whenever wids or entries change behind the mirror's back:
        retirement eviction, value-intern remapping, checkpoint restore.
        """
        self._dirty = True
        if self._enabled:
            self._reset()

    # -- registration notes (cheap, called from the fold's scalar loop) --------

    def note_insert(self, wid: int, tid: int, windex: int, final: bool, committed: bool) -> None:
        if not self._enabled or self._dirty:
            return
        self.t_wid.append(wid)
        self.t_tid.append(tid)
        self.t_wx.append(windex)
        self.t_flag.append((2 if final else 0) | (1 if committed else 0))
        if self.t_pos is not None:
            self.t_pos[wid] = len(self.t_wid) - 1
        self._tail_stale = True

    def note_insert_many(
        self,
        wids: Sequence[int],
        tid: int,
        windexes: Sequence[int],
        finals: Sequence[bool],
        committed: bool,
    ) -> None:
        if not self._enabled or self._dirty or not wids:
            return
        self.t_wid.extend(wids)
        self.t_wx.extend(windexes)
        c = 1 if committed else 0
        self.t_flag.extend((2 | c) if f else c for f in finals)
        self.t_tid.extend([tid] * len(wids))
        self.t_pos = None
        self._tail_stale = True

    def note_insert_columns(
        self,
        wids: Sequence[int],
        tids: Sequence[int],
        windexes: Sequence[int],
        flags: Sequence[int],
    ) -> None:
        """Bulk-append one batch's non-hazardous registrations to the tail.

        The wids are fresh and mutually unique (resolve_reads routes every
        colliding wid through the scalar protocol), so they can land after
        the batch's scalar hazard notes without reordering concerns -- the
        tail is keyed by wid and the two sets are disjoint.
        """
        if not self._enabled or self._dirty or not wids:
            return
        self.t_wid.extend(wids)
        self.t_tid.extend(tids)
        self.t_wx.extend(windexes)
        self.t_flag.extend(flags)
        self.t_pos = None
        self._tail_stale = True

    def note_update(self, wid: int, tid: int, windex: int, final: bool, committed: bool) -> None:
        """A supersede replaced the dict entry for ``wid`` in place."""
        np = _np
        if not self._enabled or self._dirty:
            return
        flag = (2 if final else 0) | (1 if committed else 0)
        m_wid = self.m_wid
        if m_wid.shape[0]:
            pos = int(np.searchsorted(m_wid, wid))
            if pos < m_wid.shape[0] and int(m_wid[pos]) == wid:
                self.m_tid[pos] = tid
                self.m_wx[pos] = windex
                self.m_flag[pos] = flag
                return
        if self.t_pos is None:
            self.t_pos = {w: i for i, w in enumerate(self.t_wid)}
        i = self.t_pos.get(wid)
        if i is None:  # pragma: no cover - defensive; wid must be resident
            self._dirty = True
            return
        self.t_tid[i] = tid
        self.t_wx[i] = windex
        self.t_flag[i] = flag
        if i < self.t_synced:
            # The mutated entry is already inside the converted sorted-tail
            # prefix; force a full re-sort at the next sync.
            self.t_synced = 0
        self._tail_stale = True

    # -- batch-time sync -------------------------------------------------------

    def ensure(self, writes: Dict[int, tuple], committed_of) -> bool:
        """Bring the mirror up to date; False means "use the fallback"."""
        if not self._enabled:
            return False
        if self._dirty:
            self._rebuild(writes, committed_of)
        else:
            if self._tail_stale:
                self._refresh_tail()
            if len(self.t_wid) > max(
                _TAIL_MERGE_MIN, min(self.m_wid.shape[0] >> 2, _TAIL_MERGE_MAX)
            ):
                self._merge_tail()
        return True

    def _rebuild(self, writes: Dict[int, tuple], committed_of) -> None:
        np = _np
        self._reset()
        n = len(writes)
        if n:
            wid = np.fromiter(writes.keys(), np.int64, n)
            tid = np.empty(n, dtype=np.int64)
            wx = np.empty(n, dtype=np.int64)
            flag = np.empty(n, dtype=np.uint8)
            i = 0
            for entry in writes.values():
                t = entry[3]
                tid[i] = t
                wx[i] = entry[2]
                flag[i] = (2 if entry[4] else 0) | (1 if committed_of(t) else 0)
                i += 1
            order = np.argsort(wid)
            self.m_wid = wid[order]
            self.m_tid = tid[order]
            self.m_wx = wx[order]
            self.m_flag = flag[order]
        self._dirty = False

    def _merge_tail(self) -> None:
        # The sorted-tail cache is in sync here (``ensure`` refreshes it
        # first), so this is a two-run merge of already-sorted columns:
        # searchsorted positions plus one masked scatter per column, with
        # no argsort over the whole registry.
        np = _np
        a_wid = self.m_wid
        b_wid = self.s_wid
        pos = np.searchsorted(a_wid, b_wid)
        n = a_wid.shape[0] + b_wid.shape[0]
        idx_b = pos + np.arange(b_wid.shape[0], dtype=np.int64)
        mask = np.ones(n, dtype=bool)
        mask[idx_b] = False
        for name in ("wid", "tid", "wx", "flag"):
            a = getattr(self, "m_" + name)
            b = getattr(self, "s_" + name)
            out = np.empty(n, dtype=a.dtype)
            out[idx_b] = b
            out[mask] = a
            setattr(self, "m_" + name, out)
        self.t_wid = []
        self.t_tid = []
        self.t_wx = []
        self.t_flag = []
        self.t_pos = None
        self.t_synced = 0
        empty = np.zeros(0, dtype=np.int64)
        self.s_wid = empty
        self.s_tid = empty
        self.s_wx = empty
        self.s_flag = np.zeros(0, dtype=np.uint8)
        self._tail_stale = False

    def _refresh_tail(self) -> None:
        # Convert and sort only the entries appended since the last sync:
        # the synced prefix is already sorted in ``s_*``, and the delta is
        # folded in with one linear two-run merge per column.  Re-sorting
        # the whole tail each batch costs a per-element Python list -> array
        # conversion of the entire tail, which dominated the classify lap
        # (~0.8s) on 600k-op streams.
        np = _np
        t_wid = self.t_wid
        n = len(t_wid)
        k = self.t_synced
        if n == 0:
            empty = np.zeros(0, dtype=np.int64)
            self.s_wid = empty
            self.s_tid = empty
            self.s_wx = empty
            self.s_flag = np.zeros(0, dtype=np.uint8)
            self.t_synced = 0
            self._tail_stale = False
            return
        if k == 0 or k > n:
            wid = np.asarray(t_wid, dtype=np.int64)
            order = np.argsort(wid)
            self.s_wid = wid[order]
            self.s_tid = np.asarray(self.t_tid, dtype=np.int64)[order]
            self.s_wx = np.asarray(self.t_wx, dtype=np.int64)[order]
            self.s_flag = np.asarray(self.t_flag, dtype=np.uint8)[order]
        elif k < n:
            dw = np.asarray(t_wid[k:], dtype=np.int64)
            order = np.argsort(dw)
            dw = dw[order]
            delta = (
                ("wid", dw),
                ("tid", np.asarray(self.t_tid[k:], dtype=np.int64)[order]),
                ("wx", np.asarray(self.t_wx[k:], dtype=np.int64)[order]),
                ("flag", np.asarray(self.t_flag[k:], dtype=np.uint8)[order]),
            )
            a_wid = self.s_wid
            pos = np.searchsorted(a_wid, dw)
            m = a_wid.shape[0] + dw.shape[0]
            idx_b = pos + np.arange(dw.shape[0], dtype=np.int64)
            mask = np.ones(m, dtype=bool)
            mask[idx_b] = False
            for name, b in delta:
                a = getattr(self, "s_" + name)
                out = np.empty(m, dtype=a.dtype)
                out[idx_b] = b
                out[mask] = a
                setattr(self, "s_" + name, out)
        self.t_synced = n
        self._tail_stale = False

    # -- vectorized probes -----------------------------------------------------

    def contains(self, wids) -> "object":
        """Boolean array: is each wid registered (main or tail)?"""
        np = _np
        found = np.zeros(wids.shape[0], dtype=bool)
        for col in (self.m_wid, self.s_wid):
            if col.shape[0]:
                pos = np.searchsorted(col, wids)
                pc = np.minimum(pos, col.shape[0] - 1)
                found |= col[pc] == wids
        return found

    def lookup(self, wids):
        """``(found, tid, windex, flag)`` arrays; flag = final<<1 | committed."""
        np = _np
        n = wids.shape[0]
        found = np.zeros(n, dtype=bool)
        tid = np.full(n, -1, dtype=np.int64)
        wx = np.full(n, -1, dtype=np.int64)
        flag = np.zeros(n, dtype=np.uint8)
        for col, ctid, cwx, cflag in (
            (self.m_wid, self.m_tid, self.m_wx, self.m_flag),
            (self.s_wid, self.s_tid, self.s_wx, self.s_flag),
        ):
            if not col.shape[0]:
                continue
            pos = np.searchsorted(col, wids)
            pc = np.minimum(pos, col.shape[0] - 1)
            hit = col[pc] == wids
            if hit.any():
                found |= hit
                tid = np.where(hit, ctid[pc], tid)
                wx = np.where(hit, cwx[pc], wx)
                flag = np.where(hit, cflag[pc], flag)
        return found, tid, wx, flag


def resolve_reads(
    index: Optional[WritesIndex],
    writes: Dict[int, tuple],
    committed_of,
    kid_col: Sequence[int],
    vid_col: Sequence[int],
    kinds,
    txn_end,
    committed_col,
    tid0: int,
) -> ResolvedBatch:
    """Resolve a whole batch's reads against the writes registry at once.

    Inputs are the record batch's interned columns (``vid_col`` is ``-1``
    only at aborted-transaction reads, which never resolve), the *pre-batch*
    writes dict (not yet mutated by this batch), its sorted mirror, a
    ``committed_of(tid)`` predicate for registry writers, and the tid the
    batch's first transaction will get.  Output is a :class:`ResolvedBatch`
    of plain Python columns -- the fold's scalar control loop consumes them
    in exactly today's order, so park/rebind/refusal semantics and error
    timing are untouched; only the per-read probing is batched.

    A read is *fast* iff its wid resolves uniquely to a final write of a
    committed external transaction and the reader has no earlier own write
    to the key -- precisely the reads the fold's inline check (and the
    common exit of ``_classify``) binds without recording a violation.  Any
    wid written twice in the batch, or written in the batch *and* already
    registered, is hazardous: its reads and its writers' registrations drop
    to the exact scalar path, which replays the supersede/rebind protocol
    against the live dict.  Both implementations produce identical columns
    (property-tested in ``tests/test_resolve_kernel.py``).
    """
    if (
        _np is not None
        and index is not None
        and len(kinds) >= _MIN_VECTOR_READS
        and index.ensure(writes, committed_of)
    ):
        out = _resolve_reads_vectorized(
            index, kid_col, vid_col, kinds, txn_end, committed_col, tid0
        )
        if out is not None:
            return out
    return _resolve_reads_fallback(
        writes, committed_of, kid_col, vid_col, kinds, txn_end, committed_col, tid0
    )


def _resolve_reads_vectorized(
    index, kid_col, vid_col, kinds, txn_end, committed_col, tid0
):
    np = _np
    n = len(kinds)
    num_txn = len(txn_end)
    kid = np.asarray(kid_col, dtype=np.int64)
    if int(kid.max()) >= (1 << 31) or tid0 + num_txn >= (1 << 31):
        # Packed-wid / grouping-key head-room gone (2^31 keys, or the tid
        # guard will fire mid-batch); the fallback's Python ints can't
        # overflow and the fold raises at the exact transaction either way.
        return None
    vid = np.asarray(vid_col, dtype=np.int64)
    kindm = np.frombuffer(kinds, dtype=np.uint8).astype(bool)
    ends = np.frombuffer(txn_end, dtype=np.int64).copy()
    committed_t = np.frombuffer(committed_col, dtype=np.uint8).astype(bool)
    starts = np.empty(num_txn, dtype=np.int64)
    starts[0] = 0
    starts[1:] = ends[:-1]
    span = ends - starts
    txn_of = np.repeat(np.arange(num_txn, dtype=np.int64), span)
    lidx = np.arange(n, dtype=np.int64) - starts[txn_of]
    wid_all = (kid << _VALUE_SHIFT) | vid

    # Last own write preceding each op: segmented running max of (write
    # position + 1) over ops grouped by (txn, key) in program order.
    order2 = np.lexsort((kid, txn_of))
    g = (txn_of[order2] << 31) | kid[order2]
    newseg = np.empty(n, dtype=bool)
    newseg[0] = True
    np.not_equal(g[1:], g[:-1], out=newseg[1:])
    segid = np.cumsum(newseg) - 1
    span_const = n + 2
    wval = np.where(kindm[order2], lidx[order2] + 1, 0)
    packed = segid * span_const + wval
    np.maximum.accumulate(packed, out=packed)
    own_sorted = packed - segid * span_const - 1
    own_prev = np.empty(n, dtype=np.int64)
    own_prev[order2] = own_sorted

    # Write columns + in-batch duplicate / registry-collision hazards.
    wpos = np.flatnonzero(kindm)
    nw = wpos.shape[0]
    w_txn = txn_of[wpos]
    w_kid_a = kid[wpos]
    w_wid_a = wid_all[wpos]
    w_lidx_a = lidx[wpos]
    if nw:
        gk = (w_txn << 31) | w_kid_a
        order3 = np.lexsort((w_lidx_a, gk))
        gk_s = gk[order3]
        last = np.empty(nw, dtype=bool)
        np.not_equal(gk_s[1:], gk_s[:-1], out=last[:-1])
        last[-1] = True
        w_final_a = np.empty(nw, dtype=bool)
        w_final_a[order3] = last

        order_w = np.argsort(w_wid_a, kind="stable")
        sw = w_wid_a[order_w]
        dup_s = np.zeros(nw, dtype=bool)
        if nw > 1:
            eq = sw[1:] == sw[:-1]
            dup_s[1:] = eq
            dup_s[:-1] |= eq
        hot_s = dup_s | index.contains(sw)
        w_hot = np.empty(nw, dtype=bool)
        w_hot[order_w] = hot_s
        txn_hazard = np.bincount(w_txn[w_hot], minlength=num_txn) > 0

        nh = ~txn_hazard[w_txn]
        nh_wid_a = w_wid_a[nh]
        nh_tid_a = w_txn[nh] + tid0
        nh_windex_a = w_lidx_a[nh]
        nh_flag_a = (w_final_a[nh].astype(np.uint8) << 1) | committed_t[
            w_txn[nh]
        ].astype(np.uint8)
    else:
        w_final_a = np.zeros(0, dtype=bool)
        txn_hazard = np.zeros(num_txn, dtype=bool)
        nh_wid_a = nh_tid_a = nh_windex_a = np.zeros(0, dtype=np.int64)
        nh_flag_a = np.zeros(0, dtype=np.uint8)

    # Read columns: resolve each committed read's wid against the batch's
    # writes (searchsorted over the sorted write wids; the leftmost match
    # is the unique one whenever the wid is clean) and the registry mirror.
    rpos = np.flatnonzero((~kindm) & committed_t[txn_of])
    nr = rpos.shape[0]
    r_txn = txn_of[rpos]
    r_kid_a = kid[rpos]
    r_vid_a = vid[rpos]
    r_wid_a = wid_all[rpos]
    r_lidx_a = lidx[rpos]
    r_ownp_a = own_prev[rpos]
    if nr:
        ownp_none = r_ownp_a < 0
        if nw:
            p = np.searchsorted(sw, r_wid_a)
            pc = np.minimum(p, nw - 1)
            in_b = sw[pc] == r_wid_a
            widx = order_w[pc]
            m_txn = w_txn[widx]
            m_hot = hot_s[pc]
            # Clean: unique in-batch writer, final, committed, external
            # (same-transaction matches are future reads / own reads, never
            # clean), no earlier own write.  Fast additionally requires the
            # writer to precede the reader; a clean read of a *later*
            # transaction parks and binds when that writer registers.
            clean = (
                in_b
                & ~m_hot
                & (m_txn != r_txn)
                & w_final_a[widx]
                & committed_t[m_txn]
                & ownp_none
            )
            fast = clean & (m_txn < r_txn)
            r_writer_a = np.where(clean, m_txn + tid0, -1)
            r_windex_a = np.where(clean, w_lidx_a[widx], -1)
        else:
            in_b = np.zeros(nr, dtype=bool)
            clean = np.zeros(nr, dtype=bool)
            fast = clean
            r_writer_a = np.full(nr, -1, dtype=np.int64)
            r_windex_a = np.full(nr, -1, dtype=np.int64)
        reg_found, g_tid, g_wx, g_flag = index.lookup(r_wid_a)
        reg_fast = (
            (~in_b)
            & reg_found
            & (g_flag & 2).astype(bool)
            & (g_flag & 1).astype(bool)
            & ownp_none
        )
        fast = fast | reg_fast
        clean = clean | reg_fast
        r_writer_a = np.where(reg_fast, g_tid, r_writer_a)
        r_windex_a = np.where(reg_fast, g_wx, r_windex_a)
        nonfast = np.bincount(r_txn[~fast], minlength=num_txn)
        txn_fast = committed_t & (nonfast == 0)
        nonclean = np.bincount(r_txn[~clean], minlength=num_txn)
        txn_clean = committed_t & (nonclean == 0)
        r_counts = np.bincount(r_txn, minlength=num_txn)
    else:
        fast = np.zeros(0, dtype=bool)
        r_writer_a = np.zeros(0, dtype=np.int64)
        r_windex_a = np.zeros(0, dtype=np.int64)
        txn_fast = committed_t.copy()
        txn_clean = txn_fast
        r_counts = np.zeros(num_txn, dtype=np.int64)

    out = ResolvedBatch()
    out.kernel = "vectorized"
    r_start = np.empty(num_txn + 1, dtype=np.int64)
    r_start[0] = 0
    np.cumsum(r_counts, out=r_start[1:])
    w_start = np.empty(num_txn + 1, dtype=np.int64)
    w_start[0] = 0
    np.cumsum(np.bincount(w_txn, minlength=num_txn), out=w_start[1:])
    out.r_start = r_start.tolist()
    out.r_index = r_lidx_a.tolist()
    out.r_kid = r_kid_a.tolist()
    out.r_vid = r_vid_a.tolist()
    out.r_wid = r_wid_a.tolist()
    out.r_own_prev = r_ownp_a.tolist()
    out.r_fast = fast.tolist()
    out.r_writer = r_writer_a.tolist()
    out.r_windex = r_windex_a.tolist()
    out.w_start = w_start.tolist()
    out.w_index = w_lidx_a.tolist()
    out.w_kid = w_kid_a.tolist()
    out.w_wid = w_wid_a.tolist()
    out.w_final = w_final_a.tolist()
    out.nh_wid = nh_wid_a.tolist()
    out.nh_tid = nh_tid_a.tolist()
    out.nh_windex = nh_windex_a.tolist()
    out.nh_flag = nh_flag_a.tolist()
    out.txn_fast = txn_fast.tolist()
    out.txn_clean = txn_clean.tolist()
    out.txn_hazard = txn_hazard.tolist()
    return out


def _resolve_reads_fallback(
    writes, committed_of, kid_col, vid_col, kinds, txn_end, committed_col, tid0
):
    r_start = [0]
    r_index: List[int] = []
    r_kid: List[int] = []
    r_vid: List[int] = []
    r_wid: List[int] = []
    r_own_prev: List[int] = []
    r_fast: List[bool] = []
    r_writer: List[int] = []
    r_windex: List[int] = []
    w_start = [0]
    w_index: List[int] = []
    w_kid: List[int] = []
    w_wid: List[int] = []
    w_final: List[bool] = []
    nh_wid: List[int] = []
    nh_tid: List[int] = []
    nh_windex: List[int] = []
    nh_flag: List[int] = []
    txn_fast: List[bool] = []
    txn_clean: List[bool] = []
    txn_hazard: List[bool] = []

    # Pass 1: write columns, plus the first occurrence (and occurrence
    # count) of every wid written in the batch -- the vectorized side's
    # leftmost-stable-sorted match, reproduced with a dict.
    batch_w: Dict[int, List[int]] = {}
    spans: List[Tuple[int, int]] = []
    lo = 0
    for t, hi in enumerate(txn_end):
        final_write: Dict[int, int] = {}
        txn_writes: List[Tuple[int, int, int]] = []
        for i in range(lo, hi):
            if kinds[i]:
                kid = kid_col[i]
                index = i - lo
                final_write[kid] = index
                txn_writes.append((kid, (kid << _VALUE_SHIFT) | vid_col[i], index))
        for kid, wid, index in txn_writes:
            fl = final_write[kid] == index
            w_kid.append(kid)
            w_wid.append(wid)
            w_index.append(index)
            w_final.append(fl)
            entry = batch_w.get(wid)
            if entry is None:
                batch_w[wid] = [1, t, index, fl]
            else:
                entry[0] += 1
        w_start.append(len(w_wid))
        spans.append((lo, hi))
        lo = hi

    # Pass 2: per-transaction hazard flag and read resolution (own-write
    # replay in program order, exactly the scalar fold's scan).
    for t, (lo, hi) in enumerate(spans):
        hazard = False
        for k in range(w_start[t], w_start[t + 1]):
            wid = w_wid[k]
            if batch_w[wid][0] > 1 or wid in writes:
                hazard = True
                break
        txn_hazard.append(hazard)
        committed = bool(committed_col[t])
        if not hazard and w_start[t] != w_start[t + 1]:
            c = 1 if committed else 0
            tid = tid0 + t
            for k in range(w_start[t], w_start[t + 1]):
                nh_wid.append(w_wid[k])
                nh_tid.append(tid)
                nh_windex.append(w_index[k])
                nh_flag.append((2 | c) if w_final[k] else c)
        own: Dict[int, int] = {}
        own_get = own.get
        all_fast = True
        all_clean = True
        for i in range(lo, hi):
            kid = kid_col[i]
            if kinds[i]:
                own[kid] = i - lo
            elif committed:
                vid = vid_col[i]
                wid = (kid << _VALUE_SHIFT) | vid
                ownp = own_get(kid, -1)
                fast = False
                clean = False
                writer = -1
                windex = -1
                bw = batch_w.get(wid)
                if bw is not None:
                    if bw[0] == 1 and wid not in writes:
                        wtxn = bw[1]
                        if (
                            wtxn != t
                            and bw[3]
                            and committed_col[wtxn]
                            and ownp < 0
                        ):
                            clean = True
                            fast = wtxn < t
                            writer = tid0 + wtxn
                            windex = bw[2]
                else:
                    hit = writes.get(wid)
                    if (
                        hit is not None
                        and hit[4]
                        and ownp < 0
                        and committed_of(hit[3])
                    ):
                        fast = True
                        clean = True
                        writer = hit[3]
                        windex = hit[2]
                if not fast:
                    all_fast = False
                if not clean:
                    all_clean = False
                r_index.append(i - lo)
                r_kid.append(kid)
                r_vid.append(vid)
                r_wid.append(wid)
                r_own_prev.append(ownp)
                r_fast.append(fast)
                r_writer.append(writer)
                r_windex.append(windex)
        r_start.append(len(r_index))
        txn_fast.append(committed and all_fast)
        txn_clean.append(committed and all_clean)

    out = ResolvedBatch()
    out.kernel = "fallback"
    out.r_start = r_start
    out.r_index = r_index
    out.r_kid = r_kid
    out.r_vid = r_vid
    out.r_wid = r_wid
    out.r_own_prev = r_own_prev
    out.r_fast = r_fast
    out.r_writer = r_writer
    out.r_windex = r_windex
    out.w_start = w_start
    out.w_index = w_index
    out.w_kid = w_kid
    out.w_wid = w_wid
    out.w_final = w_final
    out.nh_wid = nh_wid
    out.nh_tid = nh_tid
    out.nh_windex = nh_windex
    out.nh_flag = nh_flag
    out.txn_fast = txn_fast
    out.txn_clean = txn_clean
    out.txn_hazard = txn_hazard
    return out


class WriterProbeIndex:
    """Incrementally sorted view of the CC writer registry for probe flushes.

    The vectorized probe flush used to re-``argsort`` the *entire*
    append-order writer registry every batch -- the dominant cost of the
    small-``batch_ops`` regime (the ``BENCH_7`` 64-ops cliff).  This cache
    keeps the registry's ``bucket * _SIDX_SPAN + sidx`` composite sorted
    incrementally: a ``main`` sorted run with precomputed per-bucket starts,
    plus a small sorted ``tail`` of rows appended since the last merge.  A
    probe takes the later of the two runs' answers; (bucket, sidx) pairs are
    unique (one registration per (transaction, key)), so "later" is a plain
    composite comparison.

    Derived state, like :class:`WritesIndex`: never pickled, and
    :meth:`invalidate` resets it whenever retirement compacts the registry
    out from under the cache.
    """

    __slots__ = ("_synced", "main_comp", "main_tid", "bucket_start", "tail_comp", "tail_tid")

    def __init__(self) -> None:
        self._synced = 0
        if _np is not None:
            empty = _np.zeros(0, dtype=_np.int64)
            self.main_comp = empty
            self.main_tid = empty
            self.tail_comp = empty
            self.tail_tid = empty
            self.bucket_start = None

    def invalidate(self) -> None:
        self._synced = 0
        if _np is not None:
            empty = _np.zeros(0, dtype=_np.int64)
            self.main_comp = empty
            self.main_tid = empty
            self.tail_comp = empty
            self.tail_tid = empty
            self.bucket_start = None

    def sync(self, wb_bucket, wb_sidx, wb_tid, num_buckets: int) -> None:
        """Fold rows appended since the last sync into the sorted runs.

        Views of the live ``array('q')`` rows are copied immediately -- an
        exported buffer would block the fold's appends -- and the per-bucket
        main starts only extend for newly allocated buckets (which cannot
        have main rows: main froze before they existed).
        """
        np = _np
        total = len(wb_bucket)
        n = self._synced
        if total > n:
            new_comp = (
                np.frombuffer(wb_bucket, dtype=np.int64)[n:] * _SIDX_SPAN
                + np.frombuffer(wb_sidx, dtype=np.int64)[n:]
            )
            new_tid = np.frombuffer(wb_tid, dtype=np.int64)[n:].copy()
            if self.tail_comp.shape[0]:
                comp = np.concatenate((self.tail_comp, new_comp))
                tid = np.concatenate((self.tail_tid, new_tid))
            else:
                comp, tid = new_comp, new_tid
            order = np.argsort(comp)
            self.tail_comp = comp[order]
            self.tail_tid = tid[order]
            self._synced = total
            if self.tail_comp.shape[0] > max(
                _TAIL_MERGE_MIN, self.main_comp.shape[0] >> 2
            ):
                comp = np.concatenate((self.main_comp, self.tail_comp))
                tid = np.concatenate((self.main_tid, self.tail_tid))
                order = np.argsort(comp)
                self.main_comp = comp[order]
                self.main_tid = tid[order]
                empty = np.zeros(0, dtype=np.int64)
                self.tail_comp = empty
                self.tail_tid = empty
                self.bucket_start = None
        bs = self.bucket_start
        if bs is None:
            self.bucket_start = np.searchsorted(
                self.main_comp,
                np.arange(num_buckets, dtype=np.int64) * _SIDX_SPAN,
            )
        elif bs.shape[0] < num_buckets:
            self.bucket_start = np.concatenate(
                (
                    bs,
                    np.full(
                        num_buckets - bs.shape[0],
                        self.main_comp.shape[0],
                        dtype=np.int64,
                    ),
                )
            )

    def probe(self, probe_bucket, bound):
        """``(has, t2)`` arrays: latest registered writer per (bucket, bound)."""
        np = _np
        key = probe_bucket * _SIDX_SPAN + bound
        mc = self.main_comp
        wm = np.searchsorted(mc, key, side="right")
        has_m = wm > self.bucket_start[probe_bucket]
        im = np.maximum(wm - 1, 0)
        t2 = self.main_tid[im] if mc.shape[0] else np.zeros(key.shape[0], dtype=np.int64)
        tc = self.tail_comp
        if tc.shape[0]:
            wt = np.searchsorted(tc, key, side="right")
            ts = np.searchsorted(tc, probe_bucket * _SIDX_SPAN)
            has_t = wt > ts
            it = np.maximum(wt - 1, 0)
            if mc.shape[0]:
                comp_m = mc[im]
                use_t = has_t & (~has_m | (tc[it] > comp_m))
            else:
                use_t = has_t
            t2 = np.where(use_t, self.tail_tid[it], t2)
            return has_m | has_t, t2
        return has_m, t2


# -- batch unique-writes resolution (IR build / byte-range shard workers) ------


def resolve_unique_writes(op_kind, op_key, op_value):
    """Unique-writes wr inference over whole op columns, last write wins.

    The batch twin of :func:`resolve_reads`: given the IR builder's packed
    op columns, return the ``op_wr`` array mapping each read to the global
    op index of the last write of its ``(key, value)`` identity (``-1`` =
    thin air).  The byte-range shard workers' builders call this once per
    merged history at finalize.  Vectorized and fallback are bit-identical.
    """
    n = len(op_key)
    if _np is not None and n >= _MIN_VECTOR_READS:
        out = _resolve_unique_writes_vectorized(op_kind, op_key, op_value)
        if out is not None:
            return out
    return _resolve_unique_writes_fallback(op_kind, op_key, op_value)


def _resolve_unique_writes_vectorized(op_kind, op_key, op_value):
    np = _np
    n = len(op_key)
    key = np.frombuffer(op_key, dtype=np.int64)
    value = np.frombuffer(op_value, dtype=np.int64)
    if int(key.max()) >= (1 << 31) or int(value.max()) >= (1 << _VALUE_SHIFT):
        return None
    kind = np.frombuffer(op_kind, dtype=np.uint8).astype(bool)
    wid = (key << _VALUE_SHIFT) | value
    op_wr = np.full(n, -1, dtype=np.int64)
    wpos = np.flatnonzero(kind)
    if wpos.shape[0]:
        sw_order = np.argsort(wid[wpos], kind="stable")
        sw = wid[wpos][sw_order]
        last = np.empty(sw.shape[0], dtype=bool)
        np.not_equal(sw[1:], sw[:-1], out=last[:-1])
        last[-1] = True
        uw = sw[last]
        usrc = wpos[sw_order][last]
        rpos = np.flatnonzero(~kind)
        if rpos.shape[0]:
            p = np.searchsorted(uw, wid[rpos])
            pc = np.minimum(p, uw.shape[0] - 1)
            found = uw[pc] == wid[rpos]
            op_wr[rpos[found]] = usrc[pc[found]]
    out = array("q")
    out.frombytes(op_wr.tobytes())
    return out


def _resolve_unique_writes_fallback(op_kind, op_key, op_value):
    writes: Dict[int, int] = {}
    for i in range(len(op_key)):
        if op_kind[i]:
            writes[(op_key[i] << _VALUE_SHIFT) | op_value[i]] = i
    op_wr = array("q", [-1]) * len(op_key) if op_key else array("q")
    writes_get = writes.get
    for i in range(len(op_key)):
        if not op_kind[i]:
            source = writes_get((op_key[i] << _VALUE_SHIFT) | op_value[i])
            if source is not None:
                op_wr[i] = source
    return op_wr
