"""AWDIT checkers running on the compiled array IR.

Each function here is a line-by-line port of the corresponding object-path
algorithm (:mod:`repro.core.read_consistency`, :mod:`repro.core.rc`,
:mod:`repro.core.ra`, :mod:`repro.core.cc`) onto
:class:`~repro.core.compiled.ir.CompiledHistory`: identifiers are dense ints,
per-key state lives in int-keyed dicts, and the commit relation is built in
packed-edge form.  The ports preserve the object path's *iteration and edge
insertion orders* exactly, so verdicts, violation kinds, and witness
renderings are byte-identical (property-tested in ``tests/test_compiled.py``);
only the constant factors change.

The module deliberately reaches into the IR's internal flat arrays
(``_xr_*``, ``_kw_*``) instead of the iterator accessors: these loops are the
hot path the compiled layer exists for.

The per-transaction passes accept an optional ``tid_range`` and the
per-session saturations an optional ``sessions`` restriction.  These exist
for the sharded engine (:mod:`repro.shard`): a shard worker runs the *same*
loop over its slice of the history and the shard merge re-applies the
results in global order, so sharded checking cannot drift from this module
-- there is only one implementation of each rule.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.cc import causality_cycles, causality_labels
from repro.core.commit import CommitRelation
from repro.core.compiled.ir import CompiledHistory, compile_history
from repro.core.isolation import IsolationLevel
from repro.core.model import History, OpRef
from repro.core.result import CheckResult, Stopwatch
from repro.core.violations import (
    ReadConsistencyViolation,
    RepeatableReadViolation,
    Violation,
    ViolationKind,
)
from repro.graph.csr import freeze_packed, toposort_frozen
from repro.graph.digraph import EDGE_SHIFT

__all__ = [
    "CompiledReadReport",
    "check_read_consistency_compiled",
    "check_compiled",
    "check_all_levels_compiled",
    "check_rc_compiled",
    "check_ra_compiled",
    "check_ra_single_session_compiled",
    "check_cc_compiled",
]


class CompiledReadReport:
    """Read Consistency outcome over the IR: violations + bad read op indices.

    ``bad_ops`` holds *global operation indices* (the compiled analogue of the
    object report's ``bad_reads`` set of :class:`OpRef`).
    """

    __slots__ = ("violations", "bad_ops")

    def __init__(self, violations: List[Violation], bad_ops: Set[int]) -> None:
        self.violations = violations
        self.bad_ops = bad_ops

    @property
    def ok(self) -> bool:
        """True when the history satisfies all five Read Consistency axioms."""
        return not self.violations


def check_read_consistency_compiled(
    ch: CompiledHistory, tid_range: Optional[Tuple[int, int]] = None
) -> CompiledReadReport:
    """Algorithm 4 on the IR (mirror of ``check_read_consistency``).

    ``tid_range`` restricts the pass to transactions ``[lo, hi)`` -- the
    per-transaction work is independent, so a full report is the chunk
    reports concatenated in ascending-range order.
    """
    violations: List[Violation] = []
    bad_ops: Set[int] = set()
    op_kind = ch.op_kind
    op_key = ch.op_key
    op_wr = ch.op_wr
    op_txn = ch.op_txn
    op_final = ch.op_final
    txn_start = ch.txn_start
    committed = ch.txn_committed
    key_names = ch.key_table.values
    value_objs = ch.value_table.values

    def _bad(kind: ViolationKind, message: str, read: int, write: Optional[int]) -> None:
        bad_ops.add(read)
        read_ref = OpRef(op_txn[read], read - txn_start[op_txn[read]])
        write_ref = (
            None
            if write is None
            else OpRef(op_txn[write], write - txn_start[op_txn[write]])
        )
        violations.append(
            ReadConsistencyViolation(
                kind=kind, message=message, read=read_ref, write=write_ref
            )
        )

    lo_tid, hi_tid = tid_range if tid_range is not None else (0, ch.num_transactions)
    for tid in range(lo_tid, hi_tid):
        if not committed[tid]:
            continue
        name = ch.name_of(tid)
        lo, hi = txn_start[tid], txn_start[tid + 1]
        latest_own_write: Dict[int, int] = {}
        for i in range(lo, hi):
            key = op_key[i]
            if op_kind[i]:
                latest_own_write[key] = i
                continue
            w = op_wr[i]

            # (a) thin-air reads: the observed value was never written.
            if w < 0:
                _bad(
                    ViolationKind.THIN_AIR_READ,
                    f"{name} reads {ch.op_repr(i)} but no transaction writes "
                    f"{value_objs[ch.op_value[i]]!r} to {key_names[key]!r}",
                    i,
                    None,
                )
                continue

            writer_tid = op_txn[w]

            # (b) aborted reads.
            if not committed[writer_tid]:
                _bad(
                    ViolationKind.ABORTED_READ,
                    f"{name} reads {ch.op_repr(i)} written by aborted "
                    f"transaction {ch.name_of(writer_tid)}",
                    i,
                    w,
                )
                continue

            # (c) future reads: the observed write is po-after the read in the
            # same transaction.
            if writer_tid == tid and w > i:
                _bad(
                    ViolationKind.FUTURE_READ,
                    f"{name} reads {ch.op_repr(i)} before writing it "
                    f"(write at position {w - lo}, read at {i - lo})",
                    i,
                    w,
                )
                continue

            if writer_tid != tid:
                # (d) observe own writes: a read may not observe an external
                # write when an own write to the key precedes it.
                if key in latest_own_write:
                    _bad(
                        ViolationKind.NOT_OWN_WRITE,
                        f"{name} reads {ch.op_repr(i)} from {ch.name_of(writer_tid)} "
                        f"although it wrote {key_names[key]!r} earlier itself",
                        i,
                        w,
                    )
                    continue
                # (e) observe latest write, different-transaction case: the
                # observed write must be the writer's final write to the key.
                if not op_final[w]:
                    _bad(
                        ViolationKind.NOT_LATEST_WRITE,
                        f"{name} reads {ch.op_repr(i)} from a non-final write "
                        f"of {ch.name_of(writer_tid)} to {key_names[key]!r}",
                        i,
                        w,
                    )
                continue

            # Same-transaction case of (e): the read must observe the latest
            # own write to the key that precedes it in program order.
            own_index = latest_own_write.get(key)
            if own_index is None:
                continue
            if own_index != w:
                _bad(
                    ViolationKind.NOT_LATEST_WRITE,
                    f"{name} reads {ch.op_repr(i)} from a stale own write to "
                    f"{key_names[key]!r} (a later own write precedes the read)",
                    i,
                    w,
                )
    return CompiledReadReport(violations, bad_ops)


# -- commit relation over the IR -----------------------------------------------


def _relation_from_compiled(ch: CompiledHistory) -> CommitRelation:
    """Build ``so ∪ wr`` in exactly the order ``CommitRelation(history)`` does.

    Pure log appends: packed so/wr edges (plus the wr key ids) go straight
    into the relation's flat rows, with no per-edge dict probe, no label
    tuple, and no name materialization -- duplicates collapse and labels
    replay lazily at freeze.  Names and key names resolve through the IR
    only if a witness is rendered.
    """
    committed = ch.txn_committed
    relation = CommitRelation(
        num_vertices=ch.num_transactions,
        committed=ch.committed,
        namer=ch.name_of,
        key_names=ch.key_table.values,
    )
    so_append = relation._so_log.append
    for session in ch.sessions:
        previous = -1
        for tid in session:
            if not committed[tid]:
                continue
            if previous >= 0:
                so_append((previous << EDGE_SHIFT) | tid)
            previous = tid

    xr_start = ch._xr_start
    xr_writer = ch._xr_writer
    xr_key = ch._xr_key
    wr_append = relation._wr_log.append
    wrk_append = relation._wr_keys.append
    for tid in range(ch.num_transactions):
        if not committed[tid]:
            continue
        for j in range(xr_start[tid], xr_start[tid + 1]):
            writer = xr_writer[j]
            if committed[writer]:
                wr_append((writer << EDGE_SHIFT) | tid)
                wrk_append(xr_key[j])
    return relation


# -- RC (Algorithm 1) ----------------------------------------------------------


def _external_good_reads(
    ch: CompiledHistory, tid: int, bad_ops: Set[int]
) -> List[Tuple[int, int, int]]:
    """Good external committed reads of ``tid``: ``(po, key_id, writer_tid)``."""
    xr_start = ch._xr_start
    xr_po = ch._xr_po
    xr_key = ch._xr_key
    xr_writer = ch._xr_writer
    committed = ch.txn_committed
    check_bad = bool(bad_ops)  # empty on clean histories; skip the arithmetic
    base = ch.txn_start[tid]
    result: List[Tuple[int, int, int]] = []
    for j in range(xr_start[tid], xr_start[tid + 1]):
        if check_bad and base + xr_po[j] in bad_ops:
            continue
        writer = xr_writer[j]
        if not committed[writer]:
            continue
        result.append((xr_po[j], xr_key[j], writer))
    return result


def saturate_rc_compiled(
    ch: CompiledHistory,
    relation: CommitRelation,
    bad_ops: Set[int],
    tid_range: Optional[Tuple[int, int]] = None,
) -> None:
    """Algorithm 1's main loop on the IR (mirror of ``saturate_rc``).

    ``tid_range`` restricts saturation to the reads of transactions
    ``[lo, hi)``; the per-transaction state (``earliest``, ``read_keys``) is
    local, so chunked runs emit exactly the edges of a full run, in the same
    per-transaction order.
    """
    committed = ch.txn_committed
    kw_start = ch._kw_start
    kw_key = ch._kw_key
    # Every inferred edge is two raw appends into the relation's co log
    # (packed edge + key id); dedup and labels happen at freeze.
    co_append = relation._co_log.append
    cok_append = relation._co_keys.append
    lo_tid, hi_tid = tid_range if tid_range is not None else (0, ch.num_transactions)
    for tid in range(lo_tid, hi_tid):
        if not committed[tid]:
            continue
        reads = _external_good_reads(ch, tid, bad_ops)
        if not reads:
            continue

        # Forward pass: record the po-first read of each observed transaction.
        seen_txns: Set[int] = set()
        first_txn_reads: Set[int] = set()
        for po, _key, writer in reads:
            if writer not in seen_txns:
                seen_txns.add(writer)
                first_txn_reads.add(po)

        # Backward pass (see saturate_rc for the invariants; read_keys is a
        # dict so the smaller-side iteration below is deterministic).
        earliest: Dict[int, Tuple[Optional[int], Optional[int]]] = {}
        read_keys: Dict[int, None] = {}
        for po, key, t2 in reversed(reads):
            if po in first_txn_reads:
                lo, hi = kw_start[t2], kw_start[t2 + 1]
                if hi - lo <= len(read_keys):
                    candidates = [x for x in kw_key[lo:hi] if x in read_keys]
                else:
                    kw_set = ch.keys_written_set(t2)
                    candidates = [x for x in read_keys if x in kw_set]
                for x in candidates:
                    older, newer = earliest[x]
                    t1 = newer
                    if t1 == t2:
                        t1 = older
                    if t1 is not None and t1 != t2:
                        co_append((t2 << EDGE_SHIFT) | t1)
                        cok_append(x)
            pair = earliest.get(key)
            if pair is None:
                earliest[key] = (None, t2)
            elif pair[1] != t2:
                earliest[key] = (pair[1], t2)
            read_keys[key] = None


def check_rc_compiled(
    ch: CompiledHistory,
    max_witnesses: Optional[int] = None,
    report: Optional[CompiledReadReport] = None,
) -> CheckResult:
    """Read Committed on the IR (mirror of ``check_rc``)."""
    watch = Stopwatch()
    report = report or check_read_consistency_compiled(ch)
    watch.lap("read_consistency")

    relation = _relation_from_compiled(ch)
    saturate_rc_compiled(ch, relation, report.bad_ops)
    watch.lap("saturation")

    violations = list(report.violations)
    violations.extend(relation.find_cycles(max_witnesses=max_witnesses))
    watch.lap("cycle_check")

    return _result(
        ch,
        IsolationLevel.READ_COMMITTED,
        violations,
        "awdit",
        watch,
        stats={
            "inferred_edges": relation.num_inferred_edges,
            "co_edges": relation.num_edges,
            **relation.timings,
        },
    )


# -- RA (Algorithm 2, Theorem 1.6) ---------------------------------------------


def check_repeatable_reads_compiled(
    ch: CompiledHistory,
    bad_ops: Set[int],
    tid_range: Optional[Tuple[int, int]] = None,
) -> List[Violation]:
    """Repeatable-reads pre-check on the IR (mirror of ``check_repeatable_reads``).

    Per-transaction and independent, so ``tid_range`` chunks compose like
    :func:`check_read_consistency_compiled`.
    """
    violations: List[Violation] = []
    op_kind = ch.op_kind
    op_key = ch.op_key
    op_wr = ch.op_wr
    op_txn = ch.op_txn
    txn_start = ch.txn_start
    committed = ch.txn_committed
    key_names = ch.key_table.values
    lo_tid, hi_tid = tid_range if tid_range is not None else (0, ch.num_transactions)
    for tid in range(lo_tid, hi_tid):
        if not committed[tid]:
            continue
        last_writer: Dict[int, int] = {}
        for i in range(txn_start[tid], txn_start[tid + 1]):
            if op_kind[i] or i in bad_ops:
                continue
            w = op_wr[i]
            if w < 0:
                continue
            writer = op_txn[w]
            key = op_key[i]
            previous = last_writer.get(key)
            if writer != tid and previous is not None and previous != writer:
                violations.append(
                    RepeatableReadViolation(
                        kind=ViolationKind.NON_REPEATABLE_READ,
                        message=(
                            f"{ch.name_of(tid)} reads {key_names[key]!r} from both "
                            f"{ch.name_of(previous)} and {ch.name_of(writer)}"
                        ),
                        txn=tid,
                        key=key_names[key],
                        writers=(previous, writer),
                    )
                )
            else:
                last_writer[key] = writer
    return violations


def saturate_ra_compiled(
    ch: CompiledHistory,
    relation: CommitRelation,
    bad_ops: Set[int],
    sessions: Optional[Sequence[int]] = None,
) -> None:
    """Algorithm 2's saturation on the IR (mirror of ``saturate_ra``).

    ``sessions`` restricts the pass to the given dense session indices; the
    RA frontier (``last_write``) resets per session, so a session-restricted
    run emits exactly that session's edges of a full run, in order.
    """
    committed = ch.txn_committed
    kw_start = ch._kw_start
    kw_key = ch._kw_key
    # Raw co-log appends, as in saturate_rc_compiled.
    co_append = relation._co_log.append
    cok_append = relation._co_keys.append
    session_lists = (
        ch.sessions if sessions is None else [ch.sessions[sid] for sid in sessions]
    )
    for session in session_lists:
        last_write: Dict[int, int] = {}
        for t3 in session:
            if not committed[t3]:
                continue
            reads = _external_good_reads(ch, t3, bad_ops)

            reader_of_key: Dict[int, int] = {}
            distinct_writers: List[int] = []
            seen_writers: Set[int] = set()
            for _po, key, writer in reads:
                reader_of_key.setdefault(key, writer)
                if writer not in seen_writers:
                    seen_writers.add(writer)
                    distinct_writers.append(writer)

            # Case t2 -so-> t3.
            for _po, key, t1 in reads:
                t2 = last_write.get(key)
                if t2 is not None and t2 != t1:
                    co_append((t2 << EDGE_SHIFT) | t1)
                    cok_append(key)

            # Case t2 -wr-> t3: intersect written keys with read keys,
            # iterating the smaller side in deterministic order.
            for t2 in distinct_writers:
                lo, hi = kw_start[t2], kw_start[t2 + 1]
                if hi - lo <= len(reader_of_key):
                    candidates = [x for x in kw_key[lo:hi] if x in reader_of_key]
                else:
                    kw_set = ch.keys_written_set(t2)
                    candidates = [x for x in reader_of_key if x in kw_set]
                for x in candidates:
                    t1 = reader_of_key[x]
                    if t1 != t2:
                        co_append((t2 << EDGE_SHIFT) | t1)
                        cok_append(x)

            for x in kw_key[kw_start[t3] : kw_start[t3 + 1]]:
                last_write[x] = t3


def check_ra_compiled(
    ch: CompiledHistory,
    max_witnesses: Optional[int] = None,
    report: Optional[CompiledReadReport] = None,
) -> CheckResult:
    """Read Atomic on the IR (mirror of ``check_ra``)."""
    watch = Stopwatch()
    report = report or check_read_consistency_compiled(ch)
    watch.lap("read_consistency")

    violations: List[Violation] = list(report.violations)
    violations.extend(check_repeatable_reads_compiled(ch, report.bad_ops))
    watch.lap("repeatable_reads")

    relation = _relation_from_compiled(ch)
    saturate_ra_compiled(ch, relation, report.bad_ops)
    watch.lap("saturation")

    violations.extend(relation.find_cycles(max_witnesses=max_witnesses))
    watch.lap("cycle_check")

    return _result(
        ch,
        IsolationLevel.READ_ATOMIC,
        violations,
        "awdit",
        watch,
        stats={
            "inferred_edges": relation.num_inferred_edges,
            "co_edges": relation.num_edges,
            **relation.timings,
        },
    )


def check_ra_single_session_compiled(
    ch: CompiledHistory,
    max_witnesses: Optional[int] = None,
    report: Optional[CompiledReadReport] = None,
) -> CheckResult:
    """Theorem 1.6's linear RA check on the IR (mirror of ``check_ra_single_session``)."""
    if ch.num_sessions > 1:
        raise ValueError(
            "check_ra_single_session requires a single-session history; "
            f"got {ch.num_sessions} sessions"
        )
    watch = Stopwatch()
    report = report or check_read_consistency_compiled(ch)
    watch.lap("read_consistency")

    violations: List[Violation] = list(report.violations)
    violations.extend(check_repeatable_reads_compiled(ch, report.bad_ops))

    relation = _relation_from_compiled(ch)
    committed = ch.txn_committed
    kw_start = ch._kw_start
    kw_key = ch._kw_key
    last_write: Dict[int, int] = {}
    if ch.num_sessions == 1:
        for t3 in ch.sessions[0]:
            if not committed[t3]:
                continue
            for _po, key, t1 in _external_good_reads(ch, t3, report.bad_ops):
                t2 = last_write.get(key)
                if t2 is not None and t2 != t1:
                    # key is a dense id: the relation was built with the
                    # IR's key table, so labels decode it lazily.
                    relation.add_inferred(t2, t1, key=key)
            for x in kw_key[kw_start[t3] : kw_start[t3 + 1]]:
                last_write[x] = t3
    watch.lap("scan")

    violations.extend(relation.find_cycles(max_witnesses=max_witnesses))
    watch.lap("cycle_check")

    return _result(
        ch,
        IsolationLevel.READ_ATOMIC,
        violations,
        "awdit-1session",
        watch,
        stats={"inferred_edges": relation.num_inferred_edges, **relation.timings},
    )


# -- CC (Algorithm 3) ----------------------------------------------------------


def _causality_edges_compiled(ch: CompiledHistory, bad_ops: Set[int]):
    """Packed edge logs of the committed ``so ∪ good-wr`` graph.

    Returns ``(so_log, wr_log, wr_keys)`` flat rows; nothing is deduplicated
    here (a reader observing the same writer twice appends twice) -- the
    freeze collapses duplicates, and the labels replay first-wins, exactly
    like the eager dict gating used to.
    """
    so_log = array("Q")
    wr_log = array("Q")
    wr_keys = array("q")
    committed = ch.txn_committed
    so_append = so_log.append
    for session in ch.sessions:
        previous = -1
        for tid in session:
            if not committed[tid]:
                continue
            if previous >= 0:
                so_append((previous << EDGE_SHIFT) | tid)
            previous = tid
    xr_start = ch._xr_start
    xr_po = ch._xr_po
    xr_key = ch._xr_key
    xr_writer = ch._xr_writer
    txn_start = ch.txn_start
    check_bad = bool(bad_ops)
    wr_append = wr_log.append
    wrk_append = wr_keys.append
    for tid in range(ch.num_transactions):
        if not committed[tid]:
            continue
        base = txn_start[tid]
        for j in range(xr_start[tid], xr_start[tid + 1]):
            if check_bad and base + xr_po[j] in bad_ops:
                continue
            writer = xr_writer[j]
            if not committed[writer]:
                continue
            wr_append((writer << EDGE_SHIFT) | tid)
            wrk_append(xr_key[j])
    return so_log, wr_log, wr_keys


def compute_happens_before_compiled(
    ch: CompiledHistory, bad_ops: Set[int]
) -> Tuple[Optional[List[Optional[List[int]]]], List[Violation]]:
    """``ComputeHB`` on the IR: one plain-list clock per committed transaction."""
    so_log, wr_log, wr_keys = _causality_edges_compiled(ch, bad_ops)
    graph = freeze_packed(ch.num_transactions, (so_log, wr_log))
    order = toposort_frozen(graph)
    if order is None:
        labels = causality_labels(
            so_log, wr_log, wr_keys, key_names=ch.key_table.values
        )
        names = [ch.name_of(tid) for tid in range(ch.num_transactions)]
        return None, causality_cycles(names, graph, labels)

    k = ch.num_sessions
    committed = ch.txn_committed
    txn_session = ch.txn_session
    txn_session_index = ch.txn_session_index
    xr_start = ch._xr_start
    xr_po = ch._xr_po
    xr_writer = ch._xr_writer
    txn_start = ch.txn_start
    check_bad = bool(bad_ops)
    session_clock: List[List[int]] = [[-1] * k for _ in range(k)]
    hb: List[Optional[List[int]]] = [None] * ch.num_transactions
    for tid in order:
        if not committed[tid]:
            continue
        session = txn_session[tid]
        clock = session_clock[session][:]
        base = txn_start[tid]
        seen_writers: Set[int] = set()
        for j in range(xr_start[tid], xr_start[tid + 1]):
            if check_bad and base + xr_po[j] in bad_ops:
                continue
            writer = xr_writer[j]
            if writer in seen_writers:
                continue
            seen_writers.add(writer)
            if not committed[writer]:
                continue
            writer_clock = hb[writer]
            if writer_clock is not None:
                for s2 in range(k):
                    value = writer_clock[s2]
                    if value > clock[s2]:
                        clock[s2] = value
            ws = txn_session[writer]
            wsi = txn_session_index[writer]
            if wsi > clock[ws]:
                clock[ws] = wsi
        hb[tid] = clock
        next_clock = clock[:]
        sidx = txn_session_index[tid]
        if sidx > next_clock[session]:
            next_clock[session] = sidx
        session_clock[session] = next_clock
    return hb, []


def _writers_by_key_compiled(
    ch: CompiledHistory,
) -> Tuple[List[Optional[List[Tuple[int, List[int], List[int], int, int]]]], int]:
    """``Writes_s[x]`` indexed by key id (mirror of ``_writers_by_key_per_session``).

    Returns ``(buckets, num_buckets)``.  Each bucket entry is ``(session,
    writer_tids, writer_session_indices, len(writer_tids), bucket_id)`` --
    the length is precomputed for the saturation loop, and ``bucket_id`` is a
    dense index over all ``(key, session)`` buckets so the saturation's
    monotone pointers can live in flat arrays instead of dicts.
    """
    writes: List[Optional[List[Tuple[int, List[int], List[int], int, int]]]] = [
        None
    ] * ch.num_keys
    committed = ch.txn_committed
    txn_session_index = ch.txn_session_index
    kw_start = ch._kw_start
    kw_key = ch._kw_key
    num_buckets = 0
    for sid, session in enumerate(ch.sessions):
        per_key: Dict[int, List[int]] = {}
        for tid in session:
            if not committed[tid]:
                continue
            for key in kw_key[kw_start[tid] : kw_start[tid + 1]]:
                per_key.setdefault(key, []).append(tid)
        for key, tids in per_key.items():
            indices = [txn_session_index[tid] for tid in tids]
            bucket = writes[key]
            if bucket is None:
                bucket = []
                writes[key] = bucket
            bucket.append((sid, tids, indices, len(tids), num_buckets))
            num_buckets += 1
    return writes, num_buckets


def saturate_cc_compiled(
    ch: CompiledHistory,
    relation: CommitRelation,
    hb,
    bad_ops: Set[int],
    sessions: Optional[Sequence[int]] = None,
    writers_by_key: Optional[Tuple[List, int]] = None,
    scratch: Optional[Tuple["array", "array", List[int]]] = None,
) -> None:
    """CC saturation on the IR (mirror of ``saturate_cc``).

    The per-(session, key) monotone pointers live in two flat ``array('q')``
    rows indexed by the dense bucket ids of :func:`_writers_by_key_compiled`
    -- a C-level indexed read per probe, where a dict of packed
    ``(ptr << EDGE_SHIFT) | t2`` values would box a fresh big int per
    pointer advance.  Only the slots a session actually touched are reset
    between sessions, so sessions with few reads stay cheap.

    ``sessions`` restricts the pass to the given dense session indices (the
    pointer state resets per session, so restricted runs compose like
    :func:`saturate_ra_compiled`); ``hb`` only needs to support ``hb[tid]``
    for the restricted transactions (a dict of clocks works for shard
    workers).  ``writers_by_key`` injects a precomputed
    :func:`_writers_by_key_compiled` result -- it depends only on the IR, so
    shard workers compute it once per process and reuse it across tasks.
    ``scratch`` injects the ``(ptrs, t2s, touched)`` pointer state to reuse
    across calls: the arrays must be sized ``num_buckets`` and pristine
    (zeros / -1 / empty); the function leaves them pristine again on return,
    so shard workers making one call per session allocate them once instead
    of re-zeroing ``O(num_buckets)`` memory per session.
    """
    if writers_by_key is None:
        writers_by_key = _writers_by_key_compiled(ch)
    writers_index, num_buckets = writers_by_key
    if ch.num_transactions > (1 << 31):
        # The t2 scratch row stores writers pre-shifted by EDGE_SHIFT in a
        # signed array('q'); a tid >= 2^31 would overflow the store deep in
        # the loop below, so reject it here with the cause attached.
        raise ValueError(
            "CC saturation's pre-shifted writer rows support at most "
            f"2^31 transactions; got {ch.num_transactions}"
        )
    committed = ch.txn_committed
    xr_start = ch._xr_start
    xr_po = ch._xr_po
    xr_key = ch._xr_key
    xr_writer = ch._xr_writer
    txn_start = ch.txn_start
    # This loop attempts an edge per (read, writing-session) pair; each
    # attempt is at most two raw appends into the relation's co log (the
    # freeze collapses the duplicates).  The monotone pointer (ptr) and the
    # hb-latest writer per bucket live in the two flat rows below; a stored
    # ptr is always >= 1, so ptr == 0 doubles as the "never touched" marker
    # the reset pass relies on.  The t2 row stores the writer *pre-shifted*
    # (``t2 << EDGE_SHIFT``): the packed edge is then a single bitwise-or
    # against the read's writer, and -1 still flags "no hb-latest writer".
    co_append = relation._co_log.append
    cok_append = relation._co_keys.append
    check_bad = bool(bad_ops)
    if scratch is None:
        ptrs = array("q", bytes(8 * num_buckets))
        t2s = array("q", [-1]) * num_buckets
        touched: List[int] = []
    else:
        ptrs, t2s, touched = scratch

    session_lists = (
        ch.sessions if sessions is None else [ch.sessions[sid] for sid in sessions]
    )
    for session in session_lists:
        for t3 in session:
            if not committed[t3]:
                continue
            clock = hb[t3]
            if clock is None:
                continue
            base = txn_start[t3]
            for j in range(xr_start[t3], xr_start[t3 + 1]):
                if check_bad and base + xr_po[j] in bad_ops:
                    continue
                t1 = xr_writer[j]
                if not committed[t1]:
                    continue
                key = xr_key[j]
                key_writers = writers_index[key]
                if not key_writers:
                    continue
                t1s = t1 << EDGE_SHIFT
                for other, writer_list, writer_indices, count, bid in key_writers:
                    ptr = ptrs[bid]
                    bound = clock[other]
                    if ptr < count and writer_indices[ptr] <= bound:
                        while ptr < count and writer_indices[ptr] <= bound:
                            ptr += 1
                        t2s_val = writer_list[ptr - 1] << EDGE_SHIFT
                        if not ptrs[bid]:
                            touched.append(bid)
                        ptrs[bid] = ptr
                        t2s[bid] = t2s_val
                    else:
                        t2s_val = t2s[bid]
                    if t2s_val >= 0 and t2s_val != t1s:
                        co_append(t2s_val | t1)
                        cok_append(key)
        # Pointer state is per-session: clear only the touched slots.
        for bid in touched:
            ptrs[bid] = 0
            t2s[bid] = -1
        del touched[:]


def check_cc_compiled(
    ch: CompiledHistory,
    max_witnesses: Optional[int] = None,
    report: Optional[CompiledReadReport] = None,
) -> CheckResult:
    """Causal Consistency on the IR (mirror of ``check_cc``)."""
    watch = Stopwatch()
    report = report or check_read_consistency_compiled(ch)
    watch.lap("read_consistency")

    violations: List[Violation] = list(report.violations)
    hb, cycle_violations = compute_happens_before_compiled(ch, report.bad_ops)
    watch.lap("happens_before")

    if hb is None:
        violations.extend(cycle_violations)
        return _result(
            ch, IsolationLevel.CAUSAL_CONSISTENCY, violations, "awdit", watch, stats={}
        )

    relation = _relation_from_compiled(ch)
    saturate_cc_compiled(ch, relation, hb, report.bad_ops)
    watch.lap("saturation")

    violations.extend(relation.find_cycles(max_witnesses=max_witnesses))
    watch.lap("cycle_check")

    return _result(
        ch,
        IsolationLevel.CAUSAL_CONSISTENCY,
        violations,
        "awdit",
        watch,
        stats={
            "inferred_edges": relation.num_inferred_edges,
            "co_edges": relation.num_edges,
            **relation.timings,
        },
    )


# -- dispatch -------------------------------------------------------------------


def _result(
    ch: CompiledHistory,
    level: IsolationLevel,
    violations: List[Violation],
    checker: str,
    watch: Stopwatch,
    stats: Dict[str, float],
) -> CheckResult:
    return CheckResult(
        level=level,
        violations=violations,
        checker=checker,
        elapsed_seconds=watch.total,
        num_operations=ch.num_operations,
        num_transactions=ch.num_transactions,
        num_sessions=ch.num_sessions,
        stats={**stats, **watch.laps},
    )


def _compiled(source) -> CompiledHistory:
    if isinstance(source, CompiledHistory):
        return source
    if isinstance(source, History):
        return compile_history(source)
    raise TypeError(f"expected a History or CompiledHistory, got {type(source)!r}")


def check_compiled(
    source,
    level: IsolationLevel = IsolationLevel.CAUSAL_CONSISTENCY,
    max_witnesses: Optional[int] = None,
    use_single_session_fast_path: bool = True,
    report: Optional[CompiledReadReport] = None,
) -> CheckResult:
    """Check a history (object or compiled) against ``level`` on the IR.

    The compiled analogue of :func:`repro.core.check`: same dispatch, same
    single-session RA specialization, same results.
    """
    ch = _compiled(source)
    if level is IsolationLevel.READ_COMMITTED:
        return check_rc_compiled(ch, max_witnesses=max_witnesses, report=report)
    if level is IsolationLevel.READ_ATOMIC:
        if use_single_session_fast_path and ch.num_sessions <= 1:
            return check_ra_single_session_compiled(
                ch, max_witnesses=max_witnesses, report=report
            )
        return check_ra_compiled(ch, max_witnesses=max_witnesses, report=report)
    if level is IsolationLevel.CAUSAL_CONSISTENCY:
        return check_cc_compiled(ch, max_witnesses=max_witnesses, report=report)
    raise ValueError(f"unsupported isolation level: {level!r}")


def check_all_levels_compiled(
    source,
    max_witnesses: Optional[int] = None,
    use_single_session_fast_path: bool = True,
) -> Dict[IsolationLevel, CheckResult]:
    """Check all three levels on one compiled IR, sharing one RC pass."""
    ch = _compiled(source)
    report = check_read_consistency_compiled(ch)
    return {
        level: check_compiled(
            ch,
            level,
            max_witnesses=max_witnesses,
            use_single_session_fast_path=use_single_session_fast_path,
            report=report,
        )
        for level in (
            IsolationLevel.READ_COMMITTED,
            IsolationLevel.READ_ATOMIC,
            IsolationLevel.CAUSAL_CONSISTENCY,
        )
    }
