"""AWDIT checkers running on the compiled array IR.

Each function here is a line-by-line port of the corresponding object-path
algorithm (:mod:`repro.core.read_consistency`, :mod:`repro.core.rc`,
:mod:`repro.core.ra`, :mod:`repro.core.cc`) onto
:class:`~repro.core.compiled.ir.CompiledHistory`: identifiers are dense ints,
per-key state lives in int-keyed dicts, and the commit relation is built in
packed-edge form.  The ports preserve the object path's *iteration and edge
insertion orders* exactly, so verdicts, violation kinds, and witness
renderings are byte-identical (property-tested in ``tests/test_compiled.py``);
only the constant factors change.

The module deliberately reaches into the IR's internal flat arrays
(``_xr_*``, ``_kw_*``) instead of the iterator accessors: these loops are the
hot path the compiled layer exists for.  The saturation inner loops
themselves live in :mod:`repro.core.compiled.kernels` (one vectorized /
fallback pair per rule, shared with the online fold and the shard workers);
``saturate_{rc,ra,cc}_compiled`` are re-exported here for compatibility and
report which kernel ran in the result's ``saturation_kernel`` stat.

The per-transaction passes accept an optional ``tid_range`` and the
per-session saturations an optional ``sessions`` restriction.  These exist
for the sharded engine (:mod:`repro.shard`): a shard worker runs the *same*
loop over its slice of the history and the shard merge re-applies the
results in global order, so sharded checking cannot drift from this module
-- there is only one implementation of each rule.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Set, Tuple

from repro.core.cc import causality_cycles, causality_labels
from repro.core.commit import CommitRelation
from repro.core.compiled.ir import CompiledHistory, compile_history
from repro.core.compiled.kernels import (
    _external_good_reads,
    _writers_by_key_compiled,
    saturate_cc_compiled,
    saturate_ra_compiled,
    saturate_rc_compiled,
)
from repro.core.isolation import IsolationLevel
from repro.core.model import History, OpRef
from repro.core.result import CheckResult, Stopwatch
from repro.core.violations import (
    ReadConsistencyViolation,
    RepeatableReadViolation,
    Violation,
    ViolationKind,
)
from repro.graph.csr import freeze_packed, toposort_frozen
from repro.graph.digraph import EDGE_SHIFT

__all__ = [
    "CompiledReadReport",
    "check_read_consistency_compiled",
    "check_compiled",
    "check_all_levels_compiled",
    "check_rc_compiled",
    "check_ra_compiled",
    "check_ra_single_session_compiled",
    "check_cc_compiled",
]


class CompiledReadReport:
    """Read Consistency outcome over the IR: violations + bad read op indices.

    ``bad_ops`` holds *global operation indices* (the compiled analogue of the
    object report's ``bad_reads`` set of :class:`OpRef`).
    """

    __slots__ = ("violations", "bad_ops")

    def __init__(self, violations: List[Violation], bad_ops: Set[int]) -> None:
        self.violations = violations
        self.bad_ops = bad_ops

    @property
    def ok(self) -> bool:
        """True when the history satisfies all five Read Consistency axioms."""
        return not self.violations


def check_read_consistency_compiled(
    ch: CompiledHistory, tid_range: Optional[Tuple[int, int]] = None
) -> CompiledReadReport:
    """Algorithm 4 on the IR (mirror of ``check_read_consistency``).

    ``tid_range`` restricts the pass to transactions ``[lo, hi)`` -- the
    per-transaction work is independent, so a full report is the chunk
    reports concatenated in ascending-range order.
    """
    violations: List[Violation] = []
    bad_ops: Set[int] = set()
    op_kind = ch.op_kind
    op_key = ch.op_key
    op_wr = ch.op_wr
    op_txn = ch.op_txn
    op_final = ch.op_final
    txn_start = ch.txn_start
    committed = ch.txn_committed
    key_names = ch.key_table.values
    value_objs = ch.value_table.values

    def _bad(kind: ViolationKind, message: str, read: int, write: Optional[int]) -> None:
        bad_ops.add(read)
        read_ref = OpRef(op_txn[read], read - txn_start[op_txn[read]])
        write_ref = (
            None
            if write is None
            else OpRef(op_txn[write], write - txn_start[op_txn[write]])
        )
        violations.append(
            ReadConsistencyViolation(
                kind=kind, message=message, read=read_ref, write=write_ref
            )
        )

    lo_tid, hi_tid = tid_range if tid_range is not None else (0, ch.num_transactions)
    for tid in range(lo_tid, hi_tid):
        if not committed[tid]:
            continue
        name = ch.name_of(tid)
        lo, hi = txn_start[tid], txn_start[tid + 1]
        latest_own_write: Dict[int, int] = {}
        for i in range(lo, hi):
            key = op_key[i]
            if op_kind[i]:
                latest_own_write[key] = i
                continue
            w = op_wr[i]

            # (a) thin-air reads: the observed value was never written.
            if w < 0:
                _bad(
                    ViolationKind.THIN_AIR_READ,
                    f"{name} reads {ch.op_repr(i)} but no transaction writes "
                    f"{value_objs[ch.op_value[i]]!r} to {key_names[key]!r}",
                    i,
                    None,
                )
                continue

            writer_tid = op_txn[w]

            # (b) aborted reads.
            if not committed[writer_tid]:
                _bad(
                    ViolationKind.ABORTED_READ,
                    f"{name} reads {ch.op_repr(i)} written by aborted "
                    f"transaction {ch.name_of(writer_tid)}",
                    i,
                    w,
                )
                continue

            # (c) future reads: the observed write is po-after the read in the
            # same transaction.
            if writer_tid == tid and w > i:
                _bad(
                    ViolationKind.FUTURE_READ,
                    f"{name} reads {ch.op_repr(i)} before writing it "
                    f"(write at position {w - lo}, read at {i - lo})",
                    i,
                    w,
                )
                continue

            if writer_tid != tid:
                # (d) observe own writes: a read may not observe an external
                # write when an own write to the key precedes it.
                if key in latest_own_write:
                    _bad(
                        ViolationKind.NOT_OWN_WRITE,
                        f"{name} reads {ch.op_repr(i)} from {ch.name_of(writer_tid)} "
                        f"although it wrote {key_names[key]!r} earlier itself",
                        i,
                        w,
                    )
                    continue
                # (e) observe latest write, different-transaction case: the
                # observed write must be the writer's final write to the key.
                if not op_final[w]:
                    _bad(
                        ViolationKind.NOT_LATEST_WRITE,
                        f"{name} reads {ch.op_repr(i)} from a non-final write "
                        f"of {ch.name_of(writer_tid)} to {key_names[key]!r}",
                        i,
                        w,
                    )
                continue

            # Same-transaction case of (e): the read must observe the latest
            # own write to the key that precedes it in program order.
            own_index = latest_own_write.get(key)
            if own_index is None:
                continue
            if own_index != w:
                _bad(
                    ViolationKind.NOT_LATEST_WRITE,
                    f"{name} reads {ch.op_repr(i)} from a stale own write to "
                    f"{key_names[key]!r} (a later own write precedes the read)",
                    i,
                    w,
                )
    return CompiledReadReport(violations, bad_ops)


# -- commit relation over the IR -----------------------------------------------


def _relation_from_compiled(ch: CompiledHistory) -> CommitRelation:
    """Build ``so ∪ wr`` in exactly the order ``CommitRelation(history)`` does.

    Pure log appends: packed so/wr edges (plus the wr key ids) go straight
    into the relation's flat rows, with no per-edge dict probe, no label
    tuple, and no name materialization -- duplicates collapse and labels
    replay lazily at freeze.  Names and key names resolve through the IR
    only if a witness is rendered.
    """
    committed = ch.txn_committed
    relation = CommitRelation(
        num_vertices=ch.num_transactions,
        committed=ch.committed,
        namer=ch.name_of,
        key_names=ch.key_table.values,
    )
    so_append = relation._so_log.append
    for session in ch.sessions:
        previous = -1
        for tid in session:
            if not committed[tid]:
                continue
            if previous >= 0:
                so_append((previous << EDGE_SHIFT) | tid)
            previous = tid

    xr_start = ch._xr_start
    xr_writer = ch._xr_writer
    xr_key = ch._xr_key
    wr_append = relation._wr_log.append
    wrk_append = relation._wr_keys.append
    for tid in range(ch.num_transactions):
        if not committed[tid]:
            continue
        for j in range(xr_start[tid], xr_start[tid + 1]):
            writer = xr_writer[j]
            if committed[writer]:
                wr_append((writer << EDGE_SHIFT) | tid)
                wrk_append(xr_key[j])
    return relation


# -- RC (Algorithm 1) ----------------------------------------------------------


def check_rc_compiled(
    ch: CompiledHistory,
    max_witnesses: Optional[int] = None,
    report: Optional[CompiledReadReport] = None,
) -> CheckResult:
    """Read Committed on the IR (mirror of ``check_rc``)."""
    watch = Stopwatch()
    report = report or check_read_consistency_compiled(ch)
    watch.lap("read_consistency")

    relation = _relation_from_compiled(ch)
    kernel = saturate_rc_compiled(ch, relation, report.bad_ops)
    watch.lap("saturation")

    violations = list(report.violations)
    violations.extend(relation.find_cycles(max_witnesses=max_witnesses))
    watch.lap("cycle_check")

    return _result(
        ch,
        IsolationLevel.READ_COMMITTED,
        violations,
        "awdit",
        watch,
        stats={
            "inferred_edges": relation.num_inferred_edges,
            "co_edges": relation.num_edges,
            "saturation_kernel": kernel,
            **relation.timings,
        },
    )


# -- RA (Algorithm 2, Theorem 1.6) ---------------------------------------------


def check_repeatable_reads_compiled(
    ch: CompiledHistory,
    bad_ops: Set[int],
    tid_range: Optional[Tuple[int, int]] = None,
) -> List[Violation]:
    """Repeatable-reads pre-check on the IR (mirror of ``check_repeatable_reads``).

    Per-transaction and independent, so ``tid_range`` chunks compose like
    :func:`check_read_consistency_compiled`.
    """
    violations: List[Violation] = []
    op_kind = ch.op_kind
    op_key = ch.op_key
    op_wr = ch.op_wr
    op_txn = ch.op_txn
    txn_start = ch.txn_start
    committed = ch.txn_committed
    key_names = ch.key_table.values
    lo_tid, hi_tid = tid_range if tid_range is not None else (0, ch.num_transactions)
    for tid in range(lo_tid, hi_tid):
        if not committed[tid]:
            continue
        last_writer: Dict[int, int] = {}
        for i in range(txn_start[tid], txn_start[tid + 1]):
            if op_kind[i] or i in bad_ops:
                continue
            w = op_wr[i]
            if w < 0:
                continue
            writer = op_txn[w]
            key = op_key[i]
            previous = last_writer.get(key)
            if writer != tid and previous is not None and previous != writer:
                violations.append(
                    RepeatableReadViolation(
                        kind=ViolationKind.NON_REPEATABLE_READ,
                        message=(
                            f"{ch.name_of(tid)} reads {key_names[key]!r} from both "
                            f"{ch.name_of(previous)} and {ch.name_of(writer)}"
                        ),
                        txn=tid,
                        key=key_names[key],
                        writers=(previous, writer),
                    )
                )
            else:
                last_writer[key] = writer
    return violations


def check_ra_compiled(
    ch: CompiledHistory,
    max_witnesses: Optional[int] = None,
    report: Optional[CompiledReadReport] = None,
) -> CheckResult:
    """Read Atomic on the IR (mirror of ``check_ra``)."""
    watch = Stopwatch()
    report = report or check_read_consistency_compiled(ch)
    watch.lap("read_consistency")

    violations: List[Violation] = list(report.violations)
    violations.extend(check_repeatable_reads_compiled(ch, report.bad_ops))
    watch.lap("repeatable_reads")

    relation = _relation_from_compiled(ch)
    kernel = saturate_ra_compiled(ch, relation, report.bad_ops)
    watch.lap("saturation")

    violations.extend(relation.find_cycles(max_witnesses=max_witnesses))
    watch.lap("cycle_check")

    return _result(
        ch,
        IsolationLevel.READ_ATOMIC,
        violations,
        "awdit",
        watch,
        stats={
            "inferred_edges": relation.num_inferred_edges,
            "co_edges": relation.num_edges,
            "saturation_kernel": kernel,
            **relation.timings,
        },
    )


def check_ra_single_session_compiled(
    ch: CompiledHistory,
    max_witnesses: Optional[int] = None,
    report: Optional[CompiledReadReport] = None,
) -> CheckResult:
    """Theorem 1.6's linear RA check on the IR (mirror of ``check_ra_single_session``)."""
    if ch.num_sessions > 1:
        raise ValueError(
            "check_ra_single_session requires a single-session history; "
            f"got {ch.num_sessions} sessions"
        )
    watch = Stopwatch()
    report = report or check_read_consistency_compiled(ch)
    watch.lap("read_consistency")

    violations: List[Violation] = list(report.violations)
    violations.extend(check_repeatable_reads_compiled(ch, report.bad_ops))

    relation = _relation_from_compiled(ch)
    committed = ch.txn_committed
    kw_start = ch._kw_start
    kw_key = ch._kw_key
    last_write: Dict[int, int] = {}
    if ch.num_sessions == 1:
        for t3 in ch.sessions[0]:
            if not committed[t3]:
                continue
            for _po, key, t1 in _external_good_reads(ch, t3, report.bad_ops):
                t2 = last_write.get(key)
                if t2 is not None and t2 != t1:
                    # key is a dense id: the relation was built with the
                    # IR's key table, so labels decode it lazily.
                    relation.add_inferred(t2, t1, key=key)
            for x in kw_key[kw_start[t3] : kw_start[t3 + 1]]:
                last_write[x] = t3
    watch.lap("scan")

    violations.extend(relation.find_cycles(max_witnesses=max_witnesses))
    watch.lap("cycle_check")

    return _result(
        ch,
        IsolationLevel.READ_ATOMIC,
        violations,
        "awdit-1session",
        watch,
        stats={"inferred_edges": relation.num_inferred_edges, **relation.timings},
    )


# -- CC (Algorithm 3) ----------------------------------------------------------


def _causality_edges_compiled(ch: CompiledHistory, bad_ops: Set[int]):
    """Packed edge logs of the committed ``so ∪ good-wr`` graph.

    Returns ``(so_log, wr_log, wr_keys)`` flat rows; nothing is deduplicated
    here (a reader observing the same writer twice appends twice) -- the
    freeze collapses duplicates, and the labels replay first-wins, exactly
    like the eager dict gating used to.
    """
    so_log = array("Q")
    wr_log = array("Q")
    wr_keys = array("q")
    committed = ch.txn_committed
    so_append = so_log.append
    for session in ch.sessions:
        previous = -1
        for tid in session:
            if not committed[tid]:
                continue
            if previous >= 0:
                so_append((previous << EDGE_SHIFT) | tid)
            previous = tid
    xr_start = ch._xr_start
    xr_po = ch._xr_po
    xr_key = ch._xr_key
    xr_writer = ch._xr_writer
    txn_start = ch.txn_start
    check_bad = bool(bad_ops)
    wr_append = wr_log.append
    wrk_append = wr_keys.append
    for tid in range(ch.num_transactions):
        if not committed[tid]:
            continue
        base = txn_start[tid]
        for j in range(xr_start[tid], xr_start[tid + 1]):
            if check_bad and base + xr_po[j] in bad_ops:
                continue
            writer = xr_writer[j]
            if not committed[writer]:
                continue
            wr_append((writer << EDGE_SHIFT) | tid)
            wrk_append(xr_key[j])
    return so_log, wr_log, wr_keys


def compute_happens_before_compiled(
    ch: CompiledHistory, bad_ops: Set[int]
) -> Tuple[Optional[List[Optional[List[int]]]], List[Violation]]:
    """``ComputeHB`` on the IR: one plain-list clock per committed transaction."""
    so_log, wr_log, wr_keys = _causality_edges_compiled(ch, bad_ops)
    graph = freeze_packed(ch.num_transactions, (so_log, wr_log))
    order = toposort_frozen(graph)
    if order is None:
        labels = causality_labels(
            so_log, wr_log, wr_keys, key_names=ch.key_table.values
        )
        names = [ch.name_of(tid) for tid in range(ch.num_transactions)]
        return None, causality_cycles(names, graph, labels)

    k = ch.num_sessions
    committed = ch.txn_committed
    txn_session = ch.txn_session
    txn_session_index = ch.txn_session_index
    xr_start = ch._xr_start
    xr_po = ch._xr_po
    xr_writer = ch._xr_writer
    txn_start = ch.txn_start
    check_bad = bool(bad_ops)
    session_clock: List[List[int]] = [[-1] * k for _ in range(k)]
    hb: List[Optional[List[int]]] = [None] * ch.num_transactions
    for tid in order:
        if not committed[tid]:
            continue
        session = txn_session[tid]
        clock = session_clock[session][:]
        base = txn_start[tid]
        seen_writers: Set[int] = set()
        for j in range(xr_start[tid], xr_start[tid + 1]):
            if check_bad and base + xr_po[j] in bad_ops:
                continue
            writer = xr_writer[j]
            if writer in seen_writers:
                continue
            seen_writers.add(writer)
            if not committed[writer]:
                continue
            writer_clock = hb[writer]
            if writer_clock is not None:
                for s2 in range(k):
                    value = writer_clock[s2]
                    if value > clock[s2]:
                        clock[s2] = value
            ws = txn_session[writer]
            wsi = txn_session_index[writer]
            if wsi > clock[ws]:
                clock[ws] = wsi
        hb[tid] = clock
        next_clock = clock[:]
        sidx = txn_session_index[tid]
        if sidx > next_clock[session]:
            next_clock[session] = sidx
        session_clock[session] = next_clock
    return hb, []


def check_cc_compiled(
    ch: CompiledHistory,
    max_witnesses: Optional[int] = None,
    report: Optional[CompiledReadReport] = None,
) -> CheckResult:
    """Causal Consistency on the IR (mirror of ``check_cc``)."""
    watch = Stopwatch()
    report = report or check_read_consistency_compiled(ch)
    watch.lap("read_consistency")

    violations: List[Violation] = list(report.violations)
    hb, cycle_violations = compute_happens_before_compiled(ch, report.bad_ops)
    watch.lap("happens_before")

    if hb is None:
        violations.extend(cycle_violations)
        return _result(
            ch, IsolationLevel.CAUSAL_CONSISTENCY, violations, "awdit", watch, stats={}
        )

    relation = _relation_from_compiled(ch)
    kernel = saturate_cc_compiled(ch, relation, hb, report.bad_ops)
    watch.lap("saturation")

    violations.extend(relation.find_cycles(max_witnesses=max_witnesses))
    watch.lap("cycle_check")

    return _result(
        ch,
        IsolationLevel.CAUSAL_CONSISTENCY,
        violations,
        "awdit",
        watch,
        stats={
            "inferred_edges": relation.num_inferred_edges,
            "co_edges": relation.num_edges,
            "saturation_kernel": kernel,
            **relation.timings,
        },
    )


# -- dispatch -------------------------------------------------------------------


def _result(
    ch: CompiledHistory,
    level: IsolationLevel,
    violations: List[Violation],
    checker: str,
    watch: Stopwatch,
    stats: Dict[str, float],
) -> CheckResult:
    return CheckResult(
        level=level,
        violations=violations,
        checker=checker,
        elapsed_seconds=watch.total,
        num_operations=ch.num_operations,
        num_transactions=ch.num_transactions,
        num_sessions=ch.num_sessions,
        stats={**stats, **watch.laps},
    )


def _compiled(source) -> CompiledHistory:
    if isinstance(source, CompiledHistory):
        return source
    if isinstance(source, History):
        return compile_history(source)
    raise TypeError(f"expected a History or CompiledHistory, got {type(source)!r}")


def check_compiled(
    source,
    level: IsolationLevel = IsolationLevel.CAUSAL_CONSISTENCY,
    max_witnesses: Optional[int] = None,
    use_single_session_fast_path: bool = True,
    report: Optional[CompiledReadReport] = None,
) -> CheckResult:
    """Check a history (object or compiled) against ``level`` on the IR.

    The compiled analogue of :func:`repro.core.check`: same dispatch, same
    single-session RA specialization, same results.
    """
    ch = _compiled(source)
    if level is IsolationLevel.READ_COMMITTED:
        return check_rc_compiled(ch, max_witnesses=max_witnesses, report=report)
    if level is IsolationLevel.READ_ATOMIC:
        if use_single_session_fast_path and ch.num_sessions <= 1:
            return check_ra_single_session_compiled(
                ch, max_witnesses=max_witnesses, report=report
            )
        return check_ra_compiled(ch, max_witnesses=max_witnesses, report=report)
    if level is IsolationLevel.CAUSAL_CONSISTENCY:
        return check_cc_compiled(ch, max_witnesses=max_witnesses, report=report)
    raise ValueError(f"unsupported isolation level: {level!r}")


def check_all_levels_compiled(
    source,
    max_witnesses: Optional[int] = None,
    use_single_session_fast_path: bool = True,
) -> Dict[IsolationLevel, CheckResult]:
    """Check all three levels on one compiled IR, sharing one RC pass."""
    ch = _compiled(source)
    report = check_read_consistency_compiled(ch)
    return {
        level: check_compiled(
            ch,
            level,
            max_witnesses=max_witnesses,
            use_single_session_fast_path=use_single_session_fast_path,
            report=report,
        )
        for level in (
            IsolationLevel.READ_COMMITTED,
            IsolationLevel.READ_ATOMIC,
            IsolationLevel.CAUSAL_CONSISTENCY,
        )
    }
