"""The compiled streaming core: online checking on packed interned ids.

:class:`CompiledIncrementalChecker` is the compiled-IR sibling of
:class:`repro.stream.incremental.IncrementalChecker`: the same online
formulation of AWDIT's Algorithms 1-4 (read classification on resolution,
per-transaction RC saturation, per-session RA frontier, causal CC frontier
with monotone saturation pointers), but fed straight from the parsers'
columnar record-batch layer -- ``append_batch`` folds a whole
:class:`~repro.histories.formats._raw.RecordBatch` at a time (bulk intern
over the key/value columns, per-transaction dispatch amortized across the
batch), and ``append_raw`` wraps one ``(is_write, key, value)`` record as a
single-record batch, so no :class:`~repro.core.model.Operation` or
:class:`~repro.core.model.Transaction` objects exist on the hot path at all:

* keys *and* values are interned to dense ints on arrival
  (:class:`~repro.core.compiled.ir.Intern`); the writes index and the
  pending-read table are keyed by packed ``(key_id << 32) | value_id`` ints
  instead of ``(key, value)`` tuples;
* the CC saturation's per-(session, key) monotone pointers live in flat
  ``array('q')`` rows indexed by dense bucket ids (one bucket per
  ``(writer session, key)`` writer list, allocated when the first write
  registers), exactly like the batch
  :func:`~repro.core.compiled.checkers.saturate_cc_compiled`;
* inferred edges are recorded in the same packed ``int -> int`` logs and
  replayed in batch order at :meth:`finalize`, so verdicts, violation
  kinds, witnesses, and inferred-edge counts are byte-identical to every
  batch engine (property-tested in ``tests/test_online_compiled.py`` and
  ``tests/test_matrix.py``).

Memory model: each transaction's operation data is dropped the moment the
transaction is folded into the online state; what stays resident is the
*live state*, laid out as structure-of-arrays columns indexed by
``tid - _txns_base`` -- flat ``array('q')`` transaction summaries (session
ids/indices, status flags, written-key and first-read-per-writer runs in
shared values arrays with per-transaction offsets), the writes index, a
columnar park queue of reads whose writes have not arrived
(:class:`~repro.core.compiled.kernels.ParkQueue`), the per-(session, key)
writer lists, and one flat row-major clock matrix each for the hb clocks
and the session clocks -- so checking a multi-gigabyte log is bounded by
live state, not by operation count, and the resident footprint is array
bytes the cyclic GC never walks, not a per-transaction object heap.
:meth:`live_stats` reports the peak footprint of each component
(``awdit stats --stream`` prints it); the README's "Fold memory model"
section maps each column to what it holds.

Checkpoint/resume: :meth:`save_checkpoint` serializes the whole online
state (intern tables, frontiers, pending reads, edge logs) to a file;
:func:`load_checkpoint` restores it so an interrupted long-running check
continues exactly where it stopped (``awdit check --stream --checkpoint
state.awd`` / ``--resume``).  Checkpoints use :mod:`pickle` under a
versioned magic header -- load them only from trusted paths, like any
pickle.

Duplicate ``(key, value)`` writes resolve exactly like the batch unique-
writes convention -- the *last* write in transaction-id order wins: a
later-ordered duplicate supersedes the registry entry and rebinds every
already-resolved read of a transaction that has not yet been folded into
the frontiers.  A duplicate arriving only after a reading transaction was
folded can no longer rebind it (that would require a second pass over
dropped state), so :meth:`append_batch` detects the case at fold time and
raises :class:`~repro.core.exceptions.HistoryFormatError` with a pointer at
batch mode instead of silently diverging from the batch engines.  Every
stream that replays a history in its session-blocked order with writes
ahead of their readers never trips the diagnostic and resolves identically
to batch.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from array import array
from bisect import bisect_left
from itertools import chain, islice, repeat
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.cc import causality_cycles, causality_labels
from repro.core.commit import CommitRelation
from repro.core.compiled.ir import Intern
from repro.core.exceptions import HistoryFormatError
from repro.core.isolation import IsolationLevel
from repro.core.model import OpRef
from repro.core.result import CheckResult
from repro.core.violations import (
    ReadConsistencyViolation,
    RepeatableReadViolation,
    Violation,
    ViolationKind,
)
from repro.core.compiled import kernels as _kernels
from repro.core.compiled.retire import (
    RetirementPolicy,
    RetireStats,
    SegmentStore,
    check_identity_reuse,
    check_retired_reads,
    load_retired_state,
    low_watermark_flat,
    stable_digest,
)
from repro.graph.csr import freeze_packed
from repro.graph.digraph import EDGE_MASK, EDGE_SHIFT, pack_edge
from repro.histories.formats._raw import DEFAULT_BATCH_OPS, RecordBatch

try:  # pragma: no cover - exercised implicitly when numpy is present
    import numpy as _np
except ImportError:  # pragma: no cover - CI runners without numpy
    _np = None

if os.environ.get("AWDIT_NO_NUMPY"):  # pragma: no cover - fallback CI leg
    _np = None

__all__ = [
    "CompiledIncrementalChecker",
    "check_stream_compiled",
    "load_checkpoint",
    "source_fingerprint",
    "CHECKPOINT_MAGIC",
]

ALL_LEVELS: Tuple[IsolationLevel, ...] = (
    IsolationLevel.READ_COMMITTED,
    IsolationLevel.READ_ATOMIC,
    IsolationLevel.CAUSAL_CONSISTENCY,
)

#: Packed write identity: ``(key_id << _VALUE_SHIFT) | value_id`` (the same
#: layout as the compiled IR's unique-writes index).
_VALUE_SHIFT = 32

#: Bit budget per sort-key component of the packed inferred-edge logs; see
#: :mod:`repro.stream.incremental` for the derivation.
_KEY_SHIFT = 24

#: Checkpoint file header: magic + format version.  Version 2: the
#: ``_cc_t2_rows`` state stores writers pre-shifted by ``EDGE_SHIFT`` (the
#: saturation packs edges with one bitwise-or); version-1 checkpoints would
#: resume with silently wrong pointer state, so they are rejected.
#: Version 3: the checker pickles the ``_folded_read_wids`` set behind the
#: duplicate-write-after-fold diagnostic (and the ``_fold_laps`` profile
#: slot); version-2 checkpoints lack both attributes and would resume with
#: the diagnostic silently disabled, so they are rejected.
#: Version 4: CC edge-emission probes are deferred to a per-batch flush,
#: adding the ``_cc_probe_pending`` queue and the ``_wb_bucket`` /
#: ``_wb_sidx`` / ``_wb_tid`` writer-registry arrays the vectorized flush
#: sorts; version-3 checkpoints lack all four and would resume with the
#: flush silently skipping registered writers, so they are rejected.
#: Version 5: watermark-based retirement adds the retirement bases
#: (``_txns_base`` / ``_sess_base`` / ``_next_tid``), the latest-writer pin
#: map, and the segment store.  Version-4 checkpoints are still *loadable*:
#: they predate retirement entirely, so ``__setstate__`` injects the
#: retirement-disabled defaults (base 0, epoch 0) and the resume behaves
#: exactly like the run that wrote them.
#: Version 6: the resident transaction heap is columnar -- flat parallel
#: arrays indexed by ``tid - _txns_base`` (``_t_sid`` / ``_t_sidx`` /
#: ``_t_flags`` / ..., packed final-write and first-read-per-writer runs),
#: a :class:`~repro.core.compiled.kernels.ParkQueue` for ``_pending``, and
#: flat row-major clock matrices (``_hb_data`` / ``_sc_data``) instead of
#: the ``_hb`` dict and ``List[List[int]]`` session clocks.  Version-4 and
#: version-5 checkpoints (which carry ``_Txn`` / ``_Read`` object state)
#: are still loadable: ``__setstate__`` migrates them into the columns via
#: ``_migrate_legacy_state`` and the resume is byte-identical.
CHECKPOINT_MAGIC = b"AWDITCKPT"
CHECKPOINT_VERSION = 6
_LOADABLE_CHECKPOINT_VERSIONS = (4, 5, 6)

#: Bytes of file prefix hashed into the checkpoint source fingerprint.
_FINGERPRINT_PREFIX = 1 << 16


def source_fingerprint(path: str, prefix_len: Optional[int] = None) -> dict:
    """A cheap identity fingerprint of the history file behind a checkpoint.

    Hashes the first 64 KiB only (or the recorded ``prefix_len`` when
    re-verifying), so a *growing* log -- the monitoring scenario
    checkpoints exist for -- still matches its own checkpoints, while a
    different, regenerated, or truncated file is rejected at resume.
    """
    size = os.path.getsize(path)
    length = min(size, _FINGERPRINT_PREFIX if prefix_len is None else prefix_len)
    with open(path, "rb") as handle:
        digest = hashlib.sha256(handle.read(length)).hexdigest()
    return {"prefix_len": length, "prefix_sha256": digest}


def _sort_base(sid: int, sidx: int) -> int:
    """The sort-key base for transaction (sid, sidx); add the attempt number."""
    return ((sid << _KEY_SHIFT) | sidx) << _KEY_SHIFT


class _Read:
    """A read awaiting (or holding) its write-read resolution, all-int form.

    Only reads routed through the general slow path (own reads, aborted or
    non-final writers) materialize as ``_Read`` objects, held in the
    ``_live_reads`` side table until their transaction resolves; the fast
    and clean paths never allocate one.  The class also remains the pickle
    form parked reads take inside v4/v5 checkpoints.
    """

    __slots__ = ("index", "kid", "vid", "own_prev", "writer", "writer_index", "bad")

    def __init__(self, index: int, kid: int, vid: int, own_prev: Optional[int]) -> None:
        self.index = index
        self.kid = kid
        self.vid = vid
        self.own_prev = own_prev
        self.writer: Optional[int] = None
        self.writer_index = -1
        self.bad = False


class _Txn:
    """Legacy transaction summary -- the pickle form inside v4/v5 checkpoints.

    The live core stores transaction summaries as flat columns (see
    ``CompiledIncrementalChecker.__init__``); this class exists so old
    checkpoints still unpickle, after which ``_migrate_legacy_state``
    decomposes each instance into the columns and drops it.
    """

    __slots__ = (
        "tid",
        "sid",
        "sidx",
        "committed",
        "label",
        "keys_written",
        "keys_written_ordered",
        "reads",
        "unresolved",
        "resolved",
        "rebindable",
        "slow_reads",
        "cc_done",
        "cc_pending",
        "cc_registered",
        "good_reads",
        "wr_first_any",
        "wr_first_good",
        "prefold",
    )

    def __init__(
        self, tid: int, sid: int, sidx: int, committed: bool, label: Optional[str]
    ) -> None:
        self.tid = tid
        self.sid = sid
        self.sidx = sidx
        self.committed = committed
        self.label = label
        #: Both key-written views share one object per transaction: the fold
        #: assigns its ``final_write`` dict (kid -> final write index, keys
        #: in first-write order) to both slots -- iteration and membership
        #: behave exactly like the tuple/frozenset pair they replaced, and
        #: checkpoints written before the change (which carry the pair)
        #: still load.
        self.keys_written: "frozenset | Dict[int, int]" = frozenset()
        self.keys_written_ordered: "Tuple[int, ...] | Dict[int, int]" = ()
        self.reads: List[_Read] = []
        self.unresolved = 0
        self.resolved = False
        #: Retained for checkpoint compatibility; the rebind table it used
        #: to guard is gone (supersede waiters are reconstructed from the
        #: park queue instead).
        self.rebindable = False
        #: Count of this transaction's reads that took the scalar
        #: ``_classify`` path (own reads, non-final or aborted writers,
        #: rebinds).  Zero at fold time means every bound read is a clean
        #: external committed final-write read -- ``_on_resolved`` then
        #: builds its fold structures with comprehensions instead of the
        #: per-read re-checking loop.
        self.slow_reads = 0
        self.cc_done = False
        self.cc_pending = 0
        self.cc_registered = False
        self.good_reads: List[Tuple[int, int, int]] = []
        self.wr_first_any: Dict[int, int] = {}
        self.wr_first_good: Dict[int, int] = {}
        #: Fold-time structures precomputed at consume for a *clean* parked
        #: transaction (every read's eventual binding already known to the
        #: resolve kernel); consumed and cleared by ``_on_resolved``.  Clean
        #: transactions always fold within their own batch, so this never
        #: survives into a checkpoint.
        self.prefold: Optional[tuple] = None


class CompiledIncrementalChecker:
    """Online checker for RC / RA / CC over a stream of raw transactions.

    Parameters mirror :class:`repro.stream.IncrementalChecker`; the feeding
    surface differs: :meth:`append_batch` folds whole columnar
    :class:`~repro.histories.formats._raw.RecordBatch` objects (the
    parsers' ``stream_batches`` layer), and :meth:`append_raw` /
    :meth:`extend_raw` accept the record-at-a-time raw form
    (``session, label, committed, (is_write, key, value) ops``).
    """

    def __init__(
        self,
        levels: Optional[Sequence[IsolationLevel]] = None,
        num_sessions: Optional[int] = None,
        max_witnesses: Optional[int] = None,
        retire: Optional[RetirementPolicy] = None,
    ) -> None:
        chosen = tuple(levels) if levels is not None else ALL_LEVELS
        for level in chosen:
            if level not in ALL_LEVELS:
                raise ValueError(f"unsupported isolation level: {level!r}")
        self._levels = chosen
        self._rc_enabled = IsolationLevel.READ_COMMITTED in chosen
        self._ra_enabled = IsolationLevel.READ_ATOMIC in chosen
        self._cc_enabled = IsolationLevel.CAUSAL_CONSISTENCY in chosen
        self._max_witnesses = max_witnesses

        # Watermark-based retirement (see repro.core.compiled.retire): the
        # resident lists below hold only transactions at or above the bases;
        # everything before them rotated into archival segments.  ``tid``s
        # and session indices stay *absolute* -- only the list indexing is
        # offset -- so clocks, packed edges, and sort keys never renumber
        # mid-stream.
        self._retire = retire
        self._retire_stats = RetireStats()
        self._segments = SegmentStore(retire.segment_dir) if retire else None
        self._txns_base = 0
        self._next_tid = 0
        self._sess_base: List[int] = []
        #: key id -> tid of the arrival-order latest registered writer; a
        #: transaction owning any current entry is pinned (a future read may
        #: still resolve to it), which stops the retirement scan.
        self._latest_writer: Dict[int, int] = {}
        self._retire_last = 0
        self._retired_final = None

        # Columnar transaction summaries: one row per resident transaction,
        # indexed by ``j = tid - _txns_base``.  ``_t_flags`` packs the four
        # status booleans (bit 0 committed, bit 1 resolved, bit 2 cc_done,
        # bit 3 cc_registered).  The written-key and first-read-per-writer
        # summaries are *runs* into shared append-only values arrays:
        # ``_fw_kid[_fw_off[j]:_fw_off[j+1]]`` is the transaction's written
        # kids in first-write order, and the ``_wr_any`` / ``_wr_good``
        # (start, len) pairs slice parallel (writer tid, kid) arrays in
        # first-read order.  ``_wr_good_start[j] == -1`` is a sentinel for
        # "the good run equals the any run", and ``_wr_any_start[j] == -2``
        # for "derive both maps from the good-read run at consume time"
        # (the overwhelmingly common clean-fold case: every read is good,
        # so first-kid-per-distinct-writer over the run *is* the any map)
        # -- the hot fold stores no wr bytes at all for such rows.
        self._t_sid = array("q")
        self._t_sidx = array("q")
        self._t_flags = array("B")
        self._t_unres = array("q")
        self._t_ccpend = array("q")
        self._t_slow = array("q")
        self._t_labels: List[Optional[str]] = []
        self._fw_off = array("q", (0,))
        self._fw_kid = array("q")
        self._wr_any_start = array("q")
        self._wr_any_len = array("q")
        self._wr_any_writer = array("q")
        self._wr_any_kid = array("q")
        self._wr_good_start = array("q")
        self._wr_good_len = array("q")
        self._wr_good_writer = array("q")
        self._wr_good_kid = array("q")
        # Good-read runs: ``(op index, kid, writer tid)`` triples of every
        # committed transaction's good reads, in read order, as three shared
        # append-only arrays sliced by the per-row ``(_gr_start, _gr_len)``
        # pair.  Fast and clean-parked transactions alias the resolve
        # kernel's batch columns (one bulk extend per batch covers them);
        # slow-path rows append their triples at resolve.  The run feeds RC
        # saturation, the RA pre-pass, the CC prefilter and probe flush, and
        # -- through the ``_wr_any_start[j] == -2`` derive sentinel -- the
        # finalize wr maps, so no per-transaction tuple lists stay resident.
        self._gr_start = array("q")
        self._gr_len = array("q")
        self._gr_index = array("q")
        self._gr_kid = array("q")
        self._gr_writer = array("q")
        # Side tables bounded by the unfolded backlog, never by stream
        # length (every entry is popped when its transaction folds): tid ->
        # live ``_Read`` objects of a slow-path transaction still parked,
        # tid -> parked wid column of a clean parked transaction.
        self._live_reads: Dict[int, List[_Read]] = {}
        self._prefold: Dict[int, list] = {}
        self._session_ids: Dict[object, int] = {}
        #: Per session: resident transaction tids in session order (absolute;
        #: entry ``i`` of session ``s`` is session index ``_sess_base[s]+i``).
        self._by_session: List["array"] = []
        self._key_table = Intern()
        self._value_table = Intern()
        # Packed ``(kid << 32) | vid`` -> (sid, sidx, op index, writer tid,
        # is-final flag).  The tuple is ordered so that direct comparison is
        # comparison by batch transaction-id order (sid, sidx, op index).
        self._writes: Dict[int, Tuple[int, int, int, int, bool]] = {}
        # Packed write id -> (reader tid, slot) pairs waiting for that write
        # to arrive, as a columnar multimap.  This doubles as the roster of
        # parked transactions: when a duplicate write supersedes a wid
        # (rare), the resolved reads that may rebind are reconstructed by
        # scanning the parked transactions reachable here -- no per-bind
        # rebind table is maintained on the hot path.
        self._pending = _kernels.ParkQueue()

        # RA state: per-session frontier index and lastWrite map.
        self._ra_next: List[int] = []
        self._ra_last_write: List[Dict[int, int]] = []

        # CC state: per-session causal frontier, session clocks, writer lists
        # with dense bucket ids, and the flat per-reader-session pointer rows.
        self._cc_next: List[int] = []
        # Flat row-major clock matrices, both with the same power-of-two row
        # stride (grown geometrically by ``_grow_clock_stride`` when a new
        # session overflows it): ``_sc_data`` holds one session-clock row
        # per dense sid, ``_hb_data`` one hb-clock row per *resident*
        # transaction (row ``tid - _txns_base``).  Cells are -1-padded; a -1
        # entry compares exactly like the missing entry of the old ragged
        # ``List[List[int]]`` clocks (``sidx <= -1`` is false for any real
        # session index).  -1 as int64 is all 0xff bytes, so ``_hb_pad``
        # (one padded row) appends a fresh row with a single frombytes.
        self._clock_stride = 4
        self._sc_data = array("q")
        self._hb_data = array("q")
        self._hb_pad = b"\xff" * (8 * self._clock_stride)
        #: key id -> (sorted writer session ids, slots aligned with them,
        #: {sid: slot}, bucket ids aligned with the slots); a slot is
        #: (tids, sidxs, bucket id, writer sid).  The slot list is what the
        #: CC loop iterates -- one tuple unpack per probe instead of a dict
        #: lookup per (read, session) pair -- and the parallel bucket-id
        #: list lets the vectorized probe flush build its key CSR with two
        #: C-level extends per key instead of a Python loop over slots.
        self._writers_by_key: Dict[
            int,
            Tuple[
                List[int],
                List[Tuple[List[int], List[int], int, int]],
                Dict[int, Tuple[List[int], List[int], int, int]],
                List[int],
            ],
        ] = {}
        self._num_buckets = 0
        #: Per reader session: monotone pointer / latest-hb-writer rows,
        #: indexed by bucket id (grown lazily to ``_num_buckets``).  Plain
        #: int lists, not ``array``: the saturation loop indexes them per
        #: (read, session) probe and list indexing skips the box/unbox.
        #: The t2 rows store each writer tid pre-shifted by ``EDGE_SHIFT``
        #: (-1 = no writer), so the saturation packs an edge with one
        #: bitwise-or; part of the checkpoint format (see
        #: ``CHECKPOINT_VERSION``).
        self._cc_ptr_rows: List[List[int]] = []
        self._cc_t2_rows: List[List[int]] = []
        #: writer tid -> tids of registered readers waiting on its cc_done
        #: (one entry per waiting read occurrence, like the dependency count).
        self._cc_waiters: Dict[int, List[int]] = {}
        #: Append-order mirror of every writer registration -- (bucket id,
        #: session index, tid) rows the vectorized probe flush sorts into a
        #: searchsorted-able composite (see ``_flush_cc_probes``); part of
        #: the checkpoint format (``CHECKPOINT_VERSION`` 4).
        self._wb_bucket = array("q")
        self._wb_sidx = array("q")
        self._wb_tid = array("q")
        #: Transactions (tids) whose CC clock join ran but whose
        #: edge-emission probes are deferred to the end of the batch, where
        #: one flush answers them all (vectorized when numpy is on and the
        #: batch is big enough, the scalar pointer loop otherwise).
        self._cc_probe_pending: List[int] = []
        #: Flush-implementation tallies, surfaced as the
        #: ``saturation_kernel`` stat (``--profile`` self-description).
        self._flush_vectorized = 0
        self._flush_scalar = 0
        #: Clock-join tallies for ``kernels.join_clocks``, surfaced as the
        #: ``join_kernel`` stat.  "fallback"/"mixed" is *normal* on small
        #: session counts: joins below ``kernels._MIN_JOIN_CELLS`` cells run
        #: the scalar path on purpose because numpy dispatch would cost more
        #: than it saves there.
        self._join_vectorized = 0
        self._join_scalar = 0

        #: Derived kernel caches (never pickled, rebuilt after restore or
        #: retirement): the sorted flat mirror of ``_writes`` behind
        #: ``kernels.resolve_reads``, and the incrementally sorted CC
        #: writer-registry view behind the probe flush.
        self._writes_index = _kernels.WritesIndex()
        self._wb_probe = _kernels.WriterProbeIndex()
        #: Read-resolution tallies: reads bound on the fast path (no
        #: ``_classify`` call), classified by the scalar slow path, parked
        #: for a missing write, and rebound by a duplicate-write supersede
        #: -- plus which resolve kernel ran per batch.  Surfaced as the
        #: ``classify_kernel`` stat and by ``stats --stream``.
        self._resolve_fast = 0
        self._resolve_slow = 0
        self._resolve_parked = 0
        self._resolve_rebound = 0
        self._resolve_vectorized = 0
        self._resolve_scalar = 0

        # Recorded inferred edges, replayed in batch order at finalize.
        self._rc_log: Dict[int, int] = {}
        self._ra_log: Dict[int, int] = {}
        self._ra_so_log: Dict[int, int] = {}
        self._cc_log: Dict[int, int] = {}

        # Violations discovered so far, plus their batch-order sort keys.
        self._rc_axiom: List[Tuple[Tuple[int, int, int], Violation]] = []
        self._rr: List[Tuple[Tuple[int, int, int], Violation]] = []
        self._live: List[Violation] = []

        self._num_operations = 0
        self._elapsed = 0.0
        self._results: Optional[Dict[IsolationLevel, CheckResult]] = None

        # Live-state peak tracking (awdit stats --stream).
        self._num_parked = 0
        self._num_unfolded = 0
        self._peak_parked = 0
        self._peak_unfolded = 0
        self._peak_cc_backlog = 0
        self._cc_backlog = 0

        # Packed (key, value) identities read by already-folded transactions.
        # A later duplicate write superseding one of these could not rebind
        # the folded reader (its operation data is gone), so the fold raises
        # a diagnostic instead of silently diverging from the batch engines.
        self._folded_read_wids: Set[int] = set()
        # --profile sub-laps of the fold ("intern" / "dispatch" /
        # "classify" / "clock_join" wall seconds); None unless
        # enable_fold_profile() ran.
        self._fold_laps: Optional[Dict[str, float]] = None

        if num_sessions is not None:
            for sid in range(num_sessions):
                self._register_session(sid)

    # -- public surface --------------------------------------------------------

    @property
    def levels(self) -> Tuple[IsolationLevel, ...]:
        """The isolation levels this checker maintains."""
        return self._levels

    @property
    def num_transactions(self) -> int:
        """Number of transactions appended so far (retired ones included)."""
        return self._next_tid

    @property
    def num_operations(self) -> int:
        """Number of operations appended so far."""
        return self._num_operations

    @property
    def num_sessions(self) -> int:
        """Number of sessions seen (or pre-registered) so far."""
        return len(self._by_session)

    @property
    def finalized(self) -> bool:
        """True once :meth:`finalize` has produced results."""
        return self._results is not None

    @property
    def violations(self) -> List[Violation]:
        """Violations witnessed so far, in discovery order."""
        return list(self._live)

    def append_raw(
        self,
        session: object,
        label: Optional[str],
        committed: bool,
        ops: Iterable[Tuple[bool, object, object]],
    ) -> None:
        """Feed one raw transaction record appended to ``session``.

        ``ops`` are ``(is_write, key, value)`` tuples in program order --
        the exact records the formats' ``stream_ops`` layer yields.  A
        shim packing a single-record batch for :meth:`append_batch`, the
        fold implementation; folding is identical either way, batching only
        amortizes the per-call overhead.  Transactions of one session must
        arrive in session order; sessions may interleave arbitrarily.
        """
        batch = RecordBatch()
        batch.add_record(session, label, committed, ops)
        self.append_batch(batch)

    def append_batch(self, batch: "RecordBatch") -> None:
        """Fold one columnar :class:`RecordBatch` into the online state.

        The whole key column is interned in one columnar pass and the
        value column through a lazy probe (ids assigned in operation
        order either way, so the intern tables -- and therefore every
        rendered witness -- are byte-identical to record-at-a-time
        folding), then each transaction of the batch goes
        through exactly the resolution pipeline of the online algorithms:
        write registration, duplicate-write supersede/rebind, parked-read
        resolution, own-read classification, and the RA/CC frontier
        advances.  Verdicts and violations do not depend on how the stream
        was cut into batches.

        Raises :class:`~repro.core.exceptions.HistoryFormatError` when a
        duplicate ``(key, value)`` write supersedes a write whose bound
        reader was already folded (see the module docstring): the stream
        cannot rebind that read, so it refuses instead of silently
        diverging from the batch engines.
        """
        if self._results is not None:
            raise RuntimeError("cannot append to a finalized checker")
        start = time.perf_counter()
        laps = self._fold_laps

        kinds = batch.kinds
        values_col = batch.values
        txn_end = batch.txn_end
        sessions_col = batch.txn_session
        labels_col = batch.txn_labels
        committed_col = batch.txn_committed

        # Bulk intern.  Keys are interned unconditionally (reads and writes
        # alike), so one columnar pass assigns ids in operation order --
        # the same table order per-op interning would produce.  Values of
        # *aborted-transaction reads* are never interned (same rule as the
        # per-op path); the column pass below skips exactly those slots and
        # assigns every other miss in operation order.
        kid_col = self._key_table.intern_column(batch.keys)
        vid_col, cap_txn = self._intern_value_column(
            values_col, kinds, committed_col, txn_end
        )
        if laps is not None:
            lap_mark = time.perf_counter()
            laps["intern"] += lap_mark - start
            cc_lap_before = laps["clock_join"]

        t_sid = self._t_sid
        t_sidx = self._t_sidx
        t_flags = self._t_flags
        t_unres = self._t_unres
        t_ccpend = self._t_ccpend
        t_slow = self._t_slow
        t_labels = self._t_labels
        fw_off = self._fw_off
        fw_kid = self._fw_kid
        wany_start = self._wr_any_start
        wany_len = self._wr_any_len
        wgood_start = self._wr_good_start
        wgood_len = self._wr_good_len
        gr_start = self._gr_start
        gr_len = self._gr_len
        gr_index = self._gr_index
        gr_kid = self._gr_kid
        gr_writer = self._gr_writer
        live_reads = self._live_reads
        prefold_map = self._prefold
        session_ids = self._session_ids
        by_session = self._by_session
        writes = self._writes
        pending = self._pending
        folded_wids = self._folded_read_wids
        writers_by_key = self._writers_by_key
        cc_enabled = self._cc_enabled
        value_cap = 1 << _VALUE_SHIFT
        tbase = self._txns_base
        sess_base = self._sess_base
        latest_writer = self._latest_writer
        value_objs = self._value_table.values
        writes_index = self._writes_index
        retiring = self._retire is not None
        ra_enabled = self._ra_enabled
        rc_enabled = self._rc_enabled
        classify = self._classify
        on_resolved = self._on_resolved
        rc_saturate = self._rc_saturate
        advance_ra = self._advance_ra
        advance_cc = self._advance_cc
        pending_add = pending.add
        # The underlying dict's pop, not the ParkQueue method: one write
        # arrival per parked wid pays this call, so skipping the Python
        # wrapper frame is measurable on write-heavy streams.
        pending_pop = pending._rows.pop
        writes_get = writes.get
        wb_bucket_append = self._wb_bucket.append
        wb_sidx_append = self._wb_sidx.append
        wb_tid_append = self._wb_tid.append
        # The hb matrix (and its pad row) are rebound after any mid-batch
        # session registration: a registration can grow the clock stride,
        # which replaces both.
        hb_data = self._hb_data
        hb_pad = self._hb_pad
        # Resolve counters accumulate in locals for the whole batch (the
        # live-stats surface only reads them between batches).
        n_fast = n_slow = n_parked = n_rebound = 0
        # Fast-path and aborted folds defer their frontier advances to one
        # sweep per touched session at the end of the batch: the frontiers
        # always process in session order from their own cursors, so when
        # the advance runs does not change what it computes -- only the
        # per-transaction call overhead.  (_on_resolved keeps its inline
        # advances: parked resolutions are rare and may cross batches.)
        touched_sids: Set[int] = set()
        touch = touched_sids.add

        # Whole-batch read resolution: one kernel call answers every
        # committed read's "who wrote this (key, value) -- final? committed?
        # external?" probe against the pre-batch registry and the batch's
        # own writes (see kernels.resolve_reads).  The fold loop below
        # consumes the answers strictly in today's scalar order --
        # registration, supersede/rebind, parked-read resolution, own reads
        # -- so park/rebind/refusal semantics and error timing are
        # untouched; only the per-read probing is batched.  Hazardous wids
        # (written twice in the batch, or already registered) and every
        # read the kernel could not prove clean drop to the exact scalar
        # path against the live dict.
        if laps is not None and "dispatch" in laps:
            dispatch_mark = time.perf_counter()
        res = _kernels.resolve_reads(
            writes_index,
            writes,
            lambda wtid: t_flags[wtid - tbase] & 1,
            kid_col,
            vid_col,
            kinds,
            txn_end,
            committed_col,
            self._next_tid,
        )
        dispatch_delta = 0.0
        if laps is not None and "dispatch" in laps:
            dispatch_delta = time.perf_counter() - dispatch_mark
            laps["dispatch"] += dispatch_delta
        if res.kernel == "vectorized":
            self._resolve_vectorized += 1
        else:
            self._resolve_scalar += 1
        r_start = res.r_start
        r_index = res.r_index
        r_kid = res.r_kid
        r_vid = res.r_vid
        r_wid = res.r_wid
        r_own_prev = res.r_own_prev
        r_fast = res.r_fast
        r_writer = res.r_writer
        r_windex = res.r_windex
        w_start = res.w_start
        w_index = res.w_index
        w_kid = res.w_kid
        w_wid = res.w_wid
        w_final = res.w_final
        txn_fast = res.txn_fast
        txn_clean = res.txn_clean
        txn_hazard = res.txn_hazard

        # The batch's read columns land in the shared good-run arrays in one
        # bulk extend; fast and clean-parked transactions then alias their
        # ``[ra:rb)`` slice by offset instead of materializing tuple lists.
        # Rows of slow-path reads (writer still -1) are never referenced --
        # those transactions append their resolved triples at fold time.
        gbase = len(gr_index)
        gr_index.extend(r_index)
        gr_kid.extend(r_kid)
        gr_writer.extend(r_writer)

        if txn_end:
            self._num_operations += txn_end[-1]
        try:
            for t in range(len(txn_end)):
                sid = session_ids.get(sessions_col[t])
                if sid is None:
                    sid = self._register_session(sessions_col[t])
                    hb_data = self._hb_data
                    hb_pad = self._hb_pad
                records = by_session[sid]
                tid = self._next_tid
                if tid >= (1 << 31):
                    # Transaction ids are packed-edge endpoints, and the CC t2
                    # rows store them pre-shifted in signed array('q') slots;
                    # checked once per transaction so the saturation loops can
                    # pack and store without guards.
                    raise HistoryFormatError(
                        "history has too many transactions for packed edges"
                    )
                committed = bool(committed_col[t])
                sidx = sess_base[sid] + len(records)
                t_sid.append(sid)
                t_sidx.append(sidx)
                t_flags.append(1 if committed else 0)
                t_unres.append(0)
                t_ccpend.append(0)
                t_slow.append(0)
                t_labels.append(labels_col[t])
                wany_start.append(-1)
                wany_len.append(0)
                wgood_start.append(-1)
                wgood_len.append(0)
                gr_start.append(-1)
                gr_len.append(0)
                hb_data.frombytes(hb_pad)
                records.append(tid)
                self._next_tid = tid + 1
                if t == cap_txn:
                    # The value-table pass crossed the packed-vid budget inside
                    # this transaction; raise at the same transaction boundary
                    # the per-op intern would have.
                    fw_off.append(len(fw_kid))
                    raise HistoryFormatError(
                        "history has too many distinct values for the compiled IR"
                    )

                # ``final_write`` maps key id -> the transaction's final write
                # index; dict(zip) keeps first-write key order with the last
                # write winning, exactly the map the per-op scan used to build.
                # Its keys land in the ``_fw_kid`` run for this row; the write
                # indices are only needed transiently for registration.
                superseded: List[int] = ()
                wa = w_start[t]
                wz = w_start[t + 1]
                if wa != wz:
                    final_write: Dict[int, int] = dict(
                        zip(w_kid[wa:wz], w_index[wa:wz])
                    )
                    fw_kid.extend(final_write)

                    # Register writes, last write in batch order winning.
                    # Non-hazardous transactions bulk-register -- every write is
                    # fresh by construction, and their mirror notes went through
                    # note_insert_columns in one per-batch call; hazardous ones
                    # replay the exact scalar supersede protocol.
                    if txn_hazard[t]:
                        new_writes: List[int] = []
                        superseded = []
                        for k in range(wa, wz):
                            wid = w_wid[k]
                            windex = w_index[k]
                            fl = w_final[k]
                            entry = (sid, sidx, windex, tid, fl)
                            current = writes_get(wid)
                            if current is None:
                                writes[wid] = entry
                                new_writes.append(wid)
                                writes_index.note_insert(
                                    wid, tid, windex, fl, committed
                                )
                            elif entry[:3] > current[:3]:
                                writes[wid] = entry
                                superseded.append(wid)
                                writes_index.note_update(
                                    wid, tid, windex, fl, committed
                                )
                    else:
                        new_writes = w_wid[wa:wz]
                        for k in range(wa, wz):
                            writes[w_wid[k]] = (sid, sidx, w_index[k], tid, w_final[k])
                    if retiring:
                        for kid in final_write:
                            latest_writer[kid] = tid
                else:
                    final_write = None
                    new_writes = ()
                fw_off.append(len(fw_kid))

                if committed and cc_enabled and final_write:
                    num_buckets = self._num_buckets
                    for kid in final_write:
                        entry2 = writers_by_key.get(kid)
                        if entry2 is None:
                            entry2 = ([], [], {}, [])
                            writers_by_key[kid] = entry2
                        sids, slots, per_sid, buckets = entry2
                        slot = per_sid.get(sid)
                        if slot is None:
                            slot = ([], [], num_buckets, sid)
                            num_buckets += 1
                            per_sid[sid] = slot
                            position = bisect_left(sids, sid)
                            sids.insert(position, sid)
                            slots.insert(position, slot)
                            buckets.insert(position, slot[2])
                        slot[0].append(tid)
                        slot[1].append(sidx)
                        wb_bucket_append(slot[2])
                        wb_sidx_append(sidx)
                        wb_tid_append(tid)
                    self._num_buckets = num_buckets

                # A later-ordered duplicate write rebinds the resolved reads of
                # transactions that have not been folded yet -- and refuses the
                # history when a reader of the superseded write already folded.
                # The waiters are reconstructed from the park queue: every
                # unfolded transaction has at least one parked read, so each is
                # reachable through ``pending``, and binds to one wid always
                # happen in reader tid order (parked readers pop in consume
                # order at the wid's registration, later readers bind at their
                # own consume), so the (tid, read index) sort restores the
                # rebind table's exact insertion order.  Supersedes are rare;
                # this trades an O(parked) scan here for zero per-bind
                # bookkeeping on the hot path.
                for wid in superseded:
                    if wid in folded_wids:
                        key = self._key_table.values[wid >> _VALUE_SHIFT]
                        value = value_objs[wid & (value_cap - 1)]
                        raise HistoryFormatError(
                            f"duplicate write W({key}, {value!r}) in "
                            f"{self._name(tid)} supersedes a write whose reader "
                            "was already folded into the online state; the "
                            "stream cannot rebind that read-from edge and its "
                            "verdict would diverge from the batch engines -- "
                            "re-check this history without --stream"
                        )
                    waiters: List[Tuple[int, int, _Read]] = []
                    seen_tids: Set[int] = set()
                    for row in pending.rows():
                        for p in range(0, len(row), 2):
                            otid = row[p]
                            if otid in seen_tids:
                                continue
                            seen_tids.add(otid)
                            # Clean-parked transactions carry no _Read
                            # objects (nothing of theirs is resolved yet),
                            # so only slow-path parked readers can rebind.
                            for read in live_reads.get(otid, ()):
                                if (read.writer is not None or read.bad) and (
                                    (read.kid << _VALUE_SHIFT) | read.vid
                                ) == wid:
                                    waiters.append((otid, read.index, read))
                    if waiters:
                        waiters.sort(key=lambda w: (w[0], w[1]))
                        hit = writes[wid]
                        for otid, _rindex, read in waiters:
                            self._unclassify(otid, read)
                            classify(otid, read, hit)
                            t_slow[otid - tbase] += 1
                            n_rebound += 1

                # Resolve earlier reads that were parked waiting for these writes.
                for wid in new_writes:
                    row = pending_pop(wid, None)
                    if not row:
                        continue
                    hit = writes[wid]
                    windex = hit[2]
                    # Parked reads resolve against this transaction's fresh
                    # write (always external to the parked reader): the common
                    # _classify exit binds inline.
                    self._num_parked -= len(row) >> 1
                    clean = hit[4] and committed
                    for p in range(0, len(row), 2):
                        otid = row[p]
                        slot = row[p + 1]
                        oj = otid - tbase
                        if slot < 0:
                            # Clean-parked read: its binding was proved by the
                            # resolve kernel and already sits in the reader's
                            # good-read run; nothing to materialize unless the
                            # proof failed (it cannot -- a clean wid has
                            # exactly one batch writer, final and committed --
                            # but keep the classify route for defense in
                            # depth).
                            if clean:
                                n_fast += 1
                            else:  # pragma: no cover - unreachable by proof
                                read = _Read(
                                    -slot - 1,
                                    wid >> _VALUE_SHIFT,
                                    wid & (value_cap - 1),
                                    None,
                                )
                                classify(otid, read, hit)
                                t_slow[oj] += 1
                                n_slow += 1
                        else:
                            read = live_reads[otid][slot]
                            if clean and read.own_prev is None:
                                read.writer = tid
                                read.writer_index = windex
                                n_fast += 1
                            else:
                                classify(otid, read, hit)
                                t_slow[oj] += 1
                                n_slow += 1
                        t_unres[oj] -= 1
                        if t_unres[oj] == 0:
                            on_resolved(otid)

                # Resolve this transaction's own reads against everything seen
                # so far, consuming the kernel's whole-batch answers.
                jrow = tid - tbase
                if committed:
                    self._num_unfolded += 1
                    if self._num_unfolded > self._peak_unfolded:
                        self._peak_unfolded = self._num_unfolded
                    ra = r_start[t]
                    rb = r_start[t + 1]
                    if txn_fast[t]:
                        # Every read is clean (external committed final write,
                        # no earlier own write): fold straight off the kernel
                        # columns -- this is _on_resolved inlined, with no
                        # _Read objects on the path at all.
                        n_fast += rb - ra
                        folded_wids.update(r_wid[ra:rb])
                        if rb > ra:
                            gr_start[jrow] = gbase + ra
                            gr_len[jrow] = rb - ra
                        wany_start[jrow] = -2
                        if ra_enabled and rb - ra > 1 and (
                            # A non-repeatable read needs a repeated key;
                            # one C-level set build skips the per-read dict
                            # loop for the (dominant) all-distinct case.
                            len(set(kids := r_kid[ra:rb])) != rb - ra
                        ):
                            writers = r_writer[ra:rb]
                            # _check_repeatable_reads, inlined (the writer is
                            # never the reader itself on the fast path); on a
                            # violation the last-writer entry is *not* updated,
                            # matching the scalar check.
                            last_writer: Dict[int, int] = {}
                            lw_get = last_writer.get
                            for j, w in enumerate(writers):
                                kd = kids[j]
                                previous = lw_get(kd)
                                if previous is None:
                                    last_writer[kd] = w
                                elif previous != w:
                                    key = self._key_table.values[kd]
                                    violation = RepeatableReadViolation(
                                        kind=ViolationKind.NON_REPEATABLE_READ,
                                        message=(
                                            f"{self._name(tid)} reads {key!r} "
                                            f"from both "
                                            f"{self._name(previous)} "
                                            f"and {self._name(w)}"
                                        ),
                                        txn=tid,
                                        key=key,
                                        writers=(previous, w),
                                    )
                                    self._rr.append(
                                        ((sid, sidx, r_index[ra + j]), violation)
                                    )
                                    self._live.append(violation)
                        t_flags[jrow] |= 2
                        self._num_unfolded -= 1
                        if cc_enabled:
                            self._cc_backlog += 1
                            if self._cc_backlog > self._peak_cc_backlog:
                                self._peak_cc_backlog = self._cc_backlog
                        if rc_enabled:
                            rc_saturate(tid)
                        touch(sid)
                    elif txn_clean[t]:
                        # Every read is clean but at least one writer registers
                        # later in this batch: park those reads exactly like the
                        # scalar fold (same pending-queue timing, same peak
                        # stats), but precompute the fold-time structures now --
                        # the kernel already knows every eventual binding, so
                        # the parked entries carry the encoded read index
                        # (``-index - 1``) instead of a _Read object.  A clean
                        # wid has exactly one batch writer and no registry
                        # entry, so no supersede can ever rebind these reads.
                        unresolved = 0
                        for j in range(ra, rb):
                            if not r_fast[j]:
                                pending_add(r_wid[j], tid, -r_index[j] - 1)
                                unresolved += 1
                        n_parked += unresolved
                        n_fast += (rb - ra) - unresolved
                        if rb > ra:
                            gr_start[jrow] = gbase + ra
                            gr_len[jrow] = rb - ra
                        wany_start[jrow] = -2
                        prefold_map[tid] = r_wid[ra:rb]
                        t_unres[jrow] = unresolved
                        self._num_parked += unresolved
                        if self._num_parked > self._peak_parked:
                            self._peak_parked = self._num_parked
                    else:
                        reads: List[_Read] = []
                        reads_append = reads.append
                        unresolved = 0
                        slow = 0
                        for j in range(ra, rb):
                            ov = r_own_prev[j]
                            read = _Read(
                                r_index[j], r_kid[j], r_vid[j], ov if ov >= 0 else None
                            )
                            reads_append(read)
                            if r_fast[j]:
                                read.writer = r_writer[j]
                                read.writer_index = r_windex[j]
                                n_fast += 1
                                continue
                            wid = r_wid[j]
                            hit = writes_get(wid)
                            if hit is None:
                                unresolved += 1
                                pending_add(wid, tid, len(reads) - 1)
                                n_parked += 1
                            else:
                                writer_tid = hit[3]
                                # Clean external final-write reads (the common
                                # case of _classify) resolve without the call.
                                if (
                                    writer_tid != tid
                                    and hit[4]
                                    and ov < 0
                                    and t_flags[writer_tid - tbase] & 1
                                ):
                                    read.writer = writer_tid
                                    read.writer_index = hit[2]
                                    n_fast += 1
                                else:
                                    classify(tid, read, hit)
                                    slow += 1
                                    n_slow += 1
                        live_reads[tid] = reads
                        t_slow[jrow] = slow
                        if unresolved == 0:
                            on_resolved(tid)
                        else:
                            t_unres[jrow] = unresolved
                            self._num_parked += unresolved
                            if self._num_parked > self._peak_parked:
                                self._peak_parked = self._num_parked
                else:
                    t_flags[jrow] |= 2
                    touch(sid)
        except BaseException:
            # A mid-batch error (packed-edge/value-cap overflow, the
            # duplicate-write refusal) leaves the writes dict holding a
            # prefix of the batch while this batch's bulk mirror notes
            # were never applied; drop the mirror so any further use
            # rebuilds from the dict.
            writes_index.invalidate()
            raise
        finally:
            # The deferred frontier sweep runs on the error path too, so a
            # refused batch leaves the frontiers exactly where the per-fold
            # advances would have.
            for touched in sorted(touched_sids):
                advance_ra(touched)
                advance_cc(touched)
            self._resolve_fast += n_fast
            self._resolve_slow += n_slow
            self._resolve_parked += n_parked
            self._resolve_rebound += n_rebound
        # One bulk tail append covers every non-hazardous registration of
        # the batch (the mirror is only consulted by the next batch's
        # resolve_reads call, and hazardous wids -- noted scalar above --
        # are disjoint from these by construction).
        writes_index.note_insert_columns(
            res.nh_wid, res.nh_tid, res.nh_windex, res.nh_flag
        )

        if self._cc_probe_pending:
            # Answer every CC probe deferred by _cc_process in one flush per
            # batch; the time belongs to the clock_join lap (it *is* the
            # saturation half of the CC work) and is therefore accounted
            # before the classify subtraction below.
            if laps is not None:
                flush_mark = time.perf_counter()
                self._flush_cc_probes()
                laps["clock_join"] += time.perf_counter() - flush_mark
            else:
                self._flush_cc_probes()
        if laps is not None:
            # The fold loop is classification + frontier work; the CC clock
            # joins and the resolve-kernel dispatch time themselves (into
            # laps["clock_join"] / laps["dispatch"]), so subtract their
            # deltas to keep the three laps disjoint.
            laps["classify"] += (
                time.perf_counter()
                - lap_mark
                - (laps["clock_join"] - cc_lap_before)
                - dispatch_delta
            )
        if self._retire is not None:
            self._maybe_retire()
        self._elapsed += time.perf_counter() - start

    def _intern_value_column(
        self, values_col, kinds, committed_col, txn_end
    ) -> Tuple[List[int], int]:
        """Bulk-intern the value column; returns ``(vid_col, cap_txn)``.

        One C-level ``map`` probes the whole column against the table, then
        a sparse fixup walks only the misses in operation order -- assigning
        new ids exactly where (and in exactly the order) the per-op lazy
        probe would have.  Values of aborted-transaction reads are never
        interned (their slots stay ``-1``; the resolve kernel never looks at
        them).  ``cap_txn`` is the index of the transaction whose intern
        pushed the table over the packed-vid budget (``-1`` if none); the
        fold raises at that transaction's boundary, the same timing as the
        per-op check.
        """
        ids = self._value_table._ids
        objs = self._value_table.values
        vids = list(map(ids.get, values_col, repeat(-1)))
        try:
            i = vids.index(-1)
        except ValueError:
            return vids, -1
        cap = 1 << _VALUE_SHIFT
        cap_txn = -1
        ids_get = ids.get
        # Aborted-read slots are skipped; resolved lazily only when the
        # batch actually contains an aborted transaction.
        check_aborted = 0 in committed_col
        t = 0
        while True:
            value = values_col[i]
            if check_aborted and not kinds[i]:
                while txn_end[t] <= i:
                    t += 1
                eligible = bool(committed_col[t])
            else:
                eligible = True
            if eligible:
                vid = ids_get(value, -1)
                if vid < 0:
                    vid = len(objs)
                    ids[value] = vid
                    objs.append(value)
                    if vid + 1 >= cap and cap_txn < 0:
                        while txn_end[t] <= i:
                            t += 1
                        cap_txn = t
                vids[i] = vid
            try:
                i = vids.index(-1, i + 1)
            except ValueError:
                break
        return vids, cap_txn

    def extend_raw(
        self,
        records: Iterable[Tuple[object, Tuple[Optional[str], bool, list]]],
        batch_ops: Optional[int] = None,
    ) -> None:
        """Feed many raw ``(session, (label, committed, ops))`` records.

        Records are packed into :class:`RecordBatch` columns of up to
        ``batch_ops`` operations (``None`` = the formats' default) and
        folded with :meth:`append_batch`; the result is identical for any
        ``batch_ops``.
        """
        if batch_ops is None:
            batch_ops = DEFAULT_BATCH_OPS
        elif batch_ops < 1:
            raise ValueError(f"batch_ops must be >= 1, got {batch_ops}")
        batch = RecordBatch()
        add_record = batch.add_record
        for session, (label, committed, ops) in records:
            add_record(session, label, committed, ops)
            if batch.full(batch_ops):
                self.append_batch(batch)
                batch = RecordBatch()
                add_record = batch.add_record
        if len(batch.txn_end):
            self.append_batch(batch)

    def enable_fold_profile(self) -> Dict[str, float]:
        """Start accumulating fold sub-laps; returns the live lap dict.

        The dict maps ``"intern"`` / ``"dispatch"`` / ``"classify"`` /
        ``"clock_join"`` to wall seconds spent in the columnar key intern
        pass, the resolve-kernel dispatch, the per-transaction resolution
        loop (which also lazily interns values), and the CC frontier's
        clock joins respectively (``awdit check --stream --profile``
        prints them as ``fold_*``).
        """
        if self._fold_laps is None:
            self._fold_laps = {
                "intern": 0.0,
                "dispatch": 0.0,
                "classify": 0.0,
                "clock_join": 0.0,
            }
        else:
            # Lap dicts resumed from a pre-v6 checkpoint lack the dispatch
            # sub-lap; backfill so the append_batch guard sees it.
            self._fold_laps.setdefault("dispatch", 0.0)
        return self._fold_laps

    def append(self, session: object, transaction) -> None:
        """Feed one object-model :class:`~repro.core.model.Transaction`.

        Compatibility shim for parity harnesses; the hot path is
        :meth:`append_raw`.
        """
        self.append_raw(
            session,
            transaction.label,
            transaction.committed,
            [(op.is_write, op.key, op.value) for op in transaction.operations],
        )

    def finalize(self) -> Dict[IsolationLevel, CheckResult]:
        """Flush pending state and return one :class:`CheckResult` per level.

        Identical contract to ``IncrementalChecker.finalize``: unresolved
        reads become thin-air violations, the frontiers drain, and the
        packed edge logs are replayed in the batch algorithms' order.
        Idempotent.
        """
        if self._results is not None:
            return self._results
        start = time.perf_counter()

        key_names = self._key_table.values
        value_objs = self._value_table.values
        if self._segments is not None and len(self._segments):
            # Reload the archival segments once: the retired transaction
            # metadata feeds the batch renumbering below, and the merged
            # digest set backs the two refusal scans -- a pending read that
            # resolves to an evicted write, and a live write identity that
            # was registered again after its first incarnation was evicted
            # (load_retired_state itself refuses segment-vs-segment reuse).
            vmask = (1 << _VALUE_SHIFT) - 1
            retired = load_retired_state(self._segments, len(self._by_session))
            check_retired_reads(
                retired.digests,
                (
                    (key_names[wid >> _VALUE_SHIFT], value_objs[wid & vmask])
                    for wid in self._pending.wids()
                ),
            )
            check_identity_reuse(
                retired.digests,
                (
                    (key_names[wid >> _VALUE_SHIFT], value_objs[wid & vmask])
                    for wid in self._writes
                ),
            )
            self._retired_final = retired
        t_slow = self._t_slow
        t_unres = self._t_unres
        tbase = self._txns_base
        for wid, row in list(self._pending.items()):
            kid = wid >> _VALUE_SHIFT
            vid = wid & ((1 << _VALUE_SHIFT) - 1)
            key = key_names[kid]
            value = value_objs[vid]
            for p in range(0, len(row), 2):
                otid = row[p]
                slot = row[p + 1]
                oj = otid - tbase
                if slot < 0:  # pragma: no cover - unreachable by proof
                    # A clean-parked read's writer registers later in the
                    # *same* batch (that is what the kernel proved), so none
                    # can still be parked at finalize; materialize a _Read
                    # anyway for defense in depth.
                    read = _Read(-slot - 1, kid, vid, None)
                else:
                    read = self._live_reads[otid][slot]
                read.bad = True
                t_slow[oj] += 1
                self._add_rc_violation(
                    otid,
                    read,
                    ViolationKind.THIN_AIR_READ,
                    f"{self._name(otid)} reads R({key}, {value!r}) but no "
                    f"transaction writes {value!r} to {key!r}",
                    write=None,
                )
                t_unres[oj] -= 1
                if t_unres[oj] == 0:
                    self._on_resolved(otid)
        self._pending.clear()
        self._num_parked = 0
        # Thin-air resolution above may have advanced the CC frontier;
        # answer any probes it deferred before the logs are replayed.
        self._flush_cc_probes()

        if self._ra_enabled:
            for sid in range(len(self._by_session)):
                if self._ra_next[sid] != self._sess_base[sid] + len(
                    self._by_session[sid]
                ):
                    raise AssertionError("RA frontier failed to drain at finalize")

        cc_complete = all(
            self._cc_next[sid] == self._sess_base[sid] + len(self._by_session[sid])
            for sid in range(len(self._by_session))
        )
        mapping, names, committed_ids, so_edges = self._batch_numbering()
        rc_violations = [v for _, v in sorted(self._rc_axiom, key=lambda item: item[0])]

        # Release the online state before rebuilding the commit relations so
        # peak memory stays close to one relation.
        self._writes = {}
        self._pending = _kernels.ParkQueue()
        self._hb_data = array("q")
        self._sc_data = array("q")
        # The good-read run columns stay alive: _build_relation and
        # _causality_graph derive each resident row's wr maps from its run
        # (the -2 sentinel) during the replay below.
        self._live_reads = {}
        self._prefold = {}
        self._writers_by_key = {}
        self._cc_ptr_rows = []
        self._cc_t2_rows = []
        self._cc_waiters = {}
        self._cc_probe_pending = []
        self._wb_bucket = array("q")
        self._wb_sidx = array("q")
        self._wb_tid = array("q")
        self._ra_last_write = []
        self._latest_writer = {}

        results: Dict[IsolationLevel, CheckResult] = {}
        if self._rc_enabled:
            relation = self._build_relation(
                mapping, names, committed_ids, so_edges, self._rc_log,
                spilled=self._spilled_run("rc"),
            )
            self._rc_log = {}
            violations = rc_violations + relation.find_cycles(
                max_witnesses=self._max_witnesses
            )
            results[IsolationLevel.READ_COMMITTED] = self._result(
                IsolationLevel.READ_COMMITTED, violations, "awdit-stream", relation
            )
            del relation
        if self._ra_enabled:
            rr_violations = [v for _, v in sorted(self._rr, key=lambda item: item[0])]
            single = len(self._by_session) <= 1
            log = self._ra_so_log if single else self._ra_log
            relation = self._build_relation(
                mapping, names, committed_ids, so_edges, log,
                spilled=self._spilled_run("ra_so" if single else "ra"),
            )
            self._ra_log = {}
            self._ra_so_log = {}
            violations = (
                rc_violations
                + rr_violations
                + relation.find_cycles(max_witnesses=self._max_witnesses)
            )
            checker = "awdit-stream-1session" if single else "awdit-stream"
            results[IsolationLevel.READ_ATOMIC] = self._result(
                IsolationLevel.READ_ATOMIC, violations, checker, relation,
                co_edges=not single,
            )
            del relation
        if self._cc_enabled:
            if not cc_complete:
                graph, labels = self._causality_graph(mapping)
                violations = rc_violations + causality_cycles(names, graph, labels)
                results[IsolationLevel.CAUSAL_CONSISTENCY] = self._result(
                    IsolationLevel.CAUSAL_CONSISTENCY, violations, "awdit-stream", None
                )
            else:
                relation = self._build_relation(
                    mapping, names, committed_ids, so_edges, self._cc_log,
                    spilled=self._spilled_run("cc"),
                )
                self._cc_log = {}
                violations = rc_violations + relation.find_cycles(
                    max_witnesses=self._max_witnesses
                )
                results[IsolationLevel.CAUSAL_CONSISTENCY] = self._result(
                    IsolationLevel.CAUSAL_CONSISTENCY, violations, "awdit-stream",
                    relation,
                )
                del relation
        for result in results.values():
            self._live.extend(
                v for v in result.violations if v.kind
                in (ViolationKind.CAUSALITY_CYCLE, ViolationKind.COMMIT_ORDER_CYCLE)
                and v not in self._live
            )
        self._retired_final = None
        if self._segments is not None:
            # Owned (temporary) segment directories are deleted; an explicit
            # --segment-dir keeps its segments as the user's archive.
            self._segments.cleanup()
        self._elapsed += time.perf_counter() - start
        for result in results.values():
            result.elapsed_seconds = self._elapsed
        self._results = results
        return results

    # -- live-state accounting --------------------------------------------------

    def live_stats(self) -> Dict[str, int]:
        """Peak live-state footprint of the online core, component by component.

        ``resident_transactions`` is the number of transaction-level
        summaries currently held (operation data itself is dropped at fold,
        and retirement evicts summaries past the watermark); the ``peak_*``
        entries are high-water marks over the whole run, and the
        ``retire*``/``remap_epochs`` counters describe the retirement layer
        (all zero when ``--retire`` is off).
        """
        stats = {
            "transactions": self._next_tid,
            "operations": self._num_operations,
            "sessions": len(self._by_session),
            "resident_transactions": len(self._t_sid),
            "pending_reads": self._num_parked,
            "peak_pending_reads": self._peak_parked,
            "unfolded_transactions": self._num_unfolded,
            "peak_unfolded_transactions": self._peak_unfolded,
            "peak_cc_backlog": self._peak_cc_backlog,
            "interned_keys": len(self._key_table),
            "interned_values": len(self._value_table),
            "writes_index": len(self._writes),
            "cc_writer_buckets": self._num_buckets,
            "cc_flushes_vectorized": self._flush_vectorized,
            "cc_flushes_fallback": self._flush_scalar,
            "cc_joins_vectorized": self._join_vectorized,
            "cc_joins_fallback": self._join_scalar,
            "classify_vectorized": self._resolve_vectorized,
            "classify_fallback": self._resolve_scalar,
            "resolve_fast_path": self._resolve_fast,
            "resolve_slow_path": self._resolve_slow,
            "resolve_parked": self._resolve_parked,
            "resolve_rebound": self._resolve_rebound,
            "inferred_edge_log": (
                len(self._rc_log)
                + len(self._ra_log)
                + len(self._ra_so_log)
                + len(self._cc_log)
            ),
            "retire_enabled": int(self._retire is not None),
        }
        stats.update(self._retire_stats.as_dict())
        return stats

    # -- checkpoint/resume -------------------------------------------------------

    def save_checkpoint(self, path: str, source: Optional[dict] = None) -> None:
        """Serialize the whole online state to ``path``.

        The checkpoint captures everything :meth:`append_raw` has folded so
        far -- intern tables, transaction summaries, frontiers, pending
        reads, and edge logs -- so a :func:`load_checkpoint`'ed checker
        continues the stream from record ``num_transactions`` onward and
        finalizes byte-identically to an uninterrupted run.  Finalized
        checkers cannot be checkpointed.

        ``source`` optionally records a fingerprint of the stream being
        checked (see :func:`repro.stream.runner.source_fingerprint`);
        :func:`load_checkpoint` verifies it so a checkpoint cannot silently
        resume against a different history.  The write is atomic (temp file
        + rename), so an interrupted save never destroys the previous
        checkpoint.
        """
        if self._results is not None:
            raise RuntimeError("cannot checkpoint a finalized checker")
        payload = {
            "records_consumed": self._next_tid,
            "levels": [level.name for level in self._levels],
            "source": source,
            "checker": self,
        }
        scratch = f"{path}.tmp"
        with open(scratch, "wb") as handle:
            handle.write(CHECKPOINT_MAGIC)
            handle.write(bytes([CHECKPOINT_VERSION]))
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(scratch, path)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # Derived kernel caches: cheap to rebuild, numpy-shaped, and not
        # part of the checkpoint format (v5 checkpoints stay loadable both
        # ways; __setstate__ starts fresh mirrors that the next batch
        # repopulates from the pickled dict/registry).
        state.pop("_writes_index", None)
        state.pop("_wb_probe", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # The rebind table is gone: supersede waiters are reconstructed from
        # the park queue, so a pre-change checkpoint's table (whose entries
        # alias the pickled _Txn/_Read objects) is simply dropped.
        self.__dict__.pop("_rebindable", None)
        self._writes_index = _kernels.WritesIndex()
        self._wb_probe = _kernels.WriterProbeIndex()
        for slot in (
            "_resolve_fast",
            "_resolve_slow",
            "_resolve_parked",
            "_resolve_rebound",
            "_resolve_vectorized",
            "_resolve_scalar",
            "_join_vectorized",
            "_join_scalar",
        ):
            if slot not in state:
                # Checkpoints that predate the resolve/join kernels resume
                # with the tallies restarted; only profile counters notice.
                setattr(self, slot, 0)
        if "_next_tid" not in state:
            # A version-4 (pre-retirement) checkpoint: nothing was ever
            # retired, so the bases are zero, the remap epoch is zero, and
            # retirement stays disabled for the resumed run.
            self._next_tid = len(state["_txns"])
            self._txns_base = 0
            self._sess_base = [0] * len(self._by_session)
            self._latest_writer = {}
            self._retire = None
            self._retire_stats = RetireStats()
            self._segments = None
            self._retire_last = 0
            self._retired_final = None
        if "_t_sid" not in state:
            self._migrate_legacy_state()
        elif "_gr_start" not in state:
            # A version-5 (columnar, pre-good-run) checkpoint: its
            # ``_good_reads`` dict maps 1:1 onto the shared run columns
            # (rows the old CC flush already consumed stay empty -- their
            # wr runs were stored explicitly at fold, so nothing downstream
            # ever reads the missing run).
            good_map = self.__dict__.pop("_good_reads", {})
            nrows = len(self._t_sid)
            gr_start = self._gr_start = array("q", repeat(-1, nrows))
            gr_len = self._gr_len = array("q", repeat(0, nrows))
            gr_index = self._gr_index = array("q")
            gr_kid = self._gr_kid = array("q")
            gr_writer = self._gr_writer = array("q")
            tbase = self._txns_base
            for tid, goods in good_map.items():
                j = tid - tbase
                gr_start[j] = len(gr_index)
                gr_len[j] = len(goods)
                for index, kid, writer in goods:
                    gr_index.append(index)
                    gr_kid.append(kid)
                    gr_writer.append(writer)
        # Pre-bucket-cache checkpoints (v4/v5) store 3-tuple writer-registry
        # entries; grow the parallel bucket-id list the probe flush's key
        # CSR extends from (slot order is already sid-sorted).
        writers_by_key = self._writers_by_key
        for key, entry in writers_by_key.items():
            if len(entry) == 3:
                writers_by_key[key] = (
                    entry[0],
                    entry[1],
                    entry[2],
                    [slot[2] for slot in entry[1]],
                )

    def _migrate_legacy_state(self) -> None:
        """Decompose a v4/v5 (object-heap) pickle into the columnar layout.

        The legacy state carries ``_Txn`` records, ``(rec, read)`` pending
        lists, the ``_hb`` dict, and ``List[List[int]]`` session clocks;
        everything maps 1:1 onto the columns, so the resumed run is
        byte-identical to one whose checkpoint was already columnar.
        """
        txns: List[_Txn] = self.__dict__.pop("_txns")
        tbase = self._txns_base
        # Pickles written before the ``slow_reads`` slot existed: force the
        # conservative fold path for every resumed transaction (the fast
        # path is a pure optimization, so semantics are identical).
        has_slow = not txns or hasattr(txns[0], "slow_reads")
        t_sid = self._t_sid = array("q")
        t_sidx = self._t_sidx = array("q")
        t_flags = self._t_flags = array("B")
        t_unres = self._t_unres = array("q")
        t_ccpend = self._t_ccpend = array("q")
        t_slow = self._t_slow = array("q")
        t_labels = self._t_labels = []
        fw_off = self._fw_off = array("q", (0,))
        fw_kid = self._fw_kid = array("q")
        self._wr_any_start = array("q", repeat(-1, len(txns)))
        self._wr_any_len = array("q", repeat(0, len(txns)))
        self._wr_any_writer = array("q")
        self._wr_any_kid = array("q")
        self._wr_good_start = array("q", repeat(-1, len(txns)))
        self._wr_good_len = array("q", repeat(0, len(txns)))
        self._wr_good_writer = array("q")
        self._wr_good_kid = array("q")
        gr_start = self._gr_start = array("q", repeat(-1, len(txns)))
        gr_len = self._gr_len = array("q", repeat(0, len(txns)))
        gr_index = self._gr_index = array("q")
        gr_kid = self._gr_kid = array("q")
        gr_writer = self._gr_writer = array("q")
        live_reads = self._live_reads = {}
        self._prefold = {}
        for j, rec in enumerate(txns):
            t_sid.append(rec.sid)
            t_sidx.append(rec.sidx)
            t_flags.append(
                (1 if rec.committed else 0)
                | (2 if rec.resolved else 0)
                | (4 if rec.cc_done else 0)
                | (8 if rec.cc_registered else 0)
            )
            t_unres.append(rec.unresolved)
            t_ccpend.append(rec.cc_pending)
            t_slow.append(rec.slow_reads if has_slow else 1)
            t_labels.append(rec.label)
            # Both legacy key-written forms (a kid -> index dict, or the
            # older ordered-kids tuple) iterate their kids in first-write
            # order, which is exactly the run layout.
            fw_kid.extend(rec.keys_written_ordered)
            fw_off.append(len(fw_kid))
            wr_good = rec.wr_first_good
            self._store_wr_runs(
                j, rec.wr_first_any, None if wr_good == rec.wr_first_any else wr_good
            )
            if rec.good_reads:
                gr_start[j] = len(gr_index)
                gr_len[j] = len(rec.good_reads)
                for index, kid, writer in rec.good_reads:
                    gr_index.append(index)
                    gr_kid.append(kid)
                    gr_writer.append(writer)
            if rec.reads:
                live_reads[rec.tid] = rec.reads
        # Per-session _Txn lists become tid arrays.
        self._by_session = [
            array("q", (rec.tid for rec in records)) for records in self._by_session
        ]
        # Ragged clock lists become the flat -1-padded matrices.
        num_sessions = len(self._by_session)
        stride = 4
        while stride < num_sessions:
            stride <<= 1
        self._clock_stride = stride
        self._hb_pad = b"\xff" * (8 * stride)
        sc_data = self._sc_data = array("q")
        for clock in self.__dict__.pop("_session_clock"):
            sc_data.extend(clock)
            sc_data.extend(repeat(-1, stride - len(clock)))
        hb_map = self.__dict__.pop("_hb")
        hb_data = self._hb_data = array("q")
        for j in range(len(txns)):
            clock = hb_map.get(tbase + j)
            if clock is None:
                hb_data.frombytes(self._hb_pad)
            else:
                hb_data.extend(clock)
                hb_data.extend(repeat(-1, stride - len(clock)))
        # (rec, read) pending lists become the columnar park queue.  Reads
        # of slow-path transactions park by their position in the reader's
        # live-read list; a read absent from it would be a clean-parked one
        # (encoded by index), but those never survive their own batch, so
        # every parked read resolves through ``live_reads``.
        queue = _kernels.ParkQueue()
        for wid, plist in self.__dict__.pop("_pending").items():
            for rec, read in plist:
                slot = -read.index - 1
                oreads = live_reads.get(rec.tid)
                if oreads is not None:
                    for position, candidate in enumerate(oreads):
                        if candidate is read:
                            slot = position
                            break
                queue.add(wid, rec.tid, slot)
        self._pending = queue
        # Waiter/probe queues drop their record references for plain tids.
        self._cc_waiters = {
            writer: [rec.tid for rec in waiters]
            for writer, waiters in self._cc_waiters.items()
        }
        self._cc_probe_pending = [rec.tid for rec in self._cc_probe_pending]

    # -- watermark-based retirement (see repro.core.compiled.retire) ------------

    def enable_retirement(self, policy: RetirementPolicy) -> None:
        """Enable (or re-tune) watermark-based retirement on a live checker.

        The resume path uses this: a v4 (pre-retirement) checkpoint resumes
        with retirement disabled, and ``--retire`` turns it on for the rest
        of the run.  The latest-writer pins are rebuilt exactly from the
        resident writes index -- nothing was evicted while the policy was
        off, so every write's registration is still resident.  On a checker
        that already retires, only the policy knobs change; the segment
        store (and its manifest) carries on so earlier segments stay valid.
        """
        if self._results is not None:
            raise RuntimeError("cannot enable retirement on a finalized checker")
        enabling = self._retire is None
        self._retire = policy
        if self._segments is None:
            self._segments = SegmentStore(policy.segment_dir)
        if enabling:
            latest: Dict[int, int] = {}
            for wid, entry in self._writes.items():
                kid = wid >> _VALUE_SHIFT
                if entry[3] > latest.get(kid, -1):
                    latest[kid] = entry[3]
            self._latest_writer = latest
            self._retire_last = self._next_tid

    def _maybe_retire(self) -> None:
        """Attempt one retirement pass (end of ``append_batch``).

        The global guard first: a pass runs only on a *fully drained* fold
        -- no parked reads, no unresolved transactions (which also means no
        read can still rebind), and (when CC is on) no CC backlog or
        deferred probes.  Under the guard
        every frontier has passed every resident transaction and no live
        structure dereferences a summary by tid except through still-live
        reads, so retiring a prefix can never be observed by later folds.
        Anomalous histories park reads or stall the CC frontier, which
        stalls the guard -- retirement never advances past an anomaly, and
        byte-identical violations follow for free.
        """
        policy = self._retire
        if self._next_tid - self._retire_last < policy.every:
            return
        self._retire_last = self._next_tid
        if self._num_unfolded or self._pending:
            return
        if self._cc_enabled and (
            self._cc_backlog or self._cc_probe_pending or self._cc_waiters
        ):
            return
        limit = self._next_tid - policy.lag
        base = self._txns_base
        if limit <= base:
            return
        # Eligibility scan, strictly in tid order (the retired set is always
        # a prefix, so tids stay dense below the base -- no hole maps).  A
        # committed transaction must be at or below the global low-watermark
        # of its session (every clock has passed it; no future causal probe
        # can answer with it), and *no* transaction may own a current
        # latest-writer pin (a future read could still resolve to it).
        wm = (
            low_watermark_flat(
                self._sc_data, self._clock_stride, len(self._by_session)
            )
            if self._cc_enabled
            else None
        )
        t_sid = self._t_sid
        t_sidx = self._t_sidx
        t_flags = self._t_flags
        fw_off = self._fw_off
        fw_kid = self._fw_kid
        latest_writer = self._latest_writer
        new_base = base
        while new_base < limit:
            j = new_base - base
            if (t_flags[j] & 1) and wm is not None and t_sidx[j] > wm[t_sid[j]]:
                break
            pinned = False
            for kid in fw_kid[fw_off[j] : fw_off[j + 1]]:
                if latest_writer.get(kid) == new_base:
                    pinned = True
                    break
            if pinned:
                break
            new_base += 1
        if new_base > base:
            self._retire_to(new_base)

    def _retire_to(self, new_base: int) -> None:
        """Retire every transaction below ``new_base`` into one segment.

        Columnar compaction: the retiring transactions are a prefix of
        every column, so eviction is one ``del column[:count]`` per flat
        array (the hb matrix drops ``count`` whole rows the same way) plus
        an O(live) rebuild of the shared run arrays the survivors index.
        """
        base = self._txns_base
        count = new_base - base
        stats = self._retire_stats
        t_sid = self._t_sid
        t_sidx = self._t_sidx
        t_flags = self._t_flags
        t_labels = self._t_labels
        fw_off = self._fw_off
        fw_kid = self._fw_kid
        wany_start = self._wr_any_start
        wany_len = self._wr_any_len
        wany_writer = self._wr_any_writer
        wany_kid = self._wr_any_kid
        wgood_start = self._wr_good_start
        wgood_len = self._wr_good_len
        wgood_writer = self._wr_good_writer
        wgood_kid = self._wr_good_kid
        gr_start = self._gr_start
        gr_len = self._gr_len
        gr_index = self._gr_index
        gr_kid = self._gr_kid
        gr_writer = self._gr_writer

        seg_txns: List[Tuple[int, int, int, bool, Optional[str]]] = []
        seg_wr: List[Tuple[int, list, list]] = []
        per_session: Dict[int, int] = {}
        for j in range(count):
            tid = base + j
            sid = t_sid[j]
            committed = bool(t_flags[j] & 1)
            seg_txns.append((tid, sid, t_sidx[j], committed, t_labels[j]))
            if committed:
                a = wany_start[j]
                if a == -2:
                    # Derive sentinel: the first-per-writer map materializes
                    # from the good-read run only here, at the segment
                    # boundary (the fold never built the dict at all).
                    any_pairs = []
                    seen: Set[int] = set()
                    ga = gr_start[j]
                    for g in range(ga, ga + gr_len[j]):
                        w = gr_writer[g]
                        if w not in seen:
                            seen.add(w)
                            any_pairs.append((w, gr_kid[g]))
                    if any_pairs:
                        seg_wr.append((tid, any_pairs, list(any_pairs)))
                else:
                    alen = wany_len[j]
                    gs = wgood_start[j]
                    glen = alen if gs < 0 else wgood_len[j]
                    if alen or glen:
                        any_pairs = list(
                            zip(wany_writer[a : a + alen], wany_kid[a : a + alen])
                        )
                        if gs < 0:
                            good_pairs = list(any_pairs)
                        else:
                            good_pairs = list(
                                zip(
                                    wgood_writer[gs : gs + glen],
                                    wgood_kid[gs : gs + glen],
                                )
                            )
                        seg_wr.append((tid, any_pairs, good_pairs))
            per_session[sid] = per_session.get(sid, 0) + 1
        del t_sid[:count]
        del t_sidx[:count]
        del t_flags[:count]
        del self._t_unres[:count]
        del self._t_ccpend[:count]
        del self._t_slow[:count]
        del t_labels[:count]
        del self._hb_data[: count * self._clock_stride]
        # Final-write runs: drop the retired prefix of the shared kid array
        # and rebase the offsets.
        cut = fw_off[count]
        del fw_kid[:cut]
        self._fw_off = array("q", (value - cut for value in islice(fw_off, count, None)))
        # wr runs: prefix-delete the per-txn columns, then rebuild the
        # shared pair arrays from the survivors (O(live state)).
        del wany_start[:count]
        del wany_len[:count]
        del wgood_start[:count]
        del wgood_len[:count]
        new_aw = array("q")
        new_ak = array("q")
        for j in range(len(wany_start)):
            length = wany_len[j]
            if length:
                s = wany_start[j]
                wany_start[j] = len(new_aw)
                new_aw.extend(wany_writer[s : s + length])
                new_ak.extend(wany_kid[s : s + length])
            elif wany_start[j] != -2:
                # Keep the derive sentinel: those rows' wr maps live in the
                # good-read runs, not here.
                wany_start[j] = -1
        self._wr_any_writer = new_aw
        self._wr_any_kid = new_ak
        new_gw = array("q")
        new_gk = array("q")
        for j in range(len(wgood_start)):
            gs = wgood_start[j]
            if gs >= 0:
                length = wgood_len[j]
                wgood_start[j] = len(new_gw)
                new_gw.extend(wgood_writer[gs : gs + length])
                new_gk.extend(wgood_kid[gs : gs + length])
        self._wr_good_writer = new_gw
        self._wr_good_kid = new_gk
        # Good-read runs compact the same way: prefix-delete the per-txn
        # columns, rebuild the shared triple arrays from the survivors.
        del gr_start[:count]
        del gr_len[:count]
        new_gi = array("q")
        new_gd = array("q")
        new_gr = array("q")
        for j in range(len(gr_start)):
            length = gr_len[j]
            if length:
                s = gr_start[j]
                gr_start[j] = len(new_gi)
                new_gi.extend(gr_index[s : s + length])
                new_gd.extend(gr_kid[s : s + length])
                new_gr.extend(gr_writer[s : s + length])
            else:
                gr_start[j] = -1
        self._gr_index = new_gi
        self._gr_kid = new_gd
        self._gr_writer = new_gr
        self._txns_base = new_base
        by_session = self._by_session
        sess_base = self._sess_base
        for sid, removed in per_session.items():
            # Within a session tids ascend with the session index, so the
            # retiring transactions are exactly its oldest ``removed``.
            del by_session[sid][:removed]
            sess_base[sid] += removed

        # Evict writes whose writer retired.  Their identities survive only
        # as digests inside the segment: zero resident bytes per evicted
        # write, and the finalize-time scans still catch a read of (or a
        # duplicate registration for) an evicted identity.
        writes = self._writes
        folded = self._folded_read_wids
        key_names = self._key_table.values
        value_objs = self._value_table.values
        vmask = (1 << _VALUE_SHIFT) - 1
        digests: List[int] = []
        evicted = [wid for wid, entry in writes.items() if entry[3] < new_base]
        for wid in evicted:
            del writes[wid]
            folded.discard(wid)
            digests.append(
                stable_digest(key_names[wid >> _VALUE_SHIFT], value_objs[wid & vmask])
            )
        digests.sort()

        # Spill finalized edge-log entries: an entry is immutable once its
        # *reader* endpoint (the low half) retires -- only the reader's own
        # saturation could have lowered its meta, and a retired reader never
        # saturates again.  Writer endpoints may still be live; tids are
        # absolute and stable, so the entries serialize as-is.
        spilled_logs: Dict[str, List[Tuple[int, int]]] = {}
        total_spilled = 0
        for name, log in (
            ("rc", self._rc_log),
            ("ra", self._ra_log),
            ("ra_so", self._ra_so_log),
            ("cc", self._cc_log),
        ):
            doomed = [edge for edge in log if (edge & EDGE_MASK) < new_base]
            if doomed:
                spilled_logs[name] = [(edge, log.pop(edge)) for edge in doomed]
                total_spilled += len(doomed)

        # Compact the CC writer registry: inside each (key, session) slot
        # the retired rows form a prefix (rows append in arrival order);
        # keep only the *last* retired row.  Any future probe's bound is at
        # least the watermark, and the kept row's session index is at most
        # the watermark -- so the kept row answers every probe any removed
        # row could have answered, and the "latest row <= bound" answer is
        # unchanged.  Reader pointer rows shift down by the removed count
        # (a pointer landing at 0 re-advances on its next probe, because
        # the kept row is always at or below the bound); the flat
        # append-order mirror compacts through the kernels module.
        removed_per_bucket: Dict[int, int] = {}
        if self._cc_enabled:
            for entry in self._writers_by_key.values():
                for slot in entry[1]:
                    retired_rows = bisect_left(slot[0], new_base)
                    if retired_rows > 1:
                        removed = retired_rows - 1
                        del slot[0][:removed]
                        del slot[1][:removed]
                        removed_per_bucket[slot[2]] = removed
            if removed_per_bucket:
                for row in self._cc_ptr_rows:
                    for bid, removed in removed_per_bucket.items():
                        if bid < len(row) and row[bid]:
                            row[bid] = row[bid] - removed if row[bid] > removed else 0
                self._wb_bucket, self._wb_sidx, self._wb_tid = (
                    _kernels.compact_writer_registry(
                        self._wb_bucket,
                        self._wb_sidx,
                        self._wb_tid,
                        removed_per_bucket,
                        self._num_buckets,
                    )
                )

        # Value-intern compaction: under the guard the only vid references
        # left are the keys of the writes index, so rebuild the table over
        # the survivors (relative order preserved; vid assignment is
        # invisible in output -- witnesses render value *objects*).  Only
        # worth the O(live) rebuild when eviction freed a real chunk.
        remapped = False
        live_vids = {wid & vmask for wid in writes}
        if len(value_objs) - len(live_vids) >= 1024:
            ordered = sorted(live_vids)
            vid_map = {old: new for new, old in enumerate(ordered)}
            table = Intern()
            for old in ordered:
                table.intern(value_objs[old])
            self._value_table = table
            self._writes = {
                (wid & ~vmask) | vid_map[wid & vmask]: entry
                for wid, entry in writes.items()
            }
            self._folded_read_wids = {
                (wid & ~vmask) | vid_map[wid & vmask] for wid in folded
            }
            remapped = True

        self._segments.write(
            {
                "txns": seg_txns,
                "wr": seg_wr,
                "logs": spilled_logs,
                "digests": digests,
            }
        )

        # The resolve/probe kernel mirrors index structures this pass just
        # compacted (wid eviction, value-id remap, writer-registry rows);
        # drop them and let the next batch rebuild from the live dicts.
        self._writes_index.invalidate()
        self._wb_probe.invalidate()

        stats.retired_transactions += count
        stats.passes += 1
        stats.segments = len(self._segments)
        stats.evicted_writes += len(digests)
        stats.spilled_edges += total_spilled
        if remapped or removed_per_bucket:
            stats.remap_epochs += 1
        resident = len(t_sid)
        if resident > stats.post_compaction_peak:
            stats.post_compaction_peak = resident

    # -- session bookkeeping ---------------------------------------------------

    def _register_session(self, external: object) -> int:
        dense = len(self._by_session)
        self._session_ids[external] = dense
        self._by_session.append(array("q"))
        self._sess_base.append(0)
        self._ra_next.append(0)
        self._ra_last_write.append({})
        self._cc_next.append(0)
        self._cc_ptr_rows.append([])
        self._cc_t2_rows.append([])
        if dense + 1 > self._clock_stride:
            self._grow_clock_stride(dense + 1)
        self._sc_data.frombytes(self._hb_pad)
        return dense

    def _grow_clock_stride(self, needed: int) -> None:
        """Double the clock-matrix row stride until it covers ``needed``.

        Rebuilds both matrices row by row (old rows keep their values in
        the widened rows' prefixes, the tails stay -1 padding).  Amortized
        over geometric growth; sessions register rarely relative to folds.
        """
        stride = self._clock_stride
        new_stride = stride
        while new_stride < needed:
            new_stride <<= 1
        for attr in ("_hb_data", "_sc_data"):
            old = getattr(self, attr)
            rows = len(old) // stride
            widened = array("q")
            widened.frombytes(b"\xff" * (8 * new_stride * rows))
            for r in range(rows):
                widened[r * new_stride : r * new_stride + stride] = old[
                    r * stride : (r + 1) * stride
                ]
            setattr(self, attr, widened)
        self._clock_stride = new_stride
        self._hb_pad = b"\xff" * (8 * new_stride)

    def _dense_sid(self, external: object) -> int:
        dense = self._session_ids.get(external)
        if dense is None:
            dense = self._register_session(external)
        return dense

    def _name(self, tid: int) -> str:
        label = self._t_labels[tid - self._txns_base]
        return label if label is not None else f"t{tid}"

    # -- read classification (Algorithm 4, incremental) ------------------------

    def _op_repr(self, read: _Read) -> str:
        key = self._key_table.values[read.kid]
        value = self._value_table.values[read.vid]
        return f"R({key}, {value!r})"

    def _add_rc_violation(
        self,
        tid: int,
        read: _Read,
        kind: ViolationKind,
        message: str,
        write: Optional[OpRef],
    ) -> None:
        read.bad = True
        violation = ReadConsistencyViolation(
            kind=kind, message=message, read=OpRef(tid, read.index), write=write
        )
        j = tid - self._txns_base
        self._rc_axiom.append(
            ((self._t_sid[j], self._t_sidx[j], read.index), violation)
        )
        self._live.append(violation)

    def _unclassify(self, tid: int, read: _Read) -> None:
        """Withdraw a read's previous classification before rebinding it."""
        if read.bad:
            j = tid - self._txns_base
            sort_key = (self._t_sid[j], self._t_sidx[j], read.index)
            for i, (key, violation) in enumerate(self._rc_axiom):
                if key == sort_key and violation.read == OpRef(tid, read.index):
                    del self._rc_axiom[i]
                    try:
                        self._live.remove(violation)
                    except ValueError:  # pragma: no cover - defensive
                        pass
                    break
        read.bad = False
        read.writer = None
        read.writer_index = -1

    def _classify(
        self, tid: int, read: _Read, hit: Tuple[int, int, int, int, bool]
    ) -> None:
        """Classify a freshly resolved read against the five RC axioms."""
        _wsid, _wsidx, writer_index, writer_tid, is_final = hit
        read.writer = writer_tid
        read.writer_index = writer_index
        if writer_tid == tid:
            if writer_index > read.index:
                self._add_rc_violation(
                    tid,
                    read,
                    ViolationKind.FUTURE_READ,
                    f"{self._name(tid)} reads {self._op_repr(read)} before writing "
                    f"it (write at position {writer_index}, read at {read.index})",
                    write=OpRef(writer_tid, writer_index),
                )
            elif read.own_prev is not None and read.own_prev != writer_index:
                key = self._key_table.values[read.kid]
                self._add_rc_violation(
                    tid,
                    read,
                    ViolationKind.NOT_LATEST_WRITE,
                    f"{self._name(tid)} reads {self._op_repr(read)} from a stale "
                    f"own write to {key!r} (a later own write precedes the read)",
                    write=OpRef(writer_tid, writer_index),
                )
            return
        if not self._t_flags[writer_tid - self._txns_base] & 1:
            self._add_rc_violation(
                tid,
                read,
                ViolationKind.ABORTED_READ,
                f"{self._name(tid)} reads {self._op_repr(read)} written by aborted "
                f"transaction {self._name(writer_tid)}",
                write=OpRef(writer_tid, writer_index),
            )
        elif read.own_prev is not None:
            key = self._key_table.values[read.kid]
            self._add_rc_violation(
                tid,
                read,
                ViolationKind.NOT_OWN_WRITE,
                f"{self._name(tid)} reads {self._op_repr(read)} from "
                f"{self._name(writer_tid)} although it wrote {key!r} earlier itself",
                write=OpRef(writer_tid, writer_index),
            )
        elif not is_final:
            key = self._key_table.values[read.kid]
            self._add_rc_violation(
                tid,
                read,
                ViolationKind.NOT_LATEST_WRITE,
                f"{self._name(tid)} reads {self._op_repr(read)} from a non-final "
                f"write of {self._name(writer_tid)} to {key!r}",
                write=OpRef(writer_tid, writer_index),
            )

    def _store_wr_runs(
        self,
        j: int,
        wr_any: Dict[int, int],
        wr_good: Optional[Dict[int, int]],
    ) -> None:
        """Store a transaction's first-read-per-writer maps as column runs.

        ``wr_good is None`` means the good map equals the any map (the
        clean-fold case): the good run stays the -1 sentinel and readers
        fall through to the any run.  Dict insertion order (= first-read
        order) is what the runs preserve; the finalize replay depends on it.
        """
        if wr_any:
            self._wr_any_start[j] = len(self._wr_any_writer)
            self._wr_any_len[j] = len(wr_any)
            aw = self._wr_any_writer.append
            ak = self._wr_any_kid.append
            for writer, kid in wr_any.items():
                aw(writer)
                ak(kid)
        if wr_good is not None:
            self._wr_good_start[j] = len(self._wr_good_writer)
            self._wr_good_len[j] = len(wr_good)
            gw = self._wr_good_writer.append
            gk = self._wr_good_kid.append
            for writer, kid in wr_good.items():
                gw(writer)
                gk(kid)

    def _on_resolved(self, tid: int) -> None:
        """All reads of ``tid`` are classified: fold it into the online state."""
        j = tid - self._txns_base
        sid = self._t_sid[j]
        pre = self._prefold.pop(tid, None)
        if pre is not None:
            # Clean parked transaction: the good-read run and the wr-map
            # sentinel were written at consume from the resolve-kernel
            # columns (the eventual binding of each read was already
            # known) and every read is good; only the wid list rode the
            # prefold map.
            self._t_flags[j] |= 2
            self._num_unfolded -= 1
            self._folded_read_wids.update(pre)
            a = self._gr_start[j]
            n = self._gr_len[j]
            if self._ra_enabled and n > 1:
                # _check_repeatable_reads, inlined: no bad/own/unbound
                # reads exist here, and on a violation the last-writer
                # entry is not updated, matching the scalar check.
                last_writer: Dict[int, int] = {}
                lw_get = last_writer.get
                sidx = self._t_sidx[j]
                gr_index = self._gr_index
                gr_kid = self._gr_kid
                gr_writer = self._gr_writer
                for g in range(a, a + n):
                    kd = gr_kid[g]
                    w = gr_writer[g]
                    previous = lw_get(kd)
                    if previous is not None and previous != w:
                        key = self._key_table.values[kd]
                        violation = RepeatableReadViolation(
                            kind=ViolationKind.NON_REPEATABLE_READ,
                            message=(
                                f"{self._name(tid)} reads {key!r} from both "
                                f"{self._name(previous)} and "
                                f"{self._name(w)}"
                            ),
                            txn=tid,
                            key=key,
                            writers=(previous, w),
                        )
                        self._rr.append(((sid, sidx, gr_index[g]), violation))
                        self._live.append(violation)
                    else:
                        last_writer[kd] = w
            if self._cc_enabled:
                self._cc_backlog += 1
                if self._cc_backlog > self._peak_cc_backlog:
                    self._peak_cc_backlog = self._cc_backlog
            if self._rc_enabled:
                self._rc_saturate(tid)
            self._advance_ra(sid)
            self._advance_cc(sid)
            return
        self._t_flags[j] |= 2
        self._num_unfolded -= 1
        reads = self._live_reads.pop(tid, ())
        # ``folded_wids`` remembers which (key, value) identities this
        # transaction read (any bound read, own/aborted writers included):
        # its operation data is dropped below, so a later duplicate write
        # for one of them could never rebind the read -- append_batch
        # raises the duplicate-write diagnostic when it sees such a wid.
        folded_wids = self._folded_read_wids
        if self._t_slow[j] == 0:
            # No read ever went through scalar _classify: every bound read
            # is a clean external committed final-write read, so the
            # re-checking loop below collapses to straight projections
            # into the shared good-read run columns.
            folded_wids.update(
                (read.kid << _VALUE_SHIFT) | read.vid for read in reads
            )
            if reads:
                gr_index = self._gr_index
                gr_kid = self._gr_kid
                gr_writer = self._gr_writer
                self._gr_start[j] = len(gr_index)
                self._gr_len[j] = len(reads)
                for read in reads:
                    gr_index.append(read.index)
                    gr_kid.append(read.kid)
                    gr_writer.append(read.writer)
            self._wr_any_start[j] = -2
            if self._ra_enabled and len(reads) > 1:
                # _check_repeatable_reads, inlined: no bad/own/unbound
                # reads exist here, and on a violation the last-writer
                # entry is not updated, matching the scalar check.
                last_writer: Dict[int, int] = {}
                lw_get = last_writer.get
                sidx = self._t_sidx[j]
                for read in reads:
                    kd = read.kid
                    w = read.writer
                    previous = lw_get(kd)
                    if previous is not None and previous != w:
                        key = self._key_table.values[kd]
                        violation = RepeatableReadViolation(
                            kind=ViolationKind.NON_REPEATABLE_READ,
                            message=(
                                f"{self._name(tid)} reads {key!r} from both "
                                f"{self._name(previous)} and "
                                f"{self._name(w)}"
                            ),
                            txn=tid,
                            key=key,
                            writers=(previous, w),
                        )
                        self._rr.append(((sid, sidx, read.index), violation))
                        self._live.append(violation)
                    else:
                        last_writer[kd] = w
            if self._cc_enabled:
                self._cc_backlog += 1
                if self._cc_backlog > self._peak_cc_backlog:
                    self._peak_cc_backlog = self._cc_backlog
            if self._rc_enabled:
                self._rc_saturate(tid)
            self._advance_ra(sid)
            self._advance_cc(sid)
            return
        t_flags = self._t_flags
        tbase = self._txns_base
        gr_index = self._gr_index
        gr_kid = self._gr_kid
        gr_writer = self._gr_writer
        gstart = len(gr_index)
        wr_any = {}
        wr_good: Dict[int, int] = {}
        for read in reads:
            writer = read.writer
            if writer is None:
                continue
            folded_wids.add((read.kid << _VALUE_SHIFT) | read.vid)
            if writer == tid:
                continue
            if not t_flags[writer - tbase] & 1:
                continue
            wr_any.setdefault(writer, read.kid)
            if read.bad:
                continue
            gr_index.append(read.index)
            gr_kid.append(read.kid)
            gr_writer.append(writer)
            wr_good.setdefault(writer, read.kid)
        if len(gr_index) > gstart:
            self._gr_start[j] = gstart
            self._gr_len[j] = len(gr_index) - gstart
        self._store_wr_runs(j, wr_any, None if wr_good == wr_any else wr_good)
        if self._ra_enabled:
            self._check_repeatable_reads(tid, reads)
        if self._cc_enabled:
            self._cc_backlog += 1
            if self._cc_backlog > self._peak_cc_backlog:
                self._peak_cc_backlog = self._cc_backlog
        if self._rc_enabled:
            self._rc_saturate(tid)
        self._advance_ra(sid)
        self._advance_cc(sid)

    def _check_repeatable_reads(self, tid: int, reads: Sequence[_Read]) -> None:
        """Per-transaction repeatable-reads check (Algorithm 2's pre-pass)."""
        last_writer: Dict[int, int] = {}
        key_names = self._key_table.values
        j = tid - self._txns_base
        sid = self._t_sid[j]
        sidx = self._t_sidx[j]
        for read in reads:
            if read.bad or read.writer is None:
                continue
            writer = read.writer
            previous = last_writer.get(read.kid)
            if writer != tid and previous is not None and previous != writer:
                key = key_names[read.kid]
                violation = RepeatableReadViolation(
                    kind=ViolationKind.NON_REPEATABLE_READ,
                    message=(
                        f"{self._name(tid)} reads {key!r} from both "
                        f"{self._name(previous)} and "
                        f"{self._name(writer)}"
                    ),
                    txn=tid,
                    key=key,
                    writers=(previous, writer),
                )
                self._rr.append(((sid, sidx, read.index), violation))
                self._live.append(violation)
            else:
                last_writer[read.kid] = writer

    # -- inferred-edge recording -----------------------------------------------

    @staticmethod
    def _record(log: Dict[int, int], t2: int, t1: int, kid: int, sort_key: int) -> None:
        """Keep the batch-order-earliest ``(sort key, key id)`` per packed edge."""
        edge = pack_edge(t2, t1)
        meta = (sort_key << EDGE_SHIFT) | (kid + 1)
        current = log.get(edge)
        if current is None or meta < current:
            log[edge] = meta

    def _rc_saturate(self, tid: int) -> None:
        """Per-transaction RC saturation (the body of Algorithm 1's main loop)."""
        tbase = self._txns_base
        j = tid - tbase
        n = self._gr_len[j]
        if not n:
            return
        a = self._gr_start[j]
        gr_index = self._gr_index
        gr_kid = self._gr_kid
        gr_writer = self._gr_writer
        seen_txns: Set[int] = set()
        first_txn_reads: Set[int] = set()
        for g in range(a, a + n):
            writer = gr_writer[g]
            if writer not in seen_txns:
                seen_txns.add(writer)
                first_txn_reads.add(gr_index[g])
        earliest: Dict[int, Tuple[Optional[int], Optional[int]]] = {}
        read_keys: Dict[int, None] = {}
        seq = _sort_base(self._t_sid[j], self._t_sidx[j])
        fw_off = self._fw_off
        fw_kid = self._fw_kid
        rc_log = self._rc_log
        rc_log_get = rc_log.get
        for g in range(a + n - 1, a - 1, -1):
            index = gr_index[g]
            key = gr_kid[g]
            t2 = gr_writer[g]
            if index in first_txn_reads:
                wj = t2 - tbase
                a = fw_off[wj]
                b = fw_off[wj + 1]
                if b - a <= len(read_keys):
                    candidates = [x for x in fw_kid[a:b] if x in read_keys]
                else:
                    keys_written = set(fw_kid[a:b])
                    candidates = [x for x in read_keys if x in keys_written]
                for x in candidates:
                    older, newer = earliest[x]
                    t1 = newer
                    if t1 == t2:
                        t1 = older
                    if t1 is not None and t1 != t2:
                        # _record, inlined (hot path).
                        edge = (t2 << EDGE_SHIFT) | t1
                        meta = (seq << EDGE_SHIFT) | (x + 1)
                        current = rc_log_get(edge)
                        if current is None or meta < current:
                            rc_log[edge] = meta
                        seq += 1
            pair = earliest.get(key)
            if pair is None:
                earliest[key] = (None, t2)
            elif pair[1] != t2:
                earliest[key] = (pair[1], t2)
            read_keys[key] = None

    # -- RA frontier (Algorithm 2, online) --------------------------------------

    def _advance_ra(self, sid: int) -> None:
        if not self._ra_enabled:
            return
        records = self._by_session[sid]
        base = self._sess_base[sid]
        index = self._ra_next[sid]
        last_write = self._ra_last_write[sid]
        t_flags = self._t_flags
        tbase = self._txns_base
        while index - base < len(records):
            tid = records[index - base]
            flags = t_flags[tid - tbase]
            if flags & 1:
                if not flags & 2:
                    break
                self._ra_process(tid, last_write)
            index += 1
        self._ra_next[sid] = index

    def _ra_process(self, tid: int, last_write: Dict[int, int]) -> None:
        tbase = self._txns_base
        j = tid - tbase
        ga = self._gr_start[j]
        gn = self._gr_len[j]
        gr_kid = self._gr_kid
        gr_writer = self._gr_writer
        seq = _sort_base(self._t_sid[j], self._t_sidx[j])
        reader_of_key: Dict[int, int] = {}
        distinct_writers: List[int] = []
        seen_writers: Set[int] = set()
        for g in range(ga, ga + gn):
            writer = gr_writer[g]
            reader_of_key.setdefault(gr_kid[g], writer)
            if writer not in seen_writers:
                seen_writers.add(writer)
                distinct_writers.append(writer)

        ra_log = self._ra_log
        ra_so_log = self._ra_so_log
        record = self._record
        # Case t2 -so-> t3 (also the whole single-session specialization).
        for g in range(ga, ga + gn):
            key = gr_kid[g]
            t1 = gr_writer[g]
            t2 = last_write.get(key)
            if t2 is not None and t2 != t1:
                record(ra_so_log, t2, t1, key, seq)
                record(ra_log, t2, t1, key, seq)
                seq += 1

        # Case t2 -wr-> t3: intersect writer keys with read keys, iterating
        # the smaller side in deterministic order (as the batch checker does).
        keys_read = reader_of_key.keys()
        fw_off = self._fw_off
        fw_kid = self._fw_kid
        for t2 in distinct_writers:
            wj = t2 - tbase
            a = fw_off[wj]
            b = fw_off[wj + 1]
            if b - a <= len(keys_read):
                candidates = (x for x in fw_kid[a:b] if x in reader_of_key)
            else:
                keys_written = set(fw_kid[a:b])
                candidates = (x for x in keys_read if x in keys_written)
            for x in candidates:
                t1 = reader_of_key[x]
                if t1 != t2:
                    record(ra_log, t2, t1, x, seq)
                    seq += 1

        for key in fw_kid[fw_off[j] : fw_off[j + 1]]:
            last_write[key] = tid

    # -- CC frontier (Algorithm 3, online) --------------------------------------

    def _advance_cc(self, sid: int) -> None:
        if not self._cc_enabled:
            return
        laps = self._fold_laps
        lap_start = 0.0 if laps is None else time.perf_counter()
        by_session = self._by_session
        cc_next = self._cc_next
        t_flags = self._t_flags
        t_ccpend = self._t_ccpend
        tbase = self._txns_base
        sess_base = self._sess_base
        cc_waiters = self._cc_waiters
        gr_start = self._gr_start
        gr_len = self._gr_len
        gr_writer = self._gr_writer
        cc_process = self._cc_process
        queue = [sid]
        while queue:
            current = queue.pop()
            records = by_session[current]
            base = sess_base[current]
            num_records = base + len(records)
            index = cc_next[current]
            while index < num_records:
                tid = records[index - base]
                jrow = tid - tbase
                flags = t_flags[jrow]
                if flags & 1:
                    if not flags & 2:
                        break
                    if not flags & 8:
                        t_flags[jrow] = flags | 8
                        pending = 0
                        # Duplicate writers need no dedup: each occurrence
                        # both increments ``pending`` and enqueues one
                        # waiter entry, and every entry is decremented
                        # when the writer completes.
                        ga = gr_start[jrow]
                        for writer in gr_writer[ga : ga + gr_len[jrow]]:
                            if not t_flags[writer - tbase] & 4:
                                pending += 1
                                cc_waiters.setdefault(writer, []).append(tid)
                        t_ccpend[jrow] = pending
                    if t_ccpend[jrow] > 0:
                        break
                    queue.extend(cc_process(tid))
                index += 1
            cc_next[current] = index
        if laps is not None:
            laps["clock_join"] += time.perf_counter() - lap_start

    def _cc_process(self, tid: int) -> List[int]:
        """ComputeHB + saturate_cc for one transaction; returns sessions to poke."""
        tbase = self._txns_base
        j = tid - tbase
        t_sid = self._t_sid
        t_sidx = self._t_sidx
        rec_sid = t_sid[j]
        stride = self._clock_stride
        sc_data = self._sc_data
        hb_data = self._hb_data
        soff = rec_sid * stride
        boff = j * stride
        ga = self._gr_start[j]
        gn = self._gr_len[j]
        # Pre-filter against the *base* session clock, then join the
        # survivors' rows in one commutative batched max (kernels.join_clocks).
        # A same-session writer is an so-predecessor -- the base clock
        # already joins every predecessor's clock and session index.  And by
        # vector-clock transitivity a writer at or below the base clock's
        # entry for its session is already joined in whole.  The old scalar
        # loop also skipped writers dominated by *earlier joins of this same
        # batch*; dropping that refinement only adds redundant rows to an
        # idempotent max, so the joined clock is value-identical.
        rows: List[int] = []
        wsids: List[int] = []
        wsidxs: List[int] = []
        if gn:
            for writer in self._gr_writer[ga : ga + gn]:
                wj = writer - tbase
                wsid = t_sid[wj]
                if wsid == rec_sid:
                    continue
                wsidx = t_sidx[wj]
                if wsidx <= sc_data[soff + wsid]:
                    continue
                rows.append(wj)
                wsids.append(wsid)
                wsidxs.append(wsidx)
        if rows:
            row, vectorized = _kernels.join_clocks(
                hb_data, stride, sc_data, soff, rows, wsids, wsidxs
            )
            if vectorized:
                self._join_vectorized += 1
            else:
                self._join_scalar += 1
            hb_data[boff : boff + stride] = row
            sc_row_source = row
        else:
            # No external joins: the transaction's clock IS the base
            # session clock (stored by copy -- rows are fixed slots).
            row = sc_data[soff : soff + stride]
            hb_data[boff : boff + stride] = row
            sc_row_source = None

        # The edge-emission probes are *deferred* to a per-batch flush
        # (_flush_cc_probes): the probe answer -- the latest registered
        # writer at or below the clock bound -- is time-invariant once the
        # clock is joined (every writer under the bound is in rec's causal
        # past, so it registered before this point; later registrations sit
        # strictly above the bound), so batching them loses nothing and
        # lets one vectorized pass answer the whole batch.
        if gn:
            self._cc_probe_pending.append(tid)

        if sc_row_source is not None:
            sc_data[soff : soff + stride] = sc_row_source
        rec_sidx = t_sidx[j]
        if rec_sidx > sc_data[soff + rec_sid]:
            sc_data[soff + rec_sid] = rec_sidx

        t_flags = self._t_flags
        t_flags[j] |= 4
        self._cc_backlog -= 1
        waiters = self._cc_waiters.pop(tid, None)
        poke: List[int] = []
        if waiters:
            t_ccpend = self._t_ccpend
            for waiter in waiters:
                wjj = waiter - tbase
                t_ccpend[wjj] -= 1
                if t_ccpend[wjj] == 0:
                    poke.append(t_sid[wjj])
        return poke

    def _cc_probe_scalar(self, tid: int) -> None:
        """Answer one transaction's deferred CC probes with the pointer loop.

        The pre-deferral saturation half of ``_cc_process``, verbatim: the
        monotone per-(reader session, bucket) pointer rows memoize the scan
        frontier.  Bounds per (reader, writer) session pair only grow over
        a session's life, so pointer state left lagging by a vectorized
        flush (which never touches the rows) self-corrects on the next
        scalar advance -- the rows are a cache of the stateless answer,
        never ahead of it.
        """
        j = tid - self._txns_base
        rec_sid = self._t_sid[j]
        hb_data = self._hb_data
        boff = j * self._clock_stride
        ptr_row = self._cc_ptr_rows[rec_sid]
        t2_row = self._cc_t2_rows[rec_sid]
        # Grow the flat pointer rows once per transaction to cover every
        # bucket allocated so far (zeros = untouched, -1 = no writer), so
        # the slot loop below can index without a bounds check.
        num_buckets = self._num_buckets
        if len(ptr_row) < num_buckets:
            grow = num_buckets - len(ptr_row)
            ptr_row.extend([0] * grow)
            t2_row.extend([-1] * grow)
        # Clock rows are stride-wide and -1-padded, and the stride always
        # covers every registered session (writer session ids always index
        # a registered session), so the slot loop reads bounds straight
        # from the row without a pad step.
        # The meta base advances by one whole seq step (1 << EDGE_SHIFT) per
        # recorded attempt, so the shift happens once per transaction
        # instead of once per attempt; the t2 row stores writers
        # *pre-shifted* (see the checkpoint format note on _cc_t2_rows), so
        # the packed edge is a single bitwise-or per attempt.
        meta_base = _sort_base(rec_sid, self._t_sidx[j]) << EDGE_SHIFT
        meta_step = 1 << EDGE_SHIFT
        cc_log = self._cc_log
        cc_log_setdefault = cc_log.setdefault
        writers_by_key = self._writers_by_key
        ga = self._gr_start[j]
        gn = self._gr_len[j]
        for key, t1 in zip(
            self._gr_kid[ga : ga + gn], self._gr_writer[ga : ga + gn]
        ):
            entry = writers_by_key.get(key)
            if entry is None:
                continue
            key1 = key + 1
            t1s = t1 << EDGE_SHIFT
            for writer_list, writer_indices, bid, other in entry[1]:
                ptr = ptr_row[bid]
                bound = hb_data[boff + other]
                count = len(writer_list)
                if ptr < count and writer_indices[ptr] <= bound:
                    while ptr < count and writer_indices[ptr] <= bound:
                        ptr += 1
                    t2s_val = writer_list[ptr - 1] << EDGE_SHIFT
                    ptr_row[bid] = ptr
                    t2_row[bid] = t2s_val
                else:
                    t2s_val = t2_row[bid]
                if t2s_val >= 0 and t2s_val != t1s:
                    # _record, inlined (hot path); both sides pre-shifted,
                    # so the self-edge test and the edge packing are one
                    # comparison and one bitwise-or, and setdefault makes
                    # the common first-occurrence case a single dict probe.
                    edge = t2s_val | t1
                    meta = meta_base | key1
                    current = cc_log_setdefault(edge, meta)
                    if meta < current:
                        cc_log[edge] = meta
                    meta_base += meta_step

    def _flush_cc_probes(self) -> None:
        """Answer every CC probe deferred by ``_cc_process`` since last flush.

        Runs once per ``append_batch`` (and once in ``finalize``).  The
        probe answer -- the latest registered writer at or below a clock
        bound -- is stateless, so the vectorized path keeps the append-order
        writer registry incrementally sorted as a per-bucket
        ``bucket * 2^32 + sidx`` composite (:class:`kernels.WriterProbeIndex`;
        only rows appended since the last flush are sorted per flush) and
        answers every (read, writer-session) probe of the batch with one
        ``searchsorted`` per run, then reduces the per-edge minimum meta
        with one lexsort before merging into the packed log.  The scalar metas
        are reproduced exactly: the attempt counter advances only per
        *emitted* attempt, and deferral can only add non-emitting probes
        (any writer at or below a bound registered before the clock join
        that produced the bound).  Falls back to the scalar pointer loop
        when numpy is off, the batch is small, or a packing guard fails;
        both paths are bit-identical.
        """
        pending = self._cc_probe_pending
        if not pending:
            return
        self._cc_probe_pending = []
        np = _np
        tbase = self._txns_base
        gr_len = self._gr_len
        js_list = [tid - tbase for tid in pending]
        total = 0
        for jrow in js_list:
            total += gr_len[jrow]
        use_vectorized = (
            np is not None
            and total >= _kernels._MIN_VECTOR_READS
            and len(self._wb_bucket) > 0
            # Composite packing head-room: bucket * 2^32 + sidx and the
            # meta hi component ((sid << 24) | sidx, shifted 24) must both
            # stay inside a signed int64.
            and self._num_buckets < _kernels._MAX_BUCKETS
            and len(self._by_session) < (1 << 15)
        )
        if not use_vectorized:
            self._flush_scalar += 1
            probe = self._cc_probe_scalar
            for i, tid in enumerate(pending):
                if gr_len[js_list[i]]:
                    probe(tid)
            return
        self._flush_vectorized += 1

        # The sorted composite over the writer registry is maintained
        # *incrementally* (kernels.WriterProbeIndex): only rows appended
        # since the last flush are sorted here, and they merge into the
        # main run amortized -- the full-registry argsort every flush used
        # to dominate the small-batch_ops regime.
        probe_index = self._wb_probe
        probe_index.sync(
            self._wb_bucket, self._wb_sidx, self._wb_tid, self._num_buckets
        )

        # Gather the batch: one clock row per pending transaction, one row
        # per good read, and a CSR of the flush-time slot lists of every
        # distinct key probed.  Slots that appeared after a transaction's
        # clock join hold only writers above its bounds (registration is
        # arrival-ordered), so sharing the flush-time snapshot emits the
        # same attempts the per-transaction loop would have.
        k = len(self._by_session)
        nrec = len(pending)
        stride = self._clock_stride
        # One fancy-index gather replaces the per-transaction row copies:
        # clock rows are -1-padded past each session's horizon, so the
        # :k column slice reproduces the old np.full(-1) fill exactly.
        hb_view = np.frombuffer(self._hb_data, dtype=np.int64).reshape(-1, stride)
        js = np.asarray(js_list, dtype=np.int64)
        clock_mat = hb_view[js, :k]
        # hi components: _sort_base, vectorized (the session-count guard
        # above keeps the packed value inside int64 exactly as the scalar
        # per-transaction assignment into an int64 array did).
        sid_a = np.frombuffer(self._t_sid, dtype=np.int64)[js]
        sidx_a = np.frombuffer(self._t_sidx, dtype=np.int64)[js]
        rec_hi = ((sid_a << _KEY_SHIFT) | sidx_a) << _KEY_SHIFT
        # Per-read rows come straight off the shared good-read run columns:
        # each pending transaction's (start, len) run expands to flat
        # positions with one arange/cumsum, no per-read Python loop.
        lens = np.frombuffer(gr_len, dtype=np.int64)[js]
        starts_g = np.frombuffer(self._gr_start, dtype=np.int64)[js]
        read_rec_a = np.repeat(np.arange(nrec, dtype=np.int64), lens)
        cum = np.cumsum(lens) - lens
        pos = (
            np.arange(total, dtype=np.int64)
            - cum[read_rec_a]
            + starts_g[read_rec_a]
        )
        read_key_a = np.frombuffer(self._gr_kid, dtype=np.int64)[pos]
        read_t1_a = np.frombuffer(self._gr_writer, dtype=np.int64)[pos]
        # The key CSR numbers distinct keys in sorted-unique order (the old
        # loop used first-seen order); only which rows belong to which key
        # matters -- per-read probe order still follows each key's slot
        # entry order, so the emitted attempts are unchanged.
        uniq_keys, read_kpos_a = np.unique(read_key_a, return_inverse=True)
        key_start: List[int] = [0]
        slot_bucket: List[int] = []
        slot_sid: List[int] = []
        writers_by_key = self._writers_by_key
        for key in uniq_keys.tolist():
            entry = writers_by_key.get(key)
            if entry is not None:
                # entry[3] mirrors the slots' bucket ids and entry[0] their
                # writer sids, both in the same sid-sorted order -- two
                # extends replace the per-slot tuple unpack loop.
                slot_bucket.extend(entry[3])
                slot_sid.extend(entry[0])
            key_start.append(len(slot_bucket))
        key_start_a = np.asarray(key_start, dtype=np.int64)
        starts = key_start_a[read_kpos_a]
        nslots = key_start_a[read_kpos_a + 1] - starts
        total_probes = int(nslots.sum())
        if total_probes == 0:
            return
        slot_bucket_a = np.asarray(slot_bucket, dtype=np.int64)
        slot_sid_a = np.asarray(slot_sid, dtype=np.int64)

        # Expand (read x slot) probe pairs and answer them all at once.
        probe_read = np.repeat(
            np.arange(read_rec_a.shape[0], dtype=np.int64), nslots
        )
        base = np.cumsum(nslots) - nslots
        probe_slot = (
            np.arange(total_probes, dtype=np.int64)
            - base[probe_read]
            + starts[probe_read]
        )
        probe_rec = read_rec_a[probe_read]
        probe_bucket = slot_bucket_a[probe_slot]
        bound = clock_mat[probe_rec, slot_sid_a[probe_slot]]
        has, t2 = probe_index.probe(probe_bucket, bound)
        t1_probe = read_t1_a[probe_read]
        emit = has & (t2 != t1_probe)
        if not emit.any():
            return

        # Emission metas: hi advances per emitted attempt within each
        # transaction (probe order is read order is pending order, so the
        # emitted rec indices are non-decreasing and bincount gives each
        # transaction's attempt base).
        t2_e = t2[emit]
        t1_e = t1_probe[emit]
        erec = probe_rec[emit]
        ekey = read_key_a[probe_read[emit]]
        ecounts = np.bincount(erec, minlength=nrec)
        estarts = np.cumsum(ecounts) - ecounts
        attempt = np.arange(erec.shape[0], dtype=np.int64) - estarts[erec]
        if int(attempt.max()) >= (1 << _KEY_SHIFT):
            # Meta hi head-room exhausted (2^24 emissions for a single
            # transaction); the scalar loop's Python ints cannot overflow.
            self._flush_vectorized -= 1
            self._flush_scalar += 1
            probe = self._cc_probe_scalar
            for i, tid in enumerate(pending):
                if gr_len[js_list[i]]:
                    probe(tid)
            return
        hi = rec_hi[erec] + attempt
        lo = ekey + 1
        edges = (t2_e << EDGE_SHIFT) | t1_e

        # Per-edge minimum meta via one lexsort (last key is primary), then
        # merge first occurrences into the packed log.
        order2 = np.lexsort((lo, hi, edges))
        edges_sorted = edges[order2]
        first = np.empty(edges_sorted.shape[0], dtype=bool)
        first[0] = True
        np.not_equal(edges_sorted[1:], edges_sorted[:-1], out=first[1:])
        sel = order2[first]
        # Metas pack as Python ints (hi occupies bits above EDGE_SHIFT and
        # overflows int64 for large session ids, exactly like the scalar
        # path), so the per-edge packing stays a comprehension -- but the
        # merge itself runs at dict speed: the batch map is already
        # min-reduced per edge, fresh edges land through one C-level
        # update, and only edges an earlier flush recorded (rare) need the
        # min against the incumbent meta.
        batch_map = dict(
            zip(
                edges[sel].tolist(),
                [
                    (h << EDGE_SHIFT) | low
                    for h, low in zip(hi[sel].tolist(), lo[sel].tolist())
                ],
            )
        )
        cc_log = self._cc_log
        for edge in cc_log.keys() & batch_map.keys():
            if cc_log[edge] < batch_map[edge]:
                batch_map[edge] = cc_log[edge]
        cc_log.update(batch_map)

    # -- finalize helpers --------------------------------------------------------

    def _final_sessions(self):
        """Per-session record sequences for the finalize loops.

        Without retirement this is ``_by_session`` itself (zero overhead);
        with retirement each session's retired stand-ins (reloaded from the
        segments) are prepended, so the loops below see every transaction
        of the history in session order exactly as a never-evicting run
        would.  Entries are therefore *mixed*: plain ``int`` transaction
        ids for resident rows (read through the columns) and retired
        stand-in objects (read through their attributes).
        """
        retired = self._retired_final
        if retired is None:
            return self._by_session
        merged = []
        for sid, records in enumerate(self._by_session):
            front = retired.records[sid]
            if len(front) != self._sess_base[sid]:  # pragma: no cover - defensive
                raise AssertionError("segment store lost retired transactions")
            merged.append(front + list(records))
        return merged

    def _spilled_run(self, name: str):
        """The segments' spilled ``(edge, meta)`` entries for one edge log."""
        retired = self._retired_final
        if retired is None:
            return None
        return retired.log_runs.get(name)

    def _batch_numbering(self):
        """Renumber transactions the way ``History.from_sessions`` would.

        ``so_edges`` comes back *packed* (``(prev << EDGE_SHIFT) | next``),
        ready to extend a relation's so log without re-boxing.
        """
        mapping = [0] * self._next_tid
        names = [""] * self._next_tid
        committed_ids: List[int] = []
        so_edges = array("Q")
        so_append = so_edges.append
        batch_tid = 0
        tbase = self._txns_base
        t_flags = self._t_flags
        t_labels = self._t_labels
        for records in self._final_sessions():
            previous = -1
            for rec in records:
                if type(rec) is int:
                    jrow = rec - tbase
                    mapping[rec] = batch_tid
                    label = t_labels[jrow]
                    committed = t_flags[jrow] & 1
                else:
                    mapping[rec.tid] = batch_tid
                    label = rec.label
                    committed = rec.committed
                names[batch_tid] = label if label is not None else f"t{batch_tid}"
                if committed:
                    committed_ids.append(batch_tid)
                    if previous >= 0:
                        so_append((previous << EDGE_SHIFT) | batch_tid)
                    previous = batch_tid
                batch_tid += 1
        return mapping, names, committed_ids, so_edges

    def _build_relation(
        self,
        mapping: List[int],
        names: List[str],
        committed_ids: List[int],
        so_edges,
        log: Dict[int, int],
        spilled: Optional[List[Tuple[int, int]]] = None,
    ) -> CommitRelation:
        relation = CommitRelation(
            names=names,
            committed=committed_ids,
            key_names=self._key_table.values,
        )
        relation._so_log.extend(so_edges)
        wr_append = relation._wr_log.append
        wrk_append = relation._wr_keys.append
        tbase = self._txns_base
        t_flags = self._t_flags
        wany_start = self._wr_any_start
        wany_len = self._wr_any_len
        wany_writer = self._wr_any_writer
        wany_kid = self._wr_any_kid
        gr_start = self._gr_start
        gr_len = self._gr_len
        gr_kid = self._gr_kid
        gr_writer = self._gr_writer
        for records in self._final_sessions():
            for rec in records:
                if type(rec) is int:
                    jrow = rec - tbase
                    if not t_flags[jrow] & 1:
                        continue
                    reader = mapping[rec]
                    a = wany_start[jrow]
                    if a >= 0:
                        for idx in range(a, a + wany_len[jrow]):
                            wr_append(
                                (mapping[wany_writer[idx]] << EDGE_SHIFT) | reader
                            )
                            wrk_append(wany_kid[idx])
                    elif a == -2:
                        # Derive sentinel: every external committed read was
                        # good, so the first-read-per-writer map falls out of
                        # the good-read run in read order -- exactly the dict
                        # insertion order _store_wr_runs used to serialize.
                        ga = gr_start[jrow]
                        seen: Set[int] = set()
                        for g in range(ga, ga + gr_len[jrow]):
                            w = gr_writer[g]
                            if w not in seen:
                                seen.add(w)
                                wr_append((mapping[w] << EDGE_SHIFT) | reader)
                                wrk_append(gr_kid[g])
                else:
                    if not rec.committed:
                        continue
                    reader = mapping[rec.tid]
                    for writer, kid in rec.wr_first_any.items():
                        wr_append((mapping[writer] << EDGE_SHIFT) | reader)
                        wrk_append(kid)
        self._drain_log(log, mapping, relation, spilled)
        return relation

    def _drain_log(
        self,
        log: Dict[int, int],
        mapping: List[int],
        relation: CommitRelation,
        spilled: Optional[List[Tuple[int, int]]] = None,
    ) -> None:
        """Drain a packed inferred-edge log into the relation's co rows.

        Entries land in batch order (ascending meta = batch position of the
        earliest firing attempt), renumbered through ``mapping`` -- so the
        lazy label replay matches the batch engines bit for bit.  Dedup
        against so/wr and the witness labels happen at the relation's CSR
        freeze.  The vectorized path splits each meta into (seq, key) halves
        -- metas overflow 64 bits by construction -- and lexsorts them,
        which reproduces ``sorted(log, key=log.__getitem__)`` exactly; it
        bails to the scalar loop if a seq half ever exceeds uint64 (only
        possible past ~65k sessions).

        ``spilled`` carries the retired readers' finalized ``(edge, meta)``
        entries reloaded from the archival segments.  Metas are globally
        unique (each reader's attempt counter advances per emission and the
        per-reader bases are distinct), an edge appears in at most one of
        the runs (a spilled edge's reader retired and never records again),
        and every spilled entry already holds its global minimum meta -- so
        one sort over the concatenation restores the exact order a
        never-evicting log would drain in.
        """
        n_spilled = len(spilled) if spilled else 0
        n = len(log) + n_spilled
        if _np is not None and n:
            try:
                if n_spilled:
                    keys_iter = chain(log.keys(), (edge for edge, _ in spilled))
                    metas = list(log.values())
                    metas.extend(meta for _, meta in spilled)
                else:
                    keys_iter = log.keys()
                    metas = log.values()
                packed = _np.fromiter(keys_iter, _np.uint64, n)
                hi = _np.fromiter((m >> EDGE_SHIFT for m in metas), _np.uint64, n)
                lo = _np.fromiter((m & EDGE_MASK for m in metas), _np.uint64, n)
            except OverflowError:  # pragma: no cover - >65k sessions
                pass
            else:
                log.clear()
                order = _np.lexsort((lo, hi))
                remap = _np.asarray(mapping, _np.uint64)
                src = remap[(packed >> EDGE_SHIFT).astype(_np.int64)]
                dst = remap[(packed & EDGE_MASK).astype(_np.int64)]
                relation._co_log.frombytes(((src << EDGE_SHIFT) | dst)[order].tobytes())
                relation._co_keys.frombytes(
                    (lo.astype(_np.int64) - 1)[order].tobytes()
                )
                return
        co_append = relation._co_log.append
        cok_append = relation._co_keys.append
        if n_spilled:
            items = list(log.items())
            items.extend(spilled)
            log.clear()
            items.sort(key=lambda item: item[1])
            for edge, meta in items:
                co_append(
                    (mapping[edge >> EDGE_SHIFT] << EDGE_SHIFT)
                    | mapping[edge & EDGE_MASK]
                )
                cok_append((meta & EDGE_MASK) - 1)
            return
        log_pop = log.pop
        for edge in sorted(log, key=log.__getitem__):
            kid = (log_pop(edge) & EDGE_MASK) - 1
            co_append(
                (mapping[edge >> EDGE_SHIFT] << EDGE_SHIFT) | mapping[edge & EDGE_MASK]
            )
            cok_append(kid)

    def _causality_graph(self, mapping: List[int]):
        """The committed ``so ∪ good-wr`` graph, frozen to CSR rows.

        Returns ``(frozen_graph, labels)`` for :func:`causality_cycles`;
        only called when the stream ends with a causality cycle, so the
        labels build eagerly here.
        """
        so_log: List[int] = []
        wr_log: List[int] = []
        wr_keys: List[int] = []
        tbase = self._txns_base
        t_flags = self._t_flags
        final_sessions = self._final_sessions()
        for records in final_sessions:
            previous = -1
            for rec in records:
                if type(rec) is int:
                    if not t_flags[rec - tbase] & 1:
                        continue
                    current = mapping[rec]
                else:
                    if not rec.committed:
                        continue
                    current = mapping[rec.tid]
                if previous >= 0:
                    so_log.append((previous << EDGE_SHIFT) | current)
                previous = current
        wany_start = self._wr_any_start
        wany_len = self._wr_any_len
        wany_writer = self._wr_any_writer
        wany_kid = self._wr_any_kid
        wgood_start = self._wr_good_start
        wgood_len = self._wr_good_len
        wgood_writer = self._wr_good_writer
        wgood_kid = self._wr_good_kid
        gr_start = self._gr_start
        gr_len = self._gr_len
        gr_kid = self._gr_kid
        gr_writer = self._gr_writer
        for records in final_sessions:
            for rec in records:
                if type(rec) is int:
                    jrow = rec - tbase
                    if not t_flags[jrow] & 1:
                        continue
                    reader = mapping[rec]
                    gs = wgood_start[jrow]
                    if gs >= 0:
                        # Explicit good run (possibly empty: every external
                        # committed read was bad).
                        src_w, src_k = wgood_writer, wgood_kid
                        a, n = gs, wgood_len[jrow]
                    elif wany_start[jrow] == -2:
                        # Derive sentinel: good == any == first-per-writer
                        # over the good-read run (see _build_relation).
                        ga = gr_start[jrow]
                        seen: Set[int] = set()
                        for g in range(ga, ga + gr_len[jrow]):
                            w = gr_writer[g]
                            if w not in seen:
                                seen.add(w)
                                wr_log.append(
                                    (mapping[w] << EDGE_SHIFT) | reader
                                )
                                wr_keys.append(gr_kid[g])
                        continue
                    else:
                        # -1 sentinel: the good map equals the any map.
                        src_w, src_k = wany_writer, wany_kid
                        a = wany_start[jrow]
                        n = wany_len[jrow] if a >= 0 else 0
                    for idx in range(a, a + n):
                        wr_log.append((mapping[src_w[idx]] << EDGE_SHIFT) | reader)
                        wr_keys.append(src_k[idx])
                else:
                    if not rec.committed:
                        continue
                    reader = mapping[rec.tid]
                    for writer, kid in rec.wr_first_good.items():
                        wr_log.append((mapping[writer] << EDGE_SHIFT) | reader)
                        wr_keys.append(kid)
        graph = freeze_packed(self._next_tid, (so_log, wr_log))
        labels = causality_labels(
            so_log, wr_log, wr_keys, key_names=self._key_table.values
        )
        return graph, labels

    def _result(
        self,
        level: IsolationLevel,
        violations: List[Violation],
        checker: str,
        relation: Optional[CommitRelation],
        co_edges: bool = True,
    ) -> CheckResult:
        stats: Dict[str, float] = {}
        if relation is not None:
            stats["inferred_edges"] = relation.num_inferred_edges
            if co_edges:
                stats["co_edges"] = relation.num_edges
            # freeze/acyclicity/witness wall laps, for `--stream --profile`.
            stats.update(relation.timings)
        if self._flush_vectorized or self._flush_scalar:
            # Which CC probe-flush implementation ran (bench snapshots and
            # `--profile` are self-describing about the kernel in play).
            if not self._flush_scalar:
                stats["saturation_kernel"] = "vectorized"
            elif not self._flush_vectorized:
                stats["saturation_kernel"] = "fallback"
            else:
                stats["saturation_kernel"] = "mixed"
        if self._join_vectorized or self._join_scalar:
            # Which clock-join implementation ran.  "fallback"/"mixed" is
            # normal on small session counts: join_clocks stays scalar
            # below _MIN_JOIN_CELLS even with numpy on.
            if not self._join_scalar:
                stats["join_kernel"] = "vectorized"
            elif not self._join_vectorized:
                stats["join_kernel"] = "fallback"
            else:
                stats["join_kernel"] = "mixed"
        if self._resolve_vectorized or self._resolve_scalar:
            # Likewise for the read-resolution kernel, plus the resolve
            # tallies ("mixed" is normal: sub-threshold tail batches take
            # the fallback twin even with numpy on).
            if not self._resolve_scalar:
                stats["classify_kernel"] = "vectorized"
            elif not self._resolve_vectorized:
                stats["classify_kernel"] = "fallback"
            else:
                stats["classify_kernel"] = "mixed"
            stats["resolve_fast"] = self._resolve_fast
            stats["resolve_slow"] = self._resolve_slow
            stats["resolve_parked"] = self._resolve_parked
            stats["resolve_rebound"] = self._resolve_rebound
        return CheckResult(
            level=level,
            violations=violations,
            checker=checker,
            elapsed_seconds=self._elapsed,
            num_operations=self._num_operations,
            num_transactions=self._next_tid,
            num_sessions=len(self._by_session),
            stats=stats,
        )


def load_checkpoint(
    path: str, source_path: Optional[str] = None
) -> CompiledIncrementalChecker:
    """Restore a :class:`CompiledIncrementalChecker` from a checkpoint file.

    The returned checker has consumed ``checker.num_transactions`` records;
    skip that many records of the stream and keep appending.  Raises
    :class:`~repro.core.exceptions.HistoryFormatError` on a bad header, or
    -- when ``source_path`` is given and the checkpoint recorded a source
    fingerprint -- when ``source_path`` is not the history the checkpoint
    was taken from (resuming against a different file would silently mix
    two runs; the comparison re-hashes the recorded prefix length, so a
    log that merely *grew* since the save still matches).  Checkpoints are
    pickles: load only files you wrote yourself.
    """
    with open(path, "rb") as handle:
        magic = handle.read(len(CHECKPOINT_MAGIC))
        if magic != CHECKPOINT_MAGIC:
            raise HistoryFormatError(f"{path}: not an awdit checkpoint file")
        version = handle.read(1)
        if not version or version[0] not in _LOADABLE_CHECKPOINT_VERSIONS:
            raise HistoryFormatError(
                f"{path}: unsupported checkpoint version "
                f"{version[0] if version else '<missing>'}"
            )
        payload = pickle.load(handle)
    checker = payload["checker"]
    if not isinstance(checker, CompiledIncrementalChecker):  # pragma: no cover
        raise HistoryFormatError(f"{path}: checkpoint does not contain a checker")
    recorded = payload.get("source")
    if source_path is not None and recorded is not None:
        current = source_fingerprint(source_path, prefix_len=recorded["prefix_len"])
        if current != recorded:
            raise HistoryFormatError(
                f"{path}: checkpoint was taken from a different history than "
                f"{source_path} (source fingerprint mismatch); re-run without "
                "--resume"
            )
    return checker


def check_stream_compiled(
    records: Iterable[Tuple[object, Tuple[Optional[str], bool, list]]],
    level: IsolationLevel = IsolationLevel.CAUSAL_CONSISTENCY,
    max_witnesses: Optional[int] = None,
    num_sessions: Optional[int] = None,
    retire: Optional[RetirementPolicy] = None,
) -> CheckResult:
    """One-pass check of a raw record stream against ``level``.

    The compiled analogue of :func:`repro.stream.check_stream`: feed it
    :func:`repro.histories.formats.stream_raw_history` and no model objects
    are ever constructed.
    """
    checker = CompiledIncrementalChecker(
        levels=(level,),
        num_sessions=num_sessions,
        max_witnesses=max_witnesses,
        retire=retire,
    )
    checker.extend_raw(records)
    return checker.finalize()[level]
