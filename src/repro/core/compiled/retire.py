"""Watermark-based retirement: bounded resident state for eternal streams.

The online folds (:class:`repro.core.compiled.online.CompiledIncrementalChecker`
and the object-path :class:`repro.stream.incremental.IncrementalChecker`) drop
per-operation data as soon as a transaction resolves, but their *summary*
state -- transaction records, the duplicate-write registry, the CC writer
registry, and the retained packed-edge logs -- still grows with history
length.  This module holds everything the two engines share to turn that into
memory bounded by the *live window*:

* :class:`RetirementPolicy` -- the knobs (``lag``, ``every``, ``segment_dir``).
* :func:`low_watermark` -- the global low-watermark over the per-session
  vector clocks: ``wm[s] = min over all sessions s' of clock[s'][s]``.  A
  committed transaction whose session index is at or below the watermark of
  its session has been passed by *every* frontier; no future causal probe can
  bind later than it.
* :class:`SegmentStore` -- the archival segment format.  Each retirement pass
  rotates the retired transactions' metadata, their write-read edges, the
  finalized portion of the edge logs, and the digests of evicted write
  identities into one pickled segment file; finalize reloads the segments to
  render verdicts and witnesses byte-identical to a never-evicting run.
* :func:`stable_digest` -- a 64-bit blake2b digest of a ``(key, value)``
  write identity.  Digests live *on disk only* (inside segments), so the
  resident overhead of remembering every evicted write is zero; the
  duplicate-identity and retired-read refusal scans run once at finalize
  against the reloaded runs.  ``hash()`` would not do: it varies per process
  (``PYTHONHASHSEED``), and the scans must survive checkpoint/resume.
* :class:`RetiredAccessError` -- raised at finalize when the history turned
  out to need retired state (a read of an evicted write, or a re-write of an
  evicted ``(key, value)`` identity).  Retirement trades the silent-divergence
  risk for an explicit refusal: re-check without ``--retire`` or with a larger
  ``--retire-lag``.

Why refusal is sound: a write identity registered twice with an eviction in
between necessarily leaves its digest in two places -- the first eviction's
segment, plus either a later segment or the still-resident registry -- so the
finalize merge sees a duplicate.  (Two evictions of one identity land in
*different* segments because passes are temporally ordered.)  A pending read
whose value matches no resident write is probed against the merged digests
before it is reported as thin-air.  The probability of a spurious collision
between two honest 64-bit digests is ~3e-8 at a million evicted identities.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.model import HistoryFormatError

#: Default number of most-recent transactions exempt from retirement.  Keeping
#: a tail resident costs little and keeps the common "read something written a
#: moment ago" out of the refusal path entirely.
DEFAULT_LAG = 4096

#: Default retirement cadence: attempt a pass every this many appended
#: transactions.  Each pass is O(resident state), so the cadence amortizes it
#: against the appends that funded the growth.
DEFAULT_EVERY = 1024


class RetiredAccessError(HistoryFormatError):
    """The history needed state that retirement already evicted.

    Raised at finalize, before any verdict is reported, so an evicting run
    never *silently* diverges from a non-evicting run: it either matches it
    byte for byte or refuses with this error.
    """


@dataclass(frozen=True)
class RetirementPolicy:
    """Knobs for watermark-based retirement.

    ``lag`` is the number of most-recent transactions never retired;
    ``every`` is the pass cadence in appended transactions; ``segment_dir``
    is where archival segments rotate (``None`` means a private temporary
    directory that finalize deletes).
    """

    lag: int = DEFAULT_LAG
    every: int = DEFAULT_EVERY
    segment_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.lag < 0:
            raise ValueError("retirement lag must be >= 0")
        if self.every < 1:
            raise ValueError("retirement cadence must be >= 1")


@dataclass
class RetireStats:
    """Counters surfaced through ``live_stats()`` / ``awdit stats --stream``."""

    retired_transactions: int = 0
    passes: int = 0  # retirement passes that retired at least one transaction
    remap_epochs: int = 0  # value-intern/registry renumbering compactions
    segments: int = 0
    evicted_writes: int = 0
    spilled_edges: int = 0
    #: High-water mark of resident transaction summaries measured immediately
    #: after each compaction -- the honest "how big does the live window stay"
    #: number (mid-pass growth between passes is bounded by ``every + lag``).
    post_compaction_peak: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "retired_transactions": self.retired_transactions,
            "retire_passes": self.passes,
            "remap_epochs": self.remap_epochs,
            "retire_segments": self.segments,
            "evicted_writes": self.evicted_writes,
            "spilled_edges": self.spilled_edges,
            "post_compaction_peak_resident": self.post_compaction_peak,
        }


def low_watermark(
    session_clock: Sequence[Sequence[int]], num_sessions: int
) -> List[int]:
    """Per-session global low-watermark over the happens-before clocks.

    ``wm[s]`` is the largest session index of ``s`` that *every* session's
    clock has reached: ``min over s' of session_clock[s'][s]``, with a clock
    too short to mention ``s`` contributing ``-1``.  A committed transaction
    at ``sidx <= wm[sid]`` can never again be the answer to a causal
    latest-writer probe strictly *after* the watermark, because every future
    probe's bound is at least the watermark.  Sessions that fall idle freeze
    the watermark (their clocks stop advancing); that is the documented cost
    of a non-communicating participant.
    """
    wm = [-1] * num_sessions
    for s in range(num_sessions):
        best: Optional[int] = None
        for clock in session_clock:
            value = clock[s] if s < len(clock) else -1
            if best is None or value < best:
                best = value
                if best < 0:
                    break
        wm[s] = -1 if best is None else best
    return wm


def low_watermark_flat(data, stride: int, num_sessions: int) -> List[int]:
    """:func:`low_watermark` over the flat row-major session-clock matrix.

    ``data`` is one ``array('q')`` of ``num_sessions`` rows, each ``stride``
    wide and ``-1``-padded ("missing" has the same ``-1`` semantics as a
    too-short clock list), so ``wm[s]`` is the column minimum with the same
    early ``-1`` break as the list form.  Value-identical to
    :func:`low_watermark` on the equivalent list-of-lists state.
    """
    wm = [-1] * num_sessions
    for s in range(num_sessions):
        best = data[s]
        if best >= 0:
            for r in range(1, num_sessions):
                value = data[r * stride + s]
                if value < best:
                    best = value
                    if best < 0:
                        break
        wm[s] = best
    return wm


def stable_digest(key: object, value: object) -> int:
    """64-bit process-stable digest of a ``(key, value)`` write identity."""
    payload = f"{key!r}\x1f{value!r}".encode("utf-8", "backslashreplace")
    return int.from_bytes(blake2b(payload, digest_size=8).digest(), "big")


#: Segment payload keys (one pickled dict per retirement pass):
#:   ``txns``    -- ``[(tid, sid, sidx, committed, label), ...]`` in tid order
#:   ``wr``      -- ``[(reader_tid, [(writer, kid)...], [(writer, kid)...])]``
#:                  (first-any then first-good per key, committed readers only)
#:   ``logs``    -- ``{log_name: [(packed_edge, meta), ...]}`` finalized
#:                  co-candidate edges whose *reader* endpoint retired
#:   ``digests`` -- sorted 64-bit digests of the write identities evicted by
#:                  this pass
_SEGMENT_SUFFIX = ".seg.pkl"


class SegmentStore:
    """Archival segments for retired history.

    One pickle per retirement pass.  The store is itself picklable (it keeps
    only the directory path and the manifest), so it rides inside checkpoints;
    resuming from an older checkpoint simply overwrites the stale later
    segments as the re-fold re-retires the same prefix.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self._dir = directory
        self._owned = directory is None  # lazily created tempdir, ours to delete
        self._manifest: List[str] = []

    @property
    def directory(self) -> Optional[str]:
        return self._dir

    def __len__(self) -> int:
        return len(self._manifest)

    def _ensure_dir(self) -> str:
        if self._dir is None:
            self._dir = tempfile.mkdtemp(prefix="awdit-segments-")
        else:
            os.makedirs(self._dir, exist_ok=True)
        return self._dir

    def write(self, payload: dict) -> str:
        directory = self._ensure_dir()
        name = f"segment-{len(self._manifest):06d}{_SEGMENT_SUFFIX}"
        path = os.path.join(directory, name)
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        self._manifest.append(name)
        return path

    def load_all(self) -> Iterator[dict]:
        for name in self._manifest:
            assert self._dir is not None
            with open(os.path.join(self._dir, name), "rb") as handle:
                yield pickle.load(handle)

    def cleanup(self) -> None:
        """Delete owned (temporary) segment directories; keep explicit ones."""
        if not self._owned or self._dir is None:
            return
        for name in self._manifest:
            try:
                os.unlink(os.path.join(self._dir, name))
            except OSError:
                pass
        try:
            os.rmdir(self._dir)
        except OSError:
            pass
        self._manifest = []
        self._dir = None


class RetiredState:
    """Everything finalize needs from the segments, loaded once.

    ``records[sid]`` lists the retired transactions of session ``sid`` in
    session order as lightweight stand-ins exposing the attributes the
    finalize loops read off live records (``tid``/``committed``/``label``/
    ``wr_first_any``/``wr_first_good``).  ``log_runs[name]`` concatenates the
    spilled ``(edge, meta)`` entries of every segment; edges are globally
    unique across runs and the live log (a spilled edge's reader has retired
    and can never record again), so one sort restores the exact global
    min-meta drain order.  ``digests`` merges every evicted identity digest.
    """

    __slots__ = ("records", "log_runs", "digests")

    def __init__(self, num_sessions: int) -> None:
        self.records: List[List[RetiredRec]] = [[] for _ in range(num_sessions)]
        self.log_runs: Dict[str, List[Tuple[int, int]]] = {}
        self.digests: Set[int] = set()


class RetiredRec:
    """Stand-in for a retired transaction in the finalize loops."""

    __slots__ = ("tid", "committed", "label", "wr_first_any", "wr_first_good")

    def __init__(
        self,
        tid: int,
        committed: bool,
        label: object,
        wr_first_any: Dict[int, int],
        wr_first_good: Dict[int, int],
    ) -> None:
        self.tid = tid
        self.committed = committed
        self.label = label
        self.wr_first_any = wr_first_any
        self.wr_first_good = wr_first_good


def load_retired_state(store: SegmentStore, num_sessions: int) -> RetiredState:
    """Reload every segment into the finalize-time view (with reuse check).

    Raises :class:`RetiredAccessError` when the same write identity digest
    appears in more than one segment: the history re-registered a retired
    ``(key, value)`` pair, which the duplicate-write diagnostic could not see
    while streaming.
    """
    state = RetiredState(num_sessions)
    wr_map: Dict[int, Tuple[List[Tuple[int, int]], List[Tuple[int, int]]]] = {}
    staged: List[List[Tuple[int, int, bool, object]]] = [
        [] for _ in range(num_sessions)
    ]
    for payload in store.load_all():
        for reader_tid, any_items, good_items in payload["wr"]:
            wr_map[reader_tid] = (any_items, good_items)
        for tid, sid, sidx, committed, label in payload["txns"]:
            staged[sid].append((sidx, tid, committed, label))
        for name, entries in payload["logs"].items():
            state.log_runs.setdefault(name, []).extend(entries)
        for digest in payload["digests"]:
            if digest in state.digests:
                raise RetiredAccessError(
                    "history writes a (key, value) identity that retirement "
                    "already evicted; duplicate-write detection cannot see "
                    "evicted writes mid-stream -- re-check without --retire "
                    "(or with a larger --retire-lag) for an exact diagnostic"
                )
            state.digests.add(digest)
    for sid, items in enumerate(staged):
        items.sort(key=lambda item: item[0])
        for sidx, tid, committed, label in items:
            any_items, good_items = wr_map.get(tid, ((), ()))
            state.records[sid].append(
                RetiredRec(tid, committed, label, dict(any_items), dict(good_items))
            )
    return state


def check_identity_reuse(
    retired_digests: Set[int], live_identities: Iterable[Tuple[object, object]]
) -> None:
    """Refuse when a still-resident write identity was evicted earlier."""
    for key, value in live_identities:
        if stable_digest(key, value) in retired_digests:
            raise RetiredAccessError(
                f"history writes ({key!r}, {value!r}) again after retirement "
                "evicted an identical write; duplicate-write detection cannot "
                "see evicted writes mid-stream -- re-check without --retire "
                "(or with a larger --retire-lag) for an exact diagnostic"
            )


def check_retired_reads(
    retired_digests: Set[int], pending_reads: Iterable[Tuple[object, object]]
) -> None:
    """Refuse when an unresolved read's identity matches an evicted write."""
    for key, value in pending_reads:
        if stable_digest(key, value) in retired_digests:
            raise RetiredAccessError(
                f"a read of ({key!r}, {value!r}) resolves to a write that "
                "retirement already evicted -- increase --retire-lag or "
                "re-check without --retire"
            )
