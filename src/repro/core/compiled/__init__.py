"""The compiled-history core: interned, array-backed checking.

Public surface:

* :class:`CompiledHistory` / :func:`compile_history` -- the flat-array IR and
  the one-pass compile from the object model.
* :class:`CompiledHistoryBuilder` -- produce the IR directly from raw parser
  events, skipping ``Operation``/``Transaction`` objects entirely (used by
  :func:`repro.histories.formats.load_compiled`).
* :func:`check_compiled` / :func:`check_all_levels_compiled` -- the AWDIT
  checkers on the IR, byte-identical to the object path.
* :class:`CompiledIncrementalChecker` -- the compiled *streaming* core
  (:mod:`repro.core.compiled.online`): the same algorithms folded online
  over raw parser records, with checkpoint/resume.
* :class:`Intern` -- the dense interning table (also reused by the streaming
  checker for its packed inferred-edge logs).
"""

from repro.core.compiled.checkers import (
    CompiledReadReport,
    check_all_levels_compiled,
    check_compiled,
    check_read_consistency_compiled,
)
from repro.core.compiled.ir import (
    CompiledHistory,
    CompiledHistoryBuilder,
    Intern,
    compile_history,
)
from repro.core.compiled.online import (
    CompiledIncrementalChecker,
    check_stream_compiled,
    load_checkpoint,
)

__all__ = [
    "CompiledHistory",
    "CompiledHistoryBuilder",
    "CompiledIncrementalChecker",
    "CompiledReadReport",
    "Intern",
    "check_all_levels_compiled",
    "check_compiled",
    "check_read_consistency_compiled",
    "check_stream_compiled",
    "compile_history",
    "load_checkpoint",
]
