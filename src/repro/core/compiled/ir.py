"""The compiled history IR: interned ids and flat parallel arrays.

The object model of :mod:`repro.core.model` is convenient but pays Python
object overhead per event: one frozen dataclass per operation, string keys
hashed in every hot loop, tuples and ``OpRef`` objects allocated per edge.
This module *compiles* a history into a dense integer form once, so the
checkers (:mod:`repro.core.compiled.checkers`) can run on machine-word ids:

* **Intern tables** (:class:`Intern`) map keys, values, and external session
  names to dense ints; the tables double as the id -> object mapping used to
  render verdict witnesses, which therefore stay byte-identical to the
  object-path checkers.
* **Operations** live in flat parallel arrays (``array('q')`` /
  ``bytearray``): kind, key id, value id, owning transaction, resolved
  write-read source, and a final-write flag, indexed by a global operation
  index.  A transaction is a contiguous slice ``txn_start[t]:txn_start[t+1]``.
* **Derived structures** the checkers need repeatedly are precomputed once:
  per-transaction external reads (the transaction-level ``wr`` edges) and the
  distinct written keys in first-write program order.

Histories are compiled either from a :class:`~repro.core.model.History`
(:func:`compile_history`) or directly from the raw streaming parsers via
:class:`CompiledHistoryBuilder`, which never materializes ``Operation`` or
``Transaction`` objects at all.

One deliberate corner: values are interned *by equality*, exactly like the
unique-writes index of the object model, so ``1``/``True``/``1.0`` share an
id (and hence match the same reads).  Witness messages render the first-seen
representative of such an equality class; histories mixing bools and equal
ints in values may therefore render ``1`` where the object path rendered
``True``.  Verdicts are unaffected.
"""

from __future__ import annotations

import sys
from array import array
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.exceptions import HistoryFormatError
from repro.core.model import History, OpKind

__all__ = ["Intern", "CompiledHistory", "CompiledHistoryBuilder", "compile_history"]

#: Bit width of a value id inside a packed ``(key_id, value_id)`` write
#: identity.  4.3e9 distinct values per history is far beyond the in-memory
#: regime of the tester.
_VALUE_SHIFT = 32


class Intern:
    """A dense interning table: object -> small int, and back.

    ``values[i]`` is the representative object of id ``i`` (the first object
    interned for its equality class).  Objects must be hashable.
    """

    __slots__ = ("_ids", "values")

    def __init__(self) -> None:
        self._ids: Dict[object, int] = {}
        self.values: List[object] = []

    def intern(self, obj: object) -> int:
        """Return the id of ``obj``, assigning the next dense id if new."""
        ident = self._ids.get(obj)
        if ident is None:
            ident = len(self.values)
            self._ids[obj] = ident
            self.values.append(obj)
        return ident

    def get(self, obj: object) -> Optional[int]:
        """The id of ``obj`` if already interned, else ``None``."""
        return self._ids.get(obj)

    def intern_column(self, column: List[object]) -> List[int]:
        """Intern a whole column, returning the aligned id list.

        The bulk path for record batches: one C-level ``map`` over the dict
        probe resolves every already-known object; only first occurrences
        fall back to the per-object fixup loop, which assigns new ids in
        column order -- exactly the order :meth:`intern` called per element
        would, so the table's first-seen representative order (and hence
        witness rendering) is unchanged.
        """
        ids = list(map(self._ids.get, column))
        if None in ids:
            _ids = self._ids
            values = self.values
            for position, ident in enumerate(ids):
                if ident is None:
                    obj = column[position]
                    # Re-probe: an earlier fixup in this very column may have
                    # interned the same new object already (and an interned
                    # literal ``None`` object resolves here too).
                    ident = _ids.get(obj)
                    if ident is None:
                        ident = len(values)
                        _ids[obj] = ident
                        values.append(obj)
                    ids[position] = ident
        return ids

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, ident: int) -> object:
        return self.values[ident]

    def memory_bytes(self) -> int:
        """Rough in-memory footprint of the table (dict + list + objects)."""
        total = sys.getsizeof(self._ids) + sys.getsizeof(self.values)
        for obj in self.values:
            total += sys.getsizeof(obj)
        return total


class CompiledHistory:
    """A history compiled to interned ids and flat parallel arrays.

    Instances are produced by :func:`compile_history` or
    :class:`CompiledHistoryBuilder.finalize`; the attributes below are
    read-only by convention (the checkers never mutate them).
    """

    __slots__ = (
        "key_table",
        "value_table",
        "session_table",
        "op_kind",
        "op_key",
        "op_value",
        "op_txn",
        "op_wr",
        "op_final",
        "txn_start",
        "txn_session",
        "txn_session_index",
        "txn_committed",
        "labels",
        "op_ids",
        "sessions",
        "_kw_start",
        "_kw_key",
        "_xr_start",
        "_xr_po",
        "_xr_key",
        "_xr_writer",
        "_kw_sets",
        "_kernel_cache",
    )

    def __init__(self) -> None:
        self.key_table = Intern()
        self.value_table = Intern()
        #: External session names in dense-session-id order (ints for the
        #: positional formats, arbitrary labels otherwise).
        self.session_table: List[object] = []
        # -- operation arrays (length n) --------------------------------------
        self.op_kind = bytearray()  # 1 = write, 0 = read
        self.op_key = array("q")
        self.op_value = array("q")
        self.op_txn = array("q")
        self.op_wr = array("q")  # global op index of the observed write, or -1
        self.op_final = bytearray()  # write is its txn's final write to the key
        # -- transaction arrays (length T, txn_start has T+1) ------------------
        self.txn_start = array("q", [0])
        self.txn_session = array("q")
        self.txn_session_index = array("q")
        self.txn_committed = bytearray()
        self.labels: Dict[int, str] = {}
        self.op_ids: Dict[int, int] = {}
        #: Transaction ids per session, in session order.
        self.sessions: List[List[int]] = []
        # -- derived: distinct written keys, first-write po order --------------
        self._kw_start = array("q", [0])
        self._kw_key = array("q")
        # -- derived: external reads (transaction-level wr edges) --------------
        self._xr_start = array("q", [0])
        self._xr_po: List[int] = []
        self._xr_key: List[int] = []
        self._xr_writer: List[int] = []
        self._kw_sets: List[Optional[frozenset]] = []
        #: Lazy per-IR cache for the vectorized saturation kernels
        #: (:mod:`repro.core.compiled.kernels`); the IR is immutable once
        #: frozen, so derived numpy indexes are built at most once.
        self._kernel_cache: Optional[Dict[str, object]] = None

    # -- sizes ----------------------------------------------------------------

    @property
    def num_operations(self) -> int:
        """The history size ``n``: total number of operations."""
        return len(self.op_key)

    @property
    def num_transactions(self) -> int:
        """Total number of transactions (committed and aborted)."""
        return len(self.txn_committed)

    @property
    def num_sessions(self) -> int:
        """The number of sessions ``k``."""
        return len(self.sessions)

    @property
    def num_keys(self) -> int:
        """Number of distinct (interned) keys."""
        return len(self.key_table)

    @property
    def num_values(self) -> int:
        """Number of distinct (interned) values."""
        return len(self.value_table)

    @property
    def committed(self) -> List[int]:
        """Dense ids of committed transactions (``T_c``)."""
        flags = self.txn_committed
        return [tid for tid in range(len(flags)) if flags[tid]]

    # -- rendering -------------------------------------------------------------

    def name_of(self, tid: int) -> str:
        """Printable transaction name: the label if set, else ``t<tid>``."""
        label = self.labels.get(tid)
        return label if label is not None else f"t{tid}"

    def op_repr(self, index: int) -> str:
        """Render operation ``index`` exactly like ``Operation.__repr__``."""
        kind = "W" if self.op_kind[index] else "R"
        key = self.key_table.values[self.op_key[index]]
        value = self.value_table.values[self.op_value[index]]
        op_id = self.op_ids.get(index)
        suffix = "" if op_id is None else f"#{op_id}"
        return f"{kind}({key}, {value!r}){suffix}"

    def describe(self) -> str:
        """One-line summary, format-compatible with ``History.describe``."""
        return (
            f"History(sessions={self.num_sessions}, "
            f"transactions={self.num_transactions}, "
            f"operations={self.num_operations}, keys={self.num_keys})"
        )

    def __repr__(self) -> str:
        return f"<Compiled{self.describe()}>"

    # -- derived accessors ------------------------------------------------------

    def keys_written(self, tid: int) -> "array":
        """Distinct keys written by ``tid`` (ids, first-write po order)."""
        return self._kw_key[self._kw_start[tid] : self._kw_start[tid + 1]]

    def keys_written_set(self, tid: int) -> frozenset:
        """Cached frozenset view of :meth:`keys_written` for membership tests."""
        cached = self._kw_sets[tid]
        if cached is None:
            cached = frozenset(self.keys_written(tid))
            self._kw_sets[tid] = cached
        return cached

    def external_reads(self, tid: int) -> Iterable[Tuple[int, int, int]]:
        """``(po_index, key_id, writer_tid)`` per external read of ``tid``.

        Mirrors ``History.txn_read_froms``: reads with a ``wr`` edge to a
        *different* transaction, in program order; only built for committed
        transactions.
        """
        lo, hi = self._xr_start[tid], self._xr_start[tid + 1]
        return zip(self._xr_po[lo:hi], self._xr_key[lo:hi], self._xr_writer[lo:hi])

    # -- memory accounting -------------------------------------------------------

    def memory_footprint(self) -> Dict[str, int]:
        """Estimated resident bytes per component of the IR."""
        def _arr(a) -> int:
            return sys.getsizeof(a)

        arrays = (
            _arr(self.op_kind)
            + _arr(self.op_key)
            + _arr(self.op_value)
            + _arr(self.op_txn)
            + _arr(self.op_wr)
            + _arr(self.op_final)
            + _arr(self.txn_start)
            + _arr(self.txn_session)
            + _arr(self.txn_session_index)
            + _arr(self.txn_committed)
            + _arr(self._kw_start)
            + _arr(self._kw_key)
            + _arr(self._xr_start)
            + _arr(self._xr_po)
            + _arr(self._xr_key)
            + _arr(self._xr_writer)
            + sum(_arr(s) for s in self.sessions)
        )
        interns = (
            self.key_table.memory_bytes()
            + self.value_table.memory_bytes()
            + sys.getsizeof(self.session_table)
        )
        return {
            "arrays_bytes": arrays,
            "intern_tables_bytes": interns,
            "total_bytes": arrays + interns,
        }

    # -- finishing (shared by both construction paths) ---------------------------

    def _freeze(self) -> None:
        """Compute the derived structures once the base arrays are complete."""
        op_kind = self.op_kind
        op_key = self.op_key
        op_wr = self.op_wr
        op_txn = self.op_txn
        op_final = self.op_final
        txn_start = self.txn_start
        committed = self.txn_committed
        kw_start = self._kw_start
        kw_key = self._kw_key
        xr_start = self._xr_start
        xr_po = self._xr_po
        xr_key = self._xr_key
        xr_writer = self._xr_writer

        for tid in range(self.num_transactions):
            lo, hi = txn_start[tid], txn_start[tid + 1]
            if committed[tid]:
                # Distinct written keys in first-write order (dict insertion
                # order is stable under value updates) + final-write flags.
                last_write: Dict[int, int] = {}
                for i in range(lo, hi):
                    if op_kind[i]:
                        last_write[op_key[i]] = i
                for i in last_write.values():
                    op_final[i] = 1
                kw_key.extend(last_write.keys())
                # External reads in program order (writer as a transaction id).
                for i in range(lo, hi):
                    if not op_kind[i]:
                        w = op_wr[i]
                        if w >= 0 and op_txn[w] != tid:
                            xr_po.append(i - lo)
                            xr_key.append(op_key[i])
                            xr_writer.append(op_txn[w])
            else:
                # Aborted transactions: flags only (the checkers skip them,
                # but `op_final` keeps rendering and the writes index honest).
                last_write = {}
                for i in range(lo, hi):
                    if op_kind[i]:
                        last_write[op_key[i]] = i
                for i in last_write.values():
                    op_final[i] = 1
            kw_start.append(len(kw_key))
            xr_start.append(len(xr_po))
        self._kw_sets = [None] * self.num_transactions


def compile_history(history: History) -> CompiledHistory:
    """Compile a :class:`History` into the array IR (one linear pass).

    The write-read relation is taken verbatim from ``history.wr`` (which may
    have been inferred or supplied explicitly), so the compiled checkers see
    exactly the same ``wr`` as the object-path checkers.
    """
    ch = CompiledHistory()
    intern_key = ch.key_table.intern
    intern_value = ch.value_table.intern
    op_kind = ch.op_kind
    op_key = ch.op_key
    op_value = ch.op_value
    op_txn = ch.op_txn
    txn_start = ch.txn_start

    write_kind = OpKind.WRITE
    transactions = history.transactions
    for tid, txn in enumerate(transactions):
        for op in txn.operations:
            op_kind.append(1 if op.kind is write_kind else 0)
            op_key.append(intern_key(op.key))
            op_value.append(intern_value(op.value))
            op_txn.append(tid)
            if op.op_id is not None:
                ch.op_ids[len(op_key) - 1] = op.op_id
        txn_start.append(len(op_key))
        ch.txn_session.append(txn.session)
        ch.txn_session_index.append(txn.session_index)
        ch.txn_committed.append(1 if txn.committed else 0)
        if txn.label is not None:
            ch.labels[tid] = txn.label

    ch.sessions = [list(session) for session in history.sessions]
    ch.session_table = list(range(history.num_sessions))

    ch.op_wr = array("q", [-1]) * len(op_key) if op_key else array("q")
    op_wr = ch.op_wr
    for read_ref, write_ref in history.wr.items():
        op_wr[txn_start[read_ref.txn] + read_ref.index] = (
            txn_start[write_ref.txn] + write_ref.index
        )

    ch.op_final = bytearray(len(op_key))
    ch._freeze()
    return ch


class CompiledHistoryBuilder:
    """Accumulate raw parser events into a :class:`CompiledHistory`.

    The builder is the streaming-side producer of the IR: the ``stream_ops``
    layer of the history formats feeds ``(session, label, committed, ops)``
    records with plain-tuple operations, so no :class:`Operation` or
    :class:`Transaction` objects are ever created.  Per-session buffers keep
    arrival order; :meth:`finalize` renumbers transactions session-blocked
    (the numbering :meth:`History.from_sessions` would assign) and resolves
    the write-read relation with the same last-write-wins unique-writes
    convention as ``History._infer_wr``.
    """

    class _SessionBuffer:
        __slots__ = ("kind", "key", "value", "txn_end", "committed", "labels")

        def __init__(self) -> None:
            self.kind = bytearray()
            self.key = array("q")
            self.value = array("q")
            self.txn_end = array("q")  # op count after each transaction
            self.committed = bytearray()
            self.labels: Dict[int, str] = {}

    def __init__(self) -> None:
        self._key_table = Intern()
        self._value_table = Intern()
        self._session_ids: Dict[object, int] = {}
        self._buffers: List[CompiledHistoryBuilder._SessionBuffer] = []

    def add_transaction(
        self,
        session: object,
        label: Optional[str],
        committed: bool,
        ops: Iterable[Tuple[bool, object, object]],
    ) -> None:
        """Append one transaction of ``(is_write, key, value)`` operations."""
        sid = self._session_ids.get(session)
        if sid is None:
            sid = len(self._buffers)
            self._session_ids[session] = sid
            self._buffers.append(self._SessionBuffer())
        buf = self._buffers[sid]
        intern_key = self._key_table.intern
        intern_value = self._value_table.intern
        for is_write, key, value in ops:
            buf.kind.append(1 if is_write else 0)
            buf.key.append(intern_key(key))
            buf.value.append(intern_value(value))
        if label is not None:
            buf.labels[len(buf.committed)] = label
        buf.committed.append(1 if committed else 0)
        buf.txn_end.append(len(buf.kind))

    def add_batch(self, batch) -> None:
        """Append a whole :class:`~repro.histories.formats._raw.RecordBatch`.

        The columnar fast path over :meth:`add_transaction`: both intern
        tables are probed once per column (C-level ``map``), and each
        record's operation rows land in its session buffer via slice
        ``extend``s.  Byte-identical to calling :meth:`add_transaction` per
        record -- including intern-table order, since
        :meth:`Intern.intern_column` assigns new ids in column (= op) order
        and the key and value tables are independent.
        """
        kid_col = self._key_table.intern_column(batch.keys)
        vid_col = self._value_table.intern_column(batch.values)
        kinds = batch.kinds
        sessions = batch.txn_session
        labels = batch.txn_labels
        committed_col = batch.txn_committed
        session_ids = self._session_ids
        buffers = self._buffers
        lo = 0
        for t, hi in enumerate(batch.txn_end):
            session = sessions[t]
            sid = session_ids.get(session)
            if sid is None:
                sid = len(buffers)
                session_ids[session] = sid
                buffers.append(self._SessionBuffer())
            buf = buffers[sid]
            buf.kind += kinds[lo:hi]
            buf.key.extend(kid_col[lo:hi])
            buf.value.extend(vid_col[lo:hi])
            label = labels[t]
            if label is not None:
                buf.labels[len(buf.committed)] = label
            buf.committed.append(1 if committed_col[t] else 0)
            buf.txn_end.append(len(buf.kind))
            lo = hi

    @property
    def num_transactions(self) -> int:
        """Number of transactions buffered so far."""
        return sum(len(buf.committed) for buf in self._buffers)

    @property
    def num_keys(self) -> int:
        """Number of distinct keys interned so far."""
        return len(self._key_table)

    @property
    def num_values(self) -> int:
        """Number of distinct values interned so far."""
        return len(self._value_table)

    @property
    def num_sessions(self) -> int:
        """Number of distinct external sessions seen so far."""
        return len(self._buffers)

    def absorb(self, other: "CompiledHistoryBuilder") -> None:
        """Merge another builder's buffered transactions into this one.

        This is the shard-merge primitive: per-shard builders intern keys and
        values independently, so ``other``'s ids are remapped through this
        builder's tables (``other.key_table.values[i] -> self.intern(...)``)
        and its per-session buffers are appended.  Sessions are matched by
        external id; ``other``'s transactions come after any already buffered
        for the same session, so shard routing must keep each session's
        transactions in one shard (arrival order within a session cannot be
        reconstructed across shards).

        ``other`` is left logically empty afterwards.
        """
        key_map = array(
            "q", (self._key_table.intern(obj) for obj in other._key_table.values)
        )
        value_map = array(
            "q", (self._value_table.intern(obj) for obj in other._value_table.values)
        )
        for external, osid in other._session_ids.items():
            obuf = other._buffers[osid]
            sid = self._session_ids.get(external)
            if sid is None:
                sid = len(self._buffers)
                self._session_ids[external] = sid
                self._buffers.append(self._SessionBuffer())
            buf = self._buffers[sid]
            base_txn = len(buf.committed)
            base_ops = len(buf.kind)
            buf.kind.extend(obuf.kind)
            buf.key.extend(key_map[k] for k in obuf.key)
            buf.value.extend(value_map[v] for v in obuf.value)
            buf.txn_end.extend(base_ops + end for end in obuf.txn_end)
            buf.committed.extend(obuf.committed)
            for pos, label in obuf.labels.items():
                buf.labels[base_txn + pos] = label
        other._buffers = []
        other._session_ids = {}

    def finalize(
        self, sort_sessions: bool = True, fill_gaps: bool = False
    ) -> CompiledHistory:
        """Assemble the buffered sessions into a :class:`CompiledHistory`.

        ``sort_sessions`` orders sessions by their external id (the batch
        loaders' convention); ``fill_gaps`` additionally materializes empty
        sessions for missing integer ids (the cobra loader's convention).
        Unsortable mixed external ids fall back to first-seen order.
        """
        externals = list(self._session_ids)
        if sort_sessions:
            try:
                # sorted() (not list.sort) so a mid-sort TypeError on mixed
                # unorderable ids leaves the first-seen order intact.
                externals = sorted(externals)  # type: ignore[type-var]
            except TypeError:
                pass
        if fill_gaps and externals and all(isinstance(e, int) for e in externals):
            lo = min(0, min(externals))  # type: ignore[type-var]
            externals = list(range(lo, max(externals) + 1))  # type: ignore[arg-type]

        ch = CompiledHistory()
        ch.key_table = self._key_table
        ch.value_table = self._value_table
        ch.session_table = externals

        empty = self._SessionBuffer()
        ordered = [
            self._buffers[self._session_ids[e]] if e in self._session_ids else empty
            for e in externals
        ]

        op_kind = ch.op_kind
        op_key = ch.op_key
        op_value = ch.op_value
        op_txn = ch.op_txn
        txn_start = ch.txn_start
        tid = 0
        for dense_sid, buf in enumerate(ordered):
            ids: List[int] = []
            lo = 0
            for pos in range(len(buf.committed)):
                hi = buf.txn_end[pos]
                op_kind.extend(buf.kind[lo:hi])
                op_key.extend(buf.key[lo:hi])
                op_value.extend(buf.value[lo:hi])
                op_txn.extend([tid] * (hi - lo))
                txn_start.append(len(op_key))
                ch.txn_session.append(dense_sid)
                ch.txn_session_index.append(pos)
                ch.txn_committed.append(buf.committed[pos])
                label = buf.labels.get(pos)
                if label is not None:
                    ch.labels[tid] = label
                ids.append(tid)
                tid += 1
                lo = hi
            ch.sessions.append(ids)
        self._buffers = []
        self._session_ids = {}

        # Unique-writes wr inference, last write wins (History._infer_wr).
        # Lazy import: kernels imports this module for the IR types.
        from repro.core.compiled.kernels import resolve_unique_writes

        ch.op_wr = resolve_unique_writes(op_kind, op_key, op_value)

        ch.op_final = bytearray(len(op_key))
        if len(ch.value_table) >= (1 << _VALUE_SHIFT):
            raise HistoryFormatError(
                "history has too many distinct values for the compiled IR"
            )
        ch._freeze()
        return ch
