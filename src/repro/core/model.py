"""Core data model: operations, transactions, and histories.

This module implements the objects of Section 2 of the paper:

* :class:`Operation` -- a single read ``R(x, v)`` or write ``W(x, v)``
  (Definition of ``Op`` in Section 2.1).
* :class:`Transaction` -- a sequence of operations with a program order ``po``
  (Definition 2.1).  The program order is the list order of
  :attr:`Transaction.operations`.
* :class:`History` -- a set of transactions partitioned into sessions with a
  session order ``so`` and a write-read order ``wr`` (Definition 2.2).

The session order is the per-session list order of
:attr:`History.sessions`; the write-read order is stored as a mapping from
each read operation to the write operation it observes (``wr``:sup:`-1` is a
partial function per Definition 2.2).  In the black-box testing setting of the
paper, every write carries a unique value, so the write-read order can be
inferred from values alone; :meth:`History.from_sessions` does exactly that
when no explicit ``wr`` is supplied.

All identifiers used internally are small integers (transaction ids are dense
indices into :attr:`History.transactions`), which keeps the checkers and the
graph algorithms allocation-light.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.exceptions import HistoryFormatError

__all__ = [
    "OpKind",
    "Operation",
    "read",
    "write",
    "Transaction",
    "History",
    "OpRef",
]

Key = str
Value = object


class OpKind(enum.Enum):
    """Kind of a database operation: read or write."""

    READ = "R"
    WRITE = "W"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Operation:
    """A single read or write operation.

    Attributes
    ----------
    kind:
        :attr:`OpKind.READ` or :attr:`OpKind.WRITE`.
    key:
        The key being read or written (``o.key`` in the paper).
    value:
        The value read or written (``o.val`` in the paper).  Under the
        unique-writes assumption the pair ``(key, value)`` identifies the
        write a read observes.
    op_id:
        Optional operation identifier, useful when round-tripping external
        history formats.  Two operations with the same kind/key/value but
        different ``op_id`` are distinct.
    """

    kind: OpKind
    key: Key
    value: Value
    op_id: Optional[int] = None

    @property
    def is_read(self) -> bool:
        """True when this operation is a read."""
        return self.kind is OpKind.READ

    @property
    def is_write(self) -> bool:
        """True when this operation is a write."""
        return self.kind is OpKind.WRITE

    def __repr__(self) -> str:
        suffix = "" if self.op_id is None else f"#{self.op_id}"
        return f"{self.kind.value}({self.key}, {self.value!r}){suffix}"


def read(key: Key, value: Value, op_id: Optional[int] = None) -> Operation:
    """Construct a read operation ``R(key, value)``."""
    return Operation(OpKind.READ, key, value, op_id)


def write(key: Key, value: Value, op_id: Optional[int] = None) -> Operation:
    """Construct a write operation ``W(key, value)``."""
    return Operation(OpKind.WRITE, key, value, op_id)


class OpRef(NamedTuple):
    """A reference to an operation inside a history.

    ``txn`` is the dense transaction id (index into
    :attr:`History.transactions`) and ``index`` is the position of the
    operation inside that transaction's program order.  ``OpRef`` is a named
    tuple, so it compares (and hashes) like the plain pair ``(txn, index)``,
    which the checkers exploit in their hot loops.
    """

    txn: int
    index: int

    def resolve(self, history: "History") -> Operation:
        """Return the referenced :class:`Operation` object."""
        return history.transactions[self.txn].operations[self.index]


class Transaction:
    """A transaction: an ordered sequence of operations (Definition 2.1).

    The program order ``po`` is the order of :attr:`operations`.  A
    transaction is either committed or aborted; per the paper, aborted
    transactions should never be observed by committed ones.

    Parameters
    ----------
    operations:
        The operations of the transaction in program order.
    committed:
        ``True`` for a committed transaction (member of ``T_c``), ``False``
        for an aborted one (member of ``T_a``).
    label:
        Optional human-readable name (used in witnesses and examples, e.g.
        ``"t3"``).
    """

    __slots__ = (
        "operations",
        "committed",
        "label",
        "tid",
        "session",
        "session_index",
        "_keys_read",
        "_keys_written",
        "_keys_written_ordered",
    )

    def __init__(
        self,
        operations: Sequence[Operation],
        committed: bool = True,
        label: Optional[str] = None,
    ) -> None:
        self.operations: Tuple[Operation, ...] = tuple(operations)
        self.committed = committed
        self.label = label
        # Dense ids assigned by the owning History.
        self.tid: int = -1
        self.session: int = -1
        self.session_index: int = -1
        self._keys_read: Optional[FrozenSet[Key]] = None
        self._keys_written: Optional[FrozenSet[Key]] = None
        self._keys_written_ordered: Optional[Tuple[Key, ...]] = None

    # -- structural queries -------------------------------------------------

    @property
    def reads(self) -> List[Tuple[int, Operation]]:
        """All read operations with their program-order positions."""
        return [(i, op) for i, op in enumerate(self.operations) if op.is_read]

    @property
    def writes(self) -> List[Tuple[int, Operation]]:
        """All write operations with their program-order positions."""
        return [(i, op) for i, op in enumerate(self.operations) if op.is_write]

    @property
    def keys_read(self) -> FrozenSet[Key]:
        """``KeysRd(t)``: the set of keys read by this transaction."""
        if self._keys_read is None:
            self._keys_read = frozenset(op.key for op in self.operations if op.is_read)
        return self._keys_read

    @property
    def keys_written(self) -> FrozenSet[Key]:
        """``KeysWt(t)``: the set of keys written by this transaction."""
        if self._keys_written is None:
            self._keys_written = frozenset(op.key for op in self.operations if op.is_write)
        return self._keys_written

    @property
    def keys_written_ordered(self) -> Tuple[Key, ...]:
        """``KeysWt(t)`` as a tuple in first-write program order.

        The checkers iterate written keys when saturating the commit relation;
        iterating a frozenset would make the edge insertion order (and hence
        the selected cycle witnesses) depend on string hashing.  This ordered
        view keeps every engine -- object, compiled, and streaming --
        deterministic and mutually identical.
        """
        if self._keys_written_ordered is None:
            self._keys_written_ordered = tuple(
                dict.fromkeys(op.key for op in self.operations if op.is_write)
            )
        return self._keys_written_ordered

    def writes_key(self, key: Key) -> bool:
        """True when the transaction contains a write to ``key``."""
        return key in self.keys_written

    def reads_key(self, key: Key) -> bool:
        """True when the transaction contains a read of ``key``."""
        return key in self.keys_read

    def last_write_to(self, key: Key) -> Optional[int]:
        """Program-order index of the po-last write to ``key``, or ``None``."""
        result: Optional[int] = None
        for i, op in enumerate(self.operations):
            if op.is_write and op.key == key:
                result = i
        return result

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    @property
    def name(self) -> str:
        """A printable name: the label if set, else ``t<tid>``."""
        if self.label is not None:
            return self.label
        return f"t{self.tid}" if self.tid >= 0 else "t?"

    def __repr__(self) -> str:
        status = "" if self.committed else " aborted"
        return f"<Transaction {self.name}{status} ops={list(self.operations)}>"


class History:
    """A history ``H = <T, so, wr>`` (Definition 2.2).

    Transactions are grouped into *sessions*; the session order ``so`` is the
    per-session list order.  The write-read order ``wr`` is stored as a
    mapping from read :class:`OpRef` to write :class:`OpRef`.

    Use :meth:`from_sessions` to construct a history from nested lists of
    transactions; when ``wr`` is omitted it is inferred from the
    unique-writes convention (a read ``R(x, v)`` observes the unique write
    ``W(x, v)`` if one exists).

    The class exposes the derived structures used by the checking algorithms:

    * :meth:`writer_of` -- the write observed by a read (``wr``:sup:`-1`).
    * :meth:`txn_read_froms` -- transaction-level ``wr`` edges into a
      transaction, in program order of the receiving reads.
    * :attr:`committed` -- dense ids of committed transactions.
    * :attr:`num_operations` -- the history size ``n``.
    """

    __slots__ = (
        "transactions",
        "sessions",
        "wr",
        "_txn_read_froms",
        "_txn_wr_out",
        "_num_operations",
        "_writes_index",
    )

    def __init__(
        self,
        transactions: Sequence[Transaction],
        sessions: Sequence[Sequence[int]],
        wr: Dict[OpRef, OpRef],
    ) -> None:
        self.transactions: Tuple[Transaction, ...] = tuple(transactions)
        self.sessions: Tuple[Tuple[int, ...], ...] = tuple(tuple(s) for s in sessions)
        self.wr: Dict[OpRef, OpRef] = dict(wr)
        self._txn_read_froms: Optional[List[List[Tuple[int, int, Operation]]]] = None
        self._txn_wr_out: Optional[List[Set[int]]] = None
        self._num_operations: Optional[int] = None
        self._writes_index: Optional[Dict[Tuple[Key, Value], OpRef]] = None
        self._assign_ids()
        self._validate()

    # -- construction --------------------------------------------------------

    @classmethod
    def from_sessions(
        cls,
        sessions: Sequence[Sequence[Transaction]],
        wr: Optional[Dict[OpRef, OpRef]] = None,
    ) -> "History":
        """Build a history from per-session transaction lists.

        Parameters
        ----------
        sessions:
            ``sessions[s]`` lists the transactions of session ``s`` in
            session order.
        wr:
            Explicit write-read mapping from read refs to write refs.  When
            omitted, the mapping is inferred by matching each read
            ``R(x, v)`` with the unique write ``W(x, v)`` in the history
            (reads of values never written become *thin-air* reads with no
            ``wr`` edge, which the Read Consistency check then reports).
        """
        transactions: List[Transaction] = []
        session_ids: List[List[int]] = []
        for session in sessions:
            ids: List[int] = []
            for txn in session:
                ids.append(len(transactions))
                transactions.append(txn)
            session_ids.append(ids)
        if wr is None:
            wr = cls._infer_wr(transactions)
        return cls(transactions, session_ids, wr)

    @staticmethod
    def _infer_wr(transactions: Sequence[Transaction]) -> Dict[OpRef, OpRef]:
        """Infer ``wr`` from the unique-writes convention."""
        writes: Dict[Tuple[Key, Value], OpRef] = {}
        for tid, txn in enumerate(transactions):
            for i, op in enumerate(txn.operations):
                if op.is_write:
                    writes[(op.key, op.value)] = OpRef(tid, i)
        wr: Dict[OpRef, OpRef] = {}
        for tid, txn in enumerate(transactions):
            for i, op in enumerate(txn.operations):
                if op.is_read:
                    source = writes.get((op.key, op.value))
                    if source is not None:
                        wr[OpRef(tid, i)] = source
        return wr

    def _assign_ids(self) -> None:
        seen: Set[int] = set()
        for sid, session in enumerate(self.sessions):
            for pos, tid in enumerate(session):
                if tid in seen:
                    raise HistoryFormatError(
                        f"transaction {tid} appears in more than one session"
                    )
                seen.add(tid)
                txn = self.transactions[tid]
                txn.tid = tid
                txn.session = sid
                txn.session_index = pos
        for tid, txn in enumerate(self.transactions):
            if tid not in seen:
                raise HistoryFormatError(
                    f"transaction {tid} does not belong to any session"
                )
            if txn.tid != tid:
                raise HistoryFormatError(
                    f"transaction id mismatch: expected {tid}, found {txn.tid}"
                )

    def _validate(self) -> None:
        for read_ref, write_ref in self.wr.items():
            if not (0 <= read_ref.txn < len(self.transactions)):
                raise HistoryFormatError(f"wr read ref {read_ref} out of range")
            if not (0 <= write_ref.txn < len(self.transactions)):
                raise HistoryFormatError(f"wr write ref {write_ref} out of range")
            read_txn = self.transactions[read_ref.txn]
            write_txn = self.transactions[write_ref.txn]
            if read_ref.index >= len(read_txn.operations):
                raise HistoryFormatError(f"wr read ref {read_ref} out of range")
            if write_ref.index >= len(write_txn.operations):
                raise HistoryFormatError(f"wr write ref {write_ref} out of range")
            read_op = read_txn.operations[read_ref.index]
            write_op = write_txn.operations[write_ref.index]
            if not read_op.is_read:
                raise HistoryFormatError(
                    f"wr target {read_op!r} is not a read operation"
                )
            if not write_op.is_write:
                raise HistoryFormatError(
                    f"wr source {write_op!r} is not a write operation"
                )
            if read_op.key != write_op.key:
                raise HistoryFormatError(
                    f"wr edge relates different keys: {write_op!r} -> {read_op!r}"
                )

    # -- basic accessors ------------------------------------------------------

    @property
    def num_transactions(self) -> int:
        """Total number of transactions (committed and aborted)."""
        return len(self.transactions)

    @property
    def num_sessions(self) -> int:
        """The number of sessions ``k``."""
        return len(self.sessions)

    @property
    def num_operations(self) -> int:
        """The history size ``n``: total number of operations."""
        if self._num_operations is None:
            self._num_operations = sum(len(t) for t in self.transactions)
        return self._num_operations

    @property
    def committed(self) -> List[int]:
        """Dense ids of committed transactions (``T_c``)."""
        return [t.tid for t in self.transactions if t.committed]

    @property
    def aborted(self) -> List[int]:
        """Dense ids of aborted transactions (``T_a``)."""
        return [t.tid for t in self.transactions if not t.committed]

    @property
    def keys(self) -> Set[Key]:
        """All keys appearing in the history."""
        result: Set[Key] = set()
        for txn in self.transactions:
            result |= txn.keys_read
            result |= txn.keys_written
        return result

    def committed_in_session(self, sid: int) -> List[int]:
        """``H|s``: committed transactions of session ``sid`` in so order."""
        return [tid for tid in self.sessions[sid] if self.transactions[tid].committed]

    # -- wr-derived structures -----------------------------------------------

    def writer_of(self, ref: OpRef) -> Optional[OpRef]:
        """Return the write observed by the read ``ref`` (or ``None``)."""
        return self.wr.get(ref)

    def write_ref(self, key: Key, value: Value) -> Optional[OpRef]:
        """Locate the (unique-value) write ``W(key, value)`` if it exists."""
        if self._writes_index is None:
            index: Dict[Tuple[Key, Value], OpRef] = {}
            for tid, txn in enumerate(self.transactions):
                for i, op in enumerate(txn.operations):
                    if op.is_write:
                        index[(op.key, op.value)] = OpRef(tid, i)
            self._writes_index = index
        return self._writes_index.get((key, value))

    def txn_read_froms(self, tid: int) -> List[Tuple[int, int, Operation]]:
        """Transaction-level incoming ``wr`` edges of ``tid``.

        Returns a list of ``(writer_tid, read_index, read_op)`` triples, one
        per read of the transaction that observes a *different* transaction,
        in program order of the reads.  Reads that observe a write inside the
        same transaction or have no ``wr`` edge are excluded (they are the
        business of the Read Consistency check).
        """
        self._build_txn_wr()
        assert self._txn_read_froms is not None
        return self._txn_read_froms[tid]

    def txn_readers_of(self, tid: int) -> Set[int]:
        """Transactions that read from ``tid`` (transaction-level ``wr``)."""
        self._build_txn_wr()
        assert self._txn_wr_out is not None
        return self._txn_wr_out[tid]

    def _build_txn_wr(self) -> None:
        if self._txn_read_froms is not None:
            return
        incoming: List[List[Tuple[int, int, Operation]]] = [
            [] for _ in self.transactions
        ]
        outgoing: List[Set[int]] = [set() for _ in self.transactions]
        for tid, txn in enumerate(self.transactions):
            for i, op in enumerate(txn.operations):
                if not op.is_read:
                    continue
                src = self.wr.get(OpRef(tid, i))
                if src is None or src.txn == tid:
                    continue
                incoming[tid].append((src.txn, i, op))
                outgoing[src.txn].add(tid)
        self._txn_read_froms = incoming
        self._txn_wr_out = outgoing

    def so_edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over the immediate (successor) session-order edges."""
        for session in self.sessions:
            committed = [tid for tid in session if self.transactions[tid].committed]
            for a, b in zip(committed, committed[1:]):
                yield (a, b)

    def so_wr_edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over committed-transaction-level ``so ∪ wr`` edges."""
        yield from self.so_edges()
        for tid, txn in enumerate(self.transactions):
            if not txn.committed:
                continue
            seen: Set[int] = set()
            for writer, _index, _op in self.txn_read_froms(tid):
                if writer in seen:
                    continue
                seen.add(writer)
                if self.transactions[writer].committed:
                    yield (writer, tid)

    def compile(self) -> "object":
        """Compile this history to the array-backed IR (:mod:`repro.core.compiled`).

        Returns a :class:`~repro.core.compiled.CompiledHistory`; the import is
        deferred because the compiled layer depends on this module.
        """
        from repro.core.compiled import compile_history

        return compile_history(self)

    # -- misc -----------------------------------------------------------------

    def describe(self) -> str:
        """One-line summary of the history, for logging and CLI output."""
        return (
            f"History(sessions={self.num_sessions}, "
            f"transactions={self.num_transactions}, "
            f"operations={self.num_operations}, keys={len(self.keys)})"
        )

    def __repr__(self) -> str:
        return f"<{self.describe()}>"

    def pretty(self, max_transactions: int = 20) -> str:
        """Multi-line rendering of the history, session by session."""
        lines = [self.describe()]
        shown = 0
        for sid, session in enumerate(self.sessions):
            lines.append(f"session s{sid}:")
            for tid in session:
                txn = self.transactions[tid]
                ops = ", ".join(repr(op) for op in txn.operations)
                status = "" if txn.committed else " [aborted]"
                lines.append(f"  {txn.name}{status}: {ops}")
                shown += 1
                if shown >= max_transactions:
                    lines.append("  ...")
                    return "\n".join(lines)
        return "\n".join(lines)
