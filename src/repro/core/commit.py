"""The partial commit relation ``co'`` and its acyclicity check.

Every checker of Section 3 builds a *minimal saturated* commit relation
(Definition 3.1): it contains ``so ∪ wr`` plus the commit-order edges forced
by the isolation level's axiom (Fig. 3).  By Lemma 3.2 the history satisfies
the level iff it is Read Consistent and this relation is acyclic.

:class:`CommitRelation` is *log-structured*: edges arrive as appends to flat
packed-edge rows (``array('Q')`` of ``(source << EDGE_SHIFT) | target``
values, one parallel key row per labelled log) and nothing is de-duplicated
or hashed on the way in.  Once edge collection is done, :meth:`freeze`
snapshots the logs into a :class:`~repro.graph.csr.FrozenGraph` -- one
sort + in-place dedup pass, no per-edge dict entries -- and the acyclicity
check, cycle extraction, and linearization all run over the frozen CSR rows.
Freezing is the single de-duplication point: duplicate edges (the saturation
rules fire many times per edge) collapse there, and the inferred-edge count
is the number of distinct edges beyond distinct ``so ∪ wr``.

Edge *labels* -- the ``(reason, key)`` pair that explains an edge in a
witness -- are never built on the hot path.  The logs retain the reason
implicitly (which log an edge sits in) and the key alongside it; the label
tables materialize lazily, by a first-occurrence-wins replay of
``so, wr, co`` in arrival order, only when a violation actually needs a
witness rendered.  A consistent history never pays for them.

An edge may be justified by several relations at once (a session reading its
so-predecessor's write is related by both ``so`` and ``wr``).  The primary
label is first-come (``so``/``wr`` entries replay before inferred ones, so
witnesses prefer the weaker explanation), but a keyed ``wr`` label observed
for an edge already labelled ``so`` is retained alongside it and preferred
when rendering witnesses, so cycle reports never lose the witnessing key.

The relation is normally built from a :class:`~repro.core.model.History`;
the compiled checkers append packed rows straight into the logs, the
streaming checkers drain their packed edge logs into them at finalize, and
the sharded engine concatenates per-shard log slices with one C-level
``extend`` per shard -- none of these paths rehash an edge.

Key encoding: a relation built with ``key_names`` stores dense integer key
ids in its key rows (``-1`` encodes "no key") and decodes them through the
table only at label materialization; without ``key_names`` the key rows hold
the key objects themselves (the object-model path).
"""

from __future__ import annotations

import time
from array import array
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.model import History
from repro.core.violations import CycleEdge, CycleViolation, ViolationKind
from repro.graph.csr import (
    FrozenGraph,
    distinct_edge_count,
    find_cycle_in_component_frozen,
    freeze_packed,
    scc_frozen,
    toposort_frozen,
)
from repro.graph.digraph import EDGE_MASK, EDGE_SHIFT, MAX_PACKED_EDGE, pack_edge

__all__ = ["CommitRelation"]

_SO_LABEL = ("so", None)


class CommitRelation:
    """The inferred partial commit relation ``co'`` over committed transactions."""

    def __init__(
        self,
        history: Optional[History] = None,
        *,
        names: Optional[Sequence[str]] = None,
        committed: Optional[Sequence[int]] = None,
        num_vertices: Optional[int] = None,
        namer: Optional[Callable[[int], str]] = None,
        key_names: Optional[Sequence[str]] = None,
    ) -> None:
        if history is not None:
            names = [txn.name for txn in history.transactions]
            committed = history.committed
        elif committed is None or (names is None and num_vertices is None):
            raise ValueError(
                "need a history, or explicit committed ids plus either names "
                "or num_vertices (with a namer for witness rendering)"
            )
        self.history = history
        self._names: Optional[List[str]] = None if names is None else list(names)
        self._namer = namer
        self._num_vertices = (
            len(self._names) if self._names is not None else int(num_vertices)
        )
        if self._num_vertices > EDGE_MASK + 1:
            raise ValueError(
                f"CommitRelation supports at most {EDGE_MASK + 1} transactions "
                f"(packed-edge ids are {EDGE_SHIFT}-bit); got {self._num_vertices}"
            )
        self._committed: List[int] = list(committed)
        self._key_names = key_names
        # The flat edge logs: append-only, duplicates welcome, packed edges.
        self._so_log = array("Q")
        self._wr_log = array("Q")
        self._co_log = array("Q")
        # Parallel key rows: dense int ids (-1 = no key) when key_names is
        # set, key objects otherwise.
        if key_names is not None:
            self._wr_keys = array("q")
            self._co_keys = array("q")
        else:
            self._wr_keys: list = []  # type: ignore[no-redef]
            self._co_keys: list = []  # type: ignore[no-redef]
        # Frozen snapshot + lazily materialized label tables, each tagged
        # with the log length it was computed at so later appends invalidate.
        self._frozen: Optional[FrozenGraph] = None
        self._frozen_at = -1
        self._num_inferred = 0
        # Distinct |so ∪ wr| cache: the so/wr logs stop growing once
        # saturation starts, so the count survives repeated freezes while
        # only the co log grows.
        self._sowr_distinct = -1
        self._sowr_distinct_at = -1
        self._labels: Optional[Dict[int, Tuple[str, Optional[str]]]] = None
        self._keyed: Optional[Dict[int, Tuple[str, str]]] = None
        self._labels_at = -1
        #: Wall-clock of the freeze/acyclicity/witness phases of the last
        #: :meth:`find_cycles` (and any standalone :meth:`freeze`), for
        #: ``awdit check --profile``.
        self.timings: Dict[str, float] = {}
        if history is not None:
            self._add_so_wr_edges()

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        names: Sequence[str],
        committed: Sequence[int],
        so_edges: Iterable[Tuple[int, int]],
        wr_edges: Iterable[Tuple[int, int, object]],
        key_names: Optional[Sequence[str]] = None,
    ) -> "CommitRelation":
        """Build a relation from transaction-level summaries (no history object).

        ``so_edges`` are immediate session-order edges; ``wr_edges`` are
        ``(writer, reader, key)`` triples in the same order
        :class:`History` would produce them (key ids when ``key_names`` is
        given, key objects otherwise).  Endpoints must be dense ids below
        ``len(names)`` -- the streaming finalizers renumber before calling.
        """
        relation = cls(names=names, committed=committed, key_names=key_names)
        so_append = relation._so_log.append
        for source, target in so_edges:
            so_append((source << EDGE_SHIFT) | target)
        wr_append = relation._wr_log.append
        wrk_append = relation._wr_keys.append
        for writer, reader, key in wr_edges:
            wr_append((writer << EDGE_SHIFT) | reader)
            wrk_append(key)
        return relation

    def _add_so_wr_edges(self) -> None:
        history = self.history
        assert history is not None
        so_append = self._so_log.append
        for source, target in history.so_edges():
            so_append((source << EDGE_SHIFT) | target)
        wr_append = self._wr_log.append
        wrk_append = self._wr_keys.append
        transactions = history.transactions
        for tid in range(history.num_transactions):
            if not transactions[tid].committed:
                continue
            for writer, _index, op in history.txn_read_froms(tid):
                if transactions[writer].committed:
                    wr_append((writer << EDGE_SHIFT) | tid)
                    wrk_append(op.key)

    def add_inferred(self, source: int, target: int, key=None) -> None:
        """Record an inferred commit-order edge ``source -co-> target``.

        Duplicate edges (same pair, any reason) collapse at freeze: only the
        reachability structure matters for acyclicity, and the first label
        replayed is the most informative for witnesses.  ``key`` is a dense
        key id for relations built with ``key_names``, the key object
        otherwise.
        """
        if source == target:
            # The inference rules always relate distinct transactions; a
            # self-edge would indicate a caller bug.
            raise ValueError("co' edges relate distinct transactions")
        self.add_inferred_packed(pack_edge(source, target), key)

    def add_inferred_packed(self, edge: int, key=None) -> None:
        """:meth:`add_inferred` for an already-packed edge.

        The packed value is range-checked: anything outside
        ``[0, MAX_PACKED_EDGE]`` means a transaction id overflowed the
        32 bits of its endpoint and the edge would silently collide with an
        unrelated one.  (The saturation loops append to the logs directly --
        their ids are dense by construction -- so this check is not on the
        hot path.)
        """
        if edge > MAX_PACKED_EDGE or edge < 0:
            raise ValueError(
                f"packed co' edge {edge} out of range: transaction id "
                f"exceeds the {EDGE_SHIFT}-bit endpoint limit"
            )
        self._co_log.append(edge)
        if self._key_names is not None:
            self._co_keys.append(-1 if key is None else key)
        else:
            self._co_keys.append(key)

    # -- freeze ----------------------------------------------------------------

    def _log_size(self) -> int:
        return len(self._so_log) + len(self._wr_log) + len(self._co_log)

    def freeze(self) -> FrozenGraph:
        """The frozen CSR snapshot of the relation (cached until logs grow).

        One sort + dedup pass over the concatenated ``so``/``wr``/``co``
        logs; also fixes the inferred-edge count (distinct edges beyond the
        distinct ``so ∪ wr`` set, which is what per-edge first-label-wins
        insertion used to count).
        """
        size = self._log_size()
        if self._frozen is None or self._frozen_at != size:
            start = time.perf_counter()
            self._frozen = freeze_packed(
                self._num_vertices, (self._so_log, self._wr_log, self._co_log)
            )
            if self._co_log:
                sowr_size = len(self._so_log) + len(self._wr_log)
                if self._sowr_distinct_at != sowr_size:
                    self._sowr_distinct = distinct_edge_count(
                        (self._so_log, self._wr_log)
                    )
                    self._sowr_distinct_at = sowr_size
                self._num_inferred = self._frozen.num_edges - self._sowr_distinct
            else:
                self._num_inferred = 0
            self._frozen_at = size
            self.timings["freeze"] = time.perf_counter() - start
        return self._frozen

    @property
    def graph(self) -> FrozenGraph:
        """The frozen CSR graph of ``co'`` (freezes on first access)."""
        return self.freeze()

    @property
    def num_edges(self) -> int:
        """Total number of distinct edges in ``co'``."""
        return self.freeze().num_edges

    @property
    def num_inferred_edges(self) -> int:
        """Distinct inferred edges not already explained by ``so ∪ wr``."""
        self.freeze()
        return self._num_inferred

    # -- labels (lazy) ---------------------------------------------------------

    def _decode_key(self, key):
        if self._key_names is None:
            return key
        return None if key < 0 else self._key_names[key]

    def _ensure_labels(self) -> None:
        """Materialize the label tables by replaying the edge logs.

        First occurrence wins within and across logs (``so`` before ``wr``
        before ``co`` -- arrival order), which reproduces exactly what
        eager first-label-wins insertion used to record.
        """
        size = self._log_size()
        if self._labels is not None and self._labels_at == size:
            return
        labels: Dict[int, Tuple[str, Optional[str]]] = {}
        keyed: Dict[int, Tuple[str, str]] = {}
        for edge in self._so_log:
            if edge not in labels:
                labels[edge] = _SO_LABEL
        decode = self._decode_key
        for edge, key in zip(self._wr_log, self._wr_keys):
            name = decode(key)
            if edge not in labels:
                labels[edge] = ("wr", name)
            if name is not None and edge not in keyed:
                keyed[edge] = ("wr", name)
        for edge, key in zip(self._co_log, self._co_keys):
            if edge not in labels:
                labels[edge] = ("co", decode(key))
        self._labels = labels
        self._keyed = keyed
        self._labels_at = size

    def edge_label(self, source: int, target: int) -> Optional[Tuple[str, Optional[str]]]:
        """The primary ``(reason, key)`` label of an edge, or ``None`` if absent."""
        self._ensure_labels()
        return self._labels.get((source << EDGE_SHIFT) | target)

    def witness_label(self, source: int, target: int) -> Optional[Tuple[str, Optional[str]]]:
        """The most informative label of an edge, for cycle witnesses.

        Prefers a keyed ``so ∪ wr`` label over a bare ``so`` one: an edge that
        is both ``so`` and ``wr`` is reported as ``wr[key]`` so the witnessing
        key is never dropped.
        """
        self._ensure_labels()
        packed = (source << EDGE_SHIFT) | target
        primary = self._labels.get(packed)
        if primary is None:
            return None
        if primary[1] is None and primary[0] != "co":
            keyed = self._keyed.get(packed)
            if keyed is not None:
                return keyed
        return primary

    def name_of(self, tid: int) -> str:
        """Printable name of a transaction (for witness messages)."""
        if self._names is not None:
            return self._names[tid]
        return self._namer(tid)

    def linearize(self) -> Optional[List[int]]:
        """A total commit order extending ``co'``, or ``None`` if cyclic.

        By Lemma 3.2, when ``co'`` is acyclic any linearization witnesses
        consistency; this method exposes that witness (a list of committed
        transaction ids in commit order).
        """
        order = toposort_frozen(self.freeze())
        if order is None:
            return None
        committed = set(self._committed)
        return [tid for tid in order if tid in committed]

    # -- acyclicity ---------------------------------------------------------------

    def find_cycles(self, max_witnesses: Optional[int] = None) -> List[CycleViolation]:
        """Return one labelled cycle witness per non-trivial SCC of ``co'``.

        A cycle whose edges are all ``so``/``wr`` edges is classified as a
        *causality cycle*; any other cycle is a *commit-order cycle* (the
        paper's Section 3.4 taxonomy).  Witnesses are sorted so cycles with
        the fewest inferred edges come first.  Labels materialize only when
        a non-trivial SCC actually exists, so the consistent case never
        builds them.
        """
        frozen = self.freeze()
        start = time.perf_counter()
        if toposort_frozen(frozen) is not None:
            # Acyclic -- the common case.  Kahn's scan is cheaper than
            # Tarjan's and its in-degrees come from one vectorized count,
            # so consistent histories never pay for SCC bookkeeping.
            self.timings["acyclicity"] = time.perf_counter() - start
            self.timings["witness"] = 0.0
            return []
        components = scc_frozen(frozen)
        split = time.perf_counter()
        self.timings["acyclicity"] = split - start
        violations: List[CycleViolation] = []
        for component in components:
            if len(component) <= 1:
                continue
            cycle = find_cycle_in_component_frozen(frozen, component)
            violations.append(self._cycle_to_violation(cycle))
            if max_witnesses is not None and len(violations) >= max_witnesses:
                break
        violations.sort(key=lambda v: v.inferred_edges)
        self.timings["witness"] = time.perf_counter() - split
        return violations

    def is_acyclic(self) -> bool:
        """True when ``co'`` has no cycle."""
        return all(len(c) == 1 for c in scc_frozen(self.freeze()))

    def _cycle_to_violation(self, cycle: List[int]) -> CycleViolation:
        edges: List[CycleEdge] = []
        for i, source in enumerate(cycle):
            target = cycle[(i + 1) % len(cycle)]
            reason, key = self.witness_label(source, target) or ("co", None)
            edges.append(CycleEdge(source, target, reason, key))
        if all(edge.reason in ("so", "wr") for edge in edges):
            kind = ViolationKind.CAUSALITY_CYCLE
        else:
            kind = ViolationKind.COMMIT_ORDER_CYCLE
        names = " -> ".join(self.name_of(t) for t in cycle)
        message = f"cycle over transactions {names} -> {self.name_of(cycle[0])}"
        return CycleViolation(kind=kind, message=message, edges=tuple(edges))
