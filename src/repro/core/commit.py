"""The partial commit relation ``co'`` and its acyclicity check.

Every checker of Section 3 builds a *minimal saturated* commit relation
(Definition 3.1): it contains ``so ∪ wr`` plus the commit-order edges forced
by the isolation level's axiom (Fig. 3).  By Lemma 3.2 the history satisfies
the level iff it is Read Consistent and this relation is acyclic.

:class:`CommitRelation` stores the relation as a directed graph over
committed transactions, remembers the *reason* for every edge (``so``, ``wr``
or an inferred ``co`` edge together with the key whose inference rule fired),
checks acyclicity with Tarjan SCCs, and extracts one labelled cycle witness
per non-trivial SCC -- the witness-reporting strategy of Section 3.4.

The relation is stored in *packed-edge* form: an edge ``s -> t`` is the
single integer ``(s << EDGE_SHIFT) | t`` and the label tables are int-keyed
dicts, which roughly halves the per-edge memory next to ``(s, t)`` tuple keys
and makes edge hashing an integer hash.  The public API still speaks
``(source, target)`` pairs.

An edge may be justified by several relations at once (a session reading its
so-predecessor's write is related by both ``so`` and ``wr``).  The primary
label is first-come (``so``/``wr`` labels are added before inferred ones, so
witnesses prefer the weaker explanation), but a keyed ``wr`` label observed
for an edge already labelled ``so`` is retained alongside it and preferred
when rendering witnesses, so cycle reports never lose the witnessing key.

The relation is normally built from a :class:`~repro.core.model.History`;
the compiled checkers build it from the array IR via :meth:`from_edges`, and
the streaming checker drains its packed inferred-edge logs into it at
finalize, without materializing a history.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.model import History
from repro.core.violations import CycleEdge, CycleViolation, ViolationKind
from repro.graph.cycles import find_cycle_in_component, strongly_connected_components
from repro.graph.digraph import EDGE_SHIFT, MAX_PACKED_EDGE, DiGraph, pack_edge

__all__ = ["CommitRelation"]


class CommitRelation:
    """The inferred partial commit relation ``co'`` over committed transactions."""

    def __init__(
        self,
        history: Optional[History] = None,
        *,
        names: Optional[Sequence[str]] = None,
        committed: Optional[Sequence[int]] = None,
    ) -> None:
        if history is not None:
            names = [txn.name for txn in history.transactions]
            committed = history.committed
        elif names is None or committed is None:
            raise ValueError("need either a history or explicit names and committed ids")
        self.history = history
        self._names: List[str] = list(names)
        self._committed: List[int] = list(committed)
        self.graph = DiGraph(len(self._names))
        # First label recorded for an edge wins; so/wr labels are added first,
        # which makes cycle witnesses prefer the "weaker" explanation.  Keys
        # are packed edges, values ``(reason, key)``.
        self._labels: Dict[int, Tuple[str, Optional[str]]] = {}
        # First keyed so∪wr label per edge, kept even when a bare `so` label
        # arrived first, so witnesses can name the witnessing key.
        self._keyed: Dict[int, Tuple[str, str]] = {}
        self.num_inferred_edges = 0
        if history is not None:
            self._add_so_wr_edges()

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        names: Sequence[str],
        committed: Sequence[int],
        so_edges: Iterable[Tuple[int, int]],
        wr_edges: Iterable[Tuple[int, int, Optional[str]]],
    ) -> "CommitRelation":
        """Build a relation from transaction-level summaries (no history object).

        ``so_edges`` are immediate session-order edges; ``wr_edges`` are
        ``(writer, reader, key)`` triples, first occurrence per distinct
        writer, in the same order :class:`History` would produce them.
        """
        relation = cls(names=names, committed=committed)
        # _add_labelled inlined: this runs once per so/wr edge at every
        # streaming finalize, and the method + pack_edge hops dominate it.
        labels = relation._labels
        keyed = relation._keyed
        succ = relation.graph._succ
        edge_count = 0
        so_label = ("so", None)
        for source, target in so_edges:
            edge = pack_edge(source, target)
            if edge not in labels:
                labels[edge] = so_label
                succ[source].append(target)
                edge_count += 1
        for writer, reader, key in wr_edges:
            edge = pack_edge(writer, reader)
            if edge not in labels:
                labels[edge] = ("wr", key)
                succ[writer].append(reader)
                edge_count += 1
            if key is not None and edge not in keyed:
                keyed[edge] = ("wr", key)
        relation.graph._edge_count += edge_count
        return relation

    def _add_so_wr_edges(self) -> None:
        history = self.history
        assert history is not None
        for source, target in history.so_edges():
            self._add_labelled(source, target, "so", None)
        for tid in range(history.num_transactions):
            txn = history.transactions[tid]
            if not txn.committed:
                continue
            seen = set()
            for writer, _index, op in history.txn_read_froms(tid):
                if writer in seen:
                    continue
                seen.add(writer)
                if history.transactions[writer].committed:
                    self._add_labelled(writer, tid, "wr", op.key)

    def _add_labelled(self, source: int, target: int, reason: str, key: Optional[str]) -> None:
        edge = pack_edge(source, target)
        if edge not in self._labels:
            self._labels[edge] = (reason, key)
            self.graph.add_packed_edge(edge)
        if key is not None and edge not in self._keyed:
            self._keyed[edge] = (reason, key)

    def add_inferred(self, source: int, target: int, key: Optional[str] = None) -> None:
        """Record an inferred commit-order edge ``source -co-> target``.

        Duplicate edges (same pair, any reason) are ignored: only the
        reachability structure matters for acyclicity, and the first label is
        the most informative for witnesses.
        """
        if source == target:
            # The inference rules always relate distinct transactions; a
            # self-edge would indicate a caller bug.
            raise ValueError("co' edges relate distinct transactions")
        self.add_inferred_packed(pack_edge(source, target), key)

    def add_inferred_packed(self, edge: int, key: Optional[str] = None) -> None:
        """:meth:`add_inferred` for an already-packed edge (hot-path form).

        The packed value is range-checked: anything outside
        ``[0, MAX_PACKED_EDGE]`` means a transaction id overflowed the
        32 bits of its endpoint and the edge would silently collide with an
        unrelated one.
        """
        if edge > MAX_PACKED_EDGE or edge < 0:
            raise ValueError(
                f"packed co' edge {edge} out of range: transaction id "
                f"exceeds the {EDGE_SHIFT}-bit endpoint limit"
            )
        if edge in self._labels:
            return
        self._labels[edge] = ("co", key)
        self.graph.add_packed_edge(edge)
        self.num_inferred_edges += 1

    # -- queries ---------------------------------------------------------------

    def edge_label(self, source: int, target: int) -> Optional[Tuple[str, Optional[str]]]:
        """The primary ``(reason, key)`` label of an edge, or ``None`` if absent."""
        return self._labels.get((source << EDGE_SHIFT) | target)

    def witness_label(self, source: int, target: int) -> Optional[Tuple[str, Optional[str]]]:
        """The most informative label of an edge, for cycle witnesses.

        Prefers a keyed ``so ∪ wr`` label over a bare ``so`` one: an edge that
        is both ``so`` and ``wr`` is reported as ``wr[key]`` so the witnessing
        key is never dropped.
        """
        packed = (source << EDGE_SHIFT) | target
        primary = self._labels.get(packed)
        if primary is None:
            return None
        if primary[1] is None and primary[0] != "co":
            keyed = self._keyed.get(packed)
            if keyed is not None:
                return keyed
        return primary

    def name_of(self, tid: int) -> str:
        """Printable name of a transaction (for witness messages)."""
        return self._names[tid]

    @property
    def num_edges(self) -> int:
        """Total number of distinct edges in ``co'``."""
        return len(self._labels)

    def linearize(self) -> Optional[List[int]]:
        """A total commit order extending ``co'``, or ``None`` if cyclic.

        By Lemma 3.2, when ``co'`` is acyclic any linearization witnesses
        consistency; this method exposes that witness (a list of committed
        transaction ids in commit order).
        """
        from repro.graph.cycles import topological_sort

        order = topological_sort(self.graph)
        if order is None:
            return None
        committed = set(self._committed)
        return [tid for tid in order if tid in committed]

    # -- acyclicity ---------------------------------------------------------------

    def find_cycles(self, max_witnesses: Optional[int] = None) -> List[CycleViolation]:
        """Return one labelled cycle witness per non-trivial SCC of ``co'``.

        A cycle whose edges are all ``so``/``wr`` edges is classified as a
        *causality cycle*; any other cycle is a *commit-order cycle* (the
        paper's Section 3.4 taxonomy).  Witnesses are sorted so cycles with
        the fewest inferred edges come first.
        """
        violations: List[CycleViolation] = []
        for component in strongly_connected_components(self.graph):
            if len(component) <= 1:
                continue
            cycle = find_cycle_in_component(self.graph, component)
            violations.append(self._cycle_to_violation(cycle))
            if max_witnesses is not None and len(violations) >= max_witnesses:
                break
        violations.sort(key=lambda v: v.inferred_edges)
        return violations

    def is_acyclic(self) -> bool:
        """True when ``co'`` has no cycle."""
        return all(len(c) == 1 for c in strongly_connected_components(self.graph))

    def _cycle_to_violation(self, cycle: List[int]) -> CycleViolation:
        edges: List[CycleEdge] = []
        for i, source in enumerate(cycle):
            target = cycle[(i + 1) % len(cycle)]
            reason, key = self.witness_label(source, target) or ("co", None)
            edges.append(CycleEdge(source, target, reason, key))
        if all(edge.reason in ("so", "wr") for edge in edges):
            kind = ViolationKind.CAUSALITY_CYCLE
        else:
            kind = ViolationKind.COMMIT_ORDER_CYCLE
        names = " -> ".join(self._names[t] for t in cycle)
        message = f"cycle over transactions {names} -> {self._names[cycle[0]]}"
        return CycleViolation(kind=kind, message=message, edges=tuple(edges))
