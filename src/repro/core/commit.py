"""The partial commit relation ``co'`` and its acyclicity check.

Every checker of Section 3 builds a *minimal saturated* commit relation
(Definition 3.1): it contains ``so ∪ wr`` plus the commit-order edges forced
by the isolation level's axiom (Fig. 3).  By Lemma 3.2 the history satisfies
the level iff it is Read Consistent and this relation is acyclic.

:class:`CommitRelation` stores the relation as a directed graph over
committed transactions, remembers the *reason* for every edge (``so``, ``wr``
or an inferred ``co`` edge together with the key whose inference rule fired),
checks acyclicity with Tarjan SCCs, and extracts one labelled cycle witness
per non-trivial SCC -- the witness-reporting strategy of Section 3.4.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.model import History
from repro.core.violations import CycleEdge, CycleViolation, ViolationKind
from repro.graph.cycles import find_cycle_in_component, strongly_connected_components
from repro.graph.digraph import DiGraph

__all__ = ["CommitRelation"]


class CommitRelation:
    """The inferred partial commit relation ``co'`` over committed transactions."""

    def __init__(self, history: History) -> None:
        self.history = history
        self.graph = DiGraph(history.num_transactions)
        # First label recorded for an edge wins; so/wr labels are added first,
        # which makes cycle witnesses prefer the "weaker" explanation.
        self._labels: Dict[Tuple[int, int], Tuple[str, Optional[str]]] = {}
        self.num_inferred_edges = 0
        self._add_so_wr_edges()

    # -- construction ----------------------------------------------------------

    def _add_so_wr_edges(self) -> None:
        history = self.history
        for source, target in history.so_edges():
            self._add_labelled(source, target, "so", None)
        for tid in range(history.num_transactions):
            txn = history.transactions[tid]
            if not txn.committed:
                continue
            seen = set()
            for writer, _index, op in history.txn_read_froms(tid):
                if writer in seen:
                    continue
                seen.add(writer)
                if history.transactions[writer].committed:
                    self._add_labelled(writer, tid, "wr", op.key)

    def _add_labelled(self, source: int, target: int, reason: str, key: Optional[str]) -> None:
        if (source, target) not in self._labels:
            self._labels[(source, target)] = (reason, key)
            self.graph.add_edge(source, target)

    def add_inferred(self, source: int, target: int, key: Optional[str] = None) -> None:
        """Record an inferred commit-order edge ``source -co-> target``.

        Duplicate edges (same pair, any reason) are ignored: only the
        reachability structure matters for acyclicity, and the first label is
        the most informative for witnesses.
        """
        if source == target:
            # The inference rules always relate distinct transactions; a
            # self-edge would indicate a caller bug.
            raise ValueError("co' edges relate distinct transactions")
        if (source, target) in self._labels:
            return
        self._labels[(source, target)] = ("co", key)
        self.graph.add_edge(source, target)
        self.num_inferred_edges += 1

    # -- queries ---------------------------------------------------------------

    def edge_label(self, source: int, target: int) -> Optional[Tuple[str, Optional[str]]]:
        """The ``(reason, key)`` label of an edge, or ``None`` if absent."""
        return self._labels.get((source, target))

    @property
    def num_edges(self) -> int:
        """Total number of distinct edges in ``co'``."""
        return len(self._labels)

    def linearize(self) -> Optional[List[int]]:
        """A total commit order extending ``co'``, or ``None`` if cyclic.

        By Lemma 3.2, when ``co'`` is acyclic any linearization witnesses
        consistency; this method exposes that witness (a list of committed
        transaction ids in commit order).
        """
        from repro.graph.cycles import topological_sort

        order = topological_sort(self.graph)
        if order is None:
            return None
        committed = set(self.history.committed)
        return [tid for tid in order if tid in committed]

    # -- acyclicity ---------------------------------------------------------------

    def find_cycles(self, max_witnesses: Optional[int] = None) -> List[CycleViolation]:
        """Return one labelled cycle witness per non-trivial SCC of ``co'``.

        A cycle whose edges are all ``so``/``wr`` edges is classified as a
        *causality cycle*; any other cycle is a *commit-order cycle* (the
        paper's Section 3.4 taxonomy).  Witnesses are sorted so cycles with
        the fewest inferred edges come first.
        """
        violations: List[CycleViolation] = []
        for component in strongly_connected_components(self.graph):
            if len(component) <= 1:
                continue
            cycle = find_cycle_in_component(self.graph, component)
            violations.append(self._cycle_to_violation(cycle))
            if max_witnesses is not None and len(violations) >= max_witnesses:
                break
        violations.sort(key=lambda v: v.inferred_edges)
        return violations

    def is_acyclic(self) -> bool:
        """True when ``co'`` has no cycle."""
        return all(len(c) == 1 for c in strongly_connected_components(self.graph))

    def _cycle_to_violation(self, cycle: List[int]) -> CycleViolation:
        edges: List[CycleEdge] = []
        for i, source in enumerate(cycle):
            target = cycle[(i + 1) % len(cycle)]
            reason, key = self._labels.get((source, target), ("co", None))
            edges.append(CycleEdge(source, target, reason, key))
        if all(edge.reason in ("so", "wr") for edge in edges):
            kind = ViolationKind.CAUSALITY_CYCLE
        else:
            kind = ViolationKind.COMMIT_ORDER_CYCLE
        names = " -> ".join(self.history.transactions[t].name for t in cycle)
        message = f"cycle over transactions {names} -> {self.history.transactions[cycle[0]].name}"
        return CycleViolation(kind=kind, message=message, edges=tuple(edges))
