"""Causal Consistency checking (Definition 2.8, Algorithm 3).

The CC axiom (Fig. 3c): if transaction ``t3`` reads ``x`` from ``t1`` and a
*different* transaction ``t2`` writing ``x`` is in ``t3``'s causal past
(``t2 -(so∪wr)+-> t3``), then every valid commit order must place ``t2``
before ``t1``.

Algorithm 3 computes the happens-before relation with one vector clock per
transaction (``ComputeHB``) and then, per session and key, maintains the
happens-before-latest writer of the key in every other session with a
monotonically advancing pointer into that session's writer list.  The total
running time is ``O(n · k)`` for a history of size ``n`` with ``k`` sessions
(Lemma 3.8).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.commit import CommitRelation
from repro.core.isolation import IsolationLevel
from repro.core.model import History, OpRef
from repro.core.read_consistency import ReadConsistencyReport, check_read_consistency
from repro.core.result import CheckResult, Stopwatch
from repro.core.violations import CycleEdge, CycleViolation, Violation, ViolationKind
from repro.graph.csr import (
    FrozenGraph,
    find_cycle_in_component_frozen,
    freeze_packed,
    scc_frozen,
    toposort_frozen,
)
from repro.graph.digraph import EDGE_SHIFT
from repro.graph.vector_clock import VectorClock

__all__ = [
    "check_cc",
    "compute_happens_before",
    "saturate_cc",
    "causality_cycles",
    "causality_labels",
]


def _causality_graph(history: History, bad_reads: Set[OpRef]):
    """Transaction-level ``so ∪ wr`` graph over committed transactions.

    Returns ``(frozen_graph, so_log, wr_log, wr_keys)``: the packed edge
    logs feed the frozen CSR snapshot, and the parallel wr key row labels
    causality-cycle witnesses (built lazily via :func:`causality_labels`,
    only when a cycle exists).  Duplicate observations append duplicate log
    entries; the freeze collapses them.
    """
    so_log: List[int] = []
    wr_log: List[int] = []
    wr_keys: List[Optional[str]] = []
    for source, target in history.so_edges():
        so_log.append((source << EDGE_SHIFT) | target)
    transactions = history.transactions
    for tid, txn in enumerate(transactions):
        if not txn.committed:
            continue
        for writer, index, op in history.txn_read_froms(tid):
            if OpRef(tid, index) in bad_reads:
                continue
            if not transactions[writer].committed:
                continue
            wr_log.append((writer << EDGE_SHIFT) | tid)
            wr_keys.append(op.key)
    graph = freeze_packed(history.num_transactions, (so_log, wr_log))
    return graph, so_log, wr_log, wr_keys


def causality_labels(
    so_log: Sequence[int],
    wr_log: Sequence[int],
    wr_keys: Sequence,
    key_names: Optional[Sequence[str]] = None,
) -> Dict[int, Optional[str]]:
    """Witness labels of a causality graph: packed edge -> witnessing key.

    Replays the edge logs in arrival order: ``None`` for session-order
    edges, the key of the *first* witnessing read for ``wr`` edges.  An edge
    that is both ``so`` and ``wr`` keeps the keyed label (a session reading
    its predecessor's write must not be reported as bare ``so``).  When
    ``key_names`` is given the wr key row holds dense ids to decode;
    otherwise it holds the key objects themselves.
    """
    labels: Dict[int, Optional[str]] = {}
    for edge in so_log:
        if edge not in labels:
            labels[edge] = None
    if key_names is None:
        for edge, key in zip(wr_log, wr_keys):
            if labels.get(edge) is None:
                labels[edge] = key
    else:
        for edge, kid in zip(wr_log, wr_keys):
            if labels.get(edge) is None:
                labels[edge] = key_names[kid]
    return labels


def causality_cycles(
    names: Sequence[str],
    graph: FrozenGraph,
    labels: Dict[int, Optional[str]],
    max_witnesses: Optional[int] = None,
) -> List[Violation]:
    """One causality-cycle witness per non-trivial SCC of ``so ∪ wr``.

    ``names`` maps dense transaction ids to printable names and ``labels``
    packed edges to witnessing keys (see :func:`causality_labels`).  Shared
    by every engine -- the object path, the compiled batch path, and both
    streaming finalizers extract their causality witnesses here, over the
    same frozen CSR rows, so the renderings cannot drift.
    """
    violations: List[Violation] = []
    for component in scc_frozen(graph):
        if len(component) <= 1:
            continue
        cycle = find_cycle_in_component_frozen(graph, component)
        edges: List[CycleEdge] = []
        for i, source in enumerate(cycle):
            target = cycle[(i + 1) % len(cycle)]
            key = labels.get((source << EDGE_SHIFT) | target)
            reason = "so" if key is None else "wr"
            edges.append(CycleEdge(source, target, reason, key))
        names_text = " -> ".join(names[t] for t in cycle)
        violations.append(
            CycleViolation(
                kind=ViolationKind.CAUSALITY_CYCLE,
                message=f"so ∪ wr cycle over {names_text} -> {names[cycle[0]]}",
                edges=tuple(edges),
            )
        )
        if max_witnesses is not None and len(violations) >= max_witnesses:
            break
    return violations


def compute_happens_before(
    history: History, bad_reads: Optional[Set[OpRef]] = None
) -> Tuple[Optional[List[Optional[VectorClock]]], List[Violation]]:
    """``ComputeHB`` of Algorithm 3: one vector clock per committed transaction.

    ``HB[t][s]`` is the session-order index of the so-latest transaction of
    session ``s`` in ``t``'s causal past (``-1`` when no transaction of ``s``
    happens before ``t``).  When ``so ∪ wr`` is cyclic the function returns
    ``(None, violations)`` where the violations are causality-cycle witnesses.
    """
    bad = bad_reads if bad_reads is not None else set()
    graph, so_log, wr_log, wr_keys = _causality_graph(history, bad)
    order = toposort_frozen(graph)
    if order is None:
        names = [txn.name for txn in history.transactions]
        return None, causality_cycles(
            names, graph, causality_labels(so_log, wr_log, wr_keys)
        )

    transactions = history.transactions
    k = history.num_sessions
    session_clock: List[VectorClock] = [VectorClock(k) for _ in range(k)]
    hb: List[Optional[VectorClock]] = [None] * history.num_transactions
    for tid in order:
        txn = transactions[tid]
        if not txn.committed:
            continue
        clock = session_clock[txn.session].copy()
        seen_writers: Set[int] = set()
        for writer, index, _op in history.txn_read_froms(tid):
            if OpRef(tid, index) in bad:
                continue
            if writer in seen_writers:
                continue
            seen_writers.add(writer)
            writer_txn = transactions[writer]
            if not writer_txn.committed:
                continue
            writer_clock = hb[writer]
            if writer_clock is not None:
                clock.join_in_place(writer_clock)
            clock.advance(writer_txn.session, writer_txn.session_index)
        hb[tid] = clock
        next_clock = clock.copy()
        next_clock.advance(txn.session, txn.session_index)
        session_clock[txn.session] = next_clock
    return hb, []


def _writers_by_key_per_session(
    history: History,
) -> Dict[str, List[Tuple[int, List[int], List[int]]]]:
    """``Writes_s[x]`` grouped by key.

    For every key, a list of ``(session, writer_tids, writer_session_indices)``
    entries, one per session that writes the key, writers in session order.
    Grouping by key lets the saturation loop touch only the sessions that can
    possibly contribute a commit-order edge for the key being read.
    """
    writes: Dict[str, List[Tuple[int, List[int], List[int]]]] = {}
    transactions = history.transactions
    for sid in range(history.num_sessions):
        per_key: Dict[str, List[int]] = {}
        for tid in history.committed_in_session(sid):
            for key in transactions[tid].keys_written:
                per_key.setdefault(key, []).append(tid)
        for key, tids in per_key.items():
            indices = [transactions[tid].session_index for tid in tids]
            writes.setdefault(key, []).append((sid, tids, indices))
    return writes


def saturate_cc(
    history: History,
    relation: CommitRelation,
    hb: List[Optional[VectorClock]],
    bad_reads: Set[OpRef],
) -> None:
    """Add to ``relation`` the commit edges forced by the CC axiom.

    For every read ``t1 -wr_x-> t3`` and every session ``s'`` that writes
    ``x``, the happens-before-latest writer of ``x`` in ``s'`` (found by
    advancing a monotone per-session pointer over ``Writes_{s'}[x]``) must
    commit before ``t1``.  Writers that are so-predecessors of that latest
    writer are ordered transitively and need no explicit edge.
    """
    transactions = history.transactions
    writers_by_key = _writers_by_key_per_session(history)

    for sid in range(history.num_sessions):
        # State per observed (session, key): the last hb-before writer found
        # so far and the monotone pointer into that session's writer list.
        last_write: Dict[Tuple[int, str], int] = {}
        pointer: Dict[Tuple[int, str], int] = {}
        for t3 in history.committed_in_session(sid):
            clock = hb[t3]
            if clock is None:
                continue
            entries = clock.entries
            for writer, index, op in history.txn_read_froms(t3):
                if (t3, index) in bad_reads:
                    continue
                if not transactions[writer].committed:
                    continue
                t1 = writer
                key = op.key
                key_writers = writers_by_key.get(key)
                if not key_writers:
                    continue
                for other, writer_list, writer_indices in key_writers:
                    state = (other, key)
                    ptr = pointer.get(state, 0)
                    bound = entries[other]
                    if ptr < len(writer_list) and writer_indices[ptr] <= bound:
                        while (
                            ptr < len(writer_list) and writer_indices[ptr] <= bound
                        ):
                            ptr += 1
                        last_write[state] = writer_list[ptr - 1]
                        pointer[state] = ptr
                    t2 = last_write.get(state)
                    if t2 is not None and t2 != t1:
                        relation.add_inferred(t2, t1, key=key)


def check_cc(
    history: History,
    max_witnesses: Optional[int] = None,
    read_consistency: Optional[ReadConsistencyReport] = None,
) -> CheckResult:
    """Check whether ``history`` satisfies Causal Consistency (Lemma 3.7).

    If ``so ∪ wr`` is cyclic the causality-cycle witnesses are reported and
    the CC-specific saturation is skipped (as discussed in Section 3.4, CC
    checking past a causality cycle produces an avalanche of spurious
    reports).
    """
    watch = Stopwatch()
    report = read_consistency or check_read_consistency(history)
    watch.lap("read_consistency")

    violations: List[Violation] = list(report.violations)
    hb, cycle_violations = compute_happens_before(history, report.bad_reads)
    watch.lap("happens_before")

    if hb is None:
        violations.extend(cycle_violations)
        return CheckResult(
            level=IsolationLevel.CAUSAL_CONSISTENCY,
            violations=violations,
            checker="awdit",
            elapsed_seconds=watch.total,
            num_operations=history.num_operations,
            num_transactions=history.num_transactions,
            num_sessions=history.num_sessions,
            stats=dict(watch.laps),
        )

    relation = CommitRelation(history)
    saturate_cc(history, relation, hb, report.bad_reads)
    watch.lap("saturation")

    violations.extend(relation.find_cycles(max_witnesses=max_witnesses))
    watch.lap("cycle_check")

    return CheckResult(
        level=IsolationLevel.CAUSAL_CONSISTENCY,
        violations=violations,
        checker="awdit",
        elapsed_seconds=watch.total,
        num_operations=history.num_operations,
        num_transactions=history.num_transactions,
        num_sessions=history.num_sessions,
        stats={
            "inferred_edges": relation.num_inferred_edges,
            "co_edges": relation.num_edges,
            **watch.laps,
        },
    )
