"""Exception hierarchy for the AWDIT reproduction.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  Malformed inputs (histories that violate the
structural requirements of Definition 2.2 in the paper) raise
:class:`HistoryFormatError`; parsing problems of on-disk history files raise
:class:`ParseError`; misuse of the public API raises :class:`UsageError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class HistoryFormatError(ReproError):
    """A history violates the structural requirements of Definition 2.2.

    Examples: a read whose write-read edge originates at a read operation, a
    read with two incoming ``wr`` edges (``wr``:sup:`-1` must be a partial
    function), or a ``wr`` edge connecting operations on different keys.
    """


class ParseError(HistoryFormatError):
    """A history file could not be parsed in the requested format.

    A parse failure is a structural history defect observed at the file
    level, so this subclasses :class:`HistoryFormatError`: callers hardening
    against malformed input can catch the one base class for both truncated
    or corrupt files and structurally invalid in-memory histories.
    """


class UsageError(ReproError):
    """The public API was used incorrectly (bad argument combinations)."""


class TimeoutExceeded(ReproError):
    """A checker or benchmark run exceeded its configured time budget."""
