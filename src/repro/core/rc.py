"""Read Committed checking (Definition 2.4, Algorithm 1).

The RC axiom (Fig. 3a): if transaction ``t3`` reads some key from ``t2``
(``t2 -wr-> r``), later (in program order) reads ``x`` from ``t1``
(``t1 -wr_x-> r_x`` with ``r -po-> r_x``), ``t1 != t2``, and ``t2`` also
writes ``x``, then every valid commit order must place ``t2`` before ``t1``.

Algorithm 1 builds a *minimal saturated* commit relation (Definition 3.1) by
inferring only the edges to the po-earliest later reader of each key: the
rest are implied transitively.  The amortized cost is ``O(sqrt(n))`` per
transaction, for an overall ``O(n^{3/2})`` bound (Lemma 3.4), dropping to
``O(n)`` when transactions have bounded size.
"""

from __future__ import annotations

from typing import Container, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.commit import CommitRelation
from repro.core.isolation import IsolationLevel
from repro.core.model import History, OpRef, Operation
from repro.core.read_consistency import ReadConsistencyReport, check_read_consistency
from repro.core.result import CheckResult, Stopwatch

__all__ = ["check_rc", "saturate_rc"]


def _external_reads(
    history: History, tid: int, bad_reads: Set[OpRef]
) -> List[Tuple[int, Operation, int]]:
    """Reads of ``tid`` observing a *different committed* transaction.

    Returns ``(po_index, operation, writer_tid)`` triples in program order,
    skipping reads flagged by the Read Consistency check and reads whose
    writer is aborted (those were already reported).
    """
    result: List[Tuple[int, Operation, int]] = []
    transactions = history.transactions
    for writer, index, op in history.txn_read_froms(tid):
        if OpRef(tid, index) in bad_reads:
            continue
        if not transactions[writer].committed:
            continue
        result.append((index, op, writer))
    return result


def saturate_rc(
    history: History, relation: CommitRelation, bad_reads: Set[OpRef]
) -> None:
    """Add to ``relation`` the commit edges forced by the RC axiom.

    This is the main loop of Algorithm 1: for each committed transaction
    ``t3``, a forward pass finds the po-first read of every transaction
    ``t3`` reads from (``firstTxnReads``), and a backward pass maintains, for
    every key ``x``, the two po-earliest distinct transactions ``t3`` reads
    ``x`` from below the current position (``earliestWts``).  When the
    current read is a first read of ``t2``, one edge ``t2 -co-> t1`` is added
    for every key in ``KeysWt(t2) ∩ readKeys`` -- later readers of the same
    key are ordered transitively and need no explicit edge.
    """
    transactions = history.transactions
    add_inferred = relation.add_inferred
    for tid in history.committed:
        reads = _external_reads(history, tid, bad_reads)
        if not reads:
            continue

        # Forward pass: record the po-first read of each observed transaction.
        seen_txns: Set[int] = set()
        first_txn_reads: Set[int] = set()
        for index, _op, writer in reads:
            if writer not in seen_txns:
                seen_txns.add(writer)
                first_txn_reads.add(index)

        # Backward pass: earliest[x] is a two-element stack holding the two
        # po-earliest distinct transactions from which t3 reads x below the
        # current position (older at slot 0, newer -- i.e. po-earlier -- at
        # slot 1).  read_keys is a dict so that iterating the smaller side of
        # the intersection below is deterministic (first-seen order), keeping
        # edge insertion -- and hence witness selection -- independent of
        # string hashing and identical across the three engines.
        earliest: Dict[str, Tuple[Optional[int], Optional[int]]] = {}
        read_keys: Dict[str, None] = {}
        for index, op, t2 in reversed(reads):
            if index in first_txn_reads:
                keys_written = transactions[t2].keys_written
                if len(keys_written) <= len(read_keys):
                    smaller: Iterable[str] = transactions[t2].keys_written_ordered
                    larger: Container[str] = read_keys
                else:
                    smaller, larger = read_keys, keys_written
                for x in smaller:
                    if x not in larger:
                        continue
                    older, newer = earliest[x]
                    t1 = newer
                    if t1 == t2:
                        t1 = older
                    if t1 is not None and t1 != t2:
                        add_inferred(t2, t1, key=x)
            key = op.key
            pair = earliest.get(key)
            if pair is None:
                earliest[key] = (None, t2)
            elif pair[1] != t2:
                earliest[key] = (pair[1], t2)
            read_keys[key] = None


def check_rc(
    history: History,
    max_witnesses: Optional[int] = None,
    read_consistency: Optional[ReadConsistencyReport] = None,
) -> CheckResult:
    """Check whether ``history`` satisfies Read Committed.

    Runs the Read Consistency check, saturates the commit relation per the RC
    axiom, and reports one labelled cycle witness per strongly connected
    component of ``co'`` (Section 3.4).  The history satisfies RC iff the
    returned result has no violations (Lemma 3.3).
    """
    watch = Stopwatch()
    report = read_consistency or check_read_consistency(history)
    watch.lap("read_consistency")

    relation = CommitRelation(history)
    saturate_rc(history, relation, report.bad_reads)
    watch.lap("saturation")

    violations = list(report.violations)
    violations.extend(relation.find_cycles(max_witnesses=max_witnesses))
    watch.lap("cycle_check")

    return CheckResult(
        level=IsolationLevel.READ_COMMITTED,
        violations=violations,
        checker="awdit",
        elapsed_seconds=watch.total,
        num_operations=history.num_operations,
        num_transactions=history.num_transactions,
        num_sessions=history.num_sessions,
        stats={
            "inferred_edges": relation.num_inferred_edges,
            "co_edges": relation.num_edges,
            **watch.laps,
        },
    )
