"""Check results returned by the isolation checkers.

A :class:`CheckResult` bundles the verdict (consistent or not), the list of
violation witnesses (Section 3.4), and a few statistics that the benchmark
harness and the CLI report (inferred commit edges, elapsed wall-clock time,
history size).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.isolation import IsolationLevel
from repro.core.violations import Violation, ViolationKind

__all__ = ["CheckResult", "Stopwatch"]


@dataclass
class CheckResult:
    """The outcome of checking one history against one isolation level."""

    level: IsolationLevel
    violations: List[Violation] = field(default_factory=list)
    checker: str = "awdit"
    elapsed_seconds: float = 0.0
    num_operations: int = 0
    num_transactions: int = 0
    num_sessions: int = 0
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def is_consistent(self) -> bool:
        """True when no violation was found (the history satisfies the level)."""
        return not self.violations

    def violations_of_kind(self, kind: ViolationKind) -> List[Violation]:
        """All reported violations of a given kind."""
        return [v for v in self.violations if v.kind is kind]

    def violation_kinds(self) -> List[ViolationKind]:
        """The distinct kinds of violations reported, in first-seen order."""
        seen: List[ViolationKind] = []
        for violation in self.violations:
            if violation.kind not in seen:
                seen.append(violation.kind)
        return seen

    def summary(self) -> str:
        """One-line verdict suitable for CLI output and benchmark logs."""
        verdict = "CONSISTENT" if self.is_consistent else "VIOLATION"
        detail = ""
        if not self.is_consistent:
            kinds = ", ".join(str(kind) for kind in self.violation_kinds())
            detail = f" ({kinds})"
        return (
            f"[{self.checker}] {self.level.short_name}: {verdict}{detail} "
            f"in {self.elapsed_seconds * 1000:.2f} ms "
            f"({self.num_transactions} txns, {self.num_operations} ops, "
            f"{self.num_sessions} sessions)"
        )

    def describe_violations(self, limit: Optional[int] = 10) -> str:
        """Multi-line description of the violation witnesses."""
        lines: List[str] = []
        shown = self.violations if limit is None else self.violations[:limit]
        for violation in shown:
            lines.append(f"  - {violation.describe()}")
        hidden = len(self.violations) - len(shown)
        if hidden > 0:
            lines.append(f"  ... and {hidden} more")
        return "\n".join(lines)


class Stopwatch:
    """Tiny helper to time checker phases with ``perf_counter``."""

    def __init__(self) -> None:
        self._start = time.perf_counter()
        self.laps: Dict[str, float] = {}

    def lap(self, name: str) -> float:
        """Record the elapsed time since the last lap under ``name``."""
        now = time.perf_counter()
        elapsed = now - self._start
        self.laps[name] = self.laps.get(name, 0.0) + elapsed
        self._start = now
        return elapsed

    @property
    def total(self) -> float:
        """Total time accumulated across all laps."""
        return sum(self.laps.values())
