"""Witness post-processing utilities (Section 3.4).

The checkers already report one cycle per strongly connected component of
the inferred commit relation.  This module provides the extra
witness-reporting strategies described in the paper:

* :func:`summarize` -- count violations by kind (used by the Table 1
  reproduction and the CLI).
* :func:`shortest_cycle_through` -- BFS-based minimization of a cycle witness
  inside its SCC, producing the smallest witness through a chosen
  transaction.
* :func:`rank_witnesses` -- order cycle witnesses so those with the fewest
  inferred (non-``so ∪ wr``) edges come first, which the paper argues exposes
  the "weakest and thus most serious" anomalies.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set

from repro.core.commit import CommitRelation
from repro.core.violations import CycleEdge, CycleViolation, Violation, ViolationKind
from repro.graph.digraph import DiGraph

__all__ = ["summarize", "shortest_cycle_through", "rank_witnesses", "format_report"]


def summarize(violations: Sequence[Violation]) -> Dict[ViolationKind, int]:
    """Count the reported violations by kind."""
    counts: Dict[ViolationKind, int] = {}
    for violation in violations:
        counts[violation.kind] = counts.get(violation.kind, 0) + 1
    return counts


def shortest_cycle_through(
    graph: DiGraph, vertex: int, restrict_to: Optional[Set[int]] = None
) -> Optional[List[int]]:
    """The shortest cycle through ``vertex``, by BFS, or ``None`` if none exists.

    When ``restrict_to`` is given the search stays inside that vertex set
    (typically the SCC containing ``vertex``), which keeps the search linear
    in the component size.
    """
    parents: Dict[int, int] = {}
    queue = deque([vertex])
    visited = {vertex}
    while queue:
        current = queue.popleft()
        for succ in graph.successors(current):
            if restrict_to is not None and succ not in restrict_to:
                continue
            if succ == vertex:
                path = [current]
                while path[-1] != vertex:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            if succ not in visited:
                visited.add(succ)
                parents[succ] = current
                queue.append(succ)
    return None


def minimize_cycle_witness(
    relation: CommitRelation, witness: CycleViolation
) -> CycleViolation:
    """Replace a cycle witness by the shortest cycle through one of its transactions."""
    if not witness.edges:
        return witness
    members = set(witness.transactions)
    best: Optional[List[int]] = None
    for vertex in witness.transactions:
        cycle = shortest_cycle_through(relation.graph, vertex, restrict_to=None)
        if cycle is not None and (best is None or len(cycle) < len(best)):
            best = cycle
    if best is None or len(best) >= len(witness.edges):
        return witness
    edges: List[CycleEdge] = []
    for i, source in enumerate(best):
        target = best[(i + 1) % len(best)]
        label = relation.witness_label(source, target) or ("co", None)
        edges.append(CycleEdge(source, target, label[0], label[1]))
    names = " -> ".join(relation.name_of(t) for t in best)
    kind = (
        ViolationKind.CAUSALITY_CYCLE
        if all(edge.reason in ("so", "wr") for edge in edges)
        else ViolationKind.COMMIT_ORDER_CYCLE
    )
    return CycleViolation(
        kind=kind,
        message=f"cycle over transactions {names} -> {relation.name_of(best[0])}",
        edges=tuple(edges),
    )


def rank_witnesses(violations: Sequence[Violation]) -> List[Violation]:
    """Order violations: read-level anomalies first, then cycles by inferred-edge count."""

    def sort_key(violation: Violation):
        if isinstance(violation, CycleViolation):
            return (1, violation.inferred_edges, len(violation.edges))
        return (0, 0, 0)

    return sorted(violations, key=sort_key)


def format_report(violations: Sequence[Violation], limit: int = 20) -> str:
    """Render a violation list as a human-readable report."""
    if not violations:
        return "no violations found"
    lines = [f"{len(violations)} violation(s) found:"]
    for kind, count in summarize(violations).items():
        lines.append(f"  {kind.value}: {count}")
    lines.append("witnesses:")
    for violation in rank_witnesses(violations)[:limit]:
        lines.append(f"  - {violation.describe()}")
    if len(violations) > limit:
        lines.append(f"  ... ({len(violations) - limit} more)")
    return "\n".join(lines)
