"""The core AWDIT library: history model and optimal weak-isolation checkers.

Public surface:

* the data model (:class:`Operation`, :class:`Transaction`, :class:`History`),
* the isolation-level enum and lattice (:class:`IsolationLevel`),
* the checkers (:func:`check`, :func:`check_rc`, :func:`check_ra`,
  :func:`check_cc`, :func:`check_ra_single_session`,
  :func:`check_read_consistency`),
* the result and violation types.
"""

from repro.core.cc import check_cc, compute_happens_before
from repro.core.checker import check, check_all_levels
from repro.core.commit import CommitRelation
from repro.core.compiled import (
    CompiledHistory,
    CompiledHistoryBuilder,
    check_all_levels_compiled,
    check_compiled,
    compile_history,
)
from repro.core.exceptions import (
    HistoryFormatError,
    ParseError,
    ReproError,
    TimeoutExceeded,
    UsageError,
)
from repro.core.isolation import IsolationLevel, is_stronger_or_equal
from repro.core.model import History, Operation, OpKind, OpRef, Transaction, read, write
from repro.core.ra import check_ra, check_ra_single_session, check_repeatable_reads
from repro.core.rc import check_rc
from repro.core.read_consistency import ReadConsistencyReport, check_read_consistency
from repro.core.result import CheckResult
from repro.core.violations import (
    CycleEdge,
    CycleViolation,
    ReadConsistencyViolation,
    RepeatableReadViolation,
    Violation,
    ViolationKind,
)

__all__ = [
    "History",
    "Operation",
    "OpKind",
    "OpRef",
    "Transaction",
    "read",
    "write",
    "IsolationLevel",
    "is_stronger_or_equal",
    "check",
    "check_all_levels",
    "CompiledHistory",
    "CompiledHistoryBuilder",
    "check_all_levels_compiled",
    "check_compiled",
    "compile_history",
    "check_rc",
    "check_ra",
    "check_ra_single_session",
    "check_repeatable_reads",
    "check_cc",
    "compute_happens_before",
    "check_read_consistency",
    "ReadConsistencyReport",
    "CheckResult",
    "CommitRelation",
    "Violation",
    "ViolationKind",
    "ReadConsistencyViolation",
    "RepeatableReadViolation",
    "CycleViolation",
    "CycleEdge",
    "ReproError",
    "HistoryFormatError",
    "ParseError",
    "UsageError",
    "TimeoutExceeded",
]
