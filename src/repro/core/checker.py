"""Unified checker entry point.

:func:`check` dispatches a history and an isolation level to the matching
AWDIT algorithm (Algorithms 1-3 of the paper), automatically using the
linear-time single-session specialization for RA (Theorem 1.6) when it
applies.  :func:`check_all_levels` runs all three levels sharing a single
Read Consistency pass.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.cc import check_cc
from repro.core.isolation import IsolationLevel
from repro.core.model import History
from repro.core.ra import check_ra, check_ra_single_session
from repro.core.rc import check_rc
from repro.core.read_consistency import ReadConsistencyReport, check_read_consistency
from repro.core.result import CheckResult

__all__ = ["check", "check_all_levels"]


def check(
    history: History,
    level: IsolationLevel = IsolationLevel.CAUSAL_CONSISTENCY,
    max_witnesses: Optional[int] = None,
    use_single_session_fast_path: bool = True,
    read_consistency: Optional[ReadConsistencyReport] = None,
) -> CheckResult:
    """Check whether ``history`` satisfies ``level``.

    Parameters
    ----------
    history:
        The transaction history to test.
    level:
        The isolation level to test against (RC, RA, or CC).
    max_witnesses:
        If given, stop extracting cycle witnesses after this many (the
        verdict is unaffected; only the witness list is truncated).
    use_single_session_fast_path:
        Use the linear-time RA algorithm of Theorem 1.6 when the history has
        a single session.
    read_consistency:
        A precomputed Read Consistency report to reuse (one RC pass can be
        shared across several levels); computed on demand when omitted.
    """
    if level is IsolationLevel.READ_COMMITTED:
        return check_rc(
            history, max_witnesses=max_witnesses, read_consistency=read_consistency
        )
    if level is IsolationLevel.READ_ATOMIC:
        if use_single_session_fast_path and history.num_sessions <= 1:
            return check_ra_single_session(
                history, max_witnesses=max_witnesses, read_consistency=read_consistency
            )
        return check_ra(
            history, max_witnesses=max_witnesses, read_consistency=read_consistency
        )
    if level is IsolationLevel.CAUSAL_CONSISTENCY:
        return check_cc(
            history, max_witnesses=max_witnesses, read_consistency=read_consistency
        )
    raise ValueError(f"unsupported isolation level: {level!r}")


def check_all_levels(
    history: History,
    max_witnesses: Optional[int] = None,
    use_single_session_fast_path: bool = True,
) -> Dict[IsolationLevel, CheckResult]:
    """Check the history against RC, RA, and CC, sharing one Read Consistency pass.

    Each level goes through the same :func:`check` dispatch as a standalone
    call, so specializations such as the single-session RA fast path apply
    identically here.
    """
    report = check_read_consistency(history)
    return {
        level: check(
            history,
            level,
            max_witnesses=max_witnesses,
            use_single_session_fast_path=use_single_session_fast_path,
            read_consistency=report,
        )
        for level in (
            IsolationLevel.READ_COMMITTED,
            IsolationLevel.READ_ATOMIC,
            IsolationLevel.CAUSAL_CONSISTENCY,
        )
    }
