"""Unified checker entry point.

:func:`check` dispatches a history and an isolation level to the matching
AWDIT algorithm (Algorithms 1-3 of the paper), automatically using the
linear-time single-session specialization for RA (Theorem 1.6) when it
applies.  :func:`check_all_levels` runs all three levels sharing a single
Read Consistency pass.

Three interchangeable engines implement the algorithms:

* ``"compiled"`` (the default) first compiles the history to the interned
  array IR of :mod:`repro.core.compiled` and runs the int-id checkers -- the
  fast path for anything beyond toy histories.
* ``"sharded"`` runs the compiled checkers' data-parallel phases across
  ``jobs`` forked worker processes (:mod:`repro.shard`), falling back to the
  single-process engine when parallelism cannot help (one CPU, ``jobs=1``,
  or no ``fork`` support).
* ``"object"`` runs directly over the :class:`~repro.core.model.History`
  object graph -- kept as the readable reference implementation and as the
  oracle the compiled engine is property-tested against.

All engines return byte-identical results (verdicts, violation kinds,
witness renderings, inferred-edge counts).  ``engine="auto"`` resolves to
``"compiled"``, or to ``"sharded"`` when ``jobs`` is given, except when a
precomputed object-path :class:`ReadConsistencyReport` is supplied for
reuse.

Orthogonal to the engine axis, ``mode`` selects *how* the history is
traversed:

* ``"batch"`` (default) runs the engines above over the materialized
  history;
* ``"stream"`` replays the history's transactions in file order through
  the matching *online* engine (:mod:`repro.core.compiled.online` for the
  compiled/sharded engines, :mod:`repro.stream.incremental` for the object
  engine), which folds each transaction into incrementally-maintained
  state and then finalizes.  Same results, different evaluation order --
  the parity matrix in ``tests/test_matrix.py`` pins every
  ``engine × mode`` cell against every other.

On-disk histories stream through :func:`repro.stream.check_stream_file`
instead, which adds byte-range parallel ingestion and checkpoint/resume.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.core.cc import check_cc
from repro.core.compiled.checkers import (
    check_all_levels_compiled,
    check_compiled,
)
from repro.core.compiled.ir import CompiledHistory
from repro.core.isolation import IsolationLevel
from repro.core.model import History
from repro.core.ra import check_ra, check_ra_single_session
from repro.core.rc import check_rc
from repro.core.read_consistency import ReadConsistencyReport, check_read_consistency
from repro.core.result import CheckResult

__all__ = ["check", "check_all_levels"]

_ENGINES = ("auto", "compiled", "sharded", "object")
_MODES = ("batch", "stream")


def check(
    history: Union[History, CompiledHistory],
    level: IsolationLevel = IsolationLevel.CAUSAL_CONSISTENCY,
    max_witnesses: Optional[int] = None,
    use_single_session_fast_path: bool = True,
    read_consistency: Optional[ReadConsistencyReport] = None,
    engine: str = "auto",
    jobs: Optional[int] = None,
    mode: str = "batch",
) -> CheckResult:
    """Check whether ``history`` satisfies ``level``.

    Parameters
    ----------
    history:
        The transaction history to test: a :class:`History`, or an
        already-compiled :class:`CompiledHistory` (which skips the compile
        pass and always uses a compiled-IR engine).
    level:
        The isolation level to test against (RC, RA, or CC).
    max_witnesses:
        If given, stop extracting cycle witnesses after this many (the
        verdict is unaffected; only the witness list is truncated).
    use_single_session_fast_path:
        Use the linear-time RA algorithm of Theorem 1.6 when the history has
        a single session.
    read_consistency:
        A precomputed object-path Read Consistency report to reuse (one RC
        pass can be shared across several levels); supplying it pins the
        object engine.
    engine:
        ``"auto"`` (default), ``"compiled"``, ``"sharded"``, or
        ``"object"``; see the module docstring.
    jobs:
        Worker count for the sharded engine.  Supplying it with
        ``engine="auto"`` selects the sharded engine; with ``"compiled"`` or
        ``"object"`` it is a usage error (those engines are single-process
        by definition).  ``None`` with ``engine="sharded"`` means one worker
        per available CPU.
    mode:
        ``"batch"`` (default) or ``"stream"`` -- see the module docstring.
        Streaming rejects a precomputed ``read_consistency`` report (the
        online checkers track read consistency incrementally) and handles
        the single-session RA specialization internally.
    """
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {_ENGINES}")
    if mode not in _MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {_MODES}")
    if mode == "stream":
        if read_consistency is not None:
            raise ValueError(
                "read_consistency reports belong to the batch object engine; "
                "the streaming checkers track read consistency incrementally"
            )
        from repro.stream.runner import check_history_stream

        return check_history_stream(
            history, level, engine=engine, jobs=jobs, max_witnesses=max_witnesses
        )
    if jobs is not None and engine in ("compiled", "object"):
        raise ValueError(
            f"jobs only applies to the sharded engine; engine={engine!r} is "
            "single-process (drop jobs or pass engine='sharded')"
        )
    if engine == "auto" and jobs is not None:
        engine = "sharded"
    if engine == "sharded":
        if read_consistency is not None:
            raise ValueError(
                "read_consistency reports belong to the object engine; the "
                "sharded engine shares its own chunked reports internally"
            )
        from repro.shard import check_sharded

        return check_sharded(
            history,
            level,
            jobs=jobs,
            max_witnesses=max_witnesses,
            use_single_session_fast_path=use_single_session_fast_path,
        )
    if isinstance(history, CompiledHistory):
        if engine == "object":
            raise ValueError("a CompiledHistory requires a compiled-IR engine")
        if read_consistency is not None:
            raise ValueError(
                "read_consistency reports belong to the object engine; "
                "compiled checkers share a CompiledReadReport instead"
            )
        return check_compiled(
            history,
            level,
            max_witnesses=max_witnesses,
            use_single_session_fast_path=use_single_session_fast_path,
        )
    if read_consistency is not None and engine == "compiled":
        raise ValueError(
            "read_consistency reports belong to the object engine; pass "
            "engine='object' (or 'auto') to reuse one, or let the compiled "
            "engine share a CompiledReadReport via check_all_levels"
        )
    if engine != "object" and read_consistency is None:
        return check_compiled(
            history,
            level,
            max_witnesses=max_witnesses,
            use_single_session_fast_path=use_single_session_fast_path,
        )
    if level is IsolationLevel.READ_COMMITTED:
        return check_rc(
            history, max_witnesses=max_witnesses, read_consistency=read_consistency
        )
    if level is IsolationLevel.READ_ATOMIC:
        if use_single_session_fast_path and history.num_sessions <= 1:
            return check_ra_single_session(
                history, max_witnesses=max_witnesses, read_consistency=read_consistency
            )
        return check_ra(
            history, max_witnesses=max_witnesses, read_consistency=read_consistency
        )
    if level is IsolationLevel.CAUSAL_CONSISTENCY:
        return check_cc(
            history, max_witnesses=max_witnesses, read_consistency=read_consistency
        )
    raise ValueError(f"unsupported isolation level: {level!r}")


def check_all_levels(
    history: Union[History, CompiledHistory],
    max_witnesses: Optional[int] = None,
    use_single_session_fast_path: bool = True,
    engine: str = "auto",
    jobs: Optional[int] = None,
    mode: str = "batch",
) -> Dict[IsolationLevel, CheckResult]:
    """Check the history against RC, RA, and CC, sharing one Read Consistency pass.

    Each level goes through the same dispatch as a standalone :func:`check`
    call, so specializations such as the single-session RA fast path apply
    identically here.  With the default compiled engine the history is
    compiled once and all three levels run on the same IR; the sharded
    engine likewise compiles once and runs each level's parallel phase on
    the shared IR.
    """
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {_ENGINES}")
    if mode not in _MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {_MODES}")
    if mode == "stream":
        from repro.stream.runner import check_all_levels_history_stream

        return check_all_levels_history_stream(
            history, engine=engine, jobs=jobs, max_witnesses=max_witnesses
        )
    if jobs is not None and engine in ("compiled", "object"):
        raise ValueError(
            f"jobs only applies to the sharded engine; engine={engine!r} is "
            "single-process (drop jobs or pass engine='sharded')"
        )
    if engine == "auto" and jobs is not None:
        engine = "sharded"
    if isinstance(history, CompiledHistory) and engine == "object":
        raise ValueError("a CompiledHistory requires a compiled-IR engine")
    if engine == "sharded":
        from repro.shard import check_all_levels_sharded

        return check_all_levels_sharded(
            history,
            jobs=jobs,
            max_witnesses=max_witnesses,
            use_single_session_fast_path=use_single_session_fast_path,
        )
    if engine != "object" or isinstance(history, CompiledHistory):
        return check_all_levels_compiled(
            history,
            max_witnesses=max_witnesses,
            use_single_session_fast_path=use_single_session_fast_path,
        )
    report = check_read_consistency(history)
    return {
        level: check(
            history,
            level,
            max_witnesses=max_witnesses,
            use_single_session_fast_path=use_single_session_fast_path,
            read_consistency=report,
            engine="object",
        )
        for level in (
            IsolationLevel.READ_COMMITTED,
            IsolationLevel.READ_ATOMIC,
            IsolationLevel.CAUSAL_CONSISTENCY,
        )
    }
