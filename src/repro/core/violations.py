"""Violation and witness value objects.

Each checker reports the anomalies of Section 3.4 as structured objects
rather than bare booleans, so downstream users (CLI, benchmarks, the Table 1
reproduction) can classify and count them:

* Read Consistency anomalies (the five axioms of Definition 2.3, illustrated
  in Fig. 2): thin-air reads, aborted reads, future reads, observe-own-writes
  violations, observe-latest-write violations.
* Non-repeatable reads (the repeatable-reads pre-check of Algorithm 2).
* Causality cycles (cycles in ``so ∪ wr``).
* Commit-order cycles (cycles in the inferred commit relation ``co'``), with
  the witnessing edge sequence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.model import OpRef

__all__ = [
    "ViolationKind",
    "Violation",
    "ReadConsistencyViolation",
    "RepeatableReadViolation",
    "CycleEdge",
    "CycleViolation",
]


class ViolationKind(enum.Enum):
    """Classification of isolation anomalies reported by the checkers."""

    THIN_AIR_READ = "thin-air read"
    ABORTED_READ = "aborted read"
    FUTURE_READ = "future read"
    NOT_OWN_WRITE = "observe own writes violation"
    NOT_LATEST_WRITE = "observe latest write violation"
    NON_REPEATABLE_READ = "non-repeatable read"
    CAUSALITY_CYCLE = "causality cycle"
    COMMIT_ORDER_CYCLE = "commit order cycle"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Violation:
    """Base class for all reported anomalies."""

    kind: ViolationKind
    message: str

    def describe(self) -> str:
        """Human-readable one-line description."""
        return f"{self.kind.value}: {self.message}"


@dataclass(frozen=True)
class ReadConsistencyViolation(Violation):
    """A violation of one of the five Read Consistency axioms (Fig. 2).

    ``read`` points at the offending read operation; ``write`` points at the
    write involved in the violation when one exists (e.g. the aborted or
    future write observed).
    """

    read: Optional[OpRef] = None
    write: Optional[OpRef] = None


@dataclass(frozen=True)
class RepeatableReadViolation(Violation):
    """A transaction read the same key from two different transactions."""

    txn: int = -1
    key: str = ""
    writers: Tuple[int, int] = (-1, -1)


@dataclass(frozen=True)
class CycleEdge:
    """One edge of a reported cycle witness.

    ``source`` and ``target`` are dense transaction ids.  ``reason`` records
    how the edge was obtained: ``"so"`` for session order, ``"wr"`` for
    write-read, or ``"co"`` for an inferred commit-order edge, in which case
    ``key`` names the key whose inference rule produced it (Fig. 3).
    """

    source: int
    target: int
    reason: str
    key: Optional[str] = None

    def describe(self) -> str:
        """Render the edge as ``t1 -so-> t2`` style text."""
        label = self.reason if self.key is None else f"{self.reason}[{self.key}]"
        return f"t{self.source} -{label}-> t{self.target}"


@dataclass(frozen=True)
class CycleViolation(Violation):
    """A cycle in ``so ∪ wr`` (causality cycle) or in ``co'`` (commit-order cycle).

    ``edges`` lists the cycle edge by edge; ``inferred_edges`` counts the
    edges that are not in ``so ∪ wr`` (the paper prioritizes witnesses with
    few inferred edges, Section 3.4).
    """

    edges: Tuple[CycleEdge, ...] = ()

    @property
    def transactions(self) -> List[int]:
        """The transactions participating in the cycle, in cycle order."""
        return [edge.source for edge in self.edges]

    @property
    def inferred_edges(self) -> int:
        """Number of cycle edges that are inferred ``co`` edges (not ``so ∪ wr``)."""
        return sum(1 for edge in self.edges if edge.reason == "co")

    def describe(self) -> str:
        chain = " ; ".join(edge.describe() for edge in self.edges)
        return f"{self.kind.value}: {chain}"
