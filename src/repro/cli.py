"""The ``awdit`` command-line tool.

Subcommands:

* ``awdit check HISTORY --isolation {rc,ra,cc} [--checker NAME]`` -- test a
  history file against an isolation level and print the verdict and
  witnesses (the role of the AWDIT tool in the paper).
* ``awdit generate`` -- run a workload against the simulated database and
  write the collected history to a file.
* ``awdit convert SRC DST`` -- convert a history between on-disk formats.
* ``awdit stats HISTORY`` -- print size statistics of a history file,
  including the compiled IR's interned cardinalities (keys, values,
  sessions) and its estimated in-memory footprint; ``--stream`` reports
  the online core's peak live-state footprint instead.

Run ``awdit <subcommand> --help`` for the full flag list.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import IsolationLevel, check
from repro.core.result import CheckResult
from repro.core.witnesses import format_report
from repro.histories.formats import FORMATS, load_history, save_history
from repro.baselines import BASELINE_REGISTRY

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``awdit`` tool."""
    parser = argparse.ArgumentParser(
        prog="awdit",
        description="AWDIT reproduction: an optimal weak database isolation tester",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    check_parser = subparsers.add_parser("check", help="check a history against an isolation level")
    check_parser.add_argument("history", help="path to the history file")
    check_parser.add_argument(
        "--isolation", "-i", default="cc", help="isolation level: rc, ra, or cc (default: cc)"
    )
    check_parser.add_argument(
        "--format", "-f", default=None, choices=sorted(FORMATS), help="history file format"
    )
    check_parser.add_argument(
        "--checker",
        "-c",
        default="awdit",
        help="checker to use: awdit (default) or one of: " + ", ".join(sorted(BASELINE_REGISTRY)),
    )
    check_parser.add_argument(
        "--witnesses", "-w", type=int, default=5, help="maximum number of witnesses to print"
    )
    check_parser.add_argument(
        "--stream",
        action="store_true",
        help=(
            "check the file in one streaming pass (memory proportional to live "
            "state, not history size); composes with --engine (compiled online "
            "core by default, 'object' for the reference streaming checker) "
            "and --jobs (byte-range parallel ingestion); only the awdit "
            "checker supports this"
        ),
    )
    check_parser.add_argument(
        "--engine",
        default="auto",
        choices=["auto", "compiled", "sharded", "object"],
        help=(
            "checking engine: 'compiled' runs on the interned array IR "
            "(default via 'auto'), 'sharded' additionally parallelizes "
            "across --jobs worker processes, 'object' runs the reference "
            "object-model checkers; orthogonal to --stream (each engine has "
            "a batch and a streaming form); conflicts with baseline checkers"
        ),
    )
    check_parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help=(
            "check with N worker processes: shards the batch engines, "
            "parallelizes file ingestion for --stream (selects the sharded "
            "engine; conflicts with --engine object and baseline checkers)"
        ),
    )
    check_parser.add_argument(
        "--batch-ops",
        type=int,
        default=None,
        metavar="N",
        help=(
            "operations per parser record batch (default: 4096); tunes the "
            "columnar ingestion granularity of the awdit engines in both "
            "batch and streaming mode -- the verdict is identical for any "
            "value (conflicts with baseline checkers and the batch-mode "
            "object engine, which ingest record by record)"
        ),
    )
    check_parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help=(
            "with --stream: periodically serialize the online state to PATH "
            "so an interrupted check can continue via --resume (compiled "
            "streaming engine only)"
        ),
    )
    check_parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="transactions between checkpoint saves (default: 10000)",
    )
    check_parser.add_argument(
        "--resume",
        action="store_true",
        help="restore the --checkpoint state and continue the interrupted check",
    )
    check_parser.add_argument(
        "--retire",
        action="store_true",
        help=(
            "with --stream: bound resident memory via watermark-based "
            "retirement -- fully folded transactions rotate into archival "
            "segments and their summaries are compacted away; output stays "
            "byte-identical to a non-retiring run, or the check refuses "
            "with a clear diagnostic when the history needed evicted state"
        ),
    )
    check_parser.add_argument(
        "--retire-lag",
        type=int,
        default=None,
        metavar="N",
        help=(
            "number of most-recent transactions never retired (default: "
            "4096); raise it when reads reach far back in the stream"
        ),
    )
    check_parser.add_argument(
        "--retire-every",
        type=int,
        default=None,
        metavar="N",
        help="retirement pass cadence in appended transactions (default: 1024)",
    )
    check_parser.add_argument(
        "--segment-dir",
        metavar="DIR",
        default=None,
        help=(
            "with --retire: directory for the archival segment files "
            "(default: a private temporary directory deleted at exit); "
            "required when combining --retire with --checkpoint so a "
            "resumed run finds its segments"
        ),
    )
    check_parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print per-phase wall/alloc timings (parse, build, freeze, "
            "saturate, acyclicity, witness; with --stream: parse, the "
            "fold's intern/dispatch/classify/clock-join sub-laps, and "
            "per-phase GC collection counts) to stderr after the check, so "
            "perf work can see where the time goes without a profiler"
        ),
    )
    check_parser.add_argument(
        "--gc-tune",
        action="store_true",
        help=(
            "with --stream: freeze the interpreter heap after the first "
            "folded batch and raise the gen-2 GC threshold for the rest of "
            "the stream (thresholds and freeze are restored before exit); "
            "off by default -- the columnar fold allocates few tracked "
            "objects, so measure with --profile before reaching for this"
        ),
    )

    generate_parser = subparsers.add_parser(
        "generate", help="collect a history from the simulated database"
    )
    generate_parser.add_argument("output", help="path of the history file to write")
    generate_parser.add_argument(
        "--workload", default="ctwitter", help="tpcc, ctwitter, rubis, or custom"
    )
    generate_parser.add_argument(
        "--database", default="cockroach", help="postgres, cockroach, or rocksdb profile"
    )
    generate_parser.add_argument(
        "--isolation-mode",
        default=None,
        help="simulator visibility: serializable, causal, read-atomic, read-committed",
    )
    generate_parser.add_argument("--sessions", type=int, default=20)
    generate_parser.add_argument("--transactions", type=int, default=500)
    generate_parser.add_argument("--seed", type=int, default=None)
    generate_parser.add_argument(
        "--format", "-f", default=None, choices=sorted(FORMATS), help="output format"
    )

    convert_parser = subparsers.add_parser("convert", help="convert a history between formats")
    convert_parser.add_argument("source")
    convert_parser.add_argument("destination")
    convert_parser.add_argument("--from-format", default=None, choices=sorted(FORMATS))
    convert_parser.add_argument("--to-format", default=None, choices=sorted(FORMATS))

    stats_parser = subparsers.add_parser("stats", help="print history statistics")
    stats_parser.add_argument("history")
    stats_parser.add_argument("--format", "-f", default=None, choices=sorted(FORMATS))
    stats_parser.add_argument(
        "--stream",
        action="store_true",
        help=(
            "fold the file through the compiled online core and report its "
            "peak live-state footprint (resident transactions, pending "
            "reads, intern cardinalities) instead of the batch IR stats"
        ),
    )
    stats_parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help=(
            "ingest through N shard builders and also report the per-shard "
            "intern-table cardinalities the merge reconciles"
        ),
    )
    stats_parser.add_argument(
        "--retire",
        action="store_true",
        help=(
            "with --stream: fold with watermark-based retirement enabled and "
            "report the retirement counters (retired transactions, passes, "
            "remap epochs, segments, post-compaction peaks)"
        ),
    )
    stats_parser.add_argument(
        "--retire-lag", type=int, default=None, metavar="N",
        help="retirement lag (see awdit check --retire-lag)",
    )
    stats_parser.add_argument(
        "--retire-every", type=int, default=None, metavar="N",
        help="retirement cadence (see awdit check --retire-every)",
    )

    return parser


def _conflict(message: str) -> int:
    """Report a flag conflict and return the usage-error exit code."""
    print(f"awdit: error: {message}", file=sys.stderr)
    return 2


def _check_flag_conflicts(args: argparse.Namespace, checker_name: str) -> Optional[str]:
    """The flag-conflict message for ``awdit check``, or ``None`` if coherent.

    Engine and mode are orthogonal axes (``--stream --engine compiled`` is
    the default streaming path, ``--stream --jobs N`` parallelizes the
    ingestion), so only genuinely incoherent combinations are rejected:
    baseline checkers with awdit-engine flags, the single-process engines
    with ``--jobs``, and checkpointing outside the compiled streaming path.
    """
    is_baseline = checker_name not in ("awdit", "default")
    if args.jobs is not None and args.jobs < 1:
        return f"--jobs must be >= 1, got {args.jobs}"
    if args.batch_ops is not None:
        if args.batch_ops < 1:
            return f"--batch-ops must be >= 1, got {args.batch_ops}"
        if is_baseline and checker_name in BASELINE_REGISTRY:
            return (
                f"--batch-ops tunes the awdit engines' columnar ingestion; "
                f"baseline checker {args.checker!r} ingests record by record "
                "(drop --batch-ops or --checker)"
            )
        if args.engine == "object" and not args.stream:
            return (
                "--batch-ops tunes columnar ingestion; the batch-mode object "
                "engine materializes the history record by record (drop "
                "--batch-ops or use --stream / another engine)"
            )
    if args.checkpoint_every is not None and args.checkpoint_every < 1:
        return f"--checkpoint-every must be >= 1, got {args.checkpoint_every}"
    if args.retire_lag is not None and args.retire_lag < 0:
        return f"--retire-lag must be >= 0, got {args.retire_lag}"
    if args.retire_every is not None and args.retire_every < 1:
        return f"--retire-every must be >= 1, got {args.retire_every}"
    if not args.retire:
        for flag, value in (
            ("--retire-lag", args.retire_lag),
            ("--retire-every", args.retire_every),
            ("--segment-dir", args.segment_dir),
        ):
            if value is not None:
                return f"{flag} tunes watermark-based retirement; add --retire"
    else:
        if not args.stream:
            return (
                "--retire bounds the online streaming state; it requires "
                "--stream (batch engines hold the whole history anyway)"
            )
        if is_baseline:
            return f"--retire supports only the awdit checker, not {args.checker!r}"
        if args.checkpoint is not None and args.segment_dir is None:
            return (
                "--retire with --checkpoint needs --segment-dir DIR: a "
                "resumed run must find the archival segments, and the "
                "default temporary segment directory does not survive the "
                "process"
            )
    if args.gc_tune and not args.stream:
        return (
            "--gc-tune tunes the collector around the online streaming "
            "fold; it requires --stream"
        )
    if args.resume and args.checkpoint is None:
        return "--resume continues from a checkpoint; add --checkpoint PATH"
    if args.checkpoint_every is not None and args.checkpoint is None:
        return "--checkpoint-every sets the --checkpoint cadence; add --checkpoint PATH"
    if (args.checkpoint is not None or args.checkpoint_every is not None) and (
        not args.stream
    ):
        return (
            "--checkpoint serializes the online streaming state; it requires "
            "--stream (batch engines re-check from scratch)"
        )
    if args.stream:
        if is_baseline:
            return f"--stream supports only the awdit checker, not {args.checker!r}"
        if args.engine == "object":
            if args.jobs is not None:
                return (
                    "--stream --engine object is the single-process reference "
                    "streaming checker; it cannot use --jobs (drop one)"
                )
            if args.checkpoint is not None or args.resume:
                return (
                    "checkpoint/resume require the compiled streaming engine; "
                    "--engine object has no checkpoint support"
                )
        return None
    if is_baseline:
        if checker_name not in BASELINE_REGISTRY:
            return None  # unknown checker: reported separately
        if args.engine != "auto":
            return (
                f"--engine selects an awdit engine; baseline checker "
                f"{args.checker!r} has its own implementation (drop --engine "
                f"or --checker)"
            )
        if args.jobs is not None:
            return (
                f"--jobs shards the awdit engine; baseline checker "
                f"{args.checker!r} is single-process (drop --jobs or --checker)"
            )
    if args.engine in ("object", "compiled") and args.jobs is not None:
        return (
            f"--jobs requires the sharded engine; the {args.engine!r} engine "
            "is single-process (drop --jobs or use --engine sharded)"
        )
    return None


#: Timing stats keys printed by ``--profile``, in pipeline order.  The
#: ``cycle_check`` lap spans the freeze/acyclicity/witness entries below it
#: (it times the whole ``find_cycles`` call), so the sub-phases are shown
#: indented under it.
_PROFILE_PHASES = (
    ("parse", ""),
    ("build", ""),
    ("ingest", ""),  # sharded parse+build, fused across parallel workers
    ("fold", ""),  # streaming: whole online fold, split into the laps below
    ("fold_intern", "  "),
    ("fold_dispatch", "  "),
    ("fold_classify", "  "),
    ("fold_clock_join", "  "),
    ("read_consistency", ""),
    ("repeatable_reads", ""),
    ("happens_before", ""),
    ("scan", ""),
    ("saturation", ""),
    ("cycle_check", ""),
    ("freeze", "  "),
    ("acyclicity", "  "),
    ("witness", "  "),
)


def _print_profile(
    timings: dict, result: CheckResult, total_seconds: float, peak_bytes: int
) -> None:
    """Render the ``--profile`` per-phase report to stderr."""
    merged = dict(timings)
    merged.update(
        (key, value)
        for key, value in result.stats.items()
        if any(key == name for name, _ in _PROFILE_PHASES)
    )
    print("awdit profile (wall seconds):", file=sys.stderr)
    for name, indent in _PROFILE_PHASES:
        value = merged.get(name)
        if value is not None:
            print(f"  {indent}{name:<18} {value:9.4f}", file=sys.stderr)
    kernel = result.stats.get("saturation_kernel")
    if kernel is not None:
        # Which saturation implementation actually ran (numpy-vectorized
        # or the pure-Python fallback), so snapshots are self-describing.
        print(f"  {'saturation_kernel':<18} {kernel:>9}", file=sys.stderr)
    classify_kernel = result.stats.get("classify_kernel")
    if classify_kernel is not None:
        # Same self-description for the streaming fold's read-resolution
        # kernel, plus how the batch resolver routed the reads.
        print(
            f"  {'classify_kernel':<18} {classify_kernel:>9}", file=sys.stderr
        )
        for name in (
            "resolve_fast",
            "resolve_slow",
            "resolve_parked",
            "resolve_rebound",
        ):
            value = result.stats.get(name)
            if value is not None:
                print(f"    {name:<16} {value:9d}", file=sys.stderr)
    for name in ("parse_gc_collections", "fold_gc_collections"):
        value = merged.get(name)
        if value is not None:
            # gc.get_stats() collection-count deltas per phase: how often
            # the collector interrupted each phase (all generations).
            print(f"  {name:<18} {value:9d}", file=sys.stderr)
    print(f"  {'total':<18} {total_seconds:9.4f}", file=sys.stderr)
    print(
        f"  peak alloc         {peak_bytes / (1024 * 1024):9.1f} MiB "
        "(tracemalloc)",
        file=sys.stderr,
    )


def _retire_policy(args: argparse.Namespace):
    """The :class:`RetirementPolicy` the ``--retire*`` flags describe, or ``None``."""
    if not args.retire:
        return None
    from repro.core.compiled.retire import RetirementPolicy

    kwargs = {}
    if args.retire_lag is not None:
        kwargs["lag"] = args.retire_lag
    if args.retire_every is not None:
        kwargs["every"] = args.retire_every
    if getattr(args, "segment_dir", None) is not None:
        kwargs["segment_dir"] = args.segment_dir
    return RetirementPolicy(**kwargs)


def _run_check(args: argparse.Namespace) -> int:
    level = IsolationLevel.from_string(args.isolation)
    checker_name = args.checker.lower()
    conflict = _check_flag_conflicts(args, checker_name)
    if conflict is not None:
        return _conflict(conflict)
    profile_timings: Optional[dict] = None
    if args.profile:
        import time
        import tracemalloc

        profile_timings = {}
        tracemalloc.start()
        profile_start = time.perf_counter()
    if args.stream:
        from repro.stream import DEFAULT_CHECKPOINT_EVERY, check_stream_file

        result: CheckResult = check_stream_file(
            args.history,
            level,
            fmt=args.format,
            engine=args.engine,
            jobs=args.jobs,
            max_witnesses=args.witnesses,
            checkpoint=args.checkpoint,
            checkpoint_every=(
                args.checkpoint_every
                if args.checkpoint_every is not None
                else DEFAULT_CHECKPOINT_EVERY
            ),
            resume=args.resume,
            batch_ops=args.batch_ops,
            retire=_retire_policy(args),
            timings=profile_timings,
            gc_tune=args.gc_tune,
        )
    elif checker_name in ("awdit", "default"):
        engine = args.engine
        if engine == "auto" and args.jobs is not None:
            engine = "sharded"
        if engine == "sharded":
            from repro.shard import default_jobs, load_compiled_sharded, will_parallelize

            jobs = args.jobs if args.jobs is not None else default_jobs()
            if will_parallelize(jobs):
                if profile_timings is not None:
                    # The sharded ingest fuses parse and build across its
                    # workers; report the combined phase rather than
                    # silently dropping it from the profile.
                    ingest_start = time.perf_counter()
                compiled = load_compiled_sharded(
                    args.history, jobs, fmt=args.format, batch_ops=args.batch_ops
                )
                if profile_timings is not None:
                    profile_timings["ingest"] = time.perf_counter() - ingest_start
            else:
                # The check will fall back to the single-process engine, so
                # skip the shard-merge ingest overhead as well.
                from repro.histories.formats import load_compiled

                compiled = load_compiled(
                    args.history,
                    fmt=args.format,
                    timings=profile_timings,
                    batch_ops=args.batch_ops,
                )
            result = check(
                compiled, level, max_witnesses=args.witnesses,
                engine="sharded", jobs=jobs,
            )
        elif engine in ("auto", "compiled"):
            # The compiled path can ingest the file without materializing
            # the object model at all.
            from repro.histories.formats import load_compiled

            compiled = load_compiled(
                args.history,
                fmt=args.format,
                timings=profile_timings,
                batch_ops=args.batch_ops,
            )
            result = check(compiled, level, max_witnesses=args.witnesses)
        else:
            history = load_history(args.history, fmt=args.format)
            result = check(history, level, max_witnesses=args.witnesses, engine="object")
    elif checker_name in BASELINE_REGISTRY:
        history = load_history(args.history, fmt=args.format)
        result = BASELINE_REGISTRY[checker_name](history, level)
    else:
        print(f"unknown checker {args.checker!r}", file=sys.stderr)
        return 2
    if args.profile:
        total_seconds = time.perf_counter() - profile_start
        _current, peak_bytes = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        _print_profile(profile_timings, result, total_seconds, peak_bytes)
    print(result.summary())
    if not result.is_consistent:
        print(format_report(result.violations, limit=args.witnesses))
    return 0 if result.is_consistent else 1


def _run_generate(args: argparse.Namespace) -> int:
    from repro.db.config import IsolationMode
    from repro.db.profiles import profile_by_name, with_overrides
    from repro.workloads import collect_history, workload_by_name

    workload = workload_by_name(args.workload)
    profile = profile_by_name(args.database)
    if args.isolation_mode:
        profile = with_overrides(profile, isolation=IsolationMode(args.isolation_mode))
    profile = with_overrides(profile, seed=args.seed)
    history = collect_history(
        workload,
        profile,
        num_sessions=args.sessions,
        num_transactions=args.transactions,
        seed=args.seed,
    )
    save_history(history, args.output, fmt=args.format)
    print(f"wrote {history.describe()} to {args.output}")
    return 0


def _run_convert(args: argparse.Namespace) -> int:
    history = load_history(args.source, fmt=args.from_format)
    save_history(history, args.destination, fmt=args.to_format)
    print(f"converted {args.source} -> {args.destination} ({history.describe()})")
    return 0


def _run_stats(args: argparse.Namespace) -> int:
    from repro.histories.formats import load_compiled

    if args.retire_lag is not None and args.retire_lag < 0:
        return _conflict(f"--retire-lag must be >= 0, got {args.retire_lag}")
    if args.retire_every is not None and args.retire_every < 1:
        return _conflict(f"--retire-every must be >= 1, got {args.retire_every}")
    if not args.retire:
        for flag, value in (
            ("--retire-lag", args.retire_lag),
            ("--retire-every", args.retire_every),
        ):
            if value is not None:
                return _conflict(
                    f"{flag} tunes watermark-based retirement; add --retire"
                )
    elif not args.stream:
        return _conflict(
            "--retire bounds the online streaming state; it requires --stream"
        )
    if args.stream:
        if args.jobs is not None:
            return _conflict(
                "--stream reports the online core's live state; it conflicts "
                "with the --jobs shard-merge report (drop one)"
            )
        return _run_stats_stream(args)
    shard_stats = None
    if args.jobs is not None:
        if args.jobs < 1:
            return _conflict(f"--jobs must be >= 1, got {args.jobs}")
        from repro.shard import sharded_ingest

        compiled, shard_stats = sharded_ingest(args.history, args.jobs, fmt=args.format)
    else:
        compiled = load_compiled(args.history, fmt=args.format)
    print(compiled.describe())
    txn_start = compiled.txn_start
    sizes = [
        txn_start[tid + 1] - txn_start[tid]
        for tid in range(compiled.num_transactions)
        if compiled.txn_committed[tid]
    ]
    if sizes:
        aborted = compiled.num_transactions - len(sizes)
        print(f"  committed transactions : {len(sizes)}")
        print(f"  aborted transactions   : {aborted}")
        print(f"  avg ops per transaction: {sum(sizes) / len(sizes):.2f}")
        print(f"  max ops per transaction: {max(sizes)}")
    # "distinct keys" is the key intern table's cardinality; the value and
    # session tables get their own lines.
    print(f"  distinct keys          : {compiled.num_keys}")
    print(f"  interned values        : {compiled.num_values}")
    print(f"  interned sessions      : {compiled.num_sessions}")
    footprint = compiled.memory_footprint()
    print(
        f"  compiled footprint     : {footprint['total_bytes'] / 1024:.1f} KiB "
        f"(arrays {footprint['arrays_bytes'] / 1024:.1f} KiB, "
        f"intern tables {footprint['intern_tables_bytes'] / 1024:.1f} KiB)"
    )
    if shard_stats is not None:
        # Pre-merge shard cardinalities: how much intern-table state the
        # shard merge had to reconcile (keys/values interned per shard sum
        # to more than the merged tables whenever shards overlap).
        print(f"  shard merge ({len(shard_stats)} shards):")
        for entry in shard_stats:
            print(
                f"    shard {entry.shard}: txns={entry.transactions} "
                f"sessions={entry.sessions} keys={entry.keys} "
                f"values={entry.values}"
            )
        print(
            f"    merged : keys={compiled.num_keys} values={compiled.num_values} "
            f"sessions={compiled.num_sessions}"
        )
    return 0


def _run_stats_stream(args: argparse.Namespace) -> int:
    """``awdit stats --stream``: peak live-state footprint of the online core."""
    from repro.stream import stream_live_stats

    stats = stream_live_stats(args.history, fmt=args.format, retire=_retire_policy(args))
    print(
        f"Online core over {stats['transactions']} transactions "
        f"({stats['operations']} operations, {stats['sessions']} sessions):"
    )
    print(f"  resident txn summaries : {stats['resident_transactions']}")
    print(
        f"  pending reads          : {stats['pending_reads']} now, "
        f"peak {stats['peak_pending_reads']}"
    )
    print(
        f"  unfolded transactions  : {stats['unfolded_transactions']} now, "
        f"peak {stats['peak_unfolded_transactions']}"
    )
    print(f"  peak CC frontier lag   : {stats['peak_cc_backlog']}")
    print(f"  interned keys          : {stats['interned_keys']}")
    print(f"  interned values        : {stats['interned_values']}")
    print(f"  writes index entries   : {stats['writes_index']}")
    print(f"  CC writer buckets      : {stats['cc_writer_buckets']}")
    print(
        "  CC probe flushes       : "
        f"{stats['cc_flushes_vectorized']} vectorized, "
        f"{stats['cc_flushes_fallback']} fallback"
    )
    print(
        "  classify kernel calls  : "
        f"{stats['classify_vectorized']} vectorized, "
        f"{stats['classify_fallback']} fallback"
    )
    print(
        "  resolved reads         : "
        f"{stats['resolve_fast_path']} fast-path, "
        f"{stats['resolve_slow_path']} slow-path, "
        f"{stats['resolve_parked']} parked, "
        f"{stats['resolve_rebound']} rebound"
    )
    print(f"  inferred-edge log      : {stats['inferred_edge_log']} edges")
    if stats.get("retire_enabled"):
        print("  retirement:")
        print(f"    retired transactions : {stats['retired_transactions']}")
        print(f"    retire passes        : {stats['retire_passes']}")
        print(f"    remap epochs         : {stats['remap_epochs']}")
        print(f"    archival segments    : {stats['retire_segments']}")
        print(f"    evicted writes       : {stats['evicted_writes']}")
        print(f"    spilled edges        : {stats['spilled_edges']}")
        print(
            "    peak resident after compaction : "
            f"{stats['post_compaction_peak_resident']} txn summaries"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``awdit`` command-line tool."""
    from repro.core.exceptions import ReproError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "check":
            return _run_check(args)
        if args.command == "generate":
            return _run_generate(args)
        if args.command == "convert":
            return _run_convert(args)
        if args.command == "stats":
            return _run_stats(args)
    except ReproError as exc:
        # Malformed input and misuse carry file/line context in the message;
        # a traceback would bury it.
        print(f"awdit: error: {exc}", file=sys.stderr)
        return 2
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
