"""Undirected graphs and triangle detection.

Triangle freeness is the source problem of the paper's lower-bound
reductions: it is solvable in cubic time combinatorially and is BMM-hard, so
a sub-``n^{3/2}`` isolation tester would give a sub-cubic combinatorial
triangle algorithm.  The module provides a small undirected-graph type,
Erdős–Rényi-style random graph generation (with an option to plant or forbid
triangles), and two triangle detectors used to validate the reductions.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, List, Optional, Set, Tuple

__all__ = ["UndirectedGraph", "has_triangle", "find_triangle", "random_graph"]


class UndirectedGraph:
    """A simple undirected graph over vertices ``0..n-1``."""

    def __init__(self, num_vertices: int, edges: Iterable[Tuple[int, int]] = ()) -> None:
        self.num_vertices = num_vertices
        self.adjacency: List[Set[int]] = [set() for _ in range(num_vertices)]
        for u, v in edges:
            self.add_edge(u, v)

    def add_edge(self, u: int, v: int) -> None:
        """Add the undirected edge ``{u, v}`` (self-loops are rejected)."""
        if u == v:
            raise ValueError("self-loops are not allowed in an undirected graph")
        if not (0 <= u < self.num_vertices and 0 <= v < self.num_vertices):
            raise ValueError("vertex out of range")
        self.adjacency[u].add(v)
        self.adjacency[v].add(u)

    def has_edge(self, u: int, v: int) -> bool:
        """True when ``{u, v}`` is an edge."""
        return v in self.adjacency[u]

    def edges(self) -> List[Tuple[int, int]]:
        """All edges as ``(u, v)`` pairs with ``u < v``."""
        result: List[Tuple[int, int]] = []
        for u in range(self.num_vertices):
            for v in self.adjacency[u]:
                if u < v:
                    result.append((u, v))
        return result

    @property
    def num_edges(self) -> int:
        """Number of (undirected) edges."""
        return sum(len(neighbours) for neighbours in self.adjacency) // 2

    def neighbours(self, u: int) -> Set[int]:
        """The neighbour set of ``u``."""
        return self.adjacency[u]

    def __repr__(self) -> str:
        return f"<UndirectedGraph n={self.num_vertices} m={self.num_edges}>"


def find_triangle(graph: UndirectedGraph) -> Optional[Tuple[int, int, int]]:
    """Return some triangle ``(a, b, c)`` of ``graph``, or ``None`` if triangle-free.

    Enumerates edges and intersects neighbour sets -- the standard
    combinatorial approach.
    """
    for u, v in graph.edges():
        smaller, larger = (
            (graph.adjacency[u], graph.adjacency[v])
            if len(graph.adjacency[u]) <= len(graph.adjacency[v])
            else (graph.adjacency[v], graph.adjacency[u])
        )
        for w in smaller:
            if w != u and w != v and w in larger:
                return (u, v, w)
    return None


def has_triangle(graph: UndirectedGraph) -> bool:
    """True when ``graph`` contains a triangle."""
    return find_triangle(graph) is not None


def random_graph(
    num_vertices: int,
    edge_probability: float,
    seed: Optional[int] = None,
    triangle_free: bool = False,
) -> UndirectedGraph:
    """An Erdős–Rényi random graph; optionally kept triangle-free.

    With ``triangle_free=True`` each candidate edge is added only if it does
    not close a triangle, producing (maximal-ish) triangle-free instances for
    the reduction tests.
    """
    rng = random.Random(seed)
    graph = UndirectedGraph(num_vertices)
    for u, v in itertools.combinations(range(num_vertices), 2):
        if rng.random() >= edge_probability:
            continue
        if triangle_free and graph.adjacency[u] & graph.adjacency[v]:
            continue
        graph.add_edge(u, v)
    return graph
