"""Triangle-freeness to consistency reductions (Section 4).

Given an undirected graph ``G``, each construction builds a history ``H``
such that ``H`` is consistent iff ``G`` is triangle-free:

* :func:`general_reduction` (Section 4.1, Fig. 5) -- one read transaction
  and one write transaction per node, each in its own session; a *range*
  reduction valid for every isolation level between RC and CC
  (triangle-free ⇒ CC-consistent, RC-consistent ⇒ triangle-free).
* :func:`ra_two_session_reduction` (Section 4.2, Fig. 6) -- all write
  transactions in one session and all read transactions in another;
  ``H`` satisfies RA iff ``G`` is triangle-free.
* :func:`rc_single_session_reduction` (Section 4.2) -- the transactions of
  the general reduction placed in a single session (writes first, then
  reads); ``H`` satisfies RC iff ``G`` is triangle-free.

Key naming: the per-node key ``x_a`` is rendered ``"x{a}"`` and the per-edge
key ``x_b^a`` (written by ``a``'s write transaction and read by ``b``'s read
transaction ... indexed as in the paper) is rendered ``"x{b}^{a}"``.  Every
write carries its node id as value, so the write-read relation is recovered
from the unique-writes convention.
"""

from __future__ import annotations

from typing import List

from repro.core.model import History, Transaction, read, write
from repro.lowerbounds.triangles import UndirectedGraph

__all__ = [
    "general_reduction",
    "ra_two_session_reduction",
    "rc_single_session_reduction",
]


def _node_key(node: int) -> str:
    """The per-node key ``x_a``."""
    return f"x{node}"


def _edge_key(owner: int, superscript: int) -> str:
    """The per-edge key ``x_owner^superscript`` of the paper's construction."""
    return f"x{owner}^{superscript}"


def _write_transaction(graph: UndirectedGraph, node: int) -> Transaction:
    """``t^W_a``: writes ``x_b`` and ``x_b^a`` for every neighbour ``b``, plus ``x_a``."""
    operations = []
    for neighbour in sorted(graph.neighbours(node)):
        operations.append(write(_node_key(neighbour), node))
        operations.append(write(_edge_key(neighbour, node), node))
    operations.append(write(_node_key(node), node))
    return Transaction(operations, label=f"tW{node}")


def _read_transaction(graph: UndirectedGraph, node: int) -> Transaction:
    """``t^R_a``: reads ``x_a^b`` (value ``b``) then ``x_b`` (value ``b``) per neighbour ``b``."""
    operations = []
    neighbours = sorted(graph.neighbours(node))
    for neighbour in neighbours:
        operations.append(read(_edge_key(node, neighbour), neighbour))
    for neighbour in neighbours:
        operations.append(read(_node_key(neighbour), neighbour))
    return Transaction(operations, label=f"tR{node}")


def general_reduction(graph: UndirectedGraph) -> History:
    """The Section 4.1 construction: every transaction in its own session."""
    sessions: List[List[Transaction]] = []
    for node in range(graph.num_vertices):
        sessions.append([_write_transaction(graph, node)])
    for node in range(graph.num_vertices):
        sessions.append([_read_transaction(graph, node)])
    return History.from_sessions(sessions)


def _simple_write_transaction(graph: UndirectedGraph, node: int) -> Transaction:
    """``t^W_a`` of the RA reduction: writes ``x_b`` per neighbour plus ``x_a``."""
    operations = []
    for neighbour in sorted(graph.neighbours(node)):
        operations.append(write(_node_key(neighbour), node))
    operations.append(write(_node_key(node), node))
    return Transaction(operations, label=f"tW{node}")


def _simple_read_transaction(graph: UndirectedGraph, node: int) -> Transaction:
    """``t^R_a`` of the RA reduction: reads ``x_b`` (value ``b``) per neighbour ``b``."""
    operations = []
    for neighbour in sorted(graph.neighbours(node)):
        operations.append(read(_node_key(neighbour), neighbour))
    return Transaction(operations, label=f"tR{node}")


def ra_two_session_reduction(graph: UndirectedGraph) -> History:
    """The Section 4.2 construction for RA: one write session and one read session."""
    write_session = [
        _simple_write_transaction(graph, node) for node in range(graph.num_vertices)
    ]
    read_session = [
        _simple_read_transaction(graph, node) for node in range(graph.num_vertices)
    ]
    return History.from_sessions([write_session, read_session])


def rc_single_session_reduction(graph: UndirectedGraph) -> History:
    """The Section 4.2 construction for RC: all transactions in one session."""
    session: List[Transaction] = []
    for node in range(graph.num_vertices):
        session.append(_write_transaction(graph, node))
    for node in range(graph.num_vertices):
        session.append(_read_transaction(graph, node))
    return History.from_sessions([session])
