"""The fine-grained lower-bound reductions of Section 4.

The paper proves that testing any isolation level between RC and CC requires
(combinatorially) ``n^{3/2}`` time by reducing *triangle freeness* of an
undirected graph to consistency of a constructed history.  This package
implements both sides of the reduction so the correspondence can be tested
and demonstrated:

* :mod:`repro.lowerbounds.triangles` -- undirected graphs, random graph
  generation, and triangle detection.
* :mod:`repro.lowerbounds.reductions` -- the three history constructions:
  the general construction of Section 4.1 (one session per transaction), the
  two-session construction for RA (Section 4.2, Fig. 6), and the one-session
  construction for RC (Section 4.2).
"""

from repro.lowerbounds.triangles import UndirectedGraph, find_triangle, has_triangle
from repro.lowerbounds.reductions import (
    general_reduction,
    ra_two_session_reduction,
    rc_single_session_reduction,
)

__all__ = [
    "UndirectedGraph",
    "has_triangle",
    "find_triangle",
    "general_reduction",
    "ra_two_session_reduction",
    "rc_single_session_reduction",
]
