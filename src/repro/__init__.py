"""AWDIT reproduction: an optimal weak database isolation tester (PLDI 2025).

The package is organised as follows:

* :mod:`repro.core` -- the history model and the AWDIT checking algorithms
  for Read Committed, Read Atomic, and Causal Consistency.
* :mod:`repro.core.compiled` -- the compiled-history core: keys/values/
  sessions interned to dense ints, operations in flat parallel arrays, and
  the checkers ported onto that IR (the default ``check()`` engine).
* :mod:`repro.graph` -- directed-graph, SCC, vector-clock and tree-clock
  substrates.
* :mod:`repro.histories` -- history builders, random generators, and parsers
  for the on-disk formats used by existing testers.
* :mod:`repro.db` -- a multi-replica MVCC key-value database simulator used
  to collect histories (stands in for PostgreSQL / CockroachDB / RocksDB).
* :mod:`repro.workloads` -- TPC-C-like, C-Twitter-like, RUBiS-like, and
  custom workload generators.
* :mod:`repro.baselines` -- reimplementations of the baseline testers the
  paper compares against (Plume, DBCop, CausalC+, TCC-Mono, PolySI, and
  naive reference checkers).
* :mod:`repro.lowerbounds` -- the triangle-freeness reductions behind the
  paper's conditional lower bounds.
* :mod:`repro.stream` -- the streaming (online) checking engine: incremental
  checkers that consume transactions as they arrive and pair with the
  iterator-based format parsers to check logs larger than RAM in one pass.
* :mod:`repro.cli` -- the ``awdit`` command-line tool.

Quickstart::

    from repro import History, Transaction, read, write, check, IsolationLevel

    history = History.from_sessions([
        [Transaction([write("x", 1)]), Transaction([write("x", 2)])],
        [Transaction([read("x", 2), read("x", 1)])],
    ])
    result = check(history, IsolationLevel.READ_COMMITTED)
    print(result.summary())
"""

from repro.core import (
    CheckResult,
    CycleViolation,
    History,
    IsolationLevel,
    Operation,
    OpKind,
    OpRef,
    Transaction,
    Violation,
    ViolationKind,
    check,
    check_all_levels,
    check_cc,
    check_ra,
    check_rc,
    check_read_consistency,
    read,
    write,
)
from repro.core.compiled import (
    CompiledHistory,
    check_compiled,
    compile_history,
)
from repro.stream import (
    CompiledIncrementalChecker,
    IncrementalChecker,
    check_stream,
    check_stream_file,
)

__version__ = "1.0.0"

__all__ = [
    "History",
    "Transaction",
    "Operation",
    "OpKind",
    "OpRef",
    "read",
    "write",
    "IsolationLevel",
    "check",
    "check_all_levels",
    "check_rc",
    "check_ra",
    "check_cc",
    "check_read_consistency",
    "CheckResult",
    "Violation",
    "ViolationKind",
    "CycleViolation",
    "CompiledHistory",
    "check_compiled",
    "compile_history",
    "CompiledIncrementalChecker",
    "IncrementalChecker",
    "check_stream",
    "check_stream_file",
    "__version__",
]
