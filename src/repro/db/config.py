"""Configuration of the simulated database."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["IsolationMode", "BugRates", "DatabaseConfig"]


class IsolationMode(enum.Enum):
    """Visibility rule enforced by the simulated database.

    The modes mirror the isolation levels of the paper plus Serializable:

    * ``SERIALIZABLE`` -- every read observes the globally latest committed
      write; the resulting history is serializable, hence consistent at every
      weak level.  This is how the paper's evaluation configures the real
      databases ("strong transaction isolation").
    * ``CAUSAL`` -- replicas apply remote transactions respecting causal
      dependencies; sessions read from causally-closed snapshots.  Histories
      satisfy CC but are generally not serializable.
    * ``READ_ATOMIC`` -- replicas apply whole transactions (no fractured
      reads) but without causal closure; histories satisfy RA but may violate
      CC.
    * ``READ_COMMITTED`` -- each read independently observes the locally
      latest applied write; histories satisfy RC but may violate RA.
    """

    SERIALIZABLE = "serializable"
    CAUSAL = "causal"
    READ_ATOMIC = "read-atomic"
    READ_COMMITTED = "read-committed"


@dataclass
class BugRates:
    """Probabilities of deliberately buggy behaviour (isolation bugs).

    * ``stale_read`` -- a read is served from an old, already-overwritten
      version instead of the latest visible one (produces observe-latest-
      write / commit-order anomalies).
    * ``aborted_read`` -- a read is served from a write of an aborted
      transaction (produces aborted-read anomalies).
    * ``fractured_read`` -- a read inside a transaction ignores the
      transaction's snapshot and observes a newer version (produces RA and
      CC anomalies even under stronger modes).
    """

    stale_read: float = 0.0
    aborted_read: float = 0.0
    fractured_read: float = 0.0

    @property
    def any_enabled(self) -> bool:
        """True when at least one bug class has a positive rate."""
        return self.stale_read > 0 or self.aborted_read > 0 or self.fractured_read > 0


@dataclass
class DatabaseConfig:
    """Full configuration of a :class:`~repro.db.database.SimulatedDatabase`.

    ``replication_lag`` is the mean number of global events after commit
    until a transaction becomes visible on a *remote* replica (the local
    replica always sees it immediately); the actual lag of each
    (transaction, replica) pair is sampled uniformly from
    ``[0, 2 * replication_lag]``.
    """

    name: str = "simulated-db"
    isolation: IsolationMode = IsolationMode.SERIALIZABLE
    num_replicas: int = 1
    replication_lag: float = 4.0
    abort_probability: float = 0.0
    bug_rates: BugRates = field(default_factory=BugRates)
    seed: Optional[int] = None

    def validate(self) -> None:
        """Raise ``ValueError`` on nonsensical settings."""
        if self.num_replicas <= 0:
            raise ValueError("num_replicas must be positive")
        if self.replication_lag < 0:
            raise ValueError("replication_lag must be non-negative")
        if not (0.0 <= self.abort_probability < 1.0):
            raise ValueError("abort_probability must be in [0, 1)")
        for rate_name in ("stale_read", "aborted_read", "fractured_read"):
            rate = getattr(self.bug_rates, rate_name)
            if not (0.0 <= rate <= 1.0):
                raise ValueError(f"bug rate {rate_name} must be in [0, 1]")
