"""Preset database profiles standing in for the paper's three databases.

Section 5.1 of the paper collects histories from PostgreSQL 17.0 (a
single-node relational database), CockroachDB 24.2.4 (a three-replica
distributed SQL database), and RocksDB 5.15.10 (an embedded key-value
store).  All three are configured by the Cobra framework to provide strong
transaction isolation, so the collected histories are (in the absence of
bugs) consistent at every weak level; what differs is topology and latency.

The profiles below mirror those characteristics for the simulator:

* :data:`POSTGRES_LIKE` -- one replica, serializable visibility.
* :data:`COCKROACH_LIKE` -- three replicas with replication lag, serializable
  visibility (the simulator still reads the globally latest committed value,
  matching the "strong isolation" configuration used in the paper).
* :data:`ROCKSDB_LIKE` -- one replica, serializable visibility, no lag
  (an embedded store has no replication at all).

Use :func:`profile_by_name` to look profiles up from CLI / benchmark
parameters, and :func:`with_overrides` to derive variants (e.g. a buggy
CockroachDB for the Table 1 reproduction).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.db.config import BugRates, DatabaseConfig, IsolationMode

__all__ = [
    "POSTGRES_LIKE",
    "COCKROACH_LIKE",
    "ROCKSDB_LIKE",
    "ALL_PROFILES",
    "profile_by_name",
    "with_overrides",
]

POSTGRES_LIKE = DatabaseConfig(
    name="postgres-like",
    isolation=IsolationMode.SERIALIZABLE,
    num_replicas=1,
    replication_lag=0.0,
)

COCKROACH_LIKE = DatabaseConfig(
    name="cockroach-like",
    isolation=IsolationMode.SERIALIZABLE,
    num_replicas=3,
    replication_lag=6.0,
)

ROCKSDB_LIKE = DatabaseConfig(
    name="rocksdb-like",
    isolation=IsolationMode.SERIALIZABLE,
    num_replicas=1,
    replication_lag=0.0,
)

ALL_PROFILES: Dict[str, DatabaseConfig] = {
    "postgres": POSTGRES_LIKE,
    "cockroach": COCKROACH_LIKE,
    "rocksdb": ROCKSDB_LIKE,
}


def profile_by_name(name: str) -> DatabaseConfig:
    """Look up a profile by (case-insensitive, prefix-tolerant) name."""
    normalized = name.strip().lower()
    for known, profile in ALL_PROFILES.items():
        if normalized == known or normalized.startswith(known) or known.startswith(normalized):
            return profile
    raise ValueError(f"unknown database profile {name!r}; known: {sorted(ALL_PROFILES)}")


def with_overrides(
    profile: DatabaseConfig,
    isolation: Optional[IsolationMode] = None,
    bug_rates: Optional[BugRates] = None,
    seed: Optional[int] = None,
    num_replicas: Optional[int] = None,
) -> DatabaseConfig:
    """Return a copy of ``profile`` with selected fields replaced."""
    return dataclasses.replace(
        profile,
        isolation=isolation if isolation is not None else profile.isolation,
        bug_rates=bug_rates if bug_rates is not None else profile.bug_rates,
        seed=seed if seed is not None else profile.seed,
        num_replicas=num_replicas if num_replicas is not None else profile.num_replicas,
    )
