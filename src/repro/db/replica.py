"""Replica state of the simulated database.

Each replica keeps a multi-versioned store: for every key, the list of
applied writes in apply order.  Committed transactions originating at other
replicas arrive after a (seeded, random) replication lag; the replica applies
them either individually (Read Committed / Read Atomic visibility) or after
their causal dependencies (Causal visibility), which is what makes the
generated histories satisfy -- and not exceed -- the configured isolation
level.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = ["CommittedTransaction", "Version", "Replica"]


@dataclass(frozen=True)
class Version:
    """One applied write: the writing transaction, the value, and the apply sequence."""

    apply_seq: int
    txn_uid: int
    value: object


@dataclass
class CommittedTransaction:
    """A transaction in the global commit log of the simulated database."""

    uid: int
    session: int
    commit_time: int
    writes: Dict[str, object]
    dependencies: Set[int] = field(default_factory=set)


class Replica:
    """One replica: applied transactions and per-key version chains."""

    def __init__(self, replica_id: int, causal: bool) -> None:
        self.replica_id = replica_id
        self.causal = causal
        self.applied: Set[int] = set()
        self._apply_seq = 0
        self._versions: Dict[str, List[Version]] = {}
        # Min-heap of (arrival_time, commit_time, txn) awaiting application.
        self._pending: List[Tuple[int, int, CommittedTransaction]] = []
        # Causally blocked transactions waiting for their dependencies.
        self._blocked: List[CommittedTransaction] = []

    # -- replication -----------------------------------------------------------

    def enqueue(self, txn: CommittedTransaction, arrival_time: int) -> None:
        """Schedule a remote transaction to arrive at ``arrival_time``."""
        heapq.heappush(self._pending, (arrival_time, txn.commit_time, txn))

    def apply_now(self, txn: CommittedTransaction) -> None:
        """Apply a transaction immediately (used for the originating replica)."""
        self._apply(txn)

    def advance(self, now: int) -> None:
        """Apply every pending transaction that has arrived by time ``now``."""
        while self._pending and self._pending[0][0] <= now:
            _, _, txn = heapq.heappop(self._pending)
            self._try_apply(txn)
        if self.causal and self._blocked:
            self._drain_blocked()

    def _try_apply(self, txn: CommittedTransaction) -> None:
        if txn.uid in self.applied:
            return
        if self.causal and not txn.dependencies <= self.applied:
            self._blocked.append(txn)
            return
        self._apply(txn)

    def _drain_blocked(self) -> None:
        progress = True
        while progress:
            progress = False
            still_blocked: List[CommittedTransaction] = []
            for txn in self._blocked:
                if txn.dependencies <= self.applied:
                    self._apply(txn)
                    progress = True
                else:
                    still_blocked.append(txn)
            self._blocked = still_blocked

    def _apply(self, txn: CommittedTransaction) -> None:
        if txn.uid in self.applied:
            return
        self._apply_seq += 1
        self.applied.add(txn.uid)
        for key, value in txn.writes.items():
            self._versions.setdefault(key, []).append(
                Version(self._apply_seq, txn.uid, value)
            )

    # -- reads -------------------------------------------------------------------

    @property
    def current_seq(self) -> int:
        """The apply sequence number of the most recently applied transaction."""
        return self._apply_seq

    def latest_version(self, key: str, up_to_seq: Optional[int] = None) -> Optional[Version]:
        """The latest applied version of ``key`` (optionally at a past snapshot)."""
        chain = self._versions.get(key)
        if not chain:
            return None
        if up_to_seq is None:
            return chain[-1]
        # Version chains are short in practice; a reverse scan suffices and
        # keeps the structure simple.
        for version in reversed(chain):
            if version.apply_seq <= up_to_seq:
                return version
        return None

    def newest_version(self, key: str, up_to_seq: Optional[int] = None) -> Optional[Version]:
        """The applied version of ``key`` with the highest writer uid.

        Writer uids are assigned in global commit order, so picking the
        maximum implements last-writer-wins conflict resolution: every
        replica resolves concurrent writers of a key the same way, which is
        what lets a single total commit order witness the consistency of the
        histories the simulator produces.
        """
        chain = self._versions.get(key)
        if not chain:
            return None
        best: Optional[Version] = None
        for version in chain:
            if up_to_seq is not None and version.apply_seq > up_to_seq:
                continue
            if best is None or version.txn_uid > best.txn_uid:
                best = version
        return best

    def versions(self, key: str) -> List[Version]:
        """All applied versions of ``key`` in apply order."""
        return list(self._versions.get(key, ()))

    def has_key(self, key: str) -> bool:
        """True when at least one write to ``key`` has been applied."""
        return bool(self._versions.get(key))
