"""The simulated transactional database and its client API.

A :class:`SimulatedDatabase` plays the role of PostgreSQL / CockroachDB /
RocksDB in the paper's experimental pipeline: clients open *sessions*, run
read/write *transactions*, and the database records the resulting history in
exactly the shape the isolation checkers consume.

The simulation is sequential and deterministic (seeded), but models the
distributed-systems effects that make weak isolation observable: replicas
apply remote transactions after a replication lag, and the visibility rule
applied to reads is configurable (:class:`~repro.db.config.IsolationMode`).
Optional bug injection (:class:`~repro.db.config.BugRates`) makes the
database deliberately serve stale, fractured, or aborted versions, modelling
the isolation bugs the paper's Table 1 detects.

Typical use::

    db = SimulatedDatabase(DatabaseConfig(isolation=IsolationMode.CAUSAL, seed=7))
    alice = db.session()
    with alice.transaction() as txn:
        txn.write("x")            # value auto-assigned, unique
        balance = txn.read("y")
    history = db.history()
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.exceptions import UsageError
from repro.core.model import History, Operation, Transaction, read as read_op, write as write_op
from repro.db.config import DatabaseConfig, IsolationMode
from repro.db.replica import CommittedTransaction, Replica

__all__ = ["SimulatedDatabase", "ClientSession", "ClientTransaction"]


class ClientTransaction:
    """An open transaction of one client session."""

    def __init__(self, database: "SimulatedDatabase", session: "ClientSession") -> None:
        self._db = database
        self._session = session
        self._operations: List[Operation] = []
        self._local_writes: Dict[str, object] = {}
        self._read_from: Set[int] = set()
        self._finished = False
        self._snapshot_seq = session.replica.current_seq

    # -- client operations -------------------------------------------------------

    def read(self, key: str) -> Optional[object]:
        """Read ``key``; returns the observed value (``None`` if never written).

        Reads of keys that no committed transaction has ever written are not
        recorded (they carry no information for isolation testing); workloads
        normally initialize their key space first.
        """
        self._ensure_open()
        self._db._tick()
        if key in self._local_writes:
            value = self._local_writes[key]
            self._operations.append(read_op(key, value))
            return value
        observed = self._db._serve_read(self._session, self, key)
        if observed is None:
            return None
        txn_uid, value = observed
        if txn_uid is not None:
            self._read_from.add(txn_uid)
        self._operations.append(read_op(key, value))
        return value

    def write(self, key: str, value: Optional[object] = None) -> object:
        """Write ``key``.  Without an explicit value a globally unique one is used.

        Unique values are the standard interaction scheme of black-box
        isolation testing (Section 2.1 of the paper): they make the
        write-read relation recoverable from the history alone.
        """
        self._ensure_open()
        self._db._tick()
        if value is None:
            value = self._db._next_value()
        self._local_writes[key] = value
        self._operations.append(write_op(key, value))
        return value

    def commit(self) -> bool:
        """Try to commit; returns ``True`` on commit, ``False`` if the database aborts."""
        self._ensure_open()
        self._finished = True
        return self._db._finish(self._session, self, aborted=False)

    def abort(self) -> None:
        """Abort the transaction explicitly."""
        self._ensure_open()
        self._finished = True
        self._db._finish(self._session, self, aborted=True)

    # -- internals ------------------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._finished:
            raise UsageError("transaction already committed or aborted")

    @property
    def operations(self) -> List[Operation]:
        """The operations issued so far, in program order."""
        return list(self._operations)


class ClientSession:
    """A client session; its transactions form one session of the history."""

    def __init__(self, database: "SimulatedDatabase", session_id: int, replica: Replica) -> None:
        self._db = database
        self.session_id = session_id
        self.replica = replica
        self.recorded: List[Transaction] = []
        self.last_committed_uid: Optional[int] = None

    def begin(self) -> ClientTransaction:
        """Start a new transaction on this session."""
        self._db._tick()
        self.replica.advance(self._db.now)
        return ClientTransaction(self._db, self)

    @contextmanager
    def transaction(self) -> Iterator[ClientTransaction]:
        """Context manager running a transaction and committing on exit."""
        txn = self.begin()
        try:
            yield txn
        except Exception:
            if not txn._finished:
                txn.abort()
            raise
        if not txn._finished:
            txn.commit()


class SimulatedDatabase:
    """A seedable, multi-replica, transactional key-value store simulator."""

    def __init__(self, config: Optional[DatabaseConfig] = None) -> None:
        self.config = config or DatabaseConfig()
        self.config.validate()
        self._rng = random.Random(self.config.seed)
        self.now = 0
        self._next_uid = 0
        self._value_counter = 0
        causal = self.config.isolation is IsolationMode.CAUSAL
        self._replicas = [Replica(i, causal) for i in range(self.config.num_replicas)]
        self._sessions: List[ClientSession] = []
        # Globally latest committed value per key (serializable visibility),
        # all committed versions per key (for stale-read bug injection), and
        # aborted writes per key (for aborted-read bug injection).
        self._global_latest: Dict[str, Tuple[int, object]] = {}
        self._all_versions: Dict[str, List[Tuple[int, object]]] = {}
        self._aborted_versions: Dict[str, List[Tuple[int, object]]] = {}
        self._force_sync = False

    # -- public API -------------------------------------------------------------------

    def session(self) -> ClientSession:
        """Open a new client session (a new history session)."""
        replica = self._replicas[len(self._sessions) % len(self._replicas)]
        session = ClientSession(self, len(self._sessions), replica)
        self._sessions.append(session)
        return session

    def sessions(self, count: int) -> List[ClientSession]:
        """Open ``count`` sessions at once."""
        return [self.session() for _ in range(count)]

    def initialize(self, keys: List[str], session: Optional[ClientSession] = None) -> None:
        """Write an initial value to every key in one committed transaction.

        Mirrors the standard practice of isolation-testing frameworks, which
        start from a known initial database state so that no read is a
        thin-air read.
        """
        owner = session or (self._sessions[0] if self._sessions else self.session())
        txn = owner.begin()
        for key in keys:
            txn.write(key)
        # Initialization happens before the measured run starts, so it is
        # propagated synchronously to every replica.
        self._force_sync = True
        try:
            txn.commit()
        finally:
            self._force_sync = False
        for replica in self._replicas:
            replica.advance(self.now)

    def history(self) -> History:
        """Build the recorded history of all sessions so far."""
        sessions = [list(s.recorded) for s in self._sessions]
        if not sessions:
            raise UsageError("no sessions were opened on this database")
        return History.from_sessions(sessions)

    @property
    def num_committed(self) -> int:
        """Number of committed transactions so far."""
        return sum(
            1 for s in self._sessions for t in s.recorded if t.committed
        )

    # -- simulation internals --------------------------------------------------------------

    def _tick(self) -> None:
        self.now += 1

    def _next_value(self) -> int:
        self._value_counter += 1
        return self._value_counter

    def _serve_read(
        self, session: ClientSession, txn: ClientTransaction, key: str
    ) -> Optional[Tuple[Optional[int], object]]:
        """Pick the version a read observes, honouring mode and bug injection."""
        bugs = self.config.bug_rates

        # Aborted-read bug: serve a write of an aborted transaction.
        if bugs.aborted_read > 0 and self._aborted_versions.get(key):
            if self._rng.random() < bugs.aborted_read:
                uid, value = self._rng.choice(self._aborted_versions[key])
                return uid, value

        # Stale-read bug: serve any older committed version.
        if bugs.stale_read > 0 and self._all_versions.get(key):
            if self._rng.random() < bugs.stale_read:
                uid, value = self._rng.choice(self._all_versions[key])
                return uid, value

        mode = self.config.isolation
        replica = session.replica

        fractured = (
            bugs.fractured_read > 0 and self._rng.random() < bugs.fractured_read
        )

        if mode is IsolationMode.SERIALIZABLE and not fractured:
            entry = self._global_latest.get(key)
            if entry is None:
                return None
            return entry

        replica.advance(self.now)
        if mode is IsolationMode.READ_COMMITTED or fractured:
            # Each read independently observes the newest applied write
            # (last-writer-wins), without a per-transaction snapshot.
            version = replica.newest_version(key)
        else:
            # CAUSAL and READ_ATOMIC read from the transaction's snapshot; a
            # key with no version in the snapshot is simply "not found",
            # which keeps the produced histories sound for the configured
            # level.
            version = replica.newest_version(key, up_to_seq=txn._snapshot_seq)
        if version is None:
            return None
        return version.txn_uid, version.value

    def _finish(
        self, session: ClientSession, txn: ClientTransaction, aborted: bool
    ) -> bool:
        self._tick()
        if not aborted and self.config.abort_probability > 0:
            if self._rng.random() < self.config.abort_probability:
                aborted = True
        uid = self._next_uid
        self._next_uid += 1

        recorded = Transaction(
            txn.operations,
            committed=not aborted,
            label=f"s{session.session_id}_t{len(session.recorded)}",
        )
        session.recorded.append(recorded)

        if aborted:
            for key, value in txn._local_writes.items():
                self._aborted_versions.setdefault(key, []).append((uid, value))
            return False

        dependencies = set(txn._read_from)
        if session.last_committed_uid is not None:
            dependencies.add(session.last_committed_uid)
        committed = CommittedTransaction(
            uid=uid,
            session=session.session_id,
            commit_time=self.now,
            writes=dict(txn._local_writes),
            dependencies=dependencies,
        )
        session.last_committed_uid = uid

        for key, value in committed.writes.items():
            self._global_latest[key] = (uid, value)
            self._all_versions.setdefault(key, []).append((uid, value))

        # The originating replica applies immediately; the others after lag.
        session.replica.apply_now(committed)
        for replica in self._replicas:
            if replica is session.replica:
                continue
            lag = 0 if self._force_sync else self._sample_lag()
            replica.enqueue(committed, self.now + lag)
        return True

    def _sample_lag(self) -> int:
        mean = self.config.replication_lag
        if mean <= 0:
            return 0
        return self._rng.randint(0, int(2 * mean))
