"""A multi-replica key-value database simulator.

The paper's evaluation collects histories from PostgreSQL, CockroachDB, and
RocksDB through the Cobra testing framework.  Those systems are not
available here, so this package provides the substitute substrate: a
deterministic, seedable simulation of a replicated transactional key-value
store whose visibility rules can be dialled between Serializable, Causal,
Read Atomic, and Read Committed, with optional *bug injection* that serves
stale or aborted versions the way buggy production databases have been
observed to do (Jepsen-style anomalies).

The important property for reproduction purposes is that the simulator
produces *histories* with exactly the structure the checkers consume --
sessions of transactions with unique written values -- so every code path of
the testers exercised by the paper's experiments is exercised here.

Main entry points:

* :class:`SimulatedDatabase` -- the store; :meth:`SimulatedDatabase.session`
  opens a client session, whose transactions are recorded automatically.
* :class:`DatabaseConfig` / :class:`IsolationMode` / :class:`BugRates` --
  configuration.
* :data:`repro.db.profiles.POSTGRES_LIKE` (and friends) -- preset
  configurations standing in for the three databases of Section 5.1.
"""

from repro.db.config import BugRates, DatabaseConfig, IsolationMode
from repro.db.database import ClientSession, ClientTransaction, SimulatedDatabase
from repro.db.profiles import (
    COCKROACH_LIKE,
    POSTGRES_LIKE,
    ROCKSDB_LIKE,
    profile_by_name,
)

__all__ = [
    "SimulatedDatabase",
    "ClientSession",
    "ClientTransaction",
    "DatabaseConfig",
    "IsolationMode",
    "BugRates",
    "POSTGRES_LIKE",
    "COCKROACH_LIKE",
    "ROCKSDB_LIKE",
    "profile_by_name",
]
