"""Streaming (online) isolation checking.

Public surface:

* :class:`IncrementalChecker` -- the object-model online checker: consumes
  ``(session, transaction)`` pairs as they are appended and maintains the
  AWDIT checkers' state online, reporting read-level violations as soon as
  they become witnessable.  Kept as the reference streaming engine
  (``engine="object"``).
* :class:`CompiledIncrementalChecker` -- the compiled streaming core
  (:mod:`repro.core.compiled.online`): the same online algorithms fed raw
  parser records on packed interned ids, with checkpoint/resume.  The
  default streaming engine.
* :func:`check_stream` -- one-shot wrapper over the object checker.
* :func:`check_stream_file` -- the file-level entry point behind ``awdit
  check --stream``: engine dispatch, byte-range parallel ingestion
  (``jobs``), and checkpoint/resume.
* :func:`check_history_stream` -- stream an in-memory history through an
  online engine (the ``check(..., mode="stream")`` implementation).

Pair with the iterator-based parsers
(:func:`repro.histories.formats.stream_history` /
:func:`~repro.histories.formats.stream_raw_history`) to check on-disk logs
in a single pass without materializing the history.
"""

from repro.core.compiled.online import (
    CompiledIncrementalChecker,
    check_stream_compiled,
    load_checkpoint,
)
from repro.stream.incremental import IncrementalChecker, check_stream
from repro.stream.runner import (
    DEFAULT_CHECKPOINT_EVERY,
    STREAM_ENGINES,
    check_all_levels_history_stream,
    check_history_stream,
    check_stream_file,
    history_records,
    iter_raw_batches,
    iter_raw_records,
    stream_live_stats,
)

__all__ = [
    "DEFAULT_CHECKPOINT_EVERY",
    "STREAM_ENGINES",
    "CompiledIncrementalChecker",
    "IncrementalChecker",
    "check_all_levels_history_stream",
    "check_history_stream",
    "check_stream",
    "check_stream_compiled",
    "check_stream_file",
    "history_records",
    "iter_raw_batches",
    "iter_raw_records",
    "load_checkpoint",
    "stream_live_stats",
]
