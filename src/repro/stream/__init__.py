"""Streaming (online) isolation checking.

Public surface:

* :class:`IncrementalChecker` -- consumes ``(session, transaction)`` pairs
  as they are appended and maintains the AWDIT checkers' state online,
  reporting read-level violations as soon as they become witnessable.
* :func:`check_stream` -- one-shot convenience wrapper: stream in, one
  :class:`~repro.core.result.CheckResult` out.

Pair with the iterator-based parsers
(:func:`repro.histories.formats.stream_history`) to check on-disk logs in a
single pass without materializing the history.
"""

from repro.stream.incremental import IncrementalChecker, check_stream

__all__ = ["IncrementalChecker", "check_stream"]
