"""Streaming one-pass isolation checking.

AWDIT's algorithms (Algorithms 1-3 of the paper) are one-pass over session
order with monotone per-session pointers, so they admit an *online*
formulation: this module maintains the checkers' state incrementally while
transactions are appended to sessions, instead of materializing the whole
history first.

:class:`IncrementalChecker` consumes ``(session, transaction)`` pairs (for
example from the streaming parsers in :mod:`repro.histories.formats`) and
keeps, per appended transaction, only a transaction-level summary: the keys
it writes, its final write per key, and its distinct read-from writers.  The
operation list itself is dropped as soon as the transaction has been folded
into the online state, so checking a multi-gigabyte log needs memory
proportional to the live state (the writes index, the transaction-level
``so ∪ wr`` structure, and one vector clock per transaction), not to the
operation count of the history.

The online state mirrors the batch algorithms exactly:

* *Read consistency* (Algorithm 4) is tracked incrementally.  Reads that
  observe a write that has not arrived yet are parked in a pending table and
  classified the moment the write arrives (or as thin-air reads at
  :meth:`~IncrementalChecker.finalize`); all other axioms are decided as soon
  as the read resolves, which is when the violation first becomes
  witnessable.
* *RC saturation* (Algorithm 1) is per-transaction and runs the moment all of
  a transaction's reads are resolved.
* *RA saturation* (Algorithm 2) runs behind a per-session frontier that
  advances in session order, maintaining the per-session ``lastWrite`` map
  online; repeatable reads are checked per transaction on resolution.
* *CC* (Algorithm 3) runs behind a causal frontier: a transaction's vector
  clock (``ComputeHB``) is computed once its session predecessor and all its
  read-from writers are processed, and the monotone per-(session, key)
  saturation pointers of ``saturate_cc`` advance exactly as in the batch
  algorithm.  A causal frontier that cannot drain at ``finalize`` is a
  ``so ∪ wr`` cycle, reported with the same witnesses as the batch checker.

``finalize()`` replays the recorded commit-order edges in the batch
algorithms' insertion order, so verdicts, violation kinds, inferred-edge
counts, and cycle witnesses are identical to the batch
:func:`repro.core.check` (property-tested in ``tests/test_stream.py``).
Duplicate ``(key, value)`` writes resolve exactly like batch's unique-writes
convention -- the last write in transaction-id order wins: a later-ordered
duplicate supersedes the registry entry and rebinds the already-resolved
reads of transactions that have not been folded into the frontiers yet.  (A
duplicate arriving only after a reading transaction was folded can no longer
rebind it; observing such a write would need a second pass, and a stream
that replays a history in session-blocked order with writes ahead of their
readers resolves identically to batch.)  One documented divergence remains:
transactions in violation messages are named ``t<arrival id>`` when
unlabeled, while batch numbering is session-blocked.  Pass ``num_sessions``
when the session count is known up front so session numbering (and thus
witness selection) matches the batch checker exactly even when sessions
first appear out of order.
"""

from __future__ import annotations

import time
from bisect import bisect_left, insort
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.cc import causality_cycles, causality_labels
from repro.core.commit import CommitRelation
from repro.core.compiled.ir import Intern
from repro.core.compiled.retire import (
    RetirementPolicy,
    RetireStats,
    SegmentStore,
    check_identity_reuse,
    check_retired_reads,
    load_retired_state,
    low_watermark,
    stable_digest,
)
from repro.core.isolation import IsolationLevel
from repro.core.model import OpRef, Transaction
from repro.core.result import CheckResult
from repro.core.violations import (
    ReadConsistencyViolation,
    RepeatableReadViolation,
    Violation,
    ViolationKind,
)
from repro.graph.csr import freeze_packed
from repro.graph.digraph import EDGE_MASK, EDGE_SHIFT, pack_edge, unpack_edge

__all__ = ["IncrementalChecker", "check_stream"]

ALL_LEVELS: Tuple[IsolationLevel, ...] = (
    IsolationLevel.READ_COMMITTED,
    IsolationLevel.READ_ATOMIC,
    IsolationLevel.CAUSAL_CONSISTENCY,
)

# Packed inferred-edge log: ``(t2 << EDGE_SHIFT) | t1`` -> ``(sort key <<
# EDGE_SHIFT) | (key id + 1)``.  One int-to-int dict entry per edge instead
# of two tuples, which is what keeps streaming peak memory at or below the
# batch checkers' even while the log and the finalize-time commit relation
# briefly coexist.  The sort key is the position the batch algorithm would
# first record the edge at; keys are interned in the checker's key table
# (id ``-1``, stored as ``0``, means "no key").  Sort keys encode (sid,
# session_index, attempt) as one integer.
_EdgeLog = Dict[int, int]

# Bit budget per sort-key component: up to 2^24 transactions per session and
# 2^24 edge attempts per transaction keep batch-order replay exact; beyond
# that only witness selection (never verdicts) could diverge from batch.
_KEY_SHIFT = 24


def _sort_base(sid: int, sidx: int) -> int:
    """The sort-key base for transaction (sid, sidx); add the attempt number."""
    return ((sid << _KEY_SHIFT) | sidx) << _KEY_SHIFT


class _Read:
    """A read awaiting (or holding) its write-read resolution.

    ``key`` keeps the original string (needed only for violation messages);
    ``kid`` is its interned id, which is what the online state uses.
    """

    __slots__ = ("index", "key", "kid", "value", "own_prev", "writer", "writer_index", "bad")

    def __init__(
        self, index: int, key: str, kid: int, value: object, own_prev: Optional[int]
    ) -> None:
        self.index = index
        self.key = key
        self.kid = kid
        self.value = value
        # Program-order index of the latest own write to `key` before this
        # read (None when there is none); fixes the observe-own-writes axiom.
        self.own_prev = own_prev
        self.writer: Optional[int] = None
        self.writer_index = -1
        self.bad = False


class _Txn:
    """Transaction-level summary retained by the streaming checker."""

    __slots__ = (
        "tid",
        "sid",
        "sidx",
        "committed",
        "label",
        "keys_written",
        "keys_written_ordered",
        "reads",
        "unresolved",
        "resolved",
        "rebindable",
        "cc_done",
        "cc_pending",
        "cc_registered",
        "good_reads",
        "wr_first_any",
        "wr_first_good",
    )

    def __init__(self, tid: int, sid: int, sidx: int, committed: bool, label: Optional[str]) -> None:
        self.tid = tid
        self.sid = sid
        self.sidx = sidx
        self.committed = committed
        self.label = label
        # Distinct written key ids: a frozenset for membership plus a tuple in
        # first-write order for deterministic iteration (matching the batch
        # checkers' keys_written / keys_written_ordered pair).
        self.keys_written: frozenset = frozenset()
        self.keys_written_ordered: Tuple[int, ...] = ()
        self.reads: List[_Read] = []
        self.unresolved = 0
        self.resolved = False
        #: True while this transaction's resolved reads sit in the checker's
        #: rebind table (set only for transactions that park reads).
        self.rebindable = False
        self.cc_done = False
        self.cc_pending = 0
        self.cc_registered = False
        # (po index, key id, writer tid) per good external read, in program order.
        self.good_reads: List[Tuple[int, int, int]] = []
        # First read per distinct committed writer: writer -> witnessing key id.
        # `any` ignores read-consistency badness (the commit relation keeps
        # those wr edges); `good` is restricted to clean reads (the causality
        # graph drops bad reads).
        self.wr_first_any: Dict[int, int] = {}
        self.wr_first_good: Dict[int, int] = {}


class IncrementalChecker:
    """Online checker for RC / RA / CC over a stream of transactions.

    Parameters
    ----------
    levels:
        The isolation levels to maintain online state for (default: all
        three).  Read consistency is always tracked.
    num_sessions:
        Optional expected session count.  When given, integer session ids
        ``0..num_sessions-1`` are pre-registered so internal session
        numbering matches :meth:`History.from_sessions` regardless of the
        order sessions first appear in the stream.
    max_witnesses:
        Passed through to the cycle extraction at :meth:`finalize`.
    retire:
        Optional :class:`~repro.core.compiled.retire.RetirementPolicy`.
        When given, the same watermark-based retirement protocol as the
        compiled core runs here: fully folded transactions below the global
        low-watermark rotate into archival segments and their resident
        summaries, registry rows, and finalized edge-log entries are
        compacted away.  Output stays byte-identical to a non-evicting run,
        or finalize refuses with
        :class:`~repro.core.compiled.retire.RetiredAccessError`.
    """

    def __init__(
        self,
        levels: Optional[Sequence[IsolationLevel]] = None,
        num_sessions: Optional[int] = None,
        max_witnesses: Optional[int] = None,
        retire: Optional[RetirementPolicy] = None,
    ) -> None:
        chosen = tuple(levels) if levels is not None else ALL_LEVELS
        for level in chosen:
            if level not in ALL_LEVELS:
                raise ValueError(f"unsupported isolation level: {level!r}")
        self._levels = chosen
        self._rc_enabled = IsolationLevel.READ_COMMITTED in chosen
        self._ra_enabled = IsolationLevel.READ_ATOMIC in chosen
        self._cc_enabled = IsolationLevel.CAUSAL_CONSISTENCY in chosen
        self._max_witnesses = max_witnesses

        self._txns: List[_Txn] = []
        self._session_ids: Dict[object, int] = {}
        self._by_session: List[List[_Txn]] = []
        # Key strings are interned once on arrival; all online state below is
        # keyed by dense key ids.
        self._key_table = Intern()
        # (key id, value) -> (writer tid, op index, is the writer's final
        # write to the key); the last write in transaction-id (batch) order
        # wins, exactly like History._infer_wr.
        self._writes: Dict[Tuple[int, object], Tuple[int, int, bool]] = {}
        # (key id, value) -> reads waiting for that write to arrive.
        self._pending: Dict[Tuple[int, object], List[Tuple[_Txn, _Read]]] = {}
        # (key id, value) -> resolved reads of still-parked transactions,
        # rebindable when a later-ordered duplicate write supersedes the
        # registry entry (removed when the transaction folds).
        self._rebindable: Dict[
            Tuple[int, object], Dict[Tuple[int, int], Tuple[_Txn, _Read]]
        ] = {}

        # RA state: per-session frontier and lastWrite map (Algorithm 2).
        self._ra_next: List[int] = []
        self._ra_last_write: List[Dict[int, int]] = []

        # CC state (Algorithm 3): per-session causal frontier, session clocks,
        # per-(session, key) writer lists, and monotone saturation pointers
        # (dicts keyed by packed ``(session << EDGE_SHIFT) | key id`` ints).
        self._cc_next: List[int] = []
        self._session_clock: List[List[int]] = []
        self._writers_by_key: Dict[int, Tuple[List[int], Dict[int, Tuple[List[int], List[int]]]]] = {}
        self._cc_last_write: List[Dict[int, int]] = []
        self._cc_ptr: List[Dict[int, int]] = []
        self._cc_waiters: Dict[int, List[_Txn]] = {}
        self._hb: Dict[int, List[int]] = {}

        # Recorded inferred edges, replayed in batch order at finalize.
        self._rc_log: _EdgeLog = {}
        self._ra_log: _EdgeLog = {}
        self._ra_so_log: _EdgeLog = {}
        self._cc_log: _EdgeLog = {}

        # Violations discovered so far, plus their batch-order sort keys.
        self._rc_axiom: List[Tuple[Tuple[int, int, int], Violation]] = []
        self._rr: List[Tuple[Tuple[int, int, int], Violation]] = []
        self._live: List[Violation] = []

        self._num_operations = 0
        self._elapsed = 0.0
        self._results: Optional[Dict[IsolationLevel, CheckResult]] = None

        # Watermark-based retirement (see repro.core.compiled.retire).  Tids
        # and session indices stay absolute; only list indexing is offset by
        # the bases, so every recorded edge and witness survives compaction.
        self._retire = retire
        self._retire_stats = RetireStats()
        self._segments = SegmentStore(retire.segment_dir) if retire is not None else None
        self._txns_base = 0
        self._next_tid = 0
        self._sess_base: List[int] = []
        self._latest_writer: Dict[int, int] = {}
        self._retire_last = 0
        self._retired_final = None

        if num_sessions is not None:
            for sid in range(num_sessions):
                self._register_session(sid)

    # -- public surface --------------------------------------------------------

    @property
    def levels(self) -> Tuple[IsolationLevel, ...]:
        """The isolation levels this checker maintains."""
        return self._levels

    @property
    def num_transactions(self) -> int:
        """Number of transactions appended so far."""
        return self._next_tid

    @property
    def num_operations(self) -> int:
        """Number of operations appended so far."""
        return self._num_operations

    @property
    def num_sessions(self) -> int:
        """Number of sessions seen (or pre-registered) so far."""
        return len(self._by_session)

    @property
    def violations(self) -> List[Violation]:
        """Violations witnessed so far, in discovery order.

        Read-consistency and repeatable-read anomalies appear here as soon as
        the offending read resolves; cycle witnesses require the global
        acyclicity check and are added by :meth:`finalize`.
        """
        return list(self._live)

    def append_batch(self, batch) -> None:
        """Feed one columnar :class:`~repro.histories.formats._raw.RecordBatch`.

        The object engine has no bulk fold -- each record is materialized
        into a :class:`Transaction` and appended in order -- so this is a
        convenience unbatcher keeping the engine pluggable behind the same
        batched runner as the compiled cores.
        """
        from repro.histories.formats._raw import transaction_from_raw

        for session, raw in batch.iter_records():
            self.append(session, transaction_from_raw(raw))

    def append(self, session: object, transaction: Transaction) -> None:
        """Feed one transaction appended to ``session``.

        Transactions of one session must arrive in session order; sessions
        may interleave arbitrarily.  Only ``operations``, ``committed`` and
        ``label`` of the transaction are used, so both parser-produced and
        history-owned transactions are accepted.
        """
        if self._results is not None:
            raise RuntimeError("cannot append to a finalized IncrementalChecker")
        start = time.perf_counter()
        sid = self._dense_sid(session)
        records = self._by_session[sid]
        tid = self._next_tid
        rec = _Txn(
            tid,
            sid,
            self._sess_base[sid] + len(records),
            transaction.committed,
            transaction.label,
        )
        self._txns.append(rec)
        records.append(rec)
        self._next_tid = tid + 1

        ops = transaction.operations
        self._num_operations += len(ops)
        intern_key = self._key_table.intern
        own_latest: Dict[int, int] = {}
        final_write: Dict[int, int] = {}
        reads: List[_Read] = []
        writes = self._writes
        txn_writes: List[Tuple[int, object, int]] = []
        for index, op in enumerate(ops):
            kid = intern_key(op.key)
            if op.is_write:
                final_write[kid] = index
                own_latest[kid] = index
                txn_writes.append((kid, op.value, index))
            elif rec.committed:
                reads.append(_Read(index, op.key, kid, op.value, own_latest.get(kid)))
        rec.keys_written = frozenset(final_write)
        rec.keys_written_ordered = tuple(final_write)
        rec.reads = reads

        # Register writes only once the whole transaction is scanned, so the
        # index can record whether each write is the final one to its key.
        # Duplicate (key, value) writes resolve to the last write in batch
        # transaction-id order, like History._infer_wr.
        new_writes: List[Tuple[int, object]] = []
        superseded: List[Tuple[int, object]] = []
        for kid, value, index in txn_writes:
            wkey = (kid, value)
            current = writes.get(wkey)
            if current is None:
                writes[wkey] = (tid, index, final_write[kid] == index)
                new_writes.append(wkey)
            elif self._batch_order(tid, index) > self._batch_order(*current[:2]):
                writes[wkey] = (tid, index, final_write[kid] == index)
                superseded.append(wkey)

        if self._retire is not None and final_write:
            # Latest-writer pins: a transaction owning the current latest
            # write to any key (aborted writes are readable too) must stay
            # resident so future reads can still resolve against it.
            latest_writer = self._latest_writer
            for kid in rec.keys_written_ordered:
                latest_writer[kid] = tid

        if rec.committed and self._cc_enabled and final_write:
            for key in rec.keys_written_ordered:
                sids, per_sid = self._writers_by_key.setdefault(key, ([], {}))
                entry = per_sid.get(sid)
                if entry is None:
                    entry = ([], [])
                    per_sid[sid] = entry
                    insort(sids, sid)
                entry[0].append(tid)
                entry[1].append(rec.sidx)

        # A later-ordered duplicate write rebinds the resolved reads of
        # transactions that have not been folded yet.
        for wkey in superseded:
            rebinds = self._rebindable.get(wkey)
            if rebinds:
                hit = writes[wkey]
                for other, read in list(rebinds.values()):
                    self._unclassify(other, read)
                    self._classify(other, read, hit)

        # Resolve earlier reads that were waiting for this transaction's writes.
        for wkey in new_writes:
            waiters = self._pending.pop(wkey, None)
            if not waiters:
                continue
            hit = writes[wkey]
            for other, read in waiters:
                self._classify(other, read, hit)
                other.unresolved -= 1
                if other.unresolved == 0:
                    self._on_resolved(other)
                else:
                    self._track_rebindable(other, read)

        # Resolve this transaction's own reads against everything seen so far.
        if rec.committed:
            for read in reads:
                hit = writes.get((read.kid, read.value))
                if hit is None:
                    rec.unresolved += 1
                    self._pending.setdefault((read.kid, read.value), []).append((rec, read))
                else:
                    self._classify(rec, read, hit)
            if rec.unresolved == 0:
                self._on_resolved(rec)
            else:
                for read in reads:
                    if read.writer is not None or read.bad:
                        self._track_rebindable(rec, read)
        else:
            rec.resolved = True
            self._advance_ra(rec.sid)
            self._advance_cc(rec.sid)
        if self._retire is not None:
            self._maybe_retire()
        self._elapsed += time.perf_counter() - start

    def extend(self, pairs: Iterable[Tuple[object, Transaction]]) -> None:
        """Feed many ``(session, transaction)`` pairs in stream order."""
        for session, transaction in pairs:
            self.append(session, transaction)

    def finalize(self) -> Dict[IsolationLevel, CheckResult]:
        """Flush pending state and return one :class:`CheckResult` per level.

        Unresolved reads become thin-air violations, the remaining frontiers
        drain, and the recorded commit-order edges are replayed in the batch
        algorithms' order so the returned results match the batch checkers.
        Idempotent: subsequent calls return the same results.
        """
        if self._results is not None:
            return self._results
        start = time.perf_counter()

        key_names = self._key_table.values
        if self._segments is not None and len(self._segments):
            # Reload the archival segments and refuse -- before any verdict
            # -- if the history turned out to need evicted state: a pending
            # read whose identity matches an evicted write, or a live
            # re-registration of an evicted (key, value) identity.
            retired = load_retired_state(self._segments, len(self._by_session))
            check_retired_reads(
                retired.digests,
                ((key_names[kid], value) for (kid, value) in self._pending),
            )
            check_identity_reuse(
                retired.digests,
                ((key_names[kid], value) for (kid, value) in self._writes),
            )
            self._retired_final = retired

        # Reads whose write never arrived are thin-air reads (axiom (a)).
        for (kid, value), waiters in list(self._pending.items()):
            key = key_names[kid]
            for rec, read in waiters:
                read.bad = True
                self._add_rc_violation(
                    rec,
                    read,
                    ViolationKind.THIN_AIR_READ,
                    f"{self._name(rec)} reads R({key}, {value!r}) but no transaction "
                    f"writes {value!r} to {key!r}",
                    write=None,
                )
                rec.unresolved -= 1
                if rec.unresolved == 0:
                    self._on_resolved(rec)
        self._pending.clear()

        if self._ra_enabled:
            for sid in range(len(self._by_session)):
                if self._ra_next[sid] != self._sess_base[sid] + len(self._by_session[sid]):
                    raise AssertionError("RA frontier failed to drain at finalize")

        cc_complete = all(
            self._cc_next[sid] == self._sess_base[sid] + len(self._by_session[sid])
            for sid in range(len(self._by_session))
        )
        mapping, names, committed_ids, so_edges = self._batch_numbering()
        rc_violations = [v for _, v in sorted(self._rc_axiom, key=lambda item: item[0])]

        # The online state is no longer needed; release it before rebuilding
        # the commit relations so peak memory stays close to one relation.
        self._writes = {}
        self._pending = {}
        self._rebindable = {}
        self._hb = {}
        self._latest_writer = {}
        self._session_clock = []
        self._writers_by_key = {}
        self._cc_last_write = []
        self._cc_ptr = []
        self._cc_waiters = {}
        self._ra_last_write = []

        results: Dict[IsolationLevel, CheckResult] = {}
        if self._rc_enabled:
            relation = self._build_relation(
                mapping, names, committed_ids, so_edges, self._rc_log,
                spilled=self._spilled_run("rc"),
            )
            self._rc_log = {}
            violations = rc_violations + relation.find_cycles(max_witnesses=self._max_witnesses)
            results[IsolationLevel.READ_COMMITTED] = self._result(
                IsolationLevel.READ_COMMITTED, violations, "awdit-stream", relation
            )
            del relation
        if self._ra_enabled:
            rr_violations = [v for _, v in sorted(self._rr, key=lambda item: item[0])]
            single = len(self._by_session) <= 1
            log = self._ra_so_log if single else self._ra_log
            relation = self._build_relation(
                mapping, names, committed_ids, so_edges, log,
                spilled=self._spilled_run("ra_so" if single else "ra"),
            )
            self._ra_log = {}
            self._ra_so_log = {}
            violations = (
                rc_violations
                + rr_violations
                + relation.find_cycles(max_witnesses=self._max_witnesses)
            )
            checker = "awdit-stream-1session" if single else "awdit-stream"
            results[IsolationLevel.READ_ATOMIC] = self._result(
                IsolationLevel.READ_ATOMIC, violations, checker, relation, co_edges=not single
            )
            del relation
        if self._cc_enabled:
            if not cc_complete:
                # so ∪ wr is cyclic: report causality cycles and skip the
                # CC saturation output, exactly like the batch checker.
                graph, labels = self._causality_graph(mapping)
                violations = rc_violations + causality_cycles(names, graph, labels)
                results[IsolationLevel.CAUSAL_CONSISTENCY] = self._result(
                    IsolationLevel.CAUSAL_CONSISTENCY, violations, "awdit-stream", None
                )
            else:
                relation = self._build_relation(
                    mapping, names, committed_ids, so_edges, self._cc_log,
                    spilled=self._spilled_run("cc"),
                )
                self._cc_log = {}
                violations = rc_violations + relation.find_cycles(
                    max_witnesses=self._max_witnesses
                )
                results[IsolationLevel.CAUSAL_CONSISTENCY] = self._result(
                    IsolationLevel.CAUSAL_CONSISTENCY, violations, "awdit-stream", relation
                )
                del relation
        for result in results.values():
            self._live.extend(
                v for v in result.violations if v.kind
                in (ViolationKind.CAUSALITY_CYCLE, ViolationKind.COMMIT_ORDER_CYCLE)
                and v not in self._live
            )
        self._retired_final = None
        if self._segments is not None:
            self._segments.cleanup()
        self._elapsed += time.perf_counter() - start
        for result in results.values():
            result.elapsed_seconds = self._elapsed
        self._results = results
        return results

    # -- session bookkeeping ---------------------------------------------------

    def _register_session(self, external: object) -> int:
        dense = len(self._by_session)
        self._session_ids[external] = dense
        self._by_session.append([])
        self._sess_base.append(0)
        self._ra_next.append(0)
        self._ra_last_write.append({})
        self._cc_next.append(0)
        self._session_clock.append([])
        self._cc_last_write.append({})
        self._cc_ptr.append({})
        return dense

    def _dense_sid(self, external: object) -> int:
        dense = self._session_ids.get(external)
        if dense is None:
            dense = self._register_session(external)
        return dense

    def _name(self, rec: _Txn) -> str:
        return rec.label if rec.label is not None else f"t{rec.tid}"

    # -- read classification (Algorithm 4, incremental) ------------------------

    def _batch_order(self, tid: int, index: int) -> Tuple[int, int, int]:
        """A write's position in batch transaction-id order."""
        rec = self._txns[tid - self._txns_base]
        return (rec.sid, rec.sidx, index)

    def _track_rebindable(self, rec: _Txn, read: _Read) -> None:
        """Register a resolved read of a still-parked transaction for rebinds."""
        rec.rebindable = True
        self._rebindable.setdefault((read.kid, read.value), {})[
            (rec.tid, read.index)
        ] = (rec, read)

    def _untrack_rebindable(self, rec: _Txn) -> None:
        """Drop a folding transaction's reads from the rebind table."""
        rebindable = self._rebindable
        for read in rec.reads:
            wkey = (read.kid, read.value)
            waiters = rebindable.get(wkey)
            if waiters is not None:
                waiters.pop((rec.tid, read.index), None)
                if not waiters:
                    del rebindable[wkey]
        rec.rebindable = False

    def _unclassify(self, rec: _Txn, read: _Read) -> None:
        """Withdraw a read's previous classification before rebinding it."""
        if read.bad:
            sort_key = (rec.sid, rec.sidx, read.index)
            for i, (key, violation) in enumerate(self._rc_axiom):
                if key == sort_key and violation.read == OpRef(rec.tid, read.index):
                    del self._rc_axiom[i]
                    try:
                        self._live.remove(violation)
                    except ValueError:  # pragma: no cover - defensive
                        pass
                    break
        read.bad = False
        read.writer = None
        read.writer_index = -1

    def _add_rc_violation(
        self,
        rec: _Txn,
        read: _Read,
        kind: ViolationKind,
        message: str,
        write: Optional[OpRef],
    ) -> None:
        read.bad = True
        violation = ReadConsistencyViolation(
            kind=kind, message=message, read=OpRef(rec.tid, read.index), write=write
        )
        self._rc_axiom.append(((rec.sid, rec.sidx, read.index), violation))
        self._live.append(violation)

    def _classify(self, rec: _Txn, read: _Read, hit: Tuple[int, int, bool]) -> None:
        """Classify a freshly resolved read against the five RC axioms."""
        writer_tid, writer_index, is_final = hit
        read.writer = writer_tid
        read.writer_index = writer_index
        op_repr = f"R({read.key}, {read.value!r})"
        if writer_tid == rec.tid:
            if writer_index > read.index:
                self._add_rc_violation(
                    rec,
                    read,
                    ViolationKind.FUTURE_READ,
                    f"{self._name(rec)} reads {op_repr} before writing it "
                    f"(write at position {writer_index}, read at {read.index})",
                    write=OpRef(writer_tid, writer_index),
                )
            elif read.own_prev is not None and read.own_prev != writer_index:
                self._add_rc_violation(
                    rec,
                    read,
                    ViolationKind.NOT_LATEST_WRITE,
                    f"{self._name(rec)} reads {op_repr} from a stale own write to "
                    f"{read.key!r} (a later own write precedes the read)",
                    write=OpRef(writer_tid, writer_index),
                )
            return
        writer = self._txns[writer_tid - self._txns_base]
        if not writer.committed:
            self._add_rc_violation(
                rec,
                read,
                ViolationKind.ABORTED_READ,
                f"{self._name(rec)} reads {op_repr} written by aborted "
                f"transaction {self._name(writer)}",
                write=OpRef(writer_tid, writer_index),
            )
        elif read.own_prev is not None:
            self._add_rc_violation(
                rec,
                read,
                ViolationKind.NOT_OWN_WRITE,
                f"{self._name(rec)} reads {op_repr} from {self._name(writer)} "
                f"although it wrote {read.key!r} earlier itself",
                write=OpRef(writer_tid, writer_index),
            )
        elif not is_final:
            self._add_rc_violation(
                rec,
                read,
                ViolationKind.NOT_LATEST_WRITE,
                f"{self._name(rec)} reads {op_repr} from a non-final write "
                f"of {self._name(writer)} to {read.key!r}",
                write=OpRef(writer_tid, writer_index),
            )

    def _on_resolved(self, rec: _Txn) -> None:
        """All reads of ``rec`` are classified: fold it into the online state."""
        rec.resolved = True
        if rec.rebindable:
            self._untrack_rebindable(rec)
        txns = self._txns
        tbase = self._txns_base
        good: List[Tuple[int, int, int]] = []
        wr_any: Dict[int, int] = {}
        wr_good: Dict[int, int] = {}
        for read in rec.reads:
            writer = read.writer
            if writer is None or writer == rec.tid:
                continue
            if not txns[writer - tbase].committed:
                continue
            if writer not in wr_any:
                wr_any[writer] = read.kid
            if read.bad:
                continue
            good.append((read.index, read.kid, writer))
            if writer not in wr_good:
                wr_good[writer] = read.kid
        rec.good_reads = good
        rec.wr_first_any = wr_any
        rec.wr_first_good = wr_good
        if self._ra_enabled:
            self._check_repeatable_reads(rec)
        rec.reads = []
        if self._rc_enabled:
            self._rc_saturate(rec)
            if not self._ra_enabled and not self._cc_enabled:
                rec.good_reads = []
        self._advance_ra(rec.sid)
        self._advance_cc(rec.sid)

    def _check_repeatable_reads(self, rec: _Txn) -> None:
        """Per-transaction repeatable-reads check (Algorithm 2's pre-pass)."""
        last_writer: Dict[int, int] = {}
        for read in rec.reads:
            if read.bad or read.writer is None:
                continue
            writer = read.writer
            previous = last_writer.get(read.kid)
            if writer != rec.tid and previous is not None and previous != writer:
                violation = RepeatableReadViolation(
                    kind=ViolationKind.NON_REPEATABLE_READ,
                    message=(
                        f"{self._name(rec)} reads {read.key!r} from both "
                        f"{self._name(self._txns[previous - self._txns_base])} and "
                        f"{self._name(self._txns[writer - self._txns_base])}"
                    ),
                    txn=rec.tid,
                    key=read.key,
                    writers=(previous, writer),
                )
                self._rr.append(((rec.sid, rec.sidx, read.index), violation))
                self._live.append(violation)
            else:
                last_writer[read.kid] = writer

    # -- watermark-based retirement (see repro.core.compiled.retire) ------------

    def _maybe_retire(self) -> None:
        """Attempt one retirement pass (end of :meth:`append`).

        The guard mirrors the compiled core: a pass runs only on a fully
        drained fold -- no parked or rebindable reads (which also implies no
        unresolved transactions), every enabled frontier caught up, and no
        CC waiters.  Under the guard no later fold can dereference a retired
        summary except through the writes index, whose evicted identities are
        caught by the finalize-time digest scans.
        """
        policy = self._retire
        if self._next_tid - self._retire_last < policy.every:
            return
        self._retire_last = self._next_tid
        if self._pending or self._rebindable:
            return
        by_session = self._by_session
        sess_base = self._sess_base
        if self._ra_enabled:
            ra_next = self._ra_next
            for sid, records in enumerate(by_session):
                if ra_next[sid] != sess_base[sid] + len(records):
                    return
        if self._cc_enabled:
            if self._cc_waiters:
                return
            cc_next = self._cc_next
            for sid, records in enumerate(by_session):
                if cc_next[sid] != sess_base[sid] + len(records):
                    return
        limit = self._next_tid - policy.lag
        base = self._txns_base
        if limit <= base:
            return
        # Eligibility scan, strictly in tid order: the retired set is always
        # a prefix, so tids stay dense below the base.  A committed
        # transaction must sit at or below the global low-watermark of its
        # session, and no transaction may own a current latest-writer pin.
        wm = (
            low_watermark(self._session_clock, len(by_session))
            if self._cc_enabled
            else None
        )
        txns = self._txns
        latest_writer = self._latest_writer
        new_base = base
        while new_base < limit:
            rec = txns[new_base - base]
            if rec.committed and wm is not None and rec.sidx > wm[rec.sid]:
                break
            pinned = False
            for kid in rec.keys_written_ordered:
                if latest_writer.get(kid) == rec.tid:
                    pinned = True
                    break
            if pinned:
                break
            new_base += 1
        if new_base > base:
            self._retire_to(new_base)

    def _retire_to(self, new_base: int) -> None:
        """Retire every transaction below ``new_base`` into one segment."""
        base = self._txns_base
        count = new_base - base
        txns = self._txns
        retiring = txns[:count]
        stats = self._retire_stats

        seg_txns: List[Tuple[int, int, int, bool, Optional[str]]] = []
        seg_wr: List[Tuple[int, list, list]] = []
        per_session: Dict[int, int] = {}
        hb = self._hb
        for rec in retiring:
            seg_txns.append((rec.tid, rec.sid, rec.sidx, rec.committed, rec.label))
            if rec.committed and (rec.wr_first_any or rec.wr_first_good):
                seg_wr.append(
                    (
                        rec.tid,
                        list(rec.wr_first_any.items()),
                        list(rec.wr_first_good.items()),
                    )
                )
            per_session[rec.sid] = per_session.get(rec.sid, 0) + 1
            hb.pop(rec.tid, None)
        del txns[:count]
        self._txns_base = new_base
        by_session = self._by_session
        sess_base = self._sess_base
        for sid, removed in per_session.items():
            # Within a session tids ascend with the session index, so the
            # retiring transactions are exactly its oldest ``removed``.
            del by_session[sid][:removed]
            sess_base[sid] += removed

        # Evict writes whose writer retired; their identities survive only
        # as digests inside the segment.
        writes = self._writes
        key_names = self._key_table.values
        digests: List[int] = []
        evicted = [wkey for wkey, entry in writes.items() if entry[0] < new_base]
        for wkey in evicted:
            del writes[wkey]
            digests.append(stable_digest(key_names[wkey[0]], wkey[1]))
        digests.sort()

        # Spill finalized edge-log entries: an entry is immutable once its
        # *reader* endpoint (the low half) retires -- only the reader's own
        # saturation could have lowered its meta, and a retired reader never
        # saturates again.  Writer endpoints may still be live; tids are
        # absolute and stable, so the entries serialize as-is.
        spilled_logs: Dict[str, List[Tuple[int, int]]] = {}
        total_spilled = 0
        for name, log in (
            ("rc", self._rc_log),
            ("ra", self._ra_log),
            ("ra_so", self._ra_so_log),
            ("cc", self._cc_log),
        ):
            doomed = [edge for edge in log if (edge & EDGE_MASK) < new_base]
            if doomed:
                spilled_logs[name] = [(edge, log.pop(edge)) for edge in doomed]
                total_spilled += len(doomed)

        # Compact the CC writer registry: inside each (key, session) slot the
        # retired rows form a prefix (rows append in arrival order); keep only
        # the *last* retired row.  Any future probe's bound is at least the
        # watermark and the kept row's session index is at most the watermark,
        # so the kept row answers every probe a removed row could have.
        # Saturation pointers shift down by the removed count (a pointer
        # landing at 0 re-advances on its next probe).
        removed_per_state: Dict[int, int] = {}
        if self._cc_enabled:
            for key, (_sids, per_sid) in self._writers_by_key.items():
                for other, slot in per_sid.items():
                    retired_rows = bisect_left(slot[0], new_base)
                    if retired_rows > 1:
                        removed = retired_rows - 1
                        del slot[0][:removed]
                        del slot[1][:removed]
                        removed_per_state[(other << EDGE_SHIFT) | key] = removed
            if removed_per_state:
                for pointer in self._cc_ptr:
                    for state, removed in removed_per_state.items():
                        ptr = pointer.get(state)
                        if ptr:
                            pointer[state] = ptr - removed if ptr > removed else 0

        self._segments.write(
            {
                "txns": seg_txns,
                "wr": seg_wr,
                "logs": spilled_logs,
                "digests": digests,
            }
        )

        stats.retired_transactions += count
        stats.passes += 1
        stats.segments = len(self._segments)
        stats.evicted_writes += len(digests)
        stats.spilled_edges += total_spilled
        if removed_per_state:
            stats.remap_epochs += 1
        resident = len(txns)
        if resident > stats.post_compaction_peak:
            stats.post_compaction_peak = resident

    # -- inferred-edge recording -----------------------------------------------

    @staticmethod
    def _record(log: _EdgeLog, t2: int, t1: int, kid: int, sort_key: int) -> None:
        """Keep the batch-order-earliest ``(sort key, key id)`` per packed edge.

        Metas compare by sort key first (the key id occupies the low bits and
        sort keys are unique per recording), so ``min`` by meta is ``min`` by
        batch position.
        """
        edge = pack_edge(t2, t1)
        meta = (sort_key << EDGE_SHIFT) | (kid + 1)
        current = log.get(edge)
        if current is None or meta < current:
            log[edge] = meta

    def _rc_saturate(self, rec: _Txn) -> None:
        """Per-transaction RC saturation (the body of Algorithm 1's main loop)."""
        reads = rec.good_reads
        if not reads:
            return
        seen_txns: Set[int] = set()
        first_txn_reads: Set[int] = set()
        for index, _key, writer in reads:
            if writer not in seen_txns:
                seen_txns.add(writer)
                first_txn_reads.add(index)
        earliest: Dict[int, Tuple[Optional[int], Optional[int]]] = {}
        read_keys: Dict[int, None] = {}
        seq = _sort_base(rec.sid, rec.sidx)
        for index, key, t2 in reversed(reads):
            if index in first_txn_reads:
                writer_rec = self._txns[t2 - self._txns_base]
                if len(writer_rec.keys_written) <= len(read_keys):
                    candidates = [
                        x for x in writer_rec.keys_written_ordered if x in read_keys
                    ]
                else:
                    keys_written = writer_rec.keys_written
                    candidates = [x for x in read_keys if x in keys_written]
                for x in candidates:
                    older, newer = earliest[x]
                    t1 = newer
                    if t1 == t2:
                        t1 = older
                    if t1 is not None and t1 != t2:
                        self._record(self._rc_log, t2, t1, x, seq)
                        seq += 1
            pair = earliest.get(key)
            if pair is None:
                earliest[key] = (None, t2)
            elif pair[1] != t2:
                earliest[key] = (pair[1], t2)
            read_keys[key] = None

    # -- RA frontier (Algorithm 2, online) --------------------------------------

    def _advance_ra(self, sid: int) -> None:
        if not self._ra_enabled:
            return
        records = self._by_session[sid]
        base = self._sess_base[sid]
        index = self._ra_next[sid]
        last_write = self._ra_last_write[sid]
        while index - base < len(records):
            rec = records[index - base]
            if rec.committed:
                if not rec.resolved:
                    break
                self._ra_process(rec, last_write)
            index += 1
        self._ra_next[sid] = index

    def _ra_process(self, rec: _Txn, last_write: Dict[int, int]) -> None:
        reads = rec.good_reads
        seq = _sort_base(rec.sid, rec.sidx)
        reader_of_key: Dict[int, int] = {}
        distinct_writers: List[int] = []
        seen_writers: Set[int] = set()
        for _index, key, writer in reads:
            reader_of_key.setdefault(key, writer)
            if writer not in seen_writers:
                seen_writers.add(writer)
                distinct_writers.append(writer)

        # Case t2 -so-> t3 (also the whole single-session specialization).
        for _index, key, t1 in reads:
            t2 = last_write.get(key)
            if t2 is not None and t2 != t1:
                self._record(self._ra_so_log, t2, t1, key, seq)
                self._record(self._ra_log, t2, t1, key, seq)
                seq += 1

        # Case t2 -wr-> t3: intersect writer keys with read keys, iterating
        # the smaller side in deterministic order (as the batch checker does).
        keys_read = reader_of_key.keys()
        for t2 in distinct_writers:
            writer_rec = self._txns[t2 - self._txns_base]
            keys_written = writer_rec.keys_written
            if len(keys_written) <= len(keys_read):
                candidates = (
                    x for x in writer_rec.keys_written_ordered if x in reader_of_key
                )
            else:
                candidates = (x for x in keys_read if x in keys_written)
            for x in candidates:
                t1 = reader_of_key[x]
                if t1 != t2:
                    self._record(self._ra_log, t2, t1, x, seq)
                    seq += 1

        for key in rec.keys_written_ordered:
            last_write[key] = rec.tid
        if not self._cc_enabled:
            rec.good_reads = []

    # -- CC frontier (Algorithm 3, online) --------------------------------------

    def _advance_cc(self, sid: int) -> None:
        if not self._cc_enabled:
            return
        queue = [sid]
        tbase = self._txns_base
        while queue:
            current = queue.pop()
            records = self._by_session[current]
            base = self._sess_base[current]
            index = self._cc_next[current]
            while index - base < len(records):
                rec = records[index - base]
                if rec.committed:
                    if not rec.resolved:
                        break
                    if not rec.cc_registered:
                        rec.cc_registered = True
                        seen: Set[int] = set()
                        pending = 0
                        for _i, _key, writer in rec.good_reads:
                            if writer in seen:
                                continue
                            seen.add(writer)
                            if not self._txns[writer - tbase].cc_done:
                                pending += 1
                                self._cc_waiters.setdefault(writer, []).append(rec)
                        rec.cc_pending = pending
                    if rec.cc_pending > 0:
                        break
                    queue.extend(self._cc_process(rec))
                index += 1
            self._cc_next[current] = index

    def _cc_process(self, rec: _Txn) -> List[int]:
        """ComputeHB + saturate_cc for one transaction; returns sessions to poke."""
        txns = self._txns
        tbase = self._txns_base
        clock = list(self._session_clock[rec.sid])
        seen: Set[int] = set()
        for _index, _key, writer in rec.good_reads:
            if writer in seen:
                continue
            seen.add(writer)
            wrec = txns[writer - tbase]
            wclock = self._hb[writer]
            if len(wclock) > len(clock):
                clock.extend([-1] * (len(wclock) - len(clock)))
            for s2, value in enumerate(wclock):
                if value > clock[s2]:
                    clock[s2] = value
            if wrec.sid >= len(clock):
                clock.extend([-1] * (wrec.sid + 1 - len(clock)))
            if wrec.sidx > clock[wrec.sid]:
                clock[wrec.sid] = wrec.sidx
        self._hb[rec.tid] = clock

        last_write = self._cc_last_write[rec.sid]
        pointer = self._cc_ptr[rec.sid]
        seq = _sort_base(rec.sid, rec.sidx)
        for _index, key, t1 in rec.good_reads:
            key_writers = self._writers_by_key.get(key)
            if not key_writers:
                continue
            sids, per_sid = key_writers
            for other in sids:
                writer_list, writer_indices = per_sid[other]
                state = (other << EDGE_SHIFT) | key
                ptr = pointer.get(state, 0)
                bound = clock[other] if other < len(clock) else -1
                if ptr < len(writer_list) and writer_indices[ptr] <= bound:
                    while ptr < len(writer_list) and writer_indices[ptr] <= bound:
                        ptr += 1
                    last_write[state] = writer_list[ptr - 1]
                    pointer[state] = ptr
                t2 = last_write.get(state)
                if t2 is not None and t2 != t1:
                    self._record(self._cc_log, t2, t1, key, seq)
                    seq += 1

        next_clock = list(clock)
        if rec.sid >= len(next_clock):
            next_clock.extend([-1] * (rec.sid + 1 - len(next_clock)))
        if rec.sidx > next_clock[rec.sid]:
            next_clock[rec.sid] = rec.sidx
        self._session_clock[rec.sid] = next_clock

        rec.cc_done = True
        rec.good_reads = []
        waiters = self._cc_waiters.pop(rec.tid, None)
        poke: List[int] = []
        if waiters:
            for waiter in waiters:
                waiter.cc_pending -= 1
                if waiter.cc_pending == 0:
                    poke.append(waiter.sid)
        return poke

    # -- finalize helpers --------------------------------------------------------

    def _final_sessions(self):
        """Per-session record sequences for the finalize loops.

        Without retirement this is ``_by_session`` itself (zero overhead);
        with retirement each session's retired stand-ins (reloaded from the
        segments) are prepended, so the loops below see every transaction of
        the history in session order exactly as a never-evicting run would.
        """
        retired = self._retired_final
        if retired is None:
            return self._by_session
        merged = []
        for sid, records in enumerate(self._by_session):
            front = retired.records[sid]
            if len(front) != self._sess_base[sid]:  # pragma: no cover - defensive
                raise AssertionError("segment store lost retired transactions")
            merged.append(front + records)
        return merged

    def _spilled_run(self, name: str):
        """The segments' spilled ``(edge, meta)`` entries for one edge log."""
        retired = self._retired_final
        if retired is None:
            return None
        return retired.log_runs.get(name)

    def _batch_numbering(self):
        """Renumber transactions the way ``History.from_sessions`` would.

        Returns ``(mapping, names, committed_ids, so_edges)`` where
        ``mapping[streaming tid] = batch tid``; this makes the rebuilt commit
        relations (and hence witnesses) identical to the batch checkers'.
        """
        mapping = [0] * self._next_tid
        names = [""] * self._next_tid
        committed_ids: List[int] = []
        so_edges: List[Tuple[int, int]] = []
        batch_tid = 0
        for records in self._final_sessions():
            previous = -1
            for rec in records:
                mapping[rec.tid] = batch_tid
                names[batch_tid] = (
                    rec.label if rec.label is not None else f"t{batch_tid}"
                )
                if rec.committed:
                    committed_ids.append(batch_tid)
                    if previous >= 0:
                        so_edges.append((previous, batch_tid))
                    previous = batch_tid
                batch_tid += 1
        return mapping, names, committed_ids, so_edges

    def _wr_any_edges(self, mapping: List[int]) -> Iterator[Tuple[int, int, int]]:
        for records in self._final_sessions():
            for rec in records:
                if not rec.committed:
                    continue
                reader = mapping[rec.tid]
                for writer, kid in rec.wr_first_any.items():
                    yield (mapping[writer], reader, kid)

    def _build_relation(
        self,
        mapping: List[int],
        names: List[str],
        committed_ids: List[int],
        so_edges: List[Tuple[int, int]],
        log: _EdgeLog,
        spilled: Optional[List[Tuple[int, int]]] = None,
    ) -> CommitRelation:
        relation = CommitRelation.from_edges(
            names,
            committed_ids,
            so_edges,
            self._wr_any_edges(mapping),
            key_names=self._key_table.values,
        )
        # Drain the packed log directly into the relation's co rows: sort
        # the edge ints by their meta (= batch position), renumber, append,
        # pop each entry as it is replayed.  The log can hold hundreds of
        # thousands of edges on large histories, so it never coexists whole
        # with a second copy; dedup and labels happen at the CSR freeze.
        co_append = relation._co_log.append
        cok_append = relation._co_keys.append
        if spilled:
            # Merge the segments' spilled runs with the live log.  Edges are
            # globally unique across runs and the live log (a spilled edge's
            # reader retired and can never record again), so one sort by meta
            # restores the exact global batch drain order.
            items = list(log.items())
            log.clear()
            items.extend(spilled)
            items.sort(key=lambda item: item[1])
            for edge, meta in items:
                kid = (meta & EDGE_MASK) - 1
                t2, t1 = unpack_edge(edge)
                co_append((mapping[t2] << EDGE_SHIFT) | mapping[t1])
                cok_append(kid)
        else:
            for edge in sorted(log, key=log.__getitem__):
                kid = (log.pop(edge) & EDGE_MASK) - 1
                t2, t1 = unpack_edge(edge)
                co_append((mapping[t2] << EDGE_SHIFT) | mapping[t1])
                cok_append(kid)
        return relation

    def _causality_graph(self, mapping: List[int]):
        """The committed ``so ∪ good-wr`` graph, frozen to CSR rows."""
        so_log: List[int] = []
        wr_log: List[int] = []
        wr_keys: List[int] = []
        sessions = self._final_sessions()
        for records in sessions:
            previous = -1
            for rec in records:
                if not rec.committed:
                    continue
                current = mapping[rec.tid]
                if previous >= 0:
                    so_log.append((previous << EDGE_SHIFT) | current)
                previous = current
        for records in sessions:
            for rec in records:
                if not rec.committed:
                    continue
                reader = mapping[rec.tid]
                for writer, kid in rec.wr_first_good.items():
                    wr_log.append((mapping[writer] << EDGE_SHIFT) | reader)
                    wr_keys.append(kid)
        graph = freeze_packed(self._next_tid, (so_log, wr_log))
        labels = causality_labels(
            so_log, wr_log, wr_keys, key_names=self._key_table.values
        )
        return graph, labels

    def _result(
        self,
        level: IsolationLevel,
        violations: List[Violation],
        checker: str,
        relation: Optional[CommitRelation],
        co_edges: bool = True,
    ) -> CheckResult:
        stats: Dict[str, float] = {}
        if relation is not None:
            stats["inferred_edges"] = relation.num_inferred_edges
            if co_edges:
                stats["co_edges"] = relation.num_edges
            # freeze/acyclicity/witness wall laps, for `--stream --profile`.
            stats.update(relation.timings)
        return CheckResult(
            level=level,
            violations=violations,
            checker=checker,
            elapsed_seconds=self._elapsed,
            num_operations=self._num_operations,
            num_transactions=self._next_tid,
            num_sessions=len(self._by_session),
            stats=stats,
        )


def check_stream(
    pairs: Iterable[Tuple[object, Transaction]],
    level: IsolationLevel = IsolationLevel.CAUSAL_CONSISTENCY,
    max_witnesses: Optional[int] = None,
    num_sessions: Optional[int] = None,
    retire: Optional[RetirementPolicy] = None,
) -> CheckResult:
    """One-pass check of a ``(session, transaction)`` stream against ``level``.

    Convenience wrapper over :class:`IncrementalChecker` for the common
    single-level case (used by ``awdit check --stream``).
    """
    checker = IncrementalChecker(
        levels=(level,),
        num_sessions=num_sessions,
        max_witnesses=max_witnesses,
        retire=retire,
    )
    checker.extend(pairs)
    return checker.finalize()[level]
