"""Streaming-mode dispatch: engines, parallel ingestion, checkpoints.

The batch side of the repo dispatches one *engine* axis
(``object | compiled | sharded``); this module gives streaming (*mode*) the
same orthogonal treatment:

* ``engine="compiled"`` (the default via ``"auto"``) checks with the
  :class:`~repro.core.compiled.online.CompiledIncrementalChecker` -- raw
  parser records in, no model objects on the hot path;
* ``engine="sharded"`` / ``jobs=N`` additionally parallelizes *ingestion*:
  the file is cut into record-aligned byte regions
  (:mod:`repro.shard.split`) parsed by ``N`` forked workers, whose records
  feed the sequential online core in file order -- the check itself stays
  one-pass and byte-identical;
* ``engine="object"`` keeps the original
  :class:`~repro.stream.incremental.IncrementalChecker` as the independent
  reference implementation for parity testing.

:func:`check_stream_file` is the CLI's ``awdit check --stream`` entry point
and carries the checkpoint/resume surface: ``checkpoint=`` serializes the
online state every ``checkpoint_every`` transactions (and once more before
finalizing), ``resume=True`` restores it and skips the records the
checkpoint already consumed.  :func:`check_history_stream` runs the same
engines over an in-memory history (the parity harness behind
``check(..., mode="stream")``).
"""

from __future__ import annotations

import gc
import multiprocessing
import time
from collections import deque
from typing import Dict, Iterable, Iterator, Optional, Tuple, Union

from repro.core.compiled.ir import CompiledHistory
from repro.core.compiled.online import (
    CompiledIncrementalChecker,
    check_stream_compiled,
    load_checkpoint,
    source_fingerprint,
)
from repro.core.compiled.retire import RetirementPolicy
from repro.core.isolation import IsolationLevel
from repro.core.model import History
from repro.core.result import CheckResult
from repro.histories.formats._raw import RawTransaction, RecordBatch
from repro.stream.incremental import IncrementalChecker

__all__ = [
    "DEFAULT_CHECKPOINT_EVERY",
    "STREAM_ENGINES",
    "check_all_levels_history_stream",
    "check_history_stream",
    "check_stream_file",
    "history_records",
    "iter_raw_batches",
    "iter_raw_records",
    "stream_live_stats",
]

#: Engines accepted by the streaming mode.  ``auto`` resolves to
#: ``compiled``; ``sharded`` is ``compiled`` plus byte-range parallel
#: ingestion (which only applies to on-disk histories).
STREAM_ENGINES = ("auto", "compiled", "sharded", "object")

#: Default checkpoint cadence (transactions between saves).
DEFAULT_CHECKPOINT_EVERY = 10_000

_RawRecord = Tuple[object, RawTransaction]


def history_records(
    history: Union[History, CompiledHistory],
) -> Iterator[_RawRecord]:
    """Raw ``(session, (label, committed, ops))`` records of an in-memory history.

    Records come in the on-disk file order (session by session), which is
    the order the streaming parsers would deliver them.
    """
    if isinstance(history, CompiledHistory):
        key_objs = history.key_table.values
        value_objs = history.value_table.values
        op_kind = history.op_kind
        op_key = history.op_key
        op_value = history.op_value
        txn_start = history.txn_start
        for sid, session in enumerate(history.sessions):
            for tid in session:
                lo, hi = txn_start[tid], txn_start[tid + 1]
                ops = [
                    (bool(op_kind[i]), key_objs[op_key[i]], value_objs[op_value[i]])
                    for i in range(lo, hi)
                ]
                yield sid, (
                    history.labels.get(tid),
                    bool(history.txn_committed[tid]),
                    ops,
                )
        return
    for sid, session in enumerate(history.sessions):
        for tid in session:
            txn = history.transactions[tid]
            ops = [(op.is_write, op.key, op.value) for op in txn.operations]
            yield sid, (txn.label, txn.committed, ops)


def _parse_range_batches_task(args):
    from repro.shard.split import parse_byte_range_batches

    path, lo, hi, fmt, batch_ops = args
    return parse_byte_range_batches(path, lo, hi, fmt=fmt, batch_ops=batch_ops)


def iter_raw_batches(
    path: str,
    fmt: Optional[str] = None,
    jobs: Optional[int] = None,
    batch_ops: Optional[int] = None,
) -> Iterator[RecordBatch]:
    """Record batches of ``path`` in file order, optionally parsed in parallel.

    With ``jobs`` > 1, a splittable format, and usable ``fork`` parallelism,
    the file is cut into record-aligned byte regions parsed by a worker
    pool; batches still come back in exact file order (regions are ordered
    and each preserves its slice's order), so consumers cannot tell the
    difference -- and the pool ships compact flat columns instead of
    per-record tuples.  Everything else falls back to the sequential
    streaming parse.  Parallel parsing buffers a few regions in flight,
    trading the strictly-bounded parser memory of the sequential path for
    parse throughput.
    """
    from repro.histories.formats import stream_raw_batches

    if jobs is not None and jobs > 1:
        from repro.shard.parallel import will_parallelize
        from repro.shard.split import split_byte_ranges, validate_range_summaries

        ranges = (
            split_byte_ranges(path, jobs * 4, fmt=fmt) if will_parallelize(jobs) else None
        )
        if ranges is not None and len(ranges) > 1:
            context = multiprocessing.get_context("fork")
            summaries = []
            # Bounded submission window: workers may run at most a couple of
            # regions ahead of the consumer, so a checker slower than the
            # parsers cannot make parsed-but-unconsumed regions pile up and
            # defeat the streaming memory bound.
            with context.Pool(processes=jobs) as pool:
                tasks = deque()
                pending = deque()
                for lo, hi in ranges:
                    tasks.append((path, lo, hi, fmt, batch_ops))
                window = jobs + 2
                while tasks or pending:
                    while tasks and len(pending) < window:
                        pending.append(
                            pool.apply_async(
                                _parse_range_batches_task, (tasks.popleft(),)
                            )
                        )
                    batches, summary = pending.popleft().get()
                    summaries.append(summary)
                    for batch in batches:
                        yield batch
            validate_range_summaries(path, summaries, fmt=fmt)
            return
    for batch in stream_raw_batches(path, fmt, batch_ops=batch_ops):
        yield batch


def iter_raw_records(
    path: str,
    fmt: Optional[str] = None,
    jobs: Optional[int] = None,
    batch_ops: Optional[int] = None,
) -> Iterator[_RawRecord]:
    """Raw records of ``path`` in file order, optionally parsed in parallel.

    The record-at-a-time wrapper over :func:`iter_raw_batches` (same
    ordering guarantees); consumers that can fold whole batches should use
    :func:`iter_raw_batches` directly.
    """
    for batch in iter_raw_batches(path, fmt=fmt, jobs=jobs, batch_ops=batch_ops):
        for record in batch.iter_records():
            yield record


def _gc_collections() -> int:
    """Total collector runs across all generations (``--profile`` deltas)."""
    return sum(entry["collections"] for entry in gc.get_stats())


def _resolve_stream_engine(engine: str, jobs: Optional[int]) -> str:
    if engine not in STREAM_ENGINES:
        raise ValueError(
            f"unknown streaming engine {engine!r}; expected one of {STREAM_ENGINES}"
        )
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if engine == "object":
        if jobs is not None:
            raise ValueError(
                "jobs parallelizes streaming ingestion for the compiled online "
                "core; the object streaming engine is single-process"
            )
        return "object"
    if engine == "auto" and jobs is not None:
        return "sharded"
    return "compiled" if engine == "auto" else engine


def check_history_stream(
    history: Union[History, CompiledHistory],
    level: IsolationLevel = IsolationLevel.CAUSAL_CONSISTENCY,
    engine: str = "auto",
    jobs: Optional[int] = None,
    max_witnesses: Optional[int] = None,
    retire: Optional[RetirementPolicy] = None,
) -> CheckResult:
    """Stream an in-memory history through the chosen online engine.

    This is ``check(history, level, mode="stream")``: the history's
    transactions are replayed in file order into the online checker.  With
    ``engine="sharded"`` the parallel-ingestion axis has nothing to
    parallelize for an in-memory history, so it runs the same compiled
    online core (``jobs`` is accepted for interface symmetry).  ``retire``
    enables watermark-based retirement on either engine.
    """
    resolved = _resolve_stream_engine(engine, jobs)
    if resolved == "object":
        if isinstance(history, CompiledHistory):
            raise ValueError("a CompiledHistory requires a compiled-IR engine")
        checker = IncrementalChecker(
            levels=(level,),
            num_sessions=history.num_sessions,
            max_witnesses=max_witnesses,
            retire=retire,
        )
        for sid, session in enumerate(history.sessions):
            for tid in session:
                checker.append(sid, history.transactions[tid])
        return checker.finalize()[level]
    return check_stream_compiled(
        history_records(history),
        level,
        max_witnesses=max_witnesses,
        num_sessions=history.num_sessions,
        retire=retire,
    )


def check_all_levels_history_stream(
    history: Union[History, CompiledHistory],
    engine: str = "auto",
    jobs: Optional[int] = None,
    max_witnesses: Optional[int] = None,
    retire: Optional[RetirementPolicy] = None,
) -> dict:
    """Stream an in-memory history once, checking all three levels together.

    The all-levels analogue of :func:`check_history_stream`
    (``check_all_levels(..., mode="stream")``): one online pass maintains
    RC, RA, and CC state simultaneously and one finalize emits all three
    results.
    """
    resolved = _resolve_stream_engine(engine, jobs)
    if resolved == "object":
        if isinstance(history, CompiledHistory):
            raise ValueError("a CompiledHistory requires a compiled-IR engine")
        checker: object = IncrementalChecker(
            num_sessions=history.num_sessions,
            max_witnesses=max_witnesses,
            retire=retire,
        )
        for sid, session in enumerate(history.sessions):
            for tid in session:
                checker.append(sid, history.transactions[tid])
        return checker.finalize()
    compiled_checker = CompiledIncrementalChecker(
        num_sessions=history.num_sessions, max_witnesses=max_witnesses, retire=retire
    )
    compiled_checker.extend_raw(history_records(history))
    return compiled_checker.finalize()


def check_stream_file(
    path: str,
    level: IsolationLevel = IsolationLevel.CAUSAL_CONSISTENCY,
    fmt: Optional[str] = None,
    engine: str = "auto",
    jobs: Optional[int] = None,
    max_witnesses: Optional[int] = None,
    checkpoint: Optional[str] = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    resume: bool = False,
    batch_ops: Optional[int] = None,
    timings: Optional[Dict[str, float]] = None,
    retire: Optional[RetirementPolicy] = None,
    gc_tune: bool = False,
) -> CheckResult:
    """One-pass check of an on-disk history (``awdit check --stream``).

    Every engine folds the parsers' record batches (``batch_ops`` operations
    per batch; the verdict is identical for any value).  ``jobs``
    parallelizes the parse via byte-range workers (compiled engines only);
    ``checkpoint`` periodically serializes the online state -- at the first
    batch boundary past every ``checkpoint_every`` transactions, and once
    more before finalizing -- so ``resume=True`` can continue an
    interrupted check, including after completion, when resuming simply
    skips every record and re-finalizes.  ``retire`` bounds resident memory
    via watermark-based retirement; on resume it enables (or re-tunes)
    retirement on the restored checker, including v4 checkpoints that
    predate the protocol.  ``timings`` (``--profile``) receives ``parse`` /
    ``fold`` wall seconds, the fold's ``fold_intern`` / ``fold_dispatch`` /
    ``fold_classify`` / ``fold_clock_join`` sub-laps, and per-phase
    ``gc.get_stats()`` collection deltas (``parse_gc_collections`` /
    ``fold_gc_collections``).  ``gc_tune`` freezes the interpreter heap
    after the first folded batch and raises the gen-2 threshold for the
    rest of the stream (``--gc-tune``); thresholds, the freeze, and the
    collector's enabled state are restored before returning.
    """
    if batch_ops is not None and batch_ops < 1:
        raise ValueError(f"batch_ops must be >= 1, got {batch_ops}")
    resolved = _resolve_stream_engine(engine, jobs)
    if resolved == "object":
        if checkpoint is not None or resume:
            raise ValueError(
                "checkpoint/resume require the compiled streaming engine"
            )
        from repro.histories.formats import stream_raw_batches

        object_checker = IncrementalChecker(
            levels=(level,), max_witnesses=max_witnesses, retire=retire
        )
        for batch in stream_raw_batches(path, fmt, batch_ops=batch_ops):
            object_checker.append_batch(batch)
        return object_checker.finalize()[level]
    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    if resume:
        if checkpoint is None:
            raise ValueError("resume requires a checkpoint path")
        checker = load_checkpoint(checkpoint, source_path=path)
        if level not in checker.levels:
            raise ValueError(
                f"checkpoint tracks {[lvl.short_name for lvl in checker.levels]}, "
                f"not {level.short_name}; re-run without --resume"
            )
        # The resumed run's witness budget wins over the one pickled with
        # the original checker.
        checker._max_witnesses = max_witnesses
        if retire is not None:
            checker.enable_retirement(retire)
    else:
        checker = CompiledIncrementalChecker(
            levels=(level,), max_witnesses=max_witnesses, retire=retire
        )
    skip = checker.num_transactions
    profile = timings is not None
    if profile:
        laps = checker.enable_fold_profile()
        parse_lap = 0.0
        fold_lap = 0.0
        parse_gc = 0
        fold_gc = 0
    source = None if checkpoint is None else source_fingerprint(path)
    since_checkpoint = 0
    gc_was_enabled = gc.isenabled()
    gc_thresholds = None
    try:
        batches = iter_raw_batches(path, fmt=fmt, jobs=jobs, batch_ops=batch_ops)
        while True:
            if profile:
                gc_mark = _gc_collections()
                mark = time.perf_counter()
                batch = next(batches, None)
                parse_lap += time.perf_counter() - mark
                parse_gc += _gc_collections() - gc_mark
            else:
                batch = next(batches, None)
            if batch is None:
                break
            if skip:
                # Resume: drop whole batches the checkpoint already consumed,
                # then cut the straddling batch at the resume point.
                num_records = len(batch.txn_end)
                if num_records <= skip:
                    skip -= num_records
                    continue
                batch = batch.tail(skip)
                skip = 0
            if profile:
                gc_mark = _gc_collections()
                mark = time.perf_counter()
                checker.append_batch(batch)
                fold_lap += time.perf_counter() - mark
                fold_gc += _gc_collections() - gc_mark
            else:
                checker.append_batch(batch)
            if gc_tune and gc_thresholds is None:
                # Warmup done: the first folded batch has populated the
                # intern tables, kernel registries, and column arrays.
                # Everything alive now is effectively immortal, so move it
                # out of the collector's reach and make full (gen-2)
                # collections 8x rarer -- the columnar fold allocates so
                # few tracked objects that the remaining gen-2 walks are
                # almost entirely survivors being re-scanned.
                gc.collect()
                gc.freeze()
                gc_thresholds = gc.get_threshold()
                gc.set_threshold(
                    gc_thresholds[0], gc_thresholds[1], gc_thresholds[2] * 8
                )
            if checkpoint is not None:
                since_checkpoint += len(batch.txn_end)
                if since_checkpoint >= checkpoint_every:
                    checker.save_checkpoint(checkpoint, source=source)
                    since_checkpoint = 0
    finally:
        if gc_thresholds is not None:
            gc.set_threshold(*gc_thresholds)
            gc.unfreeze()
        if gc_was_enabled and not gc.isenabled():  # pragma: no cover - defensive
            gc.enable()
        # --gc-tune must never leak a disabled collector into library
        # callers (freeze/threshold tuning does not disable it; this
        # pins that invariant).
        assert gc.isenabled() == gc_was_enabled
    if checkpoint is not None:
        checker.save_checkpoint(checkpoint, source=source)
    if profile:
        timings["parse"] = parse_lap
        timings["fold"] = fold_lap
        timings["fold_intern"] = laps["intern"]
        timings["fold_dispatch"] = laps["dispatch"]
        timings["fold_classify"] = laps["classify"]
        timings["fold_clock_join"] = laps["clock_join"]
        timings["parse_gc_collections"] = parse_gc
        timings["fold_gc_collections"] = fold_gc
    return checker.finalize()[level]


def stream_live_stats(
    path: str,
    fmt: Optional[str] = None,
    levels: Optional[Iterable[IsolationLevel]] = None,
    batch_ops: Optional[int] = None,
    retire: Optional[RetirementPolicy] = None,
) -> dict:
    """Feed ``path`` through the online core and return its live-state peaks.

    Powers ``awdit stats --stream``: the returned dict is
    :meth:`CompiledIncrementalChecker.live_stats` after the whole stream has
    been folded (but before finalize, so the reported footprint is the
    online state itself).  With ``retire`` the retirement counters show how
    much of the history has rotated into segments.
    """
    from repro.histories.formats import stream_raw_batches

    checker = CompiledIncrementalChecker(
        levels=tuple(levels) if levels is not None else None, retire=retire
    )
    for batch in stream_raw_batches(path, fmt, batch_ops=batch_ops):
        checker.append_batch(batch)
    stats = checker.live_stats()
    if checker._segments is not None:
        # Stats-only run: never finalized, so drop owned segment tempdirs.
        checker._segments.cleanup()
    return stats
