"""Cycle detection, strongly connected components, and topological sorting.

The checkers follow the witness-reporting strategy of Section 3.4: acyclicity
of the inferred commit relation ``co'`` is decided with Tarjan's strongly
connected components algorithm, and for every non-trivial SCC a single simple
cycle is extracted as a witness.  All algorithms are iterative (no recursion)
so they scale to histories with millions of transactions without hitting
Python's recursion limit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.graph.digraph import DiGraph

__all__ = [
    "strongly_connected_components",
    "topological_sort",
    "has_cycle",
    "find_cycle",
    "find_cycle_in_component",
]


def strongly_connected_components(graph: DiGraph) -> List[List[int]]:
    """Compute the strongly connected components of ``graph``.

    Uses an iterative version of Tarjan's algorithm.  Components are returned
    in reverse topological order (a component is emitted only after all the
    components it can reach), each as a list of vertex ids.
    """
    n = graph.num_vertices
    index_of = [-1] * n
    lowlink = [0] * n
    on_stack = [False] * n
    stack: List[int] = []
    components: List[List[int]] = []
    next_index = 0

    for root in range(n):
        if index_of[root] != -1:
            continue
        # Each work item is (vertex, iterator position into its successors).
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            vertex, pos = work[-1]
            if pos == 0:
                index_of[vertex] = next_index
                lowlink[vertex] = next_index
                next_index += 1
                stack.append(vertex)
                on_stack[vertex] = True
            successors = graph.successors(vertex)
            advanced = False
            while pos < len(successors):
                succ = successors[pos]
                pos += 1
                if index_of[succ] == -1:
                    work[-1] = (vertex, pos)
                    work.append((succ, 0))
                    advanced = True
                    break
                if on_stack[succ]:
                    if index_of[succ] < lowlink[vertex]:
                        lowlink[vertex] = index_of[succ]
            if advanced:
                continue
            work.pop()
            if lowlink[vertex] == index_of[vertex]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == vertex:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                if lowlink[vertex] < lowlink[parent]:
                    lowlink[parent] = lowlink[vertex]
    return components


def topological_sort(graph: DiGraph) -> Optional[List[int]]:
    """Return a topological order of ``graph`` or ``None`` if it has a cycle.

    Kahn's algorithm over unique successors; parallel edges do not affect
    the result.  (The checkers' hot paths use
    :func:`repro.graph.csr.toposort_frozen` over frozen CSR rows instead;
    this DiGraph form serves the baselines.)
    """
    n = graph.num_vertices
    indegree = [0] * n
    unique_succ: List[List[int]] = []
    for vertex in range(n):
        succs = graph.unique_successors(vertex)
        unique_succ.append(succs)
        for succ in succs:
            indegree[succ] += 1
    queue = [v for v in range(n) if indegree[v] == 0]
    order: List[int] = []
    head = 0
    while head < len(queue):
        vertex = queue[head]
        head += 1
        order.append(vertex)
        for succ in unique_succ[vertex]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                queue.append(succ)
    if len(order) != n:
        return None
    return order


def has_cycle(graph: DiGraph) -> bool:
    """True when ``graph`` contains a directed cycle (including self-loops)."""
    for vertex in range(graph.num_vertices):
        if vertex in graph.successors(vertex):
            return True
    return any(len(c) > 1 for c in strongly_connected_components(graph))


def find_cycle_in_component(graph: DiGraph, component: Sequence[int]) -> List[int]:
    """Extract one simple cycle inside a non-trivial strongly connected component.

    Returns the cycle as a vertex list ``[v0, v1, ..., vm]`` where consecutive
    vertices are connected by edges of ``graph`` and ``vm`` has an edge back
    to ``v0``.  ``component`` must be an SCC of ``graph`` with more than one
    vertex, or a single vertex with a self-loop.
    """
    members = set(component)
    start = component[0]
    if len(component) == 1:
        if start in graph.successors(start):
            return [start]
        raise ValueError("component is trivial and has no self-loop")
    # DFS restricted to the component until we re-reach an ancestor on the
    # current path; the path suffix from that ancestor is a simple cycle.
    parent: Dict[int, Optional[int]] = {start: None}
    on_path: Set[int] = {start}
    stack: List[Tuple[int, int]] = [(start, 0)]
    while stack:
        vertex, pos = stack[-1]
        successors = graph.successors(vertex)
        advanced = False
        while pos < len(successors):
            succ = successors[pos]
            pos += 1
            if succ not in members:
                continue
            if succ in on_path:
                # Found a cycle: walk back from vertex to succ.
                cycle = [vertex]
                node = parent[vertex]
                while node is not None and cycle[-1] != succ:
                    cycle.append(node)
                    node = parent[node]
                if cycle[-1] != succ:
                    cycle.append(succ)
                cycle.reverse()
                return cycle
            if succ not in parent:
                stack[-1] = (vertex, pos)
                parent[succ] = vertex
                on_path.add(succ)
                stack.append((succ, 0))
                advanced = True
                break
        if advanced:
            continue
        stack.pop()
        on_path.discard(vertex)
    raise ValueError("no cycle found in component (not an SCC?)")


def find_cycle(graph: DiGraph) -> Optional[List[int]]:
    """Find one simple cycle anywhere in ``graph``, or ``None`` if acyclic."""
    for vertex in range(graph.num_vertices):
        if vertex in graph.successors(vertex):
            return [vertex]
    for component in strongly_connected_components(graph):
        if len(component) > 1:
            return find_cycle_in_component(graph, component)
    return None
