"""Graph substrate used by the isolation checkers and baselines.

The checkers of the paper reduce consistency to acyclicity of an inferred
commit relation ``co'``; this package provides the directed-graph machinery
needed for that reduction:

* :mod:`repro.graph.digraph` -- a compact adjacency-list directed graph
  (the baselines' builder-friendly representation).
* :mod:`repro.graph.csr` -- frozen CSR snapshots of packed-edge logs plus
  the kernels over them (Tarjan SCC, Kahn toposort, cycle extraction); the
  checkers' commit relation and causality graph freeze into this form.
* :mod:`repro.graph.cycles` -- Tarjan strongly-connected components,
  iterative topological sort, and cycle-witness extraction over DiGraph.
* :mod:`repro.graph.vector_clock` -- the vector clocks used by Algorithm 3
  (``ComputeHB``) and by the Plume-like baseline.
* :mod:`repro.graph.tree_clock` -- the tree-clock data structure (Mathur et
  al. 2022) that the Plume baseline uses for faster joins.
"""

from repro.graph.digraph import DiGraph
from repro.graph.csr import (
    FrozenGraph,
    freeze_packed,
    scc_frozen,
    toposort_frozen,
    find_cycle_in_component_frozen,
)
from repro.graph.cycles import (
    strongly_connected_components,
    topological_sort,
    has_cycle,
    find_cycle,
    find_cycle_in_component,
)
from repro.graph.vector_clock import VectorClock
from repro.graph.tree_clock import TreeClock

__all__ = [
    "DiGraph",
    "FrozenGraph",
    "freeze_packed",
    "scc_frozen",
    "toposort_frozen",
    "find_cycle_in_component_frozen",
    "strongly_connected_components",
    "topological_sort",
    "has_cycle",
    "find_cycle",
    "find_cycle_in_component",
    "VectorClock",
    "TreeClock",
]
