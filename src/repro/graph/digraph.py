"""A compact directed graph over dense integer vertices.

The graph is deliberately small and allocation-light: vertices are integers
``0..n-1`` and adjacency is a list of lists.  Parallel edges are tolerated on
insertion and de-duplicated lazily, because the checkers may add the same
commit-order edge many times (e.g. once per witnessing read) and only the
reachability structure matters for acyclicity.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

__all__ = [
    "DiGraph",
    "EDGE_SHIFT",
    "EDGE_MASK",
    "MAX_PACKED_EDGE",
    "pack_edge",
    "unpack_edge",
]

#: Bit layout of a packed edge: ``(source << EDGE_SHIFT) | target``.  One
#: machine-word int per edge instead of a two-tuple; shared by the packed-edge
#: mode of :class:`~repro.core.commit.CommitRelation` and the streaming
#: checker's inferred-edge logs.  32 bits per endpoint caps graphs at ~4.3e9
#: vertices, far beyond any history the tester can hold in memory -- but the
#: cap is *enforced*: a vertex id outside ``[0, EDGE_MASK]`` would silently
#: bleed into the other endpoint's bits (``src << 32 | dst`` collides), so
#: packing and edge insertion raise ``ValueError`` instead of corrupting.
EDGE_SHIFT = 32
EDGE_MASK = (1 << EDGE_SHIFT) - 1

#: Largest value a packed edge can take: both endpoints at ``EDGE_MASK``.
MAX_PACKED_EDGE = (EDGE_MASK << EDGE_SHIFT) | EDGE_MASK


def _check_endpoints(source: int, target: int) -> None:
    """Reject endpoints that cannot be packed without collision."""
    raise ValueError(
        f"node id out of packed-edge range [0, {EDGE_MASK}]: "
        f"edge {source} -> {target} would corrupt the packed representation"
    )


def pack_edge(source: int, target: int) -> int:
    """Pack the edge ``source -> target`` into one integer.

    Raises ``ValueError`` when either endpoint falls outside
    ``[0, EDGE_MASK]`` -- out-of-range ids cannot be represented and would
    silently collide with other edges.
    """
    # A negative endpoint makes the bitwise-or negative, so one shift test
    # catches both overflow and sign.
    if (source | target) >> EDGE_SHIFT:
        _check_endpoints(source, target)
    return (source << EDGE_SHIFT) | target


def unpack_edge(edge: int) -> Tuple[int, int]:
    """Invert :func:`pack_edge`."""
    return edge >> EDGE_SHIFT, edge & EDGE_MASK


class DiGraph:
    """A directed graph with dense integer vertices ``0..n-1``."""

    __slots__ = ("_succ", "_edge_count")

    def __init__(self, num_vertices: int = 0) -> None:
        if num_vertices > EDGE_MASK + 1:
            raise ValueError(
                f"DiGraph supports at most {EDGE_MASK + 1} vertices "
                f"(packed-edge ids are {EDGE_SHIFT}-bit); got {num_vertices}"
            )
        self._succ: List[List[int]] = [[] for _ in range(num_vertices)]
        self._edge_count = 0

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_edges(cls, num_vertices: int, edges: Iterable[Tuple[int, int]]) -> "DiGraph":
        """Build a graph with ``num_vertices`` vertices from an edge iterable."""
        graph = cls(num_vertices)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    def add_vertex(self) -> int:
        """Add a fresh vertex and return its id."""
        if len(self._succ) > EDGE_MASK:
            raise ValueError(
                f"DiGraph supports at most {EDGE_MASK + 1} vertices "
                f"(packed-edge ids are {EDGE_SHIFT}-bit)"
            )
        self._succ.append([])
        return len(self._succ) - 1

    def add_edge(self, source: int, target: int) -> None:
        """Add the edge ``source -> target`` (parallel edges are allowed).

        Endpoints outside ``[0, EDGE_MASK]`` raise ``ValueError``: such ids
        cannot round-trip through the packed-edge form used by the commit
        relation and would silently collide there.
        """
        if (source | target) >> EDGE_SHIFT:
            _check_endpoints(source, target)
        self._succ[source].append(target)
        self._edge_count += 1

    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> None:
        """Add many edges at once."""
        for u, v in edges:
            self.add_edge(u, v)

    def add_packed_edge(self, edge: int) -> None:
        """Add one packed edge (see :func:`pack_edge`).

        A value outside ``[0, MAX_PACKED_EDGE]`` means the *source* endpoint
        overflowed its 32 bits (a corrupt pack -- target overflow must be
        caught at pack time) and raises ``ValueError``.
        """
        if edge > MAX_PACKED_EDGE or edge < 0:
            raise ValueError(
                f"packed edge {edge} out of range: source id exceeds "
                f"{EDGE_MASK} (see pack_edge)"
            )
        self._succ[edge >> EDGE_SHIFT].append(edge & EDGE_MASK)
        self._edge_count += 1

    # -- queries --------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices in the graph."""
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        """Number of edge insertions performed (parallel edges counted)."""
        return self._edge_count

    def successors(self, vertex: int) -> List[int]:
        """The successor list of ``vertex`` (may contain duplicates)."""
        return self._succ[vertex]

    def unique_successors(self, vertex: int) -> List[int]:
        """The successor list of ``vertex`` with duplicates removed (stable order)."""
        seen: Set[int] = set()
        result: List[int] = []
        for succ in self._succ[vertex]:
            if succ not in seen:
                seen.add(succ)
                result.append(succ)
        return result

    def has_edge(self, source: int, target: int) -> bool:
        """True when an edge ``source -> target`` exists."""
        return target in self._succ[source]

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all edges (including parallel copies)."""
        for u, targets in enumerate(self._succ):
            for v in targets:
                yield (u, v)

    def reverse(self) -> "DiGraph":
        """Return a new graph with every edge direction flipped."""
        rev = DiGraph(self.num_vertices)
        for u, v in self.edges():
            rev.add_edge(v, u)
        return rev

    def subgraph(self, vertices: Sequence[int]) -> Tuple["DiGraph", Dict[int, int]]:
        """Return the induced subgraph and the old->new vertex mapping."""
        mapping = {v: i for i, v in enumerate(vertices)}
        sub = DiGraph(len(vertices))
        for old in vertices:
            for succ in self._succ[old]:
                if succ in mapping:
                    sub.add_edge(mapping[old], mapping[succ])
        return sub, mapping

    def out_degree(self, vertex: int) -> int:
        """Out-degree of ``vertex`` (counting parallel edges)."""
        return len(self._succ[vertex])

    def reachable_from(self, sources: Iterable[int]) -> Set[int]:
        """All vertices reachable from ``sources`` (including the sources)."""
        stack = list(sources)
        seen: Set[int] = set(stack)
        while stack:
            vertex = stack.pop()
            for succ in self._succ[vertex]:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def __repr__(self) -> str:
        return f"<DiGraph vertices={self.num_vertices} edges={self.num_edges}>"
