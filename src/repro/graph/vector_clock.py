"""Vector clocks indexed by session.

Algorithm 3 of the paper (``ComputeHB``) represents the happens-before
relation with one vector clock per transaction: ``HB_t[s]`` holds the
session-order index of the so-latest transaction of session ``s`` that
happens before ``t`` (or -1 when no transaction of ``s`` does).  The join of
two clocks is the pointwise maximum with respect to session order, which with
dense per-session indices is a plain integer maximum.

The Plume-like baseline also uses vector clocks to compute its dependency
graph, mirroring the description of Plume in the paper.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

__all__ = ["VectorClock"]


class VectorClock:
    """A fixed-width vector clock over ``k`` sessions.

    Entries are session-order indices (position of a transaction within its
    session); ``-1`` means "no transaction of this session".
    """

    __slots__ = ("entries",)

    def __init__(self, num_sessions: int, entries: Sequence[int] = ()) -> None:
        if entries:
            if len(entries) != num_sessions:
                raise ValueError("entries length must equal num_sessions")
            self.entries: List[int] = list(entries)
        else:
            self.entries = [-1] * num_sessions

    # -- construction ----------------------------------------------------------

    @classmethod
    def bottom(cls, num_sessions: int) -> "VectorClock":
        """The least clock (no transaction of any session)."""
        return cls(num_sessions)

    def copy(self) -> "VectorClock":
        """Return an independent copy of this clock."""
        clock = VectorClock.__new__(VectorClock)
        clock.entries = list(self.entries)
        return clock

    # -- lattice operations -----------------------------------------------------

    def join(self, other: "VectorClock") -> "VectorClock":
        """Pointwise maximum of two clocks (a new clock)."""
        return VectorClock(
            len(self.entries),
            [max(a, b) for a, b in zip(self.entries, other.entries)],
        )

    def join_in_place(self, other: "VectorClock") -> None:
        """Pointwise maximum of two clocks, updating ``self``."""
        mine = self.entries
        theirs = other.entries
        for i in range(len(mine)):
            if theirs[i] > mine[i]:
                mine[i] = theirs[i]

    def advance(self, session: int, index: int) -> None:
        """Record that the transaction at ``index`` of ``session`` is included."""
        if index > self.entries[session]:
            self.entries[session] = index

    # -- comparisons --------------------------------------------------------------

    def __getitem__(self, session: int) -> int:
        return self.entries[session]

    def __setitem__(self, session: int, index: int) -> None:
        self.entries[session] = index

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[int]:
        return iter(self.entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self.entries == other.entries

    def __le__(self, other: "VectorClock") -> bool:
        """Pointwise less-or-equal (clock dominance)."""
        return all(a <= b for a, b in zip(self.entries, other.entries))

    def __lt__(self, other: "VectorClock") -> bool:
        return self <= other and self.entries != other.entries

    def dominates(self, other: "VectorClock") -> bool:
        """True when ``self`` is pointwise greater-or-equal than ``other``."""
        return all(a >= b for a, b in zip(self.entries, other.entries))

    def concurrent_with(self, other: "VectorClock") -> bool:
        """True when neither clock dominates the other."""
        return not self.dominates(other) and not other.dominates(self)

    def __hash__(self) -> int:
        return hash(tuple(self.entries))

    def __repr__(self) -> str:
        return f"VectorClock({self.entries})"
