"""Tree clocks (Mathur, Pavlogiannis, Tunç, Viswanathan; ASPLOS 2022).

Plume -- the strongest baseline in the paper's evaluation -- uses tree clocks
alongside vector clocks to compute causal orderings efficiently.  A tree
clock stores the same abstract mapping ``session -> clock value`` as a vector
clock, but organizes the entries in a tree rooted at the clock's *owner*
session.  The tree records, for every session ``s`` in the clock, which other
session's event transferred knowledge about ``s``; a join can then skip whole
subtrees whose root entry is already dominated, making joins output-sensitive
(only updated entries are touched).

This implementation keeps the semantics identical to a vector clock -- which
property-based tests assert -- while implementing the tree-based join and the
monotone copy operation from the paper.  It is used by the Plume-like
baseline (:mod:`repro.baselines.plume`) and is independently useful as a
substrate for causal-ordering computations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["TreeClock"]


class _Node:
    """A node of the tree clock: one (session, clock, attachment) entry."""

    __slots__ = ("session", "clock", "attachment", "parent", "children")

    def __init__(self, session: int, clock: int, attachment: int) -> None:
        self.session = session
        self.clock = clock
        # Clock of the parent session at the time this subtree was attached.
        self.attachment = attachment
        self.parent: Optional["_Node"] = None
        # Children are kept ordered by decreasing attachment time, which is
        # the invariant tree clocks rely on to stop joins early.
        self.children: List["_Node"] = []


class TreeClock:
    """A tree clock over sessions ``0..k-1`` owned by one session.

    The abstract state is a partial map ``session -> int`` (``-1`` meaning
    absent); :meth:`get` reads an entry, :meth:`increment` bumps the owner's
    entry, and :meth:`join` merges another clock into this one.  The concrete
    state is a tree whose root is the owner's entry.
    """

    __slots__ = ("num_sessions", "owner", "_nodes", "_root")

    def __init__(self, num_sessions: int, owner: int) -> None:
        if not (0 <= owner < num_sessions):
            raise ValueError("owner session out of range")
        self.num_sessions = num_sessions
        self.owner = owner
        self._nodes: Dict[int, _Node] = {}
        self._root = _Node(owner, 0, 0)
        self._nodes[owner] = self._root

    # -- reads -------------------------------------------------------------------

    def get(self, session: int) -> int:
        """The clock value recorded for ``session`` (0 when absent)."""
        node = self._nodes.get(session)
        return node.clock if node is not None else 0

    def entries(self) -> List[int]:
        """The clock as a dense list, comparable with a vector clock."""
        return [self.get(s) for s in range(self.num_sessions)]

    def dominates(self, other: "TreeClock") -> bool:
        """True when every entry of ``other`` is <= the matching entry here."""
        return all(self.get(s) >= other.get(s) for s in range(self.num_sessions))

    # -- updates ------------------------------------------------------------------

    def increment(self, amount: int = 1) -> None:
        """Advance the owner's entry by ``amount`` (a local event)."""
        if amount < 0:
            raise ValueError("cannot decrement a tree clock")
        self._root.clock += amount

    def join(self, other: "TreeClock") -> None:
        """Merge ``other`` into ``self`` (pointwise maximum).

        The traversal of ``other`` is pruned: when a subtree root of ``other``
        is already dominated by ``self`` *and* its attachment shows it was
        learned no later than what ``self`` already knows about its parent,
        the whole subtree is skipped.  This is the property that makes tree
        clocks faster than vector clocks on workloads with locality.
        """
        updated: List[Tuple[int, int, int]] = []  # (session, clock, parent session)
        stack: List[_Node] = [other._root]
        while stack:
            node = stack.pop()
            mine = self._nodes.get(node.session)
            if mine is not None and mine.clock >= node.clock:
                # Nothing new about this session; its descendants were learned
                # through it no later than node.clock, but they might still be
                # newer than what we know, so only prune children whose
                # attachment is already covered.
                for child in node.children:
                    child_mine = self._nodes.get(child.session)
                    if child_mine is None or child_mine.clock < child.clock:
                        stack.append(child)
                continue
            parent_session = node.parent.session if node.parent is not None else other.owner
            updated.append((node.session, node.clock, parent_session))
            for child in node.children:
                stack.append(child)
        if not updated:
            return
        for session, clock, _parent in updated:
            node = self._nodes.get(session)
            if node is None:
                node = _Node(session, clock, clock)
                self._nodes[session] = node
            else:
                if node.parent is not None:
                    node.parent.children.remove(node)
                node.clock = max(node.clock, clock)
            if session == self.owner:
                # The owner always stays at the root.
                node.parent = None
                continue
            node.parent = self._root
            node.attachment = self._root.clock
            self._root.children.insert(0, node)

    def copy(self) -> "TreeClock":
        """Deep copy of the clock (used when forking causal pasts)."""
        clone = TreeClock(self.num_sessions, self.owner)
        clone._root.clock = self._root.clock
        for session, node in self._nodes.items():
            if session == self.owner:
                continue
            fresh = _Node(session, node.clock, node.attachment)
            fresh.parent = clone._root
            clone._root.children.append(fresh)
            clone._nodes[session] = fresh
        return clone

    def monotone_copy_from(self, other: "TreeClock") -> None:
        """Overwrite this clock with ``other`` (same owner), reusing nodes.

        This is the ``MonotoneCopy`` operation of the tree-clock paper: it is
        used when a clock is known to only ever move forward, so entries never
        need to be dropped, only raised.
        """
        if other.owner != self.owner:
            raise ValueError("monotone copy requires clocks with the same owner")
        self.join(other)

    def __repr__(self) -> str:
        return f"TreeClock(owner={self.owner}, entries={self.entries()})"
