"""Frozen CSR (compressed-sparse-row) snapshots of packed-edge graphs.

The checkers accumulate graph edges as flat logs of packed integers
(``(source << EDGE_SHIFT) | target``, see :mod:`repro.graph.digraph`) and
*freeze* them once edge collection is done: :func:`freeze_packed` sorts the
concatenated logs, de-duplicates them in one pass, and materializes two flat
rows -- ``offsets`` and ``targets`` -- that every downstream kernel (Tarjan
SCC, cycle extraction, topological sort, reachability) iterates as plain
index arithmetic.  Freezing is the *single* de-duplication point of the
relation layer: the hot loops never probe a hash table per edge, they only
append, and parallel edges collapse here.

When ``numpy`` is importable the sort/dedup/offset-counting runs vectorized
(``np.unique`` + ``np.bincount``); otherwise a pure-Python fallback produces
bit-identical structures, so environments without numpy (the CI matrix
installs none) lose only constant factors, never results.

Packed edges are unsigned 64-bit values: an endpoint may use all
``EDGE_SHIFT`` bits, so the logs must be ``array('Q')`` (or plain ints) --
a signed ``'q'`` row would overflow at the 32-bit source boundary.  The
kernels here mirror :mod:`repro.graph.cycles` exactly (same iterative
Tarjan, same DFS cycle extraction, same Kahn queue discipline); only the
adjacency representation differs, so for equal successor orders they emit
equal outputs.
"""

from __future__ import annotations

import os
from array import array
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.graph.digraph import EDGE_MASK, EDGE_SHIFT

try:  # pragma: no cover - exercised implicitly by every test run
    import numpy as _np
except ImportError:  # pragma: no cover - CI runners without numpy
    _np = None

if os.environ.get("AWDIT_NO_NUMPY"):  # pragma: no cover - fallback CI leg
    # Forces the pure-Python fallbacks even where numpy is installed, so
    # the fallback kernels stay testable on every runner.
    _np = None

__all__ = [
    "FrozenGraph",
    "freeze_packed",
    "distinct_edge_count",
    "scc_frozen",
    "toposort_frozen",
    "find_cycle_in_component_frozen",
    "HAVE_NUMPY",
]

#: Whether the vectorized freeze kernels are active in this process.
HAVE_NUMPY = _np is not None


class FrozenGraph:
    """An immutable CSR graph over dense integer vertices ``0..n-1``.

    ``targets[offsets[v]:offsets[v+1]]`` are the successors of ``v``, sorted
    ascending and duplicate-free.  Both rows are plain Python lists (indexed
    access is what the Python-level kernels do per step, and lists beat
    ``array``/ndarray element access there); ``_targets_np`` optionally keeps
    the vectorized targets row alive for kernels that can use it
    (:func:`toposort_frozen`'s in-degree count).
    """

    __slots__ = ("num_vertices", "offsets", "targets", "_targets_np")

    def __init__(
        self,
        num_vertices: int,
        offsets: List[int],
        targets: List[int],
        targets_np=None,
    ) -> None:
        self.num_vertices = num_vertices
        self.offsets = offsets
        self.targets = targets
        self._targets_np = targets_np

    @property
    def num_edges(self) -> int:
        """Number of distinct edges."""
        return len(self.targets)

    def successors(self, vertex: int) -> List[int]:
        """The sorted, duplicate-free successor list of ``vertex``.

        Allocates a slice; the kernels below iterate the flat rows directly
        instead.  Provided for DiGraph-compatible callers (witness
        minimization, tests).
        """
        return self.targets[self.offsets[vertex] : self.offsets[vertex + 1]]

    def out_degree(self, vertex: int) -> int:
        """Out-degree of ``vertex`` (distinct edges)."""
        return self.offsets[vertex + 1] - self.offsets[vertex]

    def has_edge(self, source: int, target: int) -> bool:
        """True when the edge ``source -> target`` exists."""
        from bisect import bisect_left

        lo, hi = self.offsets[source], self.offsets[source + 1]
        i = bisect_left(self.targets, target, lo, hi)
        return i < hi and self.targets[i] == target

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all edges in (source, target) sorted order."""
        offsets = self.offsets
        targets = self.targets
        for u in range(self.num_vertices):
            for i in range(offsets[u], offsets[u + 1]):
                yield (u, targets[i])

    def reachable_from(self, sources: Iterable[int]):
        """All vertices reachable from ``sources`` (including the sources)."""
        stack = list(sources)
        seen = set(stack)
        offsets = self.offsets
        targets = self.targets
        while stack:
            vertex = stack.pop()
            for i in range(offsets[vertex], offsets[vertex + 1]):
                succ = targets[i]
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def __repr__(self) -> str:
        return f"<FrozenGraph vertices={self.num_vertices} edges={self.num_edges}>"


def _merged_list(edge_runs: Sequence) -> List[int]:
    """Concatenate edge logs into one Python list (fallback path)."""
    merged: List[int] = []
    for run in edge_runs:
        merged.extend(run)
    return merged


def _np_concat(edge_runs: Sequence):
    """Concatenate edge logs into one uint64 ndarray (vectorized path)."""
    parts = []
    for run in edge_runs:
        if not len(run):
            continue
        if isinstance(run, array) and run.typecode == "Q":
            parts.append(_np.frombuffer(run, dtype=_np.uint64))
        else:
            parts.append(_np.asarray(run, dtype=_np.uint64))
    if not parts:
        return _np.empty(0, dtype=_np.uint64)
    if len(parts) == 1:
        return parts[0]
    return _np.concatenate(parts)


def _np_sorted_distinct(merged):
    """Sort a packed-edge ndarray and drop duplicates (returns a new array).

    ``np.sort`` + a neighbour-inequality mask: equivalent to ``np.unique``
    but an order of magnitude faster on packed-edge data (unique's
    reshape/structured handling dominates it).
    """
    edges = _np.array(merged)  # copy: merged may view a caller's buffer
    edges.sort()
    if edges.size <= 1:
        return edges
    mask = _np.empty(edges.size, dtype=bool)
    mask[0] = True
    _np.not_equal(edges[1:], edges[:-1], out=mask[1:])
    return edges[mask]


def freeze_packed(num_vertices: int, edge_runs: Sequence) -> FrozenGraph:
    """Freeze packed-edge logs into a :class:`FrozenGraph`.

    ``edge_runs`` is a sequence of flat edge logs (``array('Q')``, lists, or
    any int sequence); their concatenation may contain duplicates in any
    order.  Every endpoint must be in ``[0, num_vertices)`` -- the logs are
    written by the checkers from already-validated dense ids, so no per-edge
    range check is repeated here.
    """
    if _np is not None:
        merged = _np_concat(edge_runs)
        if merged.size == 0:
            return FrozenGraph(num_vertices, [0] * (num_vertices + 1), [])
        edges = _np_sorted_distinct(merged)
        sources = (edges >> EDGE_SHIFT).astype(_np.int64)
        targets_np = (edges & EDGE_MASK).astype(_np.int64)
        counts = _np.bincount(sources, minlength=num_vertices)
        offsets = _np.zeros(num_vertices + 1, dtype=_np.int64)
        _np.cumsum(counts, out=offsets[1:])
        return FrozenGraph(
            num_vertices, offsets.tolist(), targets_np.tolist(), targets_np
        )

    merged = _merged_list(edge_runs)
    merged.sort()
    counts = [0] * (num_vertices + 1)
    targets: List[int] = []
    append = targets.append
    previous = -1
    for edge in merged:
        if edge == previous:
            continue
        previous = edge
        counts[(edge >> EDGE_SHIFT) + 1] += 1
        append(edge & EDGE_MASK)
    total = 0
    offsets = counts  # reuse in place: prefix-sum the per-source counts
    for i in range(num_vertices + 1):
        total += offsets[i]
        offsets[i] = total
    return FrozenGraph(num_vertices, offsets, targets)


def distinct_edge_count(edge_runs: Sequence) -> int:
    """Number of distinct packed edges across ``edge_runs``."""
    if _np is not None:
        merged = _np_concat(edge_runs)
        if merged.size == 0:
            return 0
        return int(_np_sorted_distinct(merged).size)
    distinct = set()
    for run in edge_runs:
        distinct.update(run)
    return len(distinct)


def scc_frozen(graph: FrozenGraph) -> List[List[int]]:
    """Tarjan's strongly connected components over the frozen rows.

    The mirror of :func:`repro.graph.cycles.strongly_connected_components`:
    components come out in reverse topological order, each as a list of
    vertex ids.  Successors iterate in the frozen (ascending) order, so the
    emission order is a pure function of the distinct edge set -- every
    engine that froze the same edges reports the same components in the
    same order.
    """
    n = graph.num_vertices
    offsets = graph.offsets
    targets = graph.targets
    index_of = [-1] * n
    lowlink = [0] * n
    on_stack = bytearray(n)
    stack: List[int] = []
    components: List[List[int]] = []
    next_index = 0

    for root in range(n):
        if index_of[root] != -1:
            continue
        # Work items are (vertex, absolute position into targets).
        work: List[Tuple[int, int]] = [(root, offsets[root])]
        while work:
            vertex, pos = work[-1]
            if pos == offsets[vertex]:
                index_of[vertex] = next_index
                lowlink[vertex] = next_index
                next_index += 1
                stack.append(vertex)
                on_stack[vertex] = 1
            end = offsets[vertex + 1]
            advanced = False
            while pos < end:
                succ = targets[pos]
                pos += 1
                if index_of[succ] == -1:
                    work[-1] = (vertex, pos)
                    work.append((succ, offsets[succ]))
                    advanced = True
                    break
                if on_stack[succ]:
                    if index_of[succ] < lowlink[vertex]:
                        lowlink[vertex] = index_of[succ]
            if advanced:
                continue
            work.pop()
            if lowlink[vertex] == index_of[vertex]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = 0
                    component.append(member)
                    if member == vertex:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                if lowlink[vertex] < lowlink[parent]:
                    lowlink[parent] = lowlink[vertex]
    return components


def toposort_frozen(graph: FrozenGraph) -> Optional[List[int]]:
    """Topological order of a frozen graph, or ``None`` if it has a cycle.

    Kahn's algorithm; the frozen rows are duplicate-free by construction, so
    no per-vertex de-duplication pass is needed (parallel edges collapsed at
    freeze).  In-degrees come from one vectorized ``bincount`` when the
    graph was frozen with numpy.
    """
    n = graph.num_vertices
    offsets = graph.offsets
    targets = graph.targets
    if graph._targets_np is not None:
        indegree = _np.bincount(graph._targets_np, minlength=n).tolist()
    else:
        indegree = [0] * n
        for succ in targets:
            indegree[succ] += 1
    queue = [v for v in range(n) if not indegree[v]]
    order: List[int] = []
    append = order.append
    push = queue.append
    head = 0
    while head < len(queue):
        vertex = queue[head]
        head += 1
        append(vertex)
        for i in range(offsets[vertex], offsets[vertex + 1]):
            succ = targets[i]
            indegree[succ] -= 1
            if not indegree[succ]:
                push(succ)
    if len(order) != n:
        return None
    return order


def find_cycle_in_component_frozen(
    graph: FrozenGraph, component: Sequence[int]
) -> List[int]:
    """Extract one simple cycle inside a non-trivial SCC of a frozen graph.

    The mirror of :func:`repro.graph.cycles.find_cycle_in_component`: DFS
    restricted to the component until an ancestor on the current path
    re-appears; the path suffix is the cycle.  ``component`` must be an SCC
    with more than one vertex, or a single vertex with a self-loop.
    """
    offsets = graph.offsets
    targets = graph.targets
    members = set(component)
    start = component[0]
    if len(component) == 1:
        if graph.has_edge(start, start):
            return [start]
        raise ValueError("component is trivial and has no self-loop")
    parent = {start: None}
    on_path = {start}
    stack: List[Tuple[int, int]] = [(start, offsets[start])]
    while stack:
        vertex, pos = stack[-1]
        end = offsets[vertex + 1]
        advanced = False
        while pos < end:
            succ = targets[pos]
            pos += 1
            if succ not in members:
                continue
            if succ in on_path:
                cycle = [vertex]
                node = parent[vertex]
                while node is not None and cycle[-1] != succ:
                    cycle.append(node)
                    node = parent[node]
                if cycle[-1] != succ:
                    cycle.append(succ)
                cycle.reverse()
                return cycle
            if succ not in parent:
                stack[-1] = (vertex, pos)
                parent[succ] = vertex
                on_path.add(succ)
                stack.append((succ, offsets[succ]))
                advanced = True
                break
        if advanced:
            continue
        stack.pop()
        on_path.discard(vertex)
    raise ValueError("no cycle found in component (not an SCC?)")
