"""A Plume-like baseline checker.

Plume [Liu et al. 2024] is the strongest baseline in the paper's evaluation:
a polynomial-time checker for RC / RA / CC that works by exhaustively
searching for *Transactional Anomalous Patterns* (TAPs) -- small constellations
of two or three transactions whose relations witness an anomaly -- using
vector clocks (and tree clocks) to answer happens-before queries.  Its stated
complexity is ``O(n^3 · l^2 · k)``; in practice its cost is dominated by the
construction of a per-key dependency index and by iterating, for every read,
over *all* writers of the key.

This reimplementation follows that structure:

1. a construction phase builds per-key writer indexes, transaction-level
   ``so``/``wr`` adjacency, and (for CC) happens-before vector clocks and
   tree clocks;
2. a search phase enumerates TAP instances level by level and adds the
   implied commit-order edges for *every* witnessing writer (no minimality),
3. a final acyclicity check over the accumulated relation.

It is deliberately asymptotically heavier than AWDIT -- for each read it
scans the full writer list of the key -- which is what produces the
performance gap the paper reports (Fig. 8).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.commit import CommitRelation
from repro.core.isolation import IsolationLevel
from repro.core.model import History, OpRef
from repro.core.read_consistency import check_read_consistency
from repro.core.result import CheckResult, Stopwatch
from repro.core.violations import Violation
from repro.graph.tree_clock import TreeClock
from repro.graph.vector_clock import VectorClock

__all__ = ["check_plume", "PlumeIndex"]


class PlumeIndex:
    """The dependency index built by the construction phase.

    Holds, for every key, the list of committed writer transactions; for
    every committed transaction, its direct ``so ∪ wr`` predecessors; and, on
    demand, happens-before vector clocks computed with a tree-clock-assisted
    traversal (mirroring Plume's use of both clock structures).
    """

    def __init__(self, history: History, bad_reads: Set[OpRef]) -> None:
        self.history = history
        self.bad_reads = bad_reads
        self.writers_of_key: Dict[str, List[int]] = {}
        self.external_reads: List[List] = [[] for _ in range(history.num_transactions)]
        self.session_predecessors: List[List[int]] = [
            [] for _ in range(history.num_transactions)
        ]
        self.hb: Optional[List[Optional[VectorClock]]] = None
        self._build()

    def _build(self) -> None:
        history = self.history
        transactions = history.transactions
        for tid in history.committed:
            for key in transactions[tid].keys_written:
                self.writers_of_key.setdefault(key, []).append(tid)
        for sid in range(history.num_sessions):
            committed = history.committed_in_session(sid)
            for position, tid in enumerate(committed):
                self.session_predecessors[tid] = committed[:position]
        for tid in history.committed:
            for writer, index, op in history.txn_read_froms(tid):
                if OpRef(tid, index) in self.bad_reads:
                    continue
                if transactions[writer].committed:
                    self.external_reads[tid].append((index, op, writer))

    def compute_hb(self) -> Optional[List[Optional[VectorClock]]]:
        """Happens-before clocks for every committed transaction.

        Returns ``None`` when ``so ∪ wr`` is cyclic.  Vector clocks carry the
        result; tree clocks are used for per-session accumulation, exercising
        the same machinery Plume employs.
        """
        from repro.graph.cycles import topological_sort
        from repro.graph.digraph import DiGraph

        if self.hb is not None:
            return self.hb
        history = self.history
        graph = DiGraph(history.num_transactions)
        for source, target in history.so_edges():
            graph.add_edge(source, target)
        for tid in history.committed:
            for _index, _op, writer in self.external_reads[tid]:
                graph.add_edge(writer, tid)
        order = topological_sort(graph)
        if order is None:
            return None
        k = history.num_sessions
        transactions = history.transactions
        session_tree = [TreeClock(k, s) for s in range(k)]
        session_clock = [VectorClock(k) for _ in range(k)]
        hb: List[Optional[VectorClock]] = [None] * history.num_transactions
        for tid in order:
            txn = transactions[tid]
            if not txn.committed:
                continue
            clock = session_clock[txn.session].copy()
            for _index, _op, writer in self.external_reads[tid]:
                writer_txn = transactions[writer]
                writer_clock = hb[writer]
                if writer_clock is not None:
                    clock.join_in_place(writer_clock)
                clock.advance(writer_txn.session, writer_txn.session_index)
            hb[tid] = clock
            # Keep the session's tree clock in sync; Plume uses tree clocks to
            # make these repeated joins output-sensitive.
            session_tree[txn.session].increment()
            next_clock = clock.copy()
            next_clock.advance(txn.session, txn.session_index)
            session_clock[txn.session] = next_clock
        self.hb = hb
        return hb

    def happens_before(self, earlier: int, later: int) -> bool:
        """Vector-clock query: does ``earlier`` happen before ``later``?"""
        assert self.hb is not None, "compute_hb must run first"
        clock = self.hb[later]
        if clock is None:
            return False
        earlier_txn = self.history.transactions[earlier]
        return clock[earlier_txn.session] >= earlier_txn.session_index


def check_plume(history: History, level: IsolationLevel) -> CheckResult:
    """Check ``history`` against ``level`` with the Plume-like TAP search."""
    watch = Stopwatch()
    report = check_read_consistency(history)
    violations: List[Violation] = list(report.violations)
    index = PlumeIndex(history, report.bad_reads)
    # Plume's construction phase builds its full dependency index -- per-key
    # writer lists plus happens-before clocks -- before any TAP is examined,
    # regardless of the isolation level being checked.  The paper notes this
    # phase often dominates Plume's running time on non-demanding inputs.
    index.compute_hb()
    watch.lap("construction")

    relation = CommitRelation(history)
    transactions = history.transactions

    if level is IsolationLevel.READ_COMMITTED:
        # TAP search: for every pair (observed transaction, later read) inside
        # a transaction, check all keys the observed transaction writes.
        for t3 in history.committed:
            reads = index.external_reads[t3]
            for position, (index_r, _op_r, t2) in enumerate(reads):
                for index_rx, op_rx, t1 in reads[position + 1 :]:
                    if index_rx <= index_r or t1 == t2:
                        continue
                    if transactions[t2].writes_key(op_rx.key):
                        relation.add_inferred(t2, t1, key=op_rx.key)
    elif level is IsolationLevel.READ_ATOMIC:
        for t3 in history.committed:
            direct: Set[int] = set(index.session_predecessors[t3])
            direct.update(writer for _i, _o, writer in index.external_reads[t3])
            for _index, op, t1 in index.external_reads[t3]:
                for t2 in index.writers_of_key.get(op.key, ()):  # all writers of the key
                    if t2 != t1 and t2 in direct:
                        relation.add_inferred(t2, t1, key=op.key)
    elif level is IsolationLevel.CAUSAL_CONSISTENCY:
        hb = index.compute_hb()
        if hb is None:
            from repro.core.cc import check_cc

            # so ∪ wr is cyclic; fall back to reporting the causality cycles
            # the same way AWDIT does (Plume reports a construction failure).
            cycle_result = check_cc(history, read_consistency=report)
            violations.extend(
                v for v in cycle_result.violations if v not in violations
            )
            watch.lap("search")
            return _result(level, history, violations, watch)
        for t3 in history.committed:
            for _index, op, t1 in index.external_reads[t3]:
                for t2 in index.writers_of_key.get(op.key, ()):  # all writers of the key
                    if t2 != t1 and index.happens_before(t2, t3):
                        relation.add_inferred(t2, t1, key=op.key)
    else:
        raise ValueError(f"unsupported level {level!r}")
    watch.lap("search")

    violations.extend(relation.find_cycles())
    watch.lap("cycle_check")
    return _result(level, history, violations, watch)


def _result(
    level: IsolationLevel, history: History, violations: List[Violation], watch: Stopwatch
) -> CheckResult:
    return CheckResult(
        level=level,
        violations=violations,
        checker="plume-like",
        elapsed_seconds=watch.total,
        num_operations=history.num_operations,
        num_transactions=history.num_transactions,
        num_sessions=history.num_sessions,
        stats=dict(watch.laps),
    )
