"""A CausalC+-like Causal Consistency checker on top of Datalog.

CausalC+ [Zennou et al. 2022] checks causal consistency of distributed
databases by encoding the axioms as a Datalog program and running a Datalog
engine to a fixpoint.  This baseline does the same with the engine in
:mod:`repro.baselines.datalog`:

.. code-block:: prolog

    hb(X, Y)   :- so(X, Y).
    hb(X, Y)   :- wr(X, Y).
    hb(X, Z)   :- hb(X, Y), hb(Y, Z).
    co(T2, T1) :- hb(T2, T3), wrkey(T1, T3, K), writes(T2, K), T2 != T1.
    ord(X, Y)  :- hb(X, Y).
    ord(X, Y)  :- co(X, Y).
    ord(X, Z)  :- ord(X, Y), ord(Y, Z).
    bad(X)     :- ord(X, X).

The history violates CC iff ``bad`` is non-empty (given Read Consistency,
which is checked upfront).  Materializing ``hb`` and ``ord`` makes the
checker at least quadratic in the number of transactions, which reproduces
CausalC+'s early timeouts in the paper's small-scale experiment (Fig. 7).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.isolation import IsolationLevel
from repro.core.model import History, OpRef
from repro.core.read_consistency import check_read_consistency
from repro.core.result import CheckResult, Stopwatch
from repro.core.violations import CycleViolation, Violation, ViolationKind
from repro.baselines.datalog import Atom, DatalogProgram, Rule, Variable

__all__ = ["check_cc_causalc", "build_cc_program"]


def build_cc_program() -> DatalogProgram:
    """The Datalog program encoding the CC axiom (see the module docstring)."""
    x, y, z = Variable("X"), Variable("Y"), Variable("Z")
    t1, t2, t3, k = Variable("T1"), Variable("T2"), Variable("T3"), Variable("K")
    rules = [
        Rule(Atom("hb", (x, y)), (Atom("so", (x, y)),)),
        Rule(Atom("hb", (x, y)), (Atom("wr", (x, y)),)),
        Rule(Atom("hb", (x, z)), (Atom("hb", (x, y)), Atom("hb", (y, z)))),
        Rule(
            Atom("co", (t2, t1)),
            (
                Atom("hb", (t2, t3)),
                Atom("wrkey", (t1, t3, k)),
                Atom("writes", (t2, k)),
            ),
            distinct=((t2, t1),),
        ),
        Rule(Atom("ord", (x, y)), (Atom("hb", (x, y)),)),
        Rule(Atom("ord", (x, y)), (Atom("co", (x, y)),)),
        Rule(Atom("ord", (x, z)), (Atom("ord", (x, y)), Atom("ord", (y, z)))),
        Rule(Atom("bad", (x,)), (Atom("ord", (x, x)),)),
    ]
    return DatalogProgram(rules)


def _extract_facts(history: History, bad_reads: Set[OpRef]) -> Dict[str, Set[Tuple]]:
    """Extensional facts (so, wr, wrkey, writes) of a history."""
    transactions = history.transactions
    so: Set[Tuple] = set()
    for sid in range(history.num_sessions):
        committed = history.committed_in_session(sid)
        for position, tid in enumerate(committed):
            for later in committed[position + 1 :]:
                so.add((tid, later))
    wr: Set[Tuple] = set()
    wrkey: Set[Tuple] = set()
    for tid in history.committed:
        for writer, index, op in history.txn_read_froms(tid):
            if OpRef(tid, index) in bad_reads:
                continue
            if not transactions[writer].committed:
                continue
            wr.add((writer, tid))
            wrkey.add((writer, tid, op.key))
    writes: Set[Tuple] = set()
    for tid in history.committed:
        for key in transactions[tid].keys_written:
            writes.add((tid, key))
    return {"so": so, "wr": wr, "wrkey": wrkey, "writes": writes}


def check_cc_causalc(history: History) -> CheckResult:
    """Check Causal Consistency with the Datalog-based CausalC+-like baseline."""
    watch = Stopwatch()
    report = check_read_consistency(history)
    violations: List[Violation] = list(report.violations)
    facts = _extract_facts(history, report.bad_reads)
    watch.lap("facts")

    program = build_cc_program()
    database = program.evaluate(facts)
    watch.lap("fixpoint")

    for (tid,) in sorted(database.get("bad", set())):
        violations.append(
            CycleViolation(
                kind=ViolationKind.COMMIT_ORDER_CYCLE,
                message=(
                    f"datalog fixpoint derives ord({history.transactions[tid].name}, "
                    f"{history.transactions[tid].name})"
                ),
                edges=(),
            )
        )
    watch.lap("report")
    return CheckResult(
        level=IsolationLevel.CAUSAL_CONSISTENCY,
        violations=violations,
        checker="causalc-like",
        elapsed_seconds=watch.total,
        num_operations=history.num_operations,
        num_transactions=history.num_transactions,
        num_sessions=history.num_sessions,
        stats={"derived_ord": len(database.get("ord", set())), **watch.laps},
    )
