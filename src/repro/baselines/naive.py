"""Direct-from-definition reference checkers.

These checkers implement Definitions 2.4, 2.6, and 2.8 of the paper by brute
force: enumerate every instantiation of the axiom's premise, add the forced
commit-order edge, and test the resulting relation for acyclicity.  They make
no attempt at the minimality trick that gives AWDIT its complexity bound, so
they are quadratic-to-cubic in practice -- which is exactly what makes them
useful as *oracles*: the test suite cross-validates the optimized AWDIT
algorithms against these on thousands of randomly generated histories.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.core.commit import CommitRelation
from repro.core.isolation import IsolationLevel
from repro.core.model import History, OpRef
from repro.core.read_consistency import check_read_consistency
from repro.core.result import CheckResult, Stopwatch
from repro.core.violations import Violation
from repro.graph.digraph import DiGraph

__all__ = ["check_naive", "check_rc_naive", "check_ra_naive", "check_cc_naive"]


def _good_external_reads(history: History, tid: int, bad_reads: Set[OpRef]):
    """Reads of ``tid`` observing a different committed transaction (index, op, writer)."""
    transactions = history.transactions
    for writer, index, op in history.txn_read_froms(tid):
        if OpRef(tid, index) in bad_reads:
            continue
        if not transactions[writer].committed:
            continue
        yield index, op, writer


def _writers_by_key(history: History) -> Dict[str, List[int]]:
    """All committed transactions writing each key."""
    writers: Dict[str, List[int]] = {}
    for tid in history.committed:
        for key in history.transactions[tid].keys_written:
            writers.setdefault(key, []).append(tid)
    return writers


def _ancestors(history: History, bad_reads: Set[OpRef]) -> List[Set[int]]:
    """Causal ancestors (so ∪ wr)+ of every committed transaction, by forward propagation."""
    order: List[int] = []
    graph = DiGraph(history.num_transactions)
    for source, target in history.so_edges():
        graph.add_edge(source, target)
    for tid in history.committed:
        for _index, _op, writer in _good_external_reads(history, tid, bad_reads):
            graph.add_edge(writer, tid)
    from repro.graph.cycles import topological_sort

    topo = topological_sort(graph)
    ancestors: List[Set[int]] = [set() for _ in range(history.num_transactions)]
    if topo is None:
        return ancestors
    for tid in topo:
        for succ in graph.unique_successors(tid):
            ancestors[succ].add(tid)
            ancestors[succ] |= ancestors[tid]
    return ancestors


def check_rc_naive(history: History) -> CheckResult:
    """Reference Read Committed check: enumerate every RC-axiom instance."""
    watch = Stopwatch()
    report = check_read_consistency(history)
    violations: List[Violation] = list(report.violations)
    relation = CommitRelation(history)
    transactions = history.transactions
    for t3 in history.committed:
        reads = list(_good_external_reads(history, t3, report.bad_reads))
        for index_r, _op_r, t2 in reads:
            for index_rx, op_rx, t1 in reads:
                if index_rx <= index_r:
                    continue
                if t1 == t2:
                    continue
                if transactions[t2].writes_key(op_rx.key):
                    relation.add_inferred(t2, t1, key=op_rx.key)
    violations.extend(relation.find_cycles())
    watch.lap("total")
    return _result(IsolationLevel.READ_COMMITTED, history, violations, watch, "naive")


def check_ra_naive(history: History) -> CheckResult:
    """Reference Read Atomic check: enumerate every RA-axiom instance."""
    watch = Stopwatch()
    report = check_read_consistency(history)
    violations: List[Violation] = list(report.violations)
    relation = CommitRelation(history)
    transactions = history.transactions

    # Direct so ∪ wr predecessors of each committed transaction.  Session
    # order is the full per-session total order (Definition 2.2), so every
    # earlier committed transaction of the same session is a predecessor.
    predecessors: List[Set[int]] = [set() for _ in range(history.num_transactions)]
    for sid in range(history.num_sessions):
        committed = history.committed_in_session(sid)
        for position, tid in enumerate(committed):
            predecessors[tid].update(committed[:position])
    for t3 in history.committed:
        for _index, _op, writer in _good_external_reads(history, t3, report.bad_reads):
            predecessors[t3].add(writer)

    for t3 in history.committed:
        for _index, op, t1 in _good_external_reads(history, t3, report.bad_reads):
            for t2 in predecessors[t3]:
                if t2 != t1 and transactions[t2].writes_key(op.key):
                    relation.add_inferred(t2, t1, key=op.key)
    violations.extend(relation.find_cycles())
    watch.lap("total")
    return _result(IsolationLevel.READ_ATOMIC, history, violations, watch, "naive")


def check_cc_naive(history: History) -> CheckResult:
    """Reference Causal Consistency check: enumerate every CC-axiom instance."""
    watch = Stopwatch()
    report = check_read_consistency(history)
    violations: List[Violation] = list(report.violations)
    relation = CommitRelation(history)
    transactions = history.transactions
    ancestors = _ancestors(history, report.bad_reads)

    # A cycle in so ∪ wr makes the ancestor sets unreliable; the relation
    # already contains so ∪ wr, so the cycle is reported either way.
    for t3 in history.committed:
        for _index, op, t1 in _good_external_reads(history, t3, report.bad_reads):
            for t2 in ancestors[t3]:
                if t2 != t1 and transactions[t2].writes_key(op.key):
                    relation.add_inferred(t2, t1, key=op.key)
    violations.extend(relation.find_cycles())
    watch.lap("total")
    return _result(IsolationLevel.CAUSAL_CONSISTENCY, history, violations, watch, "naive")


def check_naive(history: History, level: IsolationLevel) -> CheckResult:
    """Dispatch to the reference checker for ``level``."""
    if level is IsolationLevel.READ_COMMITTED:
        return check_rc_naive(history)
    if level is IsolationLevel.READ_ATOMIC:
        return check_ra_naive(history)
    if level is IsolationLevel.CAUSAL_CONSISTENCY:
        return check_cc_naive(history)
    raise ValueError(f"unsupported level {level!r}")


def _result(
    level: IsolationLevel,
    history: History,
    violations: List[Violation],
    watch: Stopwatch,
    checker: str,
) -> CheckResult:
    return CheckResult(
        level=level,
        violations=violations,
        checker=checker,
        elapsed_seconds=watch.total,
        num_operations=history.num_operations,
        num_transactions=history.num_transactions,
        num_sessions=history.num_sessions,
        stats=dict(watch.laps),
    )
