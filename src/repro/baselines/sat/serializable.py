"""A SAT-based Serializability checker.

Testing Serializability is NP-complete [Papadimitriou 1979; Biswas and Enea
2019], which is why strong-isolation testers (Cobra, PolySI, ...) rely on
SAT/SMT solving.  This checker uses the classic encoding over transaction
ordering variables coupled with the acyclicity theory:

* hard edges: ``so ∪ wr`` (a serialization must extend both);
* for every read ``t1 -wr_x-> t3`` and every other committed transaction
  ``t2`` writing ``x``: the clause ``(t2 -> t1) ∨ (t3 -> t2)`` -- no writer
  of ``x`` may serialize strictly between the writer a read observes and the
  reader;
* the selected edges plus the hard edges must be acyclic.

The history is serializable iff the instance is satisfiable; the chosen
topological order is a witness serialization.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.isolation import IsolationLevel
from repro.core.model import History, OpRef
from repro.core.read_consistency import check_read_consistency
from repro.core.result import CheckResult, Stopwatch
from repro.core.violations import CycleViolation, Violation, ViolationKind
from repro.baselines.sat.acyclicity import AcyclicityEncoder

__all__ = ["check_serializability"]


def check_serializability(history: History) -> CheckResult:
    """Check whether ``history`` is serializable (SAT-based, exponential worst case)."""
    watch = Stopwatch()
    report = check_read_consistency(history)
    violations: List[Violation] = list(report.violations)
    transactions = history.transactions

    encoder = AcyclicityEncoder(history.num_transactions)
    for source, target in history.so_edges():
        encoder.add_hard_edge(source, target)
    for tid in history.committed:
        for writer, index, _op in history.txn_read_froms(tid):
            if OpRef(tid, index) in report.bad_reads:
                continue
            if transactions[writer].committed:
                encoder.add_hard_edge(writer, tid)

    writers_of_key: Dict[str, List[int]] = {}
    for tid in history.committed:
        for key in transactions[tid].keys_written:
            writers_of_key.setdefault(key, []).append(tid)

    num_clauses = 0
    for t3 in history.committed:
        for writer, index, op in history.txn_read_froms(t3):
            if OpRef(t3, index) in report.bad_reads:
                continue
            if not transactions[writer].committed:
                continue
            t1 = writer
            for t2 in writers_of_key.get(op.key, ()):
                if t2 == t1 or t2 == t3:
                    continue
                encoder.add_clause(
                    [encoder.edge_var(t2, t1), encoder.edge_var(t3, t2)]
                )
                num_clauses += 1
    watch.lap("encoding")

    model = encoder.solve()
    watch.lap("solving")

    if model is None:
        violations.append(
            CycleViolation(
                kind=ViolationKind.COMMIT_ORDER_CYCLE,
                message="no serialization order exists (SAT instance unsatisfiable)",
                edges=(),
            )
        )
    return CheckResult(
        level=IsolationLevel.CAUSAL_CONSISTENCY,
        violations=violations,
        checker="ser-sat",
        elapsed_seconds=watch.total,
        num_operations=history.num_operations,
        num_transactions=history.num_transactions,
        num_sessions=history.num_sessions,
        stats={"clauses": num_clauses, "cegar_rounds": encoder.rounds, **watch.laps},
    )
