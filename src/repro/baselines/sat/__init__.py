"""SAT-based baseline checkers and their solver substrate.

* :mod:`repro.baselines.sat.solver` -- a small DPLL SAT solver with watched
  literals and unit propagation.
* :mod:`repro.baselines.sat.acyclicity` -- a CEGAR loop coupling the SAT
  solver with a graph-acyclicity "theory": edge literals chosen by the solver
  must form an acyclic graph, and every discovered cycle is returned to the
  solver as a blocking clause.  This mirrors how MonoSAT-based testers
  (TCC-Mono, PolySI) couple SAT with a monotonic acyclicity theory.
* :mod:`repro.baselines.sat.monosat` -- a TCC-Mono-like Causal Consistency
  checker.
* :mod:`repro.baselines.sat.polysi` -- a PolySI-like Snapshot Isolation
  checker using the start/commit-point characterization of SI.
* :mod:`repro.baselines.sat.serializable` -- a Serializability checker using
  the classic "no intervening writer" encoding.
"""

from repro.baselines.sat.solver import SATSolver
from repro.baselines.sat.acyclicity import AcyclicityEncoder

__all__ = ["SATSolver", "AcyclicityEncoder"]
