"""A compact DPLL SAT solver.

The SAT-based baselines of the paper (TCC-Mono, PolySI) are built on
MonoSAT; this module provides the Boolean core they need here: a DPLL solver
with two-watched-literal unit propagation, chronological backtracking, and a
most-occurrences branching heuristic.  It is intentionally a classic,
readable solver rather than a CDCL engine -- the baselines it powers are
*supposed* to be the slow end of the comparison.

Literals follow the DIMACS convention: variables are positive integers and a
negative integer denotes the negation of the corresponding variable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["SATSolver"]


class SATSolver:
    """A DPLL solver over integer literals (DIMACS convention)."""

    def __init__(self) -> None:
        self._num_vars = 0
        self._clauses: List[List[int]] = []
        self._empty_clause = False

    # -- problem construction ------------------------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh variable and return its (positive) index."""
        self._num_vars += 1
        return self._num_vars

    def new_vars(self, count: int) -> List[int]:
        """Allocate ``count`` fresh variables."""
        return [self.new_var() for _ in range(count)]

    @property
    def num_vars(self) -> int:
        """Number of allocated variables."""
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Number of clauses added so far."""
        return len(self._clauses)

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause (a disjunction of literals).

        Tautologies are dropped; duplicate literals are merged; an empty
        clause marks the instance as trivially unsatisfiable.
        """
        seen: Dict[int, None] = {}
        for literal in literals:
            if literal == 0:
                raise ValueError("0 is not a valid literal")
            if abs(literal) > self._num_vars:
                self._num_vars = abs(literal)
            seen[literal] = None
        clause = list(seen)
        for literal in clause:
            if -literal in seen:
                return  # tautology
        if not clause:
            self._empty_clause = True
            return
        self._clauses.append(clause)

    # -- solving ------------------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = ()) -> Optional[Dict[int, bool]]:
        """Return a satisfying assignment as ``{var: bool}``, or ``None`` if UNSAT."""
        if self._empty_clause:
            return None
        assignment: List[int] = [0] * (self._num_vars + 1)  # 0 unknown, 1 true, -1 false

        # Watched literals: two per clause (clauses of size one are handled
        # as initial units).
        watches: Dict[int, List[int]] = {}
        clause_watch: List[Tuple[int, int]] = []
        initial_units: List[int] = []
        for index, clause in enumerate(self._clauses):
            if len(clause) == 1:
                initial_units.append(clause[0])
                clause_watch.append((0, 0))
                continue
            clause_watch.append((0, 1))
            watches.setdefault(clause[0], []).append(index)
            watches.setdefault(clause[1], []).append(index)

        trail: List[int] = []
        trail_limits: List[int] = []

        def value(literal: int) -> int:
            result = assignment[abs(literal)]
            return result if literal > 0 else -result

        def assign(literal: int) -> None:
            assignment[abs(literal)] = 1 if literal > 0 else -1
            trail.append(literal)

        def unassign_to(limit: int) -> None:
            while len(trail) > limit:
                literal = trail.pop()
                assignment[abs(literal)] = 0

        def propagate(queue: List[int]) -> bool:
            """Unit-propagate; returns False on conflict."""
            head = 0
            while head < len(queue):
                literal = queue[head]
                head += 1
                if value(literal) == -1:
                    return False
                if value(literal) == 0:
                    assign(literal)
                falsified = -literal
                watching = watches.get(falsified, [])
                index_position = 0
                while index_position < len(watching):
                    clause_index = watching[index_position]
                    clause = self._clauses[clause_index]
                    first, second = clause_watch[clause_index]
                    if clause[first] == falsified:
                        first, second = second, first
                    # Now clause[second] == falsified (or both watch same lit).
                    if value(clause[first]) == 1:
                        index_position += 1
                        continue
                    moved = False
                    for candidate in range(len(clause)):
                        if candidate in (first, second):
                            continue
                        if value(clause[candidate]) != -1:
                            clause_watch[clause_index] = (first, candidate)
                            watches.setdefault(clause[candidate], []).append(clause_index)
                            watching[index_position] = watching[-1]
                            watching.pop()
                            moved = True
                            break
                    if moved:
                        continue
                    clause_watch[clause_index] = (first, second)
                    other = clause[first]
                    if value(other) == -1:
                        return False
                    if value(other) == 0:
                        queue.append(other)
                    index_position += 1
            return True

        # Assume-and-propagate the assumptions and initial units.
        root_queue = list(assumptions) + initial_units
        for literal in root_queue:
            if value(literal) == -1:
                return None
        if not propagate(list(root_queue)):
            return None

        occurrences: Dict[int, int] = {}
        for clause in self._clauses:
            for literal in clause:
                occurrences[abs(literal)] = occurrences.get(abs(literal), 0) + 1
        order = sorted(range(1, self._num_vars + 1), key=lambda v: -occurrences.get(v, 0))

        def pick_branch_variable() -> Optional[int]:
            for variable in order:
                if assignment[variable] == 0:
                    return variable
            return None

        # Iterative DPLL: each stack entry is (variable, next_phase_to_try).
        decisions: List[Tuple[int, List[bool]]] = []
        while True:
            variable = pick_branch_variable()
            if variable is None:
                return {v: assignment[v] == 1 for v in range(1, self._num_vars + 1)}
            decisions.append((variable, [True, False]))
            progressed = False
            while decisions and not progressed:
                variable, phases = decisions[-1]
                if not phases:
                    decisions.pop()
                    if decisions:
                        unassign_to(trail_limits.pop())
                    continue
                phase = phases.pop(0)
                if len(trail_limits) < len(decisions):
                    trail_limits.append(len(trail))
                else:
                    unassign_to(trail_limits[-1])
                literal = variable if phase else -variable
                if propagate([literal]):
                    progressed = True
            if not decisions:
                return None
