"""A TCC-Mono-like Causal Consistency checker (SAT modulo acyclicity).

TCC-Mono [Liu et al. 2024; Bayless et al. 2015] checks transactional causal
consistency by encoding the commit-order constraints into MonoSAT, a SAT
solver with a built-in monotonic graph theory.  This baseline reproduces the
approach with the local substrate:

* every commit-order constraint forced by the CC axiom becomes a *required*
  edge variable (a unit clause),
* the ``so ∪ wr`` edges are hard edges,
* the acyclicity theory (the CEGAR loop of
  :class:`~repro.baselines.sat.acyclicity.AcyclicityEncoder`) rejects models
  whose selected edges form a cycle.

The instance is satisfiable iff the history is causally consistent.  The
cost profile -- full saturation plus SAT machinery -- matches TCC-Mono's
position in the paper's Fig. 7: correct, but far slower than AWDIT.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.core.isolation import IsolationLevel
from repro.core.model import History, OpRef
from repro.core.read_consistency import check_read_consistency
from repro.core.result import CheckResult, Stopwatch
from repro.core.violations import CycleViolation, Violation, ViolationKind
from repro.baselines.sat.acyclicity import AcyclicityEncoder

__all__ = ["check_cc_monosat"]


def _causal_ancestors(history: History, bad_reads: Set[OpRef]) -> List[Set[int]]:
    """Ancestor sets of ``so ∪ wr`` (empty when the relation is cyclic)."""
    from repro.graph.cycles import topological_sort
    from repro.graph.digraph import DiGraph

    graph = DiGraph(history.num_transactions)
    for source, target in history.so_edges():
        graph.add_edge(source, target)
    transactions = history.transactions
    for tid in history.committed:
        for writer, index, _op in history.txn_read_froms(tid):
            if OpRef(tid, index) in bad_reads:
                continue
            if transactions[writer].committed:
                graph.add_edge(writer, tid)
    order = topological_sort(graph)
    ancestors: List[Set[int]] = [set() for _ in range(history.num_transactions)]
    if order is None:
        return ancestors
    for tid in order:
        for succ in graph.unique_successors(tid):
            ancestors[succ].add(tid)
            ancestors[succ] |= ancestors[tid]
    return ancestors


def check_cc_monosat(history: History) -> CheckResult:
    """Check Causal Consistency with the SAT-modulo-acyclicity encoding."""
    watch = Stopwatch()
    report = check_read_consistency(history)
    violations: List[Violation] = list(report.violations)
    transactions = history.transactions
    ancestors = _causal_ancestors(history, report.bad_reads)
    watch.lap("ancestors")

    encoder = AcyclicityEncoder(history.num_transactions)
    for source, target in history.so_edges():
        encoder.add_hard_edge(source, target)
    for tid in history.committed:
        for writer, index, _op in history.txn_read_froms(tid):
            if OpRef(tid, index) in report.bad_reads:
                continue
            if transactions[writer].committed:
                encoder.add_hard_edge(writer, tid)

    writers_of_key: Dict[str, List[int]] = {}
    for tid in history.committed:
        for key in transactions[tid].keys_written:
            writers_of_key.setdefault(key, []).append(tid)

    num_constraints = 0
    for t3 in history.committed:
        for writer, index, op in history.txn_read_froms(t3):
            if OpRef(t3, index) in report.bad_reads:
                continue
            if not transactions[writer].committed:
                continue
            t1 = writer
            for t2 in writers_of_key.get(op.key, ()):
                if t2 != t1 and t2 in ancestors[t3]:
                    encoder.require_edge(t2, t1)
                    num_constraints += 1
    watch.lap("encoding")

    # A so ∪ wr cycle leaves the ancestor sets empty; the hard edges alone
    # then contain the cycle and the encoder reports unsatisfiability.
    model = encoder.solve()
    watch.lap("solving")

    if model is None:
        violations.append(
            CycleViolation(
                kind=ViolationKind.COMMIT_ORDER_CYCLE,
                message=(
                    "SAT-modulo-acyclicity instance is unsatisfiable: no commit "
                    "order satisfies the CC constraints"
                ),
                edges=(),
            )
        )
    return CheckResult(
        level=IsolationLevel.CAUSAL_CONSISTENCY,
        violations=violations,
        checker="tcc-mono-like",
        elapsed_seconds=watch.total,
        num_operations=history.num_operations,
        num_transactions=history.num_transactions,
        num_sessions=history.num_sessions,
        stats={
            "constraints": num_constraints,
            "cegar_rounds": encoder.rounds,
            **watch.laps,
        },
    )
