"""A PolySI-like Snapshot Isolation checker.

PolySI [Huang et al. 2023] checks Snapshot Isolation by encoding the history
into MonoSAT.  Since ``SI ⊑ RC, RA, CC``, the paper's evaluation uses PolySI
as a *complete but possibly unsound* detector of weak-isolation anomalies
(every weak-isolation violation is also an SI violation, but an SI violation
-- e.g. write skew -- need not violate the weak levels).

The encoding here follows the standard start/commit-point characterization
of SI (Crooks et al. 2017): each committed transaction ``t`` is split into a
begin event ``b(t)`` and a commit event ``c(t)``, and the history satisfies
SI iff the events can be totally ordered such that

* ``b(t) < c(t)`` and session order holds between commit and next begin,
* every read of ``t3`` from ``t1`` has ``c(t1) < b(t3)`` and no other writer
  of the key commits between ``c(t1)`` and ``b(t3)``,
* transactions writing a common key do not overlap (first-committer-wins).

Ordering choices are Boolean edge variables over the event graph; acyclicity
is enforced by the CEGAR theory loop.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.core.isolation import IsolationLevel
from repro.core.model import History, OpRef
from repro.core.read_consistency import check_read_consistency
from repro.core.result import CheckResult, Stopwatch
from repro.core.violations import CycleViolation, Violation, ViolationKind
from repro.baselines.sat.acyclicity import AcyclicityEncoder

__all__ = ["check_si_polysi"]


def check_si_polysi(history: History) -> CheckResult:
    """Check whether ``history`` satisfies Snapshot Isolation."""
    watch = Stopwatch()
    report = check_read_consistency(history)
    violations: List[Violation] = list(report.violations)
    transactions = history.transactions
    committed = history.committed

    # Event ids: begin(t) = 2 * t, commit(t) = 2 * t + 1.
    def begin(tid: int) -> int:
        return 2 * tid

    def commit(tid: int) -> int:
        return 2 * tid + 1

    encoder = AcyclicityEncoder(2 * history.num_transactions)
    for tid in committed:
        encoder.add_hard_edge(begin(tid), commit(tid))
    for source, target in history.so_edges():
        encoder.add_hard_edge(commit(source), begin(target))

    writers_of_key: Dict[str, List[int]] = {}
    for tid in committed:
        for key in transactions[tid].keys_written:
            writers_of_key.setdefault(key, []).append(tid)

    num_clauses = 0
    seen_reads: Set = set()
    for t3 in committed:
        for writer, index, op in history.txn_read_froms(t3):
            if OpRef(t3, index) in report.bad_reads:
                continue
            if not transactions[writer].committed:
                continue
            t1 = writer
            encoder.add_hard_edge(commit(t1), begin(t3))
            if (t1, t3, op.key) in seen_reads:
                continue
            seen_reads.add((t1, t3, op.key))
            for t2 in writers_of_key.get(op.key, ()):
                if t2 == t1 or t2 == t3:
                    continue
                # No other writer of the key commits inside [c(t1), b(t3)].
                encoder.add_clause(
                    [
                        encoder.edge_var(commit(t2), commit(t1)),
                        encoder.edge_var(begin(t3), commit(t2)),
                    ]
                )
                num_clauses += 1

    # First-committer-wins: transactions writing a common key must not
    # overlap in time.
    conflict_pairs: Set = set()
    for key, writers in writers_of_key.items():
        for i, left in enumerate(writers):
            for right in writers[i + 1 :]:
                if left == right:
                    continue
                pair = (min(left, right), max(left, right))
                if pair in conflict_pairs:
                    continue
                conflict_pairs.add(pair)
                encoder.add_clause(
                    [
                        encoder.edge_var(commit(pair[0]), begin(pair[1])),
                        encoder.edge_var(commit(pair[1]), begin(pair[0])),
                    ]
                )
                num_clauses += 1
    watch.lap("encoding")

    model = encoder.solve()
    watch.lap("solving")

    if model is None:
        violations.append(
            CycleViolation(
                kind=ViolationKind.COMMIT_ORDER_CYCLE,
                message="no Snapshot Isolation schedule exists (SAT instance unsatisfiable)",
                edges=(),
            )
        )
    return CheckResult(
        level=IsolationLevel.CAUSAL_CONSISTENCY,
        violations=violations,
        checker="polysi-like",
        elapsed_seconds=watch.total,
        num_operations=history.num_operations,
        num_transactions=history.num_transactions,
        num_sessions=history.num_sessions,
        stats={
            "clauses": num_clauses,
            "conflict_pairs": len(conflict_pairs),
            "cegar_rounds": encoder.rounds,
            **watch.laps,
        },
    )
