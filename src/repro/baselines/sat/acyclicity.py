"""SAT modulo graph acyclicity, CEGAR style.

MonoSAT-based testers couple a SAT solver with a *monotonic theory* of graph
reachability: Boolean variables denote the presence of edges, and the theory
enforces that the selected edge set is acyclic.  This module provides the
same coupling with a counterexample-guided loop:

1. the encoder registers edge variables (``edge_var``) and hard edges
   (``add_hard_edge``), plus arbitrary clauses over those variables;
2. :meth:`AcyclicityEncoder.solve` asks the SAT solver for a model, builds
   the graph induced by the chosen edges, and checks it for cycles;
3. every cycle found is turned into a blocking clause (at least one of the
   participating selectable edges must be dropped) and the solver is asked
   again, until a model with an acyclic graph is found (consistent) or the
   instance becomes unsatisfiable (violation).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.baselines.sat.solver import SATSolver
from repro.graph.cycles import find_cycle_in_component, strongly_connected_components
from repro.graph.digraph import DiGraph

__all__ = ["AcyclicityEncoder"]


class AcyclicityEncoder:
    """Boolean edge selection subject to clauses and graph acyclicity."""

    def __init__(self, num_vertices: int) -> None:
        self.num_vertices = num_vertices
        self.solver = SATSolver()
        self._edge_vars: Dict[Tuple[int, int], int] = {}
        self._var_to_edge: Dict[int, Tuple[int, int]] = {}
        self._hard_edges: Set[Tuple[int, int]] = set()
        self.rounds = 0

    # -- encoding ---------------------------------------------------------------

    def edge_var(self, source: int, target: int) -> int:
        """The Boolean variable standing for the edge ``source -> target``."""
        key = (source, target)
        if key not in self._edge_vars:
            var = self.solver.new_var()
            self._edge_vars[key] = var
            self._var_to_edge[var] = key
        return self._edge_vars[key]

    def add_hard_edge(self, source: int, target: int) -> None:
        """Add an edge that is always present (not up to the solver)."""
        self._hard_edges.add((source, target))

    def add_clause(self, literals: Sequence[int]) -> None:
        """Add an arbitrary clause over previously created variables."""
        self.solver.add_clause(literals)

    def require_edge(self, source: int, target: int) -> None:
        """Force an edge variable to true (a unit clause)."""
        self.solver.add_clause([self.edge_var(source, target)])

    # -- solving -------------------------------------------------------------------

    def solve(self, max_rounds: int = 10_000) -> Optional[List[Tuple[int, int]]]:
        """Search for a model whose selected edges plus hard edges are acyclic.

        Returns the list of selected (soft) edges of a satisfying acyclic
        model, or ``None`` when no such model exists -- i.e. the underlying
        consistency instance has no valid commit order.
        """
        for _ in range(max_rounds):
            self.rounds += 1
            model = self.solver.solve()
            if model is None:
                return None
            chosen = [
                edge for var, edge in self._var_to_edge.items() if model.get(var, False)
            ]
            graph = DiGraph(self.num_vertices)
            for source, target in self._hard_edges:
                graph.add_edge(source, target)
            edge_to_var: Dict[Tuple[int, int], int] = {}
            for source, target in chosen:
                graph.add_edge(source, target)
                edge_to_var[(source, target)] = self._edge_vars[(source, target)]
            cycle_clause = self._find_cycle_blocking_clause(graph, edge_to_var)
            if cycle_clause is None:
                return chosen
            if not cycle_clause:
                # The cycle consists purely of hard edges; no assignment can
                # ever repair it.
                return None
            self.solver.add_clause(cycle_clause)
        raise RuntimeError("acyclicity CEGAR loop did not converge")

    def _find_cycle_blocking_clause(
        self, graph: DiGraph, edge_to_var: Dict[Tuple[int, int], int]
    ) -> Optional[List[int]]:
        """A blocking clause for one cycle of ``graph``; ``None`` if acyclic."""
        for component in strongly_connected_components(graph):
            if len(component) <= 1:
                continue
            cycle = find_cycle_in_component(graph, component)
            literals: List[int] = []
            for position, source in enumerate(cycle):
                target = cycle[(position + 1) % len(cycle)]
                var = edge_to_var.get((source, target))
                if var is not None:
                    literals.append(-var)
            return literals
        return None
