"""A DBCop-like Causal Consistency checker.

DBCop [Biswas and Enea 2019] checks causal consistency by *saturating* the
history: it materializes the causal order as an explicit transitive closure
and derives the commit-order constraints forced by every read, then checks
the combined relation for cycles.  Unlike AWDIT it makes no attempt to keep
the derived relation small: the closure is quadratic in the number of
transactions and is recomputed wholesale, which yields the roughly cubic
behaviour that makes DBCop time out on the larger histories of Fig. 7.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.core.commit import CommitRelation
from repro.core.isolation import IsolationLevel
from repro.core.model import History, OpRef
from repro.core.read_consistency import check_read_consistency
from repro.core.result import CheckResult, Stopwatch
from repro.core.violations import Violation

__all__ = ["check_cc_dbcop"]


def _transitive_closure(history: History, bad_reads: Set[OpRef]) -> List[Set[int]]:
    """Explicit ancestor sets of ``so ∪ wr`` (the expensive part of DBCop)."""
    num = history.num_transactions
    direct: List[Set[int]] = [set() for _ in range(num)]
    for source, target in history.so_edges():
        direct[target].add(source)
    transactions = history.transactions
    for tid in history.committed:
        for writer, index, _op in history.txn_read_froms(tid):
            if OpRef(tid, index) in bad_reads:
                continue
            if transactions[writer].committed:
                direct[tid].add(writer)
    # Gauss-Seidel style propagation to a fixpoint: repeatedly fold ancestor
    # sets until nothing changes.  Quadratic-to-cubic, intentionally.
    ancestors: List[Set[int]] = [set(direct[tid]) for tid in range(num)]
    changed = True
    while changed:
        changed = False
        for tid in range(num):
            before = len(ancestors[tid])
            for parent in list(ancestors[tid]):
                ancestors[tid] |= ancestors[parent]
            if len(ancestors[tid]) != before:
                changed = True
    return ancestors


def check_cc_dbcop(history: History) -> CheckResult:
    """Check Causal Consistency by full saturation over an explicit closure."""
    watch = Stopwatch()
    report = check_read_consistency(history)
    violations: List[Violation] = list(report.violations)
    ancestors = _transitive_closure(history, report.bad_reads)
    watch.lap("closure")

    relation = CommitRelation(history)
    transactions = history.transactions
    writers_of_key: Dict[str, List[int]] = {}
    for tid in history.committed:
        for key in transactions[tid].keys_written:
            writers_of_key.setdefault(key, []).append(tid)

    for t3 in history.committed:
        for writer, index, op in history.txn_read_froms(t3):
            if OpRef(t3, index) in report.bad_reads:
                continue
            if not transactions[writer].committed:
                continue
            t1 = writer
            for t2 in writers_of_key.get(op.key, ()):
                if t2 != t1 and t2 in ancestors[t3]:
                    relation.add_inferred(t2, t1, key=op.key)
    watch.lap("saturation")

    violations.extend(relation.find_cycles())
    watch.lap("cycle_check")
    return CheckResult(
        level=IsolationLevel.CAUSAL_CONSISTENCY,
        violations=violations,
        checker="dbcop-like",
        elapsed_seconds=watch.total,
        num_operations=history.num_operations,
        num_transactions=history.num_transactions,
        num_sessions=history.num_sessions,
        stats=dict(watch.laps),
    )
