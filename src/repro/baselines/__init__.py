"""Baseline isolation testers.

The paper's evaluation (Section 5) compares AWDIT against every weak
isolation tester from recent literature.  Those tools are Java / Rust /
Datalog / MonoSAT artifacts; this package reimplements each of them in Python
at the published algorithmic approach and complexity class, so the relative
performance picture of the paper (Figs. 7-8) can be reproduced:

* :mod:`repro.baselines.naive` -- direct-from-definition reference checkers
  (explicit saturation), used as correctness oracles in the test suite.
* :mod:`repro.baselines.plume` -- a Plume-like checker: exhaustive
  Transactional-Anomalous-Pattern search over per-key writer indexes with
  vector clocks (polynomial, but a higher degree than AWDIT).
* :mod:`repro.baselines.dbcop` -- a DBCop-like CC checker: repeated
  transitive-closure saturation to a fixpoint (roughly cubic).
* :mod:`repro.baselines.causalc` -- a CausalC+-like CC checker built on a
  small semi-naive Datalog engine (:mod:`repro.baselines.datalog`).
* :mod:`repro.baselines.sat` -- a mini DPLL SAT solver plus SAT-based
  checkers: a TCC-Mono-like CC checker (SAT with a lazily-enforced
  acyclicity theory), a PolySI-like Snapshot Isolation checker, and a
  Serializability checker.

Every baseline exposes a ``check_*`` function returning the same
:class:`~repro.core.result.CheckResult` type as the AWDIT checkers, and
:data:`BASELINE_REGISTRY` maps tester names to callables for the benchmark
harness and the CLI.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.isolation import IsolationLevel
from repro.core.model import History
from repro.core.result import CheckResult

from repro.baselines.causalc import check_cc_causalc
from repro.baselines.dbcop import check_cc_dbcop
from repro.baselines.naive import check_naive
from repro.baselines.plume import check_plume
from repro.baselines.sat.monosat import check_cc_monosat
from repro.baselines.sat.polysi import check_si_polysi
from repro.baselines.sat.serializable import check_serializability

__all__ = [
    "check_naive",
    "check_plume",
    "check_cc_dbcop",
    "check_cc_causalc",
    "check_cc_monosat",
    "check_si_polysi",
    "check_serializability",
    "BASELINE_REGISTRY",
]

#: Tester name -> callable(history, level) -> CheckResult.  Testers that only
#: support CC ignore the requested level and always check CC (matching the
#: behaviour described in Section 5.2: "Causal+ and TCC-Mono run at CC by
#: default, while PolySI runs at SI").
BASELINE_REGISTRY: Dict[str, Callable[[History, IsolationLevel], CheckResult]] = {
    "naive": check_naive,
    "plume": check_plume,
    "dbcop": lambda history, level=IsolationLevel.CAUSAL_CONSISTENCY: check_cc_dbcop(history),
    "causalc+": lambda history, level=IsolationLevel.CAUSAL_CONSISTENCY: check_cc_causalc(history),
    "tcc-mono": lambda history, level=IsolationLevel.CAUSAL_CONSISTENCY: check_cc_monosat(history),
    "polysi": lambda history, level=IsolationLevel.CAUSAL_CONSISTENCY: check_si_polysi(history),
}
