"""A small in-memory Datalog engine.

CausalC+ [Zennou et al. 2022; Liu et al. 2024] expresses causal-consistency
checking as a Datalog program.  To reproduce that baseline faithfully -- and
because a Datalog evaluator is a generally useful substrate for relational
fixpoint computations -- this module implements a compact engine:

* relations are sets of constant tuples,
* rules are Horn clauses ``head :- body_1, ..., body_m`` whose atoms may mix
  variables and constants, plus optional inequality guards,
* evaluation is semi-naive: each round joins the *delta* of one body atom
  against the full relations of the others, so already-derived facts are not
  re-derived.

The engine is deliberately straightforward (nested-loop joins with index
support on the first bound column); its cost profile -- materializing the
transitive closure of happens-before -- is exactly why CausalC+ scales poorly
in the paper's Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["Variable", "Atom", "Rule", "DatalogProgram"]


@dataclass(frozen=True)
class Variable:
    """A Datalog variable; equality is by name."""

    name: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


Term = object  # either a Variable or a constant
Tuple_ = Tuple[object, ...]


@dataclass(frozen=True)
class Atom:
    """An atom ``relation(term_1, ..., term_n)``."""

    relation: str
    terms: Tuple[Term, ...]

    def arity(self) -> int:
        """Number of terms."""
        return len(self.terms)


@dataclass(frozen=True)
class Rule:
    """A Horn clause with optional inequality guards.

    ``distinct`` lists pairs of variables that must bind to different
    constants (the ``X != Y`` guards CausalC+ needs to exclude reflexive
    commit-order edges).
    """

    head: Atom
    body: Tuple[Atom, ...]
    distinct: Tuple[Tuple[Variable, Variable], ...] = ()


class DatalogProgram:
    """A set of rules evaluated to a fixpoint over extensional facts."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        self.rules = list(rules)
        # First-column join indexes, keyed by (id(source dict), relation).
        self._index_cache: Dict[Tuple[int, str], Tuple[int, Dict[object, List[Tuple_]]]] = {}

    # -- evaluation -----------------------------------------------------------

    def evaluate(
        self, facts: Dict[str, Set[Tuple_]], max_rounds: Optional[int] = None
    ) -> Dict[str, Set[Tuple_]]:
        """Compute the least fixpoint of the rules over the given facts.

        ``facts`` maps relation names to sets of tuples (the EDB); the result
        contains both the EDB and every derived (IDB) tuple.  ``max_rounds``
        bounds the number of semi-naive iterations (useful to enforce
        timeouts in benchmarks); ``None`` means run to the fixpoint.
        """
        database: Dict[str, Set[Tuple_]] = {name: set(rows) for name, rows in facts.items()}
        deltas: Dict[str, Set[Tuple_]] = {name: set(rows) for name, rows in facts.items()}
        rounds = 0
        while deltas and (max_rounds is None or rounds < max_rounds):
            rounds += 1
            new_deltas: Dict[str, Set[Tuple_]] = {}
            for rule in self.rules:
                for derived in self._apply_rule(rule, database, deltas):
                    relation = rule.head.relation
                    if derived not in database.setdefault(relation, set()):
                        database[relation].add(derived)
                        new_deltas.setdefault(relation, set()).add(derived)
            deltas = new_deltas
        return database

    def _apply_rule(
        self,
        rule: Rule,
        database: Dict[str, Set[Tuple_]],
        deltas: Dict[str, Set[Tuple_]],
    ) -> Iterable[Tuple_]:
        """Evaluate one rule semi-naively: require at least one delta atom."""
        results: Set[Tuple_] = set()
        for delta_index, atom in enumerate(rule.body):
            if atom.relation not in deltas:
                continue
            self._join(rule, delta_index, 0, {}, database, deltas, results)
        return results

    def _join(
        self,
        rule: Rule,
        delta_index: int,
        position: int,
        bindings: Dict[Variable, object],
        database: Dict[str, Set[Tuple_]],
        deltas: Dict[str, Set[Tuple_]],
        results: Set[Tuple_],
    ) -> None:
        if position == len(rule.body):
            if self._guards_hold(rule, bindings):
                results.add(self._instantiate(rule.head, bindings))
            return
        atom = rule.body[position]
        source = deltas if position == delta_index else database
        rows = source.get(atom.relation, set())
        # First-column index: when the atom's first term is already bound (or
        # is a constant), only rows starting with that value can match.  This
        # turns the nested-loop join into an index join on the leading column,
        # which is what keeps the transitive-closure rules tractable.
        if rows and atom.terms:
            first = atom.terms[0]
            bound_value = _UNBOUND
            if isinstance(first, Variable):
                bound_value = bindings.get(first, _UNBOUND)
            else:
                bound_value = first
            if bound_value is not _UNBOUND:
                index = self._index_for(source, atom.relation)
                rows = index.get(bound_value, ())
        for row in rows:
            extended = self._match(atom, row, bindings)
            if extended is not None:
                self._join(
                    rule, delta_index, position + 1, extended, database, deltas, results
                )

    def _index_for(self, source: Dict[str, Set[Tuple_]], relation: str):
        """A first-column index over ``source[relation]``.

        Indexes are cached per (source object, relation) and invalidated by a
        size check; within one rule application the source relations do not
        change, so the cache is rebuilt at most once per relation per round.
        """
        rows = source.get(relation, set())
        cache_key = (id(source), relation)
        entry = self._index_cache.get(cache_key)
        if entry is not None and entry[0] == len(rows):
            return entry[1]
        index: Dict[object, List[Tuple_]] = {}
        for row in rows:
            if row:
                index.setdefault(row[0], []).append(row)
        self._index_cache[cache_key] = (len(rows), index)
        return index

    @staticmethod
    def _match(
        atom: Atom, row: Tuple_, bindings: Dict[Variable, object]
    ) -> Optional[Dict[Variable, object]]:
        if len(row) != len(atom.terms):
            return None
        extended = dict(bindings)
        for term, value in zip(atom.terms, row):
            if isinstance(term, Variable):
                bound = extended.get(term, _UNBOUND)
                if bound is _UNBOUND:
                    extended[term] = value
                elif bound != value:
                    return None
            elif term != value:
                return None
        return extended

    @staticmethod
    def _guards_hold(rule: Rule, bindings: Dict[Variable, object]) -> bool:
        for left, right in rule.distinct:
            if bindings.get(left) == bindings.get(right):
                return False
        return True

    @staticmethod
    def _instantiate(atom: Atom, bindings: Dict[Variable, object]) -> Tuple_:
        values = []
        for term in atom.terms:
            if isinstance(term, Variable):
                values.append(bindings[term])
            else:
                values.append(term)
        return tuple(values)


class _Unbound:
    """Sentinel distinguishing 'unbound variable' from a bound ``None``."""


_UNBOUND = _Unbound()
