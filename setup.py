"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
offline environments whose setuptools predates PEP 660 editable installs.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description="AWDIT reproduction: an optimal weak database isolation tester (PLDI 2025)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    entry_points={"console_scripts": ["awdit = repro.cli:main"]},
)
