"""Regression tests: every worked example of the paper gets the published verdict."""

import pytest

from repro.core import IsolationLevel, check_all_levels
from repro.core.model import History, Transaction, read, write
from repro.core.violations import ViolationKind
from repro.lowerbounds import (
    UndirectedGraph,
    general_reduction,
    ra_two_session_reduction,
    rc_single_session_reduction,
)
from repro.core import check

from helpers import PAPER_VERDICTS, all_paper_histories


@pytest.mark.parametrize("name", sorted(PAPER_VERDICTS))
def test_figure_verdicts_match_paper(name):
    """Figs. 1 and 4: the RC / RA / CC verdicts stated in the paper."""
    history = all_paper_histories()[name]
    expected_rc, expected_ra, expected_cc = PAPER_VERDICTS[name]
    results = check_all_levels(history)
    assert results[IsolationLevel.READ_COMMITTED].is_consistent == expected_rc
    assert results[IsolationLevel.READ_ATOMIC].is_consistent == expected_ra
    assert results[IsolationLevel.CAUSAL_CONSISTENCY].is_consistent == expected_cc


class TestFig2ReadConsistencyTaps:
    """The five Read Consistency anomaly patterns of Fig. 2."""

    def test_no_thin_air_reads(self):
        history = History.from_sessions([[Transaction([read("x", 1)])]])
        result = check_all_levels(history)[IsolationLevel.READ_COMMITTED]
        assert ViolationKind.THIN_AIR_READ in result.violation_kinds()

    def test_no_aborted_reads(self):
        history = History.from_sessions(
            [
                [Transaction([write("x", 1)], committed=False)],
                [Transaction([read("x", 1)])],
            ]
        )
        result = check_all_levels(history)[IsolationLevel.READ_COMMITTED]
        assert ViolationKind.ABORTED_READ in result.violation_kinds()

    def test_no_future_reads(self):
        history = History.from_sessions(
            [[Transaction([read("x", 1), write("x", 1)])]]
        )
        result = check_all_levels(history)[IsolationLevel.READ_ATOMIC]
        assert ViolationKind.FUTURE_READ in result.violation_kinds()

    def test_observe_own_writes(self):
        history = History.from_sessions(
            [
                [Transaction([write("x", 1)])],
                [Transaction([write("x", 2), read("x", 1)])],
            ]
        )
        result = check_all_levels(history)[IsolationLevel.CAUSAL_CONSISTENCY]
        assert ViolationKind.NOT_OWN_WRITE in result.violation_kinds()

    def test_observe_latest_write(self):
        history = History.from_sessions(
            [
                [Transaction([write("x", 1), write("x", 2)])],
                [Transaction([read("x", 1)])],
            ]
        )
        result = check_all_levels(history)[IsolationLevel.READ_COMMITTED]
        assert ViolationKind.NOT_LATEST_WRITE in result.violation_kinds()


class TestFig5GeneralReduction:
    """Fig. 5: the triangle graph 1-2-3 maps to an RC-inconsistent history."""

    def test_triangle_graph_history_is_inconsistent_at_every_level(self):
        graph = UndirectedGraph(3, [(0, 1), (1, 2), (0, 2)])
        history = general_reduction(graph)
        for level in IsolationLevel:
            assert not check(history, level).is_consistent

    def test_path_graph_history_is_consistent_at_every_level(self):
        graph = UndirectedGraph(3, [(0, 1), (1, 2)])
        history = general_reduction(graph)
        for level in IsolationLevel:
            assert check(history, level).is_consistent

    def test_construction_shape_matches_paper(self):
        graph = UndirectedGraph(3, [(0, 1), (1, 2), (0, 2)])
        history = general_reduction(graph)
        # One session per transaction, two transactions per node.
        assert history.num_sessions == 2 * graph.num_vertices
        assert all(len(session) == 1 for session in history.sessions)


class TestFig6RaReduction:
    """Fig. 6: the two-session RA reduction."""

    def test_triangle_graph_violates_ra(self):
        graph = UndirectedGraph(3, [(0, 1), (1, 2), (0, 2)])
        history = ra_two_session_reduction(graph)
        assert history.num_sessions == 2
        assert not check(history, IsolationLevel.READ_ATOMIC).is_consistent

    def test_triangle_free_graph_satisfies_ra(self):
        graph = UndirectedGraph(4, [(0, 1), (1, 2), (2, 3)])
        history = ra_two_session_reduction(graph)
        assert check(history, IsolationLevel.READ_ATOMIC).is_consistent


class TestRcSingleSessionReduction:
    """Section 4.2: the one-session RC reduction behind Theorem 1.5."""

    def test_triangle_graph_violates_rc_with_one_session(self):
        graph = UndirectedGraph(3, [(0, 1), (1, 2), (0, 2)])
        history = rc_single_session_reduction(graph)
        assert history.num_sessions == 1
        assert not check(history, IsolationLevel.READ_COMMITTED).is_consistent

    def test_triangle_free_graph_satisfies_rc_with_one_session(self):
        graph = UndirectedGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        history = rc_single_session_reduction(graph)
        assert check(history, IsolationLevel.READ_COMMITTED).is_consistent
