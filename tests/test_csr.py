"""Tests for the frozen CSR relation core (repro.graph.csr + CommitRelation).

The freeze is the relation layer's single de-duplication point, so these
tests pin three properties the engines rely on:

* the frozen CSR graph is isomorphic to a reference ``DiGraph`` built from
  the same edge set (same SCC partition, same reachability, same
  acyclicity verdict), hypothesis-tested on random edge multisets;
* duplicated edges -- parallel ``co`` insertions included -- never
  double-count in SCC, toposort, linearization, or inferred-edge counts;
* the numpy-vectorized freeze and the pure-Python fallback produce
  bit-identical structures, including at the 32-bit packed-edge boundary.
"""

from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.commit import CommitRelation
from repro.core.model import History, Transaction, read, write
from repro.graph import csr
from repro.graph.csr import (
    FrozenGraph,
    distinct_edge_count,
    find_cycle_in_component_frozen,
    freeze_packed,
    scc_frozen,
    toposort_frozen,
)
from repro.graph.cycles import strongly_connected_components, topological_sort
from repro.graph.digraph import EDGE_MASK, EDGE_SHIFT, DiGraph


def _pack_all(edges):
    return [(u << EDGE_SHIFT) | v for u, v in edges]


def _freeze(n, edges):
    return freeze_packed(n, (_pack_all(edges),))


def _fallback_freeze(n, packed_runs):
    """Run freeze_packed with numpy disabled (the CI-runner code path)."""
    saved = csr._np
    csr._np = None
    try:
        return freeze_packed(n, packed_runs)
    finally:
        csr._np = saved


edge_sets = st.integers(2, 12).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)), max_size=40
        ),
    )
)


class TestFrozenGraphBasics:
    def test_empty(self):
        graph = freeze_packed(3, ())
        assert graph.num_vertices == 3
        assert graph.num_edges == 0
        assert graph.successors(1) == []
        assert toposort_frozen(graph) is not None

    def test_sorted_dedup_slices(self):
        graph = _freeze(4, [(0, 2), (0, 1), (0, 2), (3, 0), (3, 0)])
        assert graph.num_edges == 3
        assert graph.successors(0) == [1, 2]
        assert graph.successors(3) == [0]
        assert graph.has_edge(0, 2)
        assert not graph.has_edge(2, 0)
        assert list(graph.edges()) == [(0, 1), (0, 2), (3, 0)]

    def test_multiple_runs_concatenate(self):
        graph = freeze_packed(3, (_pack_all([(0, 1)]), array("Q", _pack_all([(1, 2), (0, 1)]))))
        assert graph.num_edges == 2
        assert graph.successors(0) == [1]
        assert graph.successors(1) == [2]

    def test_distinct_edge_count(self):
        runs = (_pack_all([(0, 1), (1, 2)]), _pack_all([(0, 1)]))
        assert distinct_edge_count(runs) == 2
        assert distinct_edge_count(()) == 0


class TestFrozenMatchesDiGraph:
    """The frozen CSR graph is isomorphic to the dict/list DiGraph."""

    @settings(max_examples=120, deadline=None)
    @given(edge_sets)
    def test_scc_partition_reachability_and_acyclicity(self, case):
        n, edges = case
        reference = DiGraph.from_edges(n, edges)
        frozen = _freeze(n, edges)

        ref_partition = {frozenset(c) for c in strongly_connected_components(reference)}
        frozen_partition = {frozenset(c) for c in scc_frozen(frozen)}
        assert frozen_partition == ref_partition

        for vertex in range(n):
            assert frozen.reachable_from([vertex]) == reference.reachable_from(
                [vertex]
            )

        ref_order = topological_sort(reference)
        frozen_order = toposort_frozen(frozen)
        assert (frozen_order is None) == (ref_order is None)
        if frozen_order is not None:
            # Any valid order suffices; validate it against the edge set.
            position = {v: i for i, v in enumerate(frozen_order)}
            assert sorted(frozen_order) == list(range(n))
            assert all(position[u] < position[v] for u, v in set(edges) if u != v)

    @settings(max_examples=80, deadline=None)
    @given(edge_sets)
    def test_extracted_cycles_are_real_cycles(self, case):
        n, edges = case
        reference = DiGraph.from_edges(n, edges)
        frozen = _freeze(n, edges)
        for component in scc_frozen(frozen):
            if len(component) <= 1:
                continue
            cycle = find_cycle_in_component_frozen(frozen, component)
            # A self-loop inside the SCC may extract as a 1-cycle, exactly
            # like the DiGraph reference extractor.
            assert len(set(cycle)) == len(cycle) >= 1
            assert set(cycle) <= set(component)
            for i, source in enumerate(cycle):
                target = cycle[(i + 1) % len(cycle)]
                assert reference.has_edge(source, target)

    @settings(max_examples=60, deadline=None)
    @given(edge_sets)
    def test_fallback_freeze_is_bit_identical(self, case):
        n, edges = case
        packed = _pack_all(edges)
        vectorized = freeze_packed(n, (packed,))
        fallback = _fallback_freeze(n, (packed,))
        assert fallback.offsets == vectorized.offsets
        assert fallback.targets == vectorized.targets


class TestPackedEdgeBoundary:
    """Freeze kernels at the 32-bit packed-edge endpoint boundary.

    A packed edge with both endpoints at ``EDGE_MASK`` occupies all 64 bits,
    so the sort/dedup kernels must treat the logs as unsigned -- a signed
    row would flip the order (or overflow outright).
    """

    def test_distinct_count_at_boundary(self):
        top = (EDGE_MASK << EDGE_SHIFT) | EDGE_MASK
        low = (1 << EDGE_SHIFT) | 2
        runs = (array("Q", [top, low, top]), [low])
        assert distinct_edge_count(runs) == 2

    def test_fallback_agrees_at_boundary(self):
        top = (EDGE_MASK << EDGE_SHIFT) | EDGE_MASK
        runs = (array("Q", [top, (5 << EDGE_SHIFT) | 1, top]),)
        saved = csr._np
        csr._np = None
        try:
            assert distinct_edge_count(runs) == 2
        finally:
            csr._np = saved

    def test_boundary_edges_sort_as_unsigned(self):
        # A source id with the top bit of its 32-bit half set must sort
        # *after* small sources, not before (as a signed row would).
        high_src = EDGE_MASK  # packs into the sign bit of an int64
        n = 4
        graph = freeze_packed(n, ([(3 << EDGE_SHIFT) | 1, (0 << EDGE_SHIFT) | 2],))
        assert graph.successors(3) == [1]
        assert graph.successors(0) == [2]
        # The full-width value itself round-trips through the dedup kernel.
        assert distinct_edge_count(([((high_src) << EDGE_SHIFT) | high_src],)) == 1

    def test_commit_relation_rejects_oversized_vertex_count(self):
        with pytest.raises(ValueError, match="at most"):
            CommitRelation(
                names=None, committed=(), num_vertices=EDGE_MASK + 2
            )


def _cyclic_history():
    t1 = Transaction([write("x", 1), read("y", 2)], label="t1")
    t2 = Transaction([write("y", 2), read("x", 1)], label="t2")
    return History.from_sessions([[t1], [t2]])


class TestFreezeIsTheSingleDedupPoint:
    """Regression: duplicated co edges never double-count in SCC/toposort."""

    def test_duplicate_co_edges_collapse_in_graph_and_counts(self):
        t1 = Transaction([write("x", 1)], label="t1")
        t2 = Transaction([write("x", 2)], label="t2")
        t3 = Transaction([read("x", 1)], label="t3")
        history = History.from_sessions([[t1, t2], [t3]])
        relation = CommitRelation(history)
        for _ in range(5):
            relation.add_inferred(2, 1, key="x")
        assert relation.num_inferred_edges == 1
        assert relation.num_edges == 3  # so, wr, one co
        assert relation.graph.successors(2) == [1]

        reference = CommitRelation(history)
        reference.add_inferred(2, 1, key="x")
        assert relation.graph.offsets == reference.graph.offsets
        assert relation.graph.targets == reference.graph.targets
        assert relation.linearize() == reference.linearize()

    def test_duplicate_co_edges_produce_identical_witnesses(self):
        witnesses = []
        for copies in (1, 7):
            relation = CommitRelation(_cyclic_history())
            for _ in range(copies):
                relation.add_inferred(1, 0, key="z")
            witnesses.append([v.message for v in relation.find_cycles()])
        assert witnesses[0] == witnesses[1]

    def test_duplicate_edges_do_not_double_count_in_scc_or_toposort(self):
        packed = _pack_all([(0, 1), (0, 1), (1, 2), (1, 2), (2, 0)])
        frozen = freeze_packed(3, (packed,))
        assert frozen.num_edges == 3
        assert {frozenset(c) for c in scc_frozen(frozen)} == {frozenset({0, 1, 2})}
        assert toposort_frozen(frozen) is None
        acyclic = freeze_packed(3, (_pack_all([(0, 1), (0, 1), (1, 2)]),))
        assert toposort_frozen(acyclic) == [0, 1, 2]


class TestLazyLabels:
    """Labels replay from the retained logs only when a witness needs them."""

    def test_no_label_tables_materialize_on_consistent_history(self):
        t1 = Transaction([write("x", 1)], label="t1")
        t2 = Transaction([read("x", 1)], label="t2")
        relation = CommitRelation(History.from_sessions([[t1], [t2]]))
        assert relation.find_cycles() == []
        assert relation._labels is None  # the happy path never built them

    def test_labels_materialize_for_witnesses_and_stay_correct(self):
        relation = CommitRelation(_cyclic_history())
        cycles = relation.find_cycles()
        assert len(cycles) == 1
        assert relation._labels is not None
        assert relation.edge_label(0, 1) == ("wr", "y") or relation.edge_label(
            0, 1
        ) == ("wr", "x")

    def test_key_id_relations_decode_through_the_table(self):
        key_names = ["alpha", "beta"]
        relation = CommitRelation(
            names=["t0", "t1"], committed=[0, 1], key_names=key_names
        )
        relation._so_log.append((0 << EDGE_SHIFT) | 1)
        relation.add_inferred(1, 0, key=1)
        assert relation.edge_label(1, 0) == ("co", "beta")
        assert relation.edge_label(0, 1) == ("so", None)
        [cycle] = relation.find_cycles()
        assert "t0" in cycle.message and "t1" in cycle.message

    def test_frozen_graph_repr(self):
        graph = _freeze(2, [(0, 1)])
        assert isinstance(graph, FrozenGraph)
        assert "vertices=2" in repr(graph)
