"""Integration tests: the full pipeline from workload to verdict.

These tests mirror the experimental pipeline of Section 5: run a benchmark
workload against a (simulated) database, record the history, hand it to the
testers, and compare what they report -- including the Table 1 scenario where
histories contain injected anomalies.
"""

import random

import pytest

from repro.baselines import BASELINE_REGISTRY
from repro.core import IsolationLevel, check, check_all_levels
from repro.core.violations import ViolationKind
from repro.db.config import BugRates, DatabaseConfig, IsolationMode
from repro.db.profiles import COCKROACH_LIKE, POSTGRES_LIKE, with_overrides
from repro.histories.formats import load_history, save_history
from repro.histories.generator import inject_anomaly
from repro.workloads import (
    CTwitterWorkload,
    RUBiSWorkload,
    TPCCWorkload,
    collect_history,
)


class TestEndToEndPipeline:
    @pytest.mark.parametrize(
        "workload",
        [TPCCWorkload(num_warehouses=1, num_items=20), CTwitterWorkload(num_users=10), RUBiSWorkload(num_users=8, num_items=20)],
        ids=["tpcc", "ctwitter", "rubis"],
    )
    @pytest.mark.parametrize("profile", [POSTGRES_LIKE, COCKROACH_LIKE], ids=["postgres", "cockroach"])
    def test_strongly_isolated_databases_yield_consistent_histories(self, workload, profile):
        history = collect_history(
            workload,
            with_overrides(profile, seed=21),
            num_sessions=6,
            num_transactions=120,
            seed=3,
        )
        results = check_all_levels(history)
        assert all(result.is_consistent for result in results.values())

    def test_round_trip_through_disk_preserves_verdict(self, tmp_path):
        history = collect_history(
            CTwitterWorkload(num_users=8),
            with_overrides(COCKROACH_LIKE, isolation=IsolationMode.READ_COMMITTED, seed=5),
            num_sessions=8,
            num_transactions=200,
            seed=5,
        )
        path = tmp_path / "history.plume"
        save_history(history, str(path))
        reloaded = load_history(str(path))
        for level in IsolationLevel:
            assert (
                check(reloaded, level).is_consistent
                == check(history, level).is_consistent
            )

    def test_all_testers_agree_on_a_cc_history(self):
        history = collect_history(
            CTwitterWorkload(num_users=8),
            with_overrides(COCKROACH_LIKE, isolation=IsolationMode.CAUSAL, seed=6),
            num_sessions=5,
            num_transactions=80,
            seed=6,
        )
        verdicts = {
            name: checker(history, IsolationLevel.CAUSAL_CONSISTENCY).is_consistent
            for name, checker in BASELINE_REGISTRY.items()
            if name not in ("polysi",)  # SI is stronger; may legitimately differ
        }
        awdit = check(history, IsolationLevel.CAUSAL_CONSISTENCY).is_consistent
        assert all(v == awdit for v in verdicts.values()), verdicts


class TestTable1Scenario:
    """Anomalous histories (future reads, causality cycles) are found and classified."""

    def _tpcc_history(self, seed):
        return collect_history(
            TPCCWorkload(num_warehouses=1, num_items=15),
            with_overrides(POSTGRES_LIKE, seed=seed),
            num_sessions=5,
            num_transactions=80,
            seed=seed,
        )

    def test_future_read_anomaly_detected_by_awdit_and_plume(self):
        history = inject_anomaly(
            self._tpcc_history(31), ViolationKind.FUTURE_READ, rng=random.Random(1)
        )
        awdit_result = check(history, IsolationLevel.CAUSAL_CONSISTENCY)
        plume_result = BASELINE_REGISTRY["plume"](history, IsolationLevel.CAUSAL_CONSISTENCY)
        assert ViolationKind.FUTURE_READ in awdit_result.violation_kinds()
        assert ViolationKind.FUTURE_READ in plume_result.violation_kinds()

    def test_causality_cycle_detected_at_every_level(self):
        history = inject_anomaly(
            self._tpcc_history(32), ViolationKind.CAUSALITY_CYCLE, rng=random.Random(2)
        )
        for level in IsolationLevel:
            result = check(history, level)
            assert not result.is_consistent

    def test_combined_anomalies_are_all_reported(self):
        history = self._tpcc_history(33)
        history = inject_anomaly(history, ViolationKind.FUTURE_READ, rng=random.Random(3))
        history = inject_anomaly(history, ViolationKind.CAUSALITY_CYCLE, rng=random.Random(4))
        result = check(history, IsolationLevel.CAUSAL_CONSISTENCY)
        kinds = set(result.violation_kinds())
        assert ViolationKind.FUTURE_READ in kinds
        assert ViolationKind.CAUSALITY_CYCLE in kinds

    def test_buggy_database_is_caught_while_correct_one_passes(self):
        correct = collect_history(
            CTwitterWorkload(num_users=8),
            with_overrides(COCKROACH_LIKE, seed=9),
            num_sessions=6,
            num_transactions=150,
            seed=9,
        )
        buggy_config = with_overrides(COCKROACH_LIKE, seed=9)
        buggy_config = DatabaseConfig(
            name=buggy_config.name,
            isolation=buggy_config.isolation,
            num_replicas=buggy_config.num_replicas,
            replication_lag=buggy_config.replication_lag,
            seed=9,
            bug_rates=BugRates(stale_read=0.3),
        )
        buggy = collect_history(
            CTwitterWorkload(num_users=8),
            buggy_config,
            num_sessions=6,
            num_transactions=150,
            seed=9,
        )
        assert check(correct, IsolationLevel.CAUSAL_CONSISTENCY).is_consistent
        assert not check(buggy, IsolationLevel.CAUSAL_CONSISTENCY).is_consistent
