"""Tests for the Read Committed checker (Algorithm 1)."""

from repro.core.commit import CommitRelation
from repro.core.model import History, Transaction, read, write
from repro.core.rc import check_rc, saturate_rc
from repro.core.violations import ViolationKind

from helpers import fig_1a, fig_4a, fig_4b, fig_4c, fig_4d


class TestVerdicts:
    def test_fig_1a_is_rc_inconsistent(self):
        result = check_rc(fig_1a())
        assert not result.is_consistent
        assert ViolationKind.COMMIT_ORDER_CYCLE in result.violation_kinds()

    def test_fig_4a_is_rc_inconsistent(self):
        assert not check_rc(fig_4a()).is_consistent

    def test_fig_4b_is_rc_consistent(self):
        assert check_rc(fig_4b()).is_consistent

    def test_fig_4c_and_4d_are_rc_consistent(self):
        assert check_rc(fig_4c()).is_consistent
        assert check_rc(fig_4d()).is_consistent

    def test_empty_ish_history_is_consistent(self):
        history = History.from_sessions([[Transaction([write("x", 1)])]])
        assert check_rc(history).is_consistent

    def test_write_only_history_is_consistent(self):
        sessions = [[Transaction([write(f"k{i}", i)]) for i in range(5)]]
        assert check_rc(History.from_sessions(sessions)).is_consistent


class TestMonotonicReadsRule:
    def test_reading_older_version_after_newer_is_violation(self):
        # t3 observes t2 (which writes x) through y, then reads x from the
        # so-earlier t1: forces t2 co-before t1, contradicting so.
        t1 = Transaction([write("x", 1)], label="t1")
        t2 = Transaction([write("x", 2), write("y", 2)], label="t2")
        t3 = Transaction([read("y", 2), read("x", 1)], label="t3")
        history = History.from_sessions([[t1, t2], [t3]])
        assert not check_rc(history).is_consistent

    def test_reading_versions_in_commit_order_is_allowed(self):
        t1 = Transaction([write("x", 1)], label="t1")
        t2 = Transaction([write("x", 2), write("y", 2)], label="t2")
        t3 = Transaction([read("x", 1), read("y", 2)], label="t3")
        history = History.from_sessions([[t1, t2], [t3]])
        assert check_rc(history).is_consistent

    def test_two_element_stack_handles_repeated_reads_of_same_writer(self):
        # The subtle case motivating earliestWts being a two-element stack:
        # r and r_x read from the same transaction t2, and a later r'_x reads
        # x from t1; the ordering t2 co-before t1 must still be inferred.
        t1 = Transaction([write("x", 1)], label="t1")
        t2 = Transaction([write("x", 2), write("y", 2)], label="t2")
        t3 = Transaction([read("y", 2), read("x", 2), read("x", 1)], label="t3")
        history = History.from_sessions([[t1, t2], [t3]])
        assert not check_rc(history).is_consistent

    def test_same_transaction_reread_is_not_a_violation(self):
        t2 = Transaction([write("x", 2), write("y", 2)], label="t2")
        t3 = Transaction([read("y", 2), read("x", 2)], label="t3")
        history = History.from_sessions([[t2], [t3]])
        assert check_rc(history).is_consistent


class TestSaturation:
    def test_inferred_edges_are_minimal_on_fig_1a(self):
        history = fig_1a()
        relation = CommitRelation(history)
        saturate_rc(history, relation, set())
        # The paper's walkthrough infers exactly three non-(so ∪ wr) edges.
        assert relation.num_inferred_edges == 3

    def test_no_edges_inferred_for_consistent_single_reader(self):
        history = fig_4b()
        relation = CommitRelation(history)
        saturate_rc(history, relation, set())
        # Only the t1 co-before t2 edge (already present as so) could be
        # inferred; the inferred count stays small and acyclic.
        assert relation.is_acyclic()

    def test_single_session_history_with_rc_violation(self):
        # Theorem 1.5 territory: RC violations exist even with one session.
        t1 = Transaction([write("x", 1)], label="t1")
        t2 = Transaction([write("x", 2), write("y", 2)], label="t2")
        t3 = Transaction([read("y", 2), read("x", 1)], label="t3")
        history = History.from_sessions([[t1, t2, t3]])
        assert not check_rc(history).is_consistent


class TestReporting:
    def test_read_consistency_violations_included(self):
        history = History.from_sessions([[Transaction([read("x", 9)])]])
        result = check_rc(history)
        assert ViolationKind.THIN_AIR_READ in result.violation_kinds()

    def test_result_statistics_populated(self):
        result = check_rc(fig_4a())
        assert result.num_operations == fig_4a().num_operations
        assert result.checker == "awdit"
        assert "inferred_edges" in result.stats

    def test_witness_edges_are_real_relation_edges(self):
        result = check_rc(fig_4a())
        cycles = result.violations_of_kind(ViolationKind.COMMIT_ORDER_CYCLE)
        assert cycles
        cycle = cycles[0]
        assert len(cycle.edges) >= 2
        assert cycle.inferred_edges >= 1

    def test_max_witnesses_truncates(self):
        # Two independent RC anomalies in one history.
        t1 = Transaction([write("x", 1)], label="t1")
        t2 = Transaction([write("x", 2)], label="t2")
        t3 = Transaction([read("x", 2), read("x", 1)], label="t3")
        u1 = Transaction([write("a", 1)], label="u1")
        u2 = Transaction([write("a", 2)], label="u2")
        u3 = Transaction([read("a", 2), read("a", 1)], label="u3")
        history = History.from_sessions([[t1, t2], [t3], [u1, u2], [u3]])
        full = check_rc(history)
        limited = check_rc(history, max_witnesses=1)
        assert len(full.violations) == 2
        assert len(limited.violations) == 1
