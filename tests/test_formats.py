"""Tests for the on-disk history formats and the load/save dispatch."""

import pytest

from repro.core import IsolationLevel, check
from repro.core.exceptions import ParseError, UsageError
from repro.histories.formats import (
    FORMATS,
    detect_format,
    load_history,
    save_history,
)
from repro.histories.formats import cobra, dbcop, native, plume_text
from repro.histories.generator import RandomHistoryConfig, generate_random_history

from helpers import all_paper_histories, fig_1a, fig_4b


def verdicts(history):
    return tuple(
        check(history, level).is_consistent
        for level in IsolationLevel
    )


ALL_FORMAT_MODULES = {
    "native": native,
    "plume": plume_text,
    "dbcop": dbcop,
    "cobra": cobra,
}


class TestRoundTrips:
    @pytest.mark.parametrize("fmt", sorted(ALL_FORMAT_MODULES))
    @pytest.mark.parametrize("name", sorted(all_paper_histories()))
    def test_paper_histories_round_trip(self, fmt, name):
        module = ALL_FORMAT_MODULES[fmt]
        history = all_paper_histories()[name]
        reloaded = module.loads(module.dumps(history))
        assert reloaded.num_sessions == history.num_sessions
        assert reloaded.num_operations == history.num_operations
        assert verdicts(reloaded) == verdicts(history)

    @pytest.mark.parametrize("fmt", sorted(ALL_FORMAT_MODULES))
    def test_random_history_round_trip_preserves_structure(self, fmt):
        module = ALL_FORMAT_MODULES[fmt]
        history = generate_random_history(
            RandomHistoryConfig(seed=3, num_transactions=30, abort_probability=0.2)
        )
        reloaded = module.loads(module.dumps(history))
        assert reloaded.num_transactions == history.num_transactions
        assert len(reloaded.aborted) == len(history.aborted)
        assert reloaded.keys == history.keys

    def test_native_preserves_labels(self):
        history = fig_1a()
        reloaded = native.loads(native.dumps(history))
        assert [t.label for t in reloaded.transactions] == [
            t.label for t in history.transactions
        ]


class TestParseErrors:
    def test_native_rejects_bad_json(self):
        with pytest.raises(ParseError):
            native.loads("{not json")

    def test_native_rejects_non_object(self):
        with pytest.raises(ParseError):
            native.loads("[1, 2, 3]")

    def test_native_rejects_bad_operation(self):
        with pytest.raises(ParseError):
            native.loads('{"sessions": [[{"ops": [["X", "x", 1]]}]]}')

    def test_plume_rejects_garbage_line(self):
        with pytest.raises(ParseError):
            plume_text.loads("this is not a history line")

    def test_plume_rejects_empty_file(self):
        with pytest.raises(ParseError):
            plume_text.loads("# only a comment\n")

    def test_cobra_rejects_wrong_column_count(self):
        with pytest.raises(ParseError):
            cobra.loads("session,txn_index,op,key,value,committed\n0,0,W,x\n")

    def test_cobra_rejects_bad_op(self):
        with pytest.raises(ParseError):
            cobra.loads("0,0,Q,x,1,1\n")

    def test_cobra_rejects_inconsistent_commit_flags(self):
        text = "0,0,W,x,1,1\n0,0,W,y,2,0\n"
        with pytest.raises(ParseError):
            cobra.loads(text)

    def test_cobra_rejects_empty(self):
        with pytest.raises(ParseError):
            cobra.loads("")

    def test_dbcop_rejects_bad_json(self):
        with pytest.raises(ParseError):
            dbcop.loads("oops")

    def test_dbcop_rejects_missing_sessions(self):
        with pytest.raises(ParseError):
            dbcop.loads('{"id": 0}')


class TestFormatSpecificBehaviour:
    def test_plume_values_parse_as_ints_when_possible(self):
        text = "session=0 txn=a committed ops= W(x,1) W(y,hello)\n"
        history = plume_text.loads(text)
        ops = history.transactions[0].operations
        assert ops[0].value == 1
        assert ops[1].value == "hello"

    def test_dbcop_drops_failed_events(self):
        text = (
            '{"sessions": [[{"events": ['
            '{"write": true, "variable": "x", "value": 1, "success": true},'
            '{"write": true, "variable": "y", "value": 2, "success": false}'
            '], "success": true}]]}'
        )
        history = dbcop.loads(text)
        assert history.transactions[0].keys_written == {"x"}

    def test_cobra_header_is_optional(self):
        with_header = cobra.loads("session,txn_index,op,key,value,committed\n0,0,W,x,1,1\n")
        without_header = cobra.loads("0,0,W,x,1,1\n")
        assert with_header.num_operations == without_header.num_operations == 1


class TestDispatch:
    def test_detect_format_by_extension(self):
        assert detect_format("h.json") == "native"
        assert detect_format("h.plume") == "plume"
        assert detect_format("h.txt") == "plume"
        assert detect_format("h.cobra") == "cobra"
        assert detect_format("h.csv") == "cobra"
        assert detect_format("h.dbcop") == "dbcop"

    def test_detect_format_unknown_extension(self):
        with pytest.raises(UsageError):
            detect_format("history.xyz")

    def test_save_and_load_round_trip(self, tmp_path):
        history = fig_4b()
        for fmt, extension in [("native", "json"), ("plume", "plume"), ("cobra", "cobra"), ("dbcop", "dbcop")]:
            path = tmp_path / f"history.{extension}"
            save_history(history, str(path), fmt=fmt)
            reloaded = load_history(str(path))
            assert reloaded.num_operations == history.num_operations

    def test_unknown_format_name_rejected(self, tmp_path):
        path = tmp_path / "h.json"
        with pytest.raises(UsageError):
            save_history(fig_4b(), str(path), fmt="parquet")

    def test_registry_contains_expected_formats(self):
        assert {"native", "plume", "dbcop", "cobra"} <= set(FORMATS)
