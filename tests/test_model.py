"""Unit tests for the core data model (operations, transactions, histories)."""

import pytest

from repro.core.exceptions import HistoryFormatError
from repro.core.model import History, OpKind, OpRef, Transaction, read, write


class TestOperation:
    def test_read_constructor(self):
        op = read("x", 1)
        assert op.kind is OpKind.READ
        assert op.key == "x"
        assert op.value == 1
        assert op.is_read and not op.is_write

    def test_write_constructor(self):
        op = write("y", 7)
        assert op.kind is OpKind.WRITE
        assert op.is_write and not op.is_read

    def test_operations_are_hashable_and_comparable(self):
        assert read("x", 1) == read("x", 1)
        assert read("x", 1) != write("x", 1)
        assert len({read("x", 1), read("x", 1), write("x", 1)}) == 2

    def test_op_id_distinguishes_operations(self):
        assert read("x", 1, op_id=1) != read("x", 1, op_id=2)

    def test_repr_mentions_kind_key_value(self):
        text = repr(write("balance", 10))
        assert "W" in text and "balance" in text and "10" in text


class TestTransaction:
    def test_reads_and_writes_partition(self):
        txn = Transaction([write("x", 1), read("y", 2), write("z", 3)])
        assert [op.key for _, op in txn.reads] == ["y"]
        assert [op.key for _, op in txn.writes] == ["x", "z"]

    def test_keys_read_and_written(self):
        txn = Transaction([write("x", 1), read("y", 2), write("x", 3)])
        assert txn.keys_written == {"x"}
        assert txn.keys_read == {"y"}
        assert txn.writes_key("x") and not txn.writes_key("y")
        assert txn.reads_key("y") and not txn.reads_key("x")

    def test_last_write_to(self):
        txn = Transaction([write("x", 1), write("y", 2), write("x", 3)])
        assert txn.last_write_to("x") == 2
        assert txn.last_write_to("y") == 1
        assert txn.last_write_to("z") is None

    def test_len_and_iter(self):
        ops = [write("x", 1), read("x", 1)]
        txn = Transaction(ops)
        assert len(txn) == 2
        assert list(txn) == ops

    def test_name_uses_label_when_present(self):
        assert Transaction([], label="payment").name == "payment"

    def test_aborted_flag(self):
        txn = Transaction([write("x", 1)], committed=False)
        assert not txn.committed
        assert "aborted" in repr(txn)


class TestHistoryConstruction:
    def test_from_sessions_assigns_dense_ids(self):
        t1, t2, t3 = Transaction([write("x", 1)]), Transaction([write("x", 2)]), Transaction([read("x", 1)])
        history = History.from_sessions([[t1, t2], [t3]])
        assert [t.tid for t in history.transactions] == [0, 1, 2]
        assert t1.session == 0 and t3.session == 1
        assert t1.session_index == 0 and t2.session_index == 1

    def test_wr_inferred_from_unique_values(self):
        t1 = Transaction([write("x", 1)])
        t2 = Transaction([read("x", 1)])
        history = History.from_sessions([[t1], [t2]])
        assert history.writer_of(OpRef(1, 0)) == OpRef(0, 0)

    def test_thin_air_read_has_no_wr_edge(self):
        t1 = Transaction([read("x", 99)])
        history = History.from_sessions([[t1]])
        assert history.writer_of(OpRef(0, 0)) is None

    def test_size_counts_operations(self):
        history = History.from_sessions(
            [[Transaction([write("x", 1), write("y", 2)])], [Transaction([read("x", 1)])]]
        )
        assert history.num_operations == 3
        assert history.num_transactions == 2
        assert history.num_sessions == 2

    def test_committed_and_aborted_partition(self):
        t1 = Transaction([write("x", 1)])
        t2 = Transaction([write("x", 2)], committed=False)
        history = History.from_sessions([[t1, t2]])
        assert history.committed == [0]
        assert history.aborted == [1]

    def test_committed_in_session_skips_aborted(self):
        t1 = Transaction([write("x", 1)])
        t2 = Transaction([write("x", 2)], committed=False)
        t3 = Transaction([write("x", 3)])
        history = History.from_sessions([[t1, t2, t3]])
        assert history.committed_in_session(0) == [0, 2]

    def test_keys_property(self):
        history = History.from_sessions(
            [[Transaction([write("x", 1), read("y", 9)])]]
        )
        assert history.keys == {"x", "y"}

    def test_explicit_wr_validation_rejects_key_mismatch(self):
        t1 = Transaction([write("x", 1)])
        t2 = Transaction([read("y", 1)])
        with pytest.raises(HistoryFormatError):
            History.from_sessions([[t1], [t2]], wr={OpRef(1, 0): OpRef(0, 0)})

    def test_explicit_wr_validation_rejects_non_write_source(self):
        t1 = Transaction([read("x", 1)])
        t2 = Transaction([read("x", 1)])
        with pytest.raises(HistoryFormatError):
            History.from_sessions([[t1], [t2]], wr={OpRef(1, 0): OpRef(0, 0)})

    def test_explicit_wr_validation_rejects_non_read_target(self):
        t1 = Transaction([write("x", 1)])
        t2 = Transaction([write("x", 2)])
        with pytest.raises(HistoryFormatError):
            History.from_sessions([[t1], [t2]], wr={OpRef(1, 0): OpRef(0, 0)})

    def test_explicit_wr_out_of_range_rejected(self):
        t1 = Transaction([write("x", 1)])
        with pytest.raises(HistoryFormatError):
            History.from_sessions([[t1]], wr={OpRef(5, 0): OpRef(0, 0)})


class TestHistoryDerivedStructures:
    def test_txn_read_froms_excludes_internal_reads(self):
        t1 = Transaction([write("x", 1)])
        t2 = Transaction([write("y", 2), read("y", 2), read("x", 1)])
        history = History.from_sessions([[t1], [t2]])
        froms = history.txn_read_froms(1)
        assert len(froms) == 1
        writer, index, op = froms[0]
        assert writer == 0 and op.key == "x" and index == 2

    def test_txn_readers_of(self):
        t1 = Transaction([write("x", 1)])
        t2 = Transaction([read("x", 1)])
        t3 = Transaction([read("x", 1)])
        history = History.from_sessions([[t1], [t2], [t3]])
        assert history.txn_readers_of(0) == {1, 2}

    def test_so_edges_follow_committed_session_order(self):
        t1 = Transaction([write("x", 1)])
        t2 = Transaction([write("x", 2)], committed=False)
        t3 = Transaction([write("x", 3)])
        history = History.from_sessions([[t1, t2, t3]])
        assert list(history.so_edges()) == [(0, 2)]

    def test_so_wr_edges_combines_both(self):
        t1 = Transaction([write("x", 1)])
        t2 = Transaction([write("y", 2)])
        t3 = Transaction([read("x", 1), read("y", 2)])
        history = History.from_sessions([[t1, t2], [t3]])
        edges = set(history.so_wr_edges())
        assert (0, 1) in edges  # so
        assert (0, 2) in edges and (1, 2) in edges  # wr

    def test_write_ref_lookup(self):
        t1 = Transaction([write("x", 1), write("x", 2)])
        history = History.from_sessions([[t1]])
        assert history.write_ref("x", 2) == OpRef(0, 1)
        assert history.write_ref("x", 99) is None

    def test_describe_and_pretty(self):
        t1 = Transaction([write("x", 1)], label="init")
        history = History.from_sessions([[t1]])
        assert "transactions=1" in history.describe()
        assert "init" in history.pretty()

    def test_pretty_truncates(self):
        sessions = [[Transaction([write(f"k{i}", i)]) for i in range(30)]]
        history = History.from_sessions(sessions)
        assert "..." in history.pretty(max_transactions=5)

    def test_opref_resolve(self):
        t1 = Transaction([write("x", 1), read("x", 1)])
        history = History.from_sessions([[t1]])
        assert OpRef(0, 1).resolve(history) == read("x", 1)

    def test_empty_session_allowed(self):
        history = History.from_sessions([[Transaction([write("x", 1)])], []])
        assert history.num_sessions == 2
        assert history.committed_in_session(1) == []
