"""The engine × mode parity matrix.

Every cell of ``{object, compiled, sharded} × {batch, stream}`` must
produce byte-identical verdicts, violation messages, and inferred-edge
counts -- including on aborted, weak-isolation, and anomaly-injected
histories, and across a checkpoint/resume split of the stream.  The object
batch engine is the oracle; everything else is compared against it.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import IsolationLevel, check, check_all_levels
from repro.histories.formats import save_history
from repro.histories.generator import (
    INJECTABLE_ANOMALIES,
    RandomHistoryConfig,
    generate_random_history,
    inject_anomaly,
)
from repro.shard import check_sharded
from repro.stream import CompiledIncrementalChecker, check_stream_file, load_checkpoint

LEVELS = list(IsolationLevel)
ENGINES = ("object", "compiled", "sharded")
MODES = ("batch", "stream")


def _assert_same(reference, result, context):
    assert result.is_consistent == reference.is_consistent, context
    assert [v.message for v in result.violations] == [
        v.message for v in reference.violations
    ], context
    assert result.stats.get("inferred_edges") == reference.stats.get(
        "inferred_edges"
    ), context
    # The CSR freeze is every engine's single dedup point, so the distinct
    # commit-relation edge count must agree cell by cell too.
    assert result.stats.get("co_edges") == reference.stats.get("co_edges"), context


class TestEngineModeMatrix:
    @settings(
        max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        config=st.builds(
            RandomHistoryConfig,
            num_sessions=st.integers(1, 4),
            num_transactions=st.integers(0, 24),
            num_keys=st.integers(1, 5),
            min_ops_per_txn=st.just(1),
            max_ops_per_txn=st.integers(1, 5),
            read_fraction=st.floats(0.2, 0.8),
            abort_probability=st.sampled_from([0.0, 0.2]),
            mode=st.sampled_from(["serializable", "random_reads"]),
            seed=st.integers(0, 10_000),
        ),
        anomaly=st.sampled_from((None,) + INJECTABLE_ANOMALIES),
    )
    def test_all_cells_agree_with_injected_anomalies(self, config, anomaly):
        history = generate_random_history(config)
        if anomaly is not None:
            history = inject_anomaly(history, anomaly)
        for level in LEVELS:
            reference = check(history, level, engine="object")
            for engine in ENGINES:
                for mode in MODES:
                    result = check(history, level, engine=engine, mode=mode)
                    _assert_same(reference, result, (engine, mode, level))
            # The forked/inline shard pipeline itself (scratch relations,
            # ordered merge) -- check() on one CPU would fall back to the
            # sequential loops, so pin the tasked pipeline explicitly.
            result = check_sharded(history, level, jobs=2, mode="inline")
            _assert_same(reference, result, ("sharded-inline", level))

    @pytest.mark.parametrize("kind", INJECTABLE_ANOMALIES, ids=lambda k: k.name)
    def test_all_levels_matrix_per_anomaly(self, kind):
        history = inject_anomaly(
            generate_random_history(
                RandomHistoryConfig(
                    num_sessions=3,
                    num_transactions=18,
                    abort_probability=0.1,
                    seed=7,
                )
            ),
            kind,
        )
        reference = check_all_levels(history, engine="object")
        for engine in ENGINES:
            for mode in MODES:
                results = check_all_levels(history, engine=engine, mode=mode)
                for level in LEVELS:
                    _assert_same(
                        reference[level], results[level], (engine, mode, level)
                    )


class TestStreamFileCells:
    """The on-disk streaming cells: --stream --engine E and --stream --jobs N."""

    @pytest.fixture()
    def anomalous(self, tmp_path):
        history = inject_anomaly(
            generate_random_history(
                RandomHistoryConfig(
                    num_sessions=4,
                    num_transactions=30,
                    mode="random_reads",
                    seed=21,
                )
            ),
            INJECTABLE_ANOMALIES[0],
        )
        path = tmp_path / "h.plume"
        save_history(history, str(path), fmt="plume")
        return history, str(path)

    @pytest.mark.parametrize("engine", ["auto", "compiled", "sharded", "object"])
    def test_file_stream_engines_agree(self, anomalous, engine):
        history, path = anomalous
        for level in LEVELS:
            reference = check(history, level, engine="object")
            result = check_stream_file(path, level, fmt="plume", engine=engine)
            _assert_same(reference, result, (engine, level))

    def test_file_stream_with_jobs_agrees(self, anomalous):
        history, path = anomalous
        level = IsolationLevel.CAUSAL_CONSISTENCY
        reference = check(history, level, engine="object")
        result = check_stream_file(path, level, fmt="plume", jobs=2)
        _assert_same(reference, result, ("jobs", level))

    def test_checkpoint_resume_equals_uninterrupted_run(self, anomalous, tmp_path):
        history, path = anomalous
        level = IsolationLevel.CAUSAL_CONSISTENCY
        reference = check_stream_file(path, level, fmt="plume")
        state = tmp_path / "state.awd"

        # Interrupt mid-history: checkpoint after every 7 transactions, then
        # simulate a crash by building a fresh checker from the last save.
        checker = CompiledIncrementalChecker(levels=(level,))
        from repro.stream import iter_raw_records

        for index, (sid, (label, committed, ops)) in enumerate(
            iter_raw_records(path, fmt="plume")
        ):
            if index == 13:
                break
            checker.append_raw(sid, label, committed, ops)
            if (index + 1) % 7 == 0:
                checker.save_checkpoint(str(state))
        del checker

        resumed = load_checkpoint(str(state))
        assert 0 < resumed.num_transactions < history.num_transactions
        result = check_stream_file(
            path, level, fmt="plume", checkpoint=str(state), resume=True
        )
        _assert_same(reference, result, ("resume", level))

    def test_resume_with_other_level_rejected(self, anomalous, tmp_path):
        _history, path = anomalous
        state = tmp_path / "state.awd"
        check_stream_file(
            path, IsolationLevel.READ_COMMITTED, fmt="plume", checkpoint=str(state)
        )
        with pytest.raises(ValueError):
            check_stream_file(
                path,
                IsolationLevel.CAUSAL_CONSISTENCY,
                fmt="plume",
                checkpoint=str(state),
                resume=True,
            )


class TestDispatchErrors:
    def test_stream_mode_rejects_read_consistency_reports(self):
        from repro.core.read_consistency import check_read_consistency

        history = generate_random_history(
            RandomHistoryConfig(num_sessions=2, num_transactions=5, seed=1)
        )
        report = check_read_consistency(history)
        with pytest.raises(ValueError):
            check(history, mode="stream", read_consistency=report)

    def test_unknown_mode_rejected(self):
        history = generate_random_history(
            RandomHistoryConfig(num_sessions=2, num_transactions=5, seed=1)
        )
        with pytest.raises(ValueError):
            check(history, mode="sideways")

    def test_object_stream_rejects_compiled_history(self):
        from repro.core.compiled import compile_history

        history = generate_random_history(
            RandomHistoryConfig(num_sessions=2, num_transactions=5, seed=1)
        )
        with pytest.raises(ValueError):
            check(compile_history(history), mode="stream", engine="object")

    def test_object_stream_rejects_jobs(self):
        history = generate_random_history(
            RandomHistoryConfig(num_sessions=2, num_transactions=5, seed=1)
        )
        with pytest.raises(ValueError):
            check(history, mode="stream", engine="object", jobs=2)

    def test_compiled_history_streams_identically(self):
        from repro.core.compiled import compile_history

        history = inject_anomaly(
            generate_random_history(
                RandomHistoryConfig(num_sessions=3, num_transactions=20, seed=3)
            ),
            INJECTABLE_ANOMALIES[4],
        )
        compiled = compile_history(history)
        for level in LEVELS:
            reference = check(history, level, engine="object")
            result = check(compiled, level, mode="stream")
            _assert_same(reference, result, level)
