"""Tests for the simulated database substrate (replica, database, profiles)."""

import pytest

from repro.core import IsolationLevel, check, check_all_levels
from repro.core.exceptions import UsageError
from repro.core.violations import ViolationKind
from repro.db.config import BugRates, DatabaseConfig, IsolationMode
from repro.db.database import SimulatedDatabase
from repro.db.profiles import (
    ALL_PROFILES,
    COCKROACH_LIKE,
    POSTGRES_LIKE,
    ROCKSDB_LIKE,
    profile_by_name,
    with_overrides,
)
from repro.db.replica import CommittedTransaction, Replica


class TestReplica:
    def test_apply_now_installs_versions(self):
        replica = Replica(0, causal=False)
        replica.apply_now(CommittedTransaction(0, 0, 1, {"x": 10}))
        assert replica.has_key("x")
        assert replica.latest_version("x").value == 10

    def test_pending_transactions_apply_after_arrival(self):
        replica = Replica(0, causal=False)
        replica.enqueue(CommittedTransaction(0, 0, 1, {"x": 1}), arrival_time=5)
        replica.advance(3)
        assert not replica.has_key("x")
        replica.advance(5)
        assert replica.has_key("x")

    def test_causal_replica_blocks_on_missing_dependency(self):
        replica = Replica(0, causal=True)
        dependent = CommittedTransaction(1, 0, 2, {"y": 2}, dependencies={0})
        replica.enqueue(dependent, arrival_time=1)
        replica.advance(10)
        assert not replica.has_key("y")
        replica.enqueue(CommittedTransaction(0, 0, 1, {"x": 1}), arrival_time=11)
        replica.advance(11)
        assert replica.has_key("y")

    def test_non_causal_replica_applies_out_of_order(self):
        replica = Replica(0, causal=False)
        dependent = CommittedTransaction(1, 0, 2, {"y": 2}, dependencies={0})
        replica.enqueue(dependent, arrival_time=1)
        replica.advance(5)
        assert replica.has_key("y")

    def test_snapshot_reads_ignore_later_versions(self):
        replica = Replica(0, causal=False)
        replica.apply_now(CommittedTransaction(0, 0, 1, {"x": 1}))
        snapshot = replica.current_seq
        replica.apply_now(CommittedTransaction(1, 0, 2, {"x": 2}))
        assert replica.latest_version("x", up_to_seq=snapshot).value == 1
        assert replica.latest_version("x").value == 2

    def test_newest_version_uses_commit_order_not_apply_order(self):
        replica = Replica(0, causal=False)
        replica.apply_now(CommittedTransaction(5, 0, 9, {"x": "newer"}))
        replica.apply_now(CommittedTransaction(2, 0, 3, {"x": "older"}))
        assert replica.newest_version("x").value == "newer"

    def test_versions_listing(self):
        replica = Replica(0, causal=False)
        replica.apply_now(CommittedTransaction(0, 0, 1, {"x": 1}))
        replica.apply_now(CommittedTransaction(1, 0, 2, {"x": 2}))
        assert [v.value for v in replica.versions("x")] == [1, 2]
        assert replica.versions("zzz") == []


class TestDatabaseConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DatabaseConfig(num_replicas=0).validate()
        with pytest.raises(ValueError):
            DatabaseConfig(replication_lag=-1).validate()
        with pytest.raises(ValueError):
            DatabaseConfig(abort_probability=1.5).validate()
        with pytest.raises(ValueError):
            DatabaseConfig(bug_rates=BugRates(stale_read=2.0)).validate()

    def test_bug_rates_any_enabled(self):
        assert not BugRates().any_enabled
        assert BugRates(aborted_read=0.1).any_enabled

    def test_profiles_registry(self):
        assert profile_by_name("postgres") is POSTGRES_LIKE
        assert profile_by_name("CockroachDB") is COCKROACH_LIKE
        assert profile_by_name("rocks") is ROCKSDB_LIKE
        with pytest.raises(ValueError):
            profile_by_name("oracle")
        assert len(ALL_PROFILES) == 3

    def test_with_overrides_creates_new_config(self):
        derived = with_overrides(POSTGRES_LIKE, isolation=IsolationMode.CAUSAL, seed=4)
        assert derived.isolation is IsolationMode.CAUSAL
        assert derived.seed == 4
        assert POSTGRES_LIKE.isolation is IsolationMode.SERIALIZABLE


class TestSimulatedDatabase:
    def test_written_values_are_unique(self):
        db = SimulatedDatabase(DatabaseConfig(seed=1))
        session = db.session()
        values = set()
        for _ in range(5):
            with session.transaction() as txn:
                values.add(txn.write("x"))
        assert len(values) == 5

    def test_read_own_write_inside_transaction(self):
        db = SimulatedDatabase(DatabaseConfig(seed=1))
        session = db.session()
        with session.transaction() as txn:
            value = txn.write("x")
            assert txn.read("x") == value

    def test_read_of_unknown_key_returns_none_and_is_not_recorded(self):
        db = SimulatedDatabase(DatabaseConfig(seed=1))
        session = db.session()
        with session.transaction() as txn:
            assert txn.read("missing") is None
        history = db.history()
        assert history.num_operations == 0

    def test_serializable_reads_see_latest_committed(self):
        db = SimulatedDatabase(DatabaseConfig(seed=1))
        alice, bob = db.sessions(2)
        with alice.transaction() as txn:
            v1 = txn.write("x")
        with bob.transaction() as txn:
            assert txn.read("x") == v1

    def test_operations_on_finished_transaction_rejected(self):
        db = SimulatedDatabase(DatabaseConfig(seed=1))
        session = db.session()
        txn = session.begin()
        txn.write("x")
        txn.commit()
        with pytest.raises(UsageError):
            txn.read("x")

    def test_explicit_abort_recorded(self):
        db = SimulatedDatabase(DatabaseConfig(seed=1))
        session = db.session()
        txn = session.begin()
        txn.write("x")
        txn.abort()
        history = db.history()
        assert history.aborted == [0]

    def test_abort_probability_aborts_some_transactions(self):
        db = SimulatedDatabase(DatabaseConfig(seed=3, abort_probability=0.5))
        session = db.session()
        outcomes = []
        for _ in range(30):
            txn = session.begin()
            txn.write("x")
            outcomes.append(txn.commit())
        assert not all(outcomes) and any(outcomes)

    def test_history_requires_a_session(self):
        db = SimulatedDatabase(DatabaseConfig(seed=1))
        with pytest.raises(UsageError):
            db.history()

    def test_exception_inside_transaction_aborts_it(self):
        db = SimulatedDatabase(DatabaseConfig(seed=1))
        session = db.session()
        with pytest.raises(RuntimeError):
            with session.transaction() as txn:
                txn.write("x")
                raise RuntimeError("client crash")
        assert db.history().aborted == [0]

    def test_initialize_writes_all_keys(self):
        db = SimulatedDatabase(DatabaseConfig(seed=1, num_replicas=3))
        db.sessions(3)
        db.initialize(["a", "b", "c"])
        history = db.history()
        assert history.transactions[0].keys_written == {"a", "b", "c"}

    def test_num_committed_counter(self):
        db = SimulatedDatabase(DatabaseConfig(seed=1))
        session = db.session()
        with session.transaction() as txn:
            txn.write("x")
        assert db.num_committed == 1

    def test_deterministic_under_seed(self):
        def run(seed):
            db = SimulatedDatabase(
                DatabaseConfig(seed=seed, num_replicas=2, isolation=IsolationMode.CAUSAL)
            )
            sessions = db.sessions(3)
            db.initialize(["x", "y"])
            for i in range(20):
                with sessions[i % 3].transaction() as txn:
                    txn.read("x")
                    txn.write("y")
            return [t.operations for t in db.history().transactions]

        assert run(7) == run(7)


class TestIsolationModeGuarantees:
    def _collect(self, mode, bug_rates=None, lag=30.0):
        config = DatabaseConfig(
            isolation=mode,
            num_replicas=4,
            replication_lag=lag,
            seed=13,
            bug_rates=bug_rates or BugRates(),
        )
        db = SimulatedDatabase(config)
        sessions = db.sessions(8)
        keys = [f"k{i}" for i in range(10)]
        db.initialize(keys)
        import random

        rng = random.Random(99)
        for i in range(300):
            session = sessions[rng.randrange(len(sessions))]
            with session.transaction() as txn:
                for _ in range(rng.randint(2, 5)):
                    key = rng.choice(keys)
                    if rng.random() < 0.5:
                        txn.read(key)
                    else:
                        txn.write(key)
        return db.history()

    def test_serializable_mode_satisfies_every_level(self):
        history = self._collect(IsolationMode.SERIALIZABLE)
        assert all(r.is_consistent for r in check_all_levels(history).values())

    def test_causal_mode_satisfies_cc(self):
        history = self._collect(IsolationMode.CAUSAL)
        assert check(history, IsolationLevel.CAUSAL_CONSISTENCY).is_consistent

    def test_read_atomic_mode_satisfies_ra(self):
        history = self._collect(IsolationMode.READ_ATOMIC)
        assert check(history, IsolationLevel.READ_ATOMIC).is_consistent

    def test_read_committed_mode_satisfies_rc(self):
        history = self._collect(IsolationMode.READ_COMMITTED)
        assert check(history, IsolationLevel.READ_COMMITTED).is_consistent

    def test_aborted_read_bug_detected(self):
        history = self._collect(
            IsolationMode.SERIALIZABLE,
            bug_rates=BugRates(aborted_read=0.2),
        )
        # The bug only fires when aborted writes exist; force some aborts.
        config = DatabaseConfig(
            isolation=IsolationMode.SERIALIZABLE,
            seed=5,
            abort_probability=0.3,
            bug_rates=BugRates(aborted_read=0.5),
        )
        db = SimulatedDatabase(config)
        session = db.session()
        db.initialize(["x"])
        for _ in range(50):
            txn = session.begin()
            txn.read("x")
            txn.write("x")
            txn.commit()
        result = check(db.history(), IsolationLevel.READ_COMMITTED)
        assert ViolationKind.ABORTED_READ in result.violation_kinds()

    def test_stale_read_bug_detected(self):
        config = DatabaseConfig(
            isolation=IsolationMode.SERIALIZABLE,
            seed=5,
            bug_rates=BugRates(stale_read=0.5),
        )
        db = SimulatedDatabase(config)
        session = db.session()
        db.initialize(["x"])
        for _ in range(40):
            with session.transaction() as txn:
                txn.read("x")
                txn.write("x")
        result = check(db.history(), IsolationLevel.CAUSAL_CONSISTENCY)
        assert not result.is_consistent

    def test_fractured_read_bug_breaks_ra(self):
        config = DatabaseConfig(
            isolation=IsolationMode.READ_ATOMIC,
            num_replicas=4,
            replication_lag=40.0,
            seed=17,
            bug_rates=BugRates(fractured_read=0.5),
        )
        db = SimulatedDatabase(config)
        sessions = db.sessions(8)
        keys = [f"k{i}" for i in range(6)]
        db.initialize(keys)
        import random

        rng = random.Random(3)
        for _ in range(300):
            with sessions[rng.randrange(8)].transaction() as txn:
                txn.write(rng.choice(keys))
                txn.read(rng.choice(keys))
                txn.read(rng.choice(keys))
        result = check(db.history(), IsolationLevel.CAUSAL_CONSISTENCY)
        assert not result.is_consistent
