"""Tests for the byte-range splitter (repro.shard.split)."""

import os

import pytest

from repro.core.exceptions import ParseError
from repro.histories.formats import save_history, stream_raw_history
from repro.histories.generator import RandomHistoryConfig, generate_random_history
from repro.shard import (
    parse_byte_range,
    split_byte_ranges,
    splittable,
    validate_range_summaries,
)
from repro.stream import iter_raw_records


def _history(seed=3, n=120):
    return generate_random_history(
        RandomHistoryConfig(
            num_sessions=5, num_transactions=n, seed=seed, abort_probability=0.1
        )
    )


FMT_EXTS = [("plume", ".plume"), ("cobra", ".cobra")]


class TestSplitBoundaries:
    @pytest.mark.parametrize("fmt,ext", FMT_EXTS)
    @pytest.mark.parametrize("parts", [1, 2, 3, 8])
    def test_ranges_cover_file_and_preserve_records(self, tmp_path, fmt, ext, parts):
        path = tmp_path / f"h{ext}"
        save_history(_history(), str(path), fmt=fmt)
        ranges = split_byte_ranges(str(path), parts, fmt=fmt)
        size = os.path.getsize(str(path))
        assert ranges[0][0] == 0 and ranges[-1][1] == size
        assert all(lo < hi for lo, hi in ranges)
        assert all(a[1] == b[0] for a, b in zip(ranges, ranges[1:]))

        serial = list(stream_raw_history(str(path), fmt))
        rejoined = []
        summaries = []
        for lo, hi in ranges:
            records, summary = parse_byte_range(str(path), lo, hi, fmt=fmt)
            rejoined.extend(records)
            summaries.append(summary)
        assert rejoined == serial
        validate_range_summaries(str(path), summaries, fmt=fmt)

    def test_cobra_with_csv_quoting_is_not_split(self, tmp_path):
        # A quoted field may hide a newline inside a value; only the serial
        # csv parse can cross it, so such files refuse to split.
        from repro.core.model import History, Transaction, write

        history = History.from_sessions(
            [[Transaction([write("k", 'a\nb')], label=None)]]
        )
        path = tmp_path / "quoted.cobra"
        save_history(history, str(path), fmt="cobra")
        assert '"' in path.read_text()
        assert split_byte_ranges(str(path), 4, fmt="cobra") is None
        # The parallel record iterator falls back to the (correct) serial
        # parse, so records still match exactly.
        serial = list(stream_raw_history(str(path), "cobra"))
        assert list(iter_raw_records(str(path), fmt="cobra", jobs=2)) == serial

    def test_plume_unicode_line_separator_values_survive_split(self, tmp_path):
        # str.splitlines() would cut values on U+2028; the range parser must
        # split on '\n' only, like text-mode file iteration.
        lines = [
            "session=0 txn=a committed ops= W(x,weird value)",
            "session=0 txn=b committed ops= R(x,weird value)",
            "session=1 txn=c committed ops= W(y,1)",
            "session=1 txn=d committed ops= R(y,1)",
        ]
        path = tmp_path / "u2028.plume"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        serial = list(stream_raw_history(str(path), "plume"))
        rejoined = []
        for lo, hi in split_byte_ranges(str(path), 3, fmt="plume"):
            records, _summary = parse_byte_range(str(path), lo, hi, fmt="plume")
            rejoined.extend(records)
        assert rejoined == serial

    def test_json_formats_are_not_splittable(self, tmp_path):
        path = tmp_path / "h.json"
        save_history(_history(n=10), str(path))
        assert not splittable(str(path))
        assert split_byte_ranges(str(path), 4) is None

    def test_line_formats_are_splittable(self, tmp_path):
        for fmt, ext in FMT_EXTS:
            path = tmp_path / f"s{ext}"
            save_history(_history(n=10), str(path), fmt=fmt)
            assert splittable(str(path), fmt=fmt)

    def test_cobra_transactions_never_split_across_ranges(self, tmp_path):
        # Multi-op transactions: every range must start at a (session,
        # txn_index) change, so each transaction's rows stay in one region.
        history = generate_random_history(
            RandomHistoryConfig(
                num_sessions=3,
                num_transactions=60,
                min_ops_per_txn=4,
                max_ops_per_txn=8,
                seed=11,
            )
        )
        path = tmp_path / "h.cobra"
        save_history(history, str(path), fmt="cobra")
        serial = list(stream_raw_history(str(path), "cobra"))
        for parts in (2, 5, 9):
            rejoined = []
            for lo, hi in split_byte_ranges(str(path), parts, fmt="cobra"):
                records, _summary = parse_byte_range(str(path), lo, hi, fmt="cobra")
                rejoined.extend(records)
            assert rejoined == serial, parts


class TestCrossRegionValidation:
    def test_plume_duplicate_label_across_regions_rejected(self, tmp_path):
        lines = [f"session=0 txn=t{i} committed ops= W(k{i},{i})" for i in range(40)]
        lines[35] = lines[35].replace("txn=t35", "txn=t3")  # duplicate of line 3
        path = tmp_path / "dup.plume"
        path.write_text("\n".join(lines) + "\n")
        ranges = split_byte_ranges(str(path), 4, fmt="plume")
        assert len(ranges) > 1
        summaries = [
            parse_byte_range(str(path), lo, hi, fmt="plume")[1] for lo, hi in ranges
        ]
        with pytest.raises(ParseError) as excinfo:
            validate_range_summaries(str(path), summaries, fmt="plume")
        assert "duplicate" in str(excinfo.value)

    def test_cobra_non_contiguous_across_regions_rejected(self, tmp_path):
        rows = [f"0,{i},W,k{i},{i},1" for i in range(40)]
        rows[35] = "0,2,W,oops,1,1"  # session 0 index going backwards
        path = tmp_path / "bad.cobra"
        path.write_text("\n".join(rows) + "\n")
        ranges = split_byte_ranges(str(path), 4, fmt="cobra")
        summaries = []
        raised = False
        try:
            for lo, hi in ranges:
                summaries.append(parse_byte_range(str(path), lo, hi, fmt="cobra")[1])
            validate_range_summaries(str(path), summaries, fmt="cobra")
        except ParseError as exc:
            # Either the region parser (same region) or the cross-region
            # chain catches it, matching the serial parse's rejection.
            raised = True
            assert "contiguous" in str(exc)
        assert raised

    def test_empty_history_rejected_like_serial(self, tmp_path):
        path = tmp_path / "empty.plume"
        path.write_text("# only a comment\n")
        ranges = split_byte_ranges(str(path), 3, fmt="plume")
        summaries = [
            parse_byte_range(str(path), lo, hi, fmt="plume")[1] for lo, hi in ranges
        ]
        with pytest.raises(ParseError):
            validate_range_summaries(str(path), summaries, fmt="plume")


class TestParallelRecordIteration:
    @pytest.mark.parametrize("fmt,ext", FMT_EXTS)
    def test_iter_raw_records_parallel_order_matches_serial(
        self, tmp_path, monkeypatch, fmt, ext
    ):
        # Force the forked pool path even on a single-CPU machine.
        import repro.shard.parallel as parallel

        monkeypatch.setattr(parallel, "will_parallelize", lambda jobs: True)
        path = tmp_path / f"h{ext}"
        save_history(_history(seed=6), str(path), fmt=fmt)
        serial = list(stream_raw_history(str(path), fmt))
        fanned = list(iter_raw_records(str(path), fmt=fmt, jobs=2))
        assert fanned == serial

    def test_iter_raw_records_sequential_fallbacks(self, tmp_path):
        path = tmp_path / "h.json"
        save_history(_history(seed=6), str(path))
        serial = list(stream_raw_history(str(path)))
        # jobs=None and an unsplittable format both take the serial path.
        assert list(iter_raw_records(str(path))) == serial
        assert list(iter_raw_records(str(path), jobs=4)) == serial
