"""Tests for the Read Consistency check (Definition 2.3 / Algorithm 4 / Fig. 2)."""

from repro.core.model import History, Transaction, read, write
from repro.core.read_consistency import check_read_consistency
from repro.core.violations import ViolationKind


def kinds(history):
    report = check_read_consistency(history)
    return [v.kind for v in report.violations]


class TestThinAirReads:
    def test_read_of_unwritten_value_reported(self):
        history = History.from_sessions([[Transaction([read("x", 42)])]])
        assert kinds(history) == [ViolationKind.THIN_AIR_READ]

    def test_read_of_written_value_ok(self):
        history = History.from_sessions(
            [[Transaction([write("x", 42)])], [Transaction([read("x", 42)])]]
        )
        assert kinds(history) == []

    def test_bad_read_recorded_for_downstream_checkers(self):
        history = History.from_sessions([[Transaction([read("x", 42)])]])
        report = check_read_consistency(history)
        assert len(report.bad_reads) == 1


class TestAbortedReads:
    def test_read_from_aborted_transaction_reported(self):
        writer = Transaction([write("x", 1)], committed=False)
        reader = Transaction([read("x", 1)])
        history = History.from_sessions([[writer], [reader]])
        assert kinds(history) == [ViolationKind.ABORTED_READ]

    def test_aborted_transactions_own_reads_not_checked(self):
        aborted = Transaction([read("x", 99)], committed=False)
        history = History.from_sessions([[aborted]])
        assert kinds(history) == []


class TestFutureReads:
    def test_read_before_own_write_reported(self):
        txn = Transaction([read("x", 1), write("x", 1)])
        history = History.from_sessions([[txn]])
        assert kinds(history) == [ViolationKind.FUTURE_READ]

    def test_read_after_own_write_ok(self):
        txn = Transaction([write("x", 1), read("x", 1)])
        history = History.from_sessions([[txn]])
        assert kinds(history) == []


class TestObserveOwnWrites:
    def test_external_read_shadowed_by_own_write_reported(self):
        other = Transaction([write("x", 1)])
        txn = Transaction([write("x", 2), read("x", 1)])
        history = History.from_sessions([[other], [txn]])
        assert ViolationKind.NOT_OWN_WRITE in kinds(history)

    def test_external_read_before_own_write_ok(self):
        other = Transaction([write("x", 1)])
        txn = Transaction([read("x", 1), write("x", 2)])
        history = History.from_sessions([[other], [txn]])
        assert kinds(history) == []


class TestObserveLatestWrite:
    def test_read_of_non_final_external_write_reported(self):
        writer = Transaction([write("x", 1), write("x", 2)])
        reader = Transaction([read("x", 1)])
        history = History.from_sessions([[writer], [reader]])
        assert kinds(history) == [ViolationKind.NOT_LATEST_WRITE]

    def test_read_of_final_external_write_ok(self):
        writer = Transaction([write("x", 1), write("x", 2)])
        reader = Transaction([read("x", 2)])
        history = History.from_sessions([[writer], [reader]])
        assert kinds(history) == []

    def test_stale_own_write_read_reported(self):
        txn = Transaction([write("x", 1), write("x", 2), read("x", 1)])
        history = History.from_sessions([[txn]])
        assert kinds(history) == [ViolationKind.NOT_LATEST_WRITE]

    def test_latest_own_write_read_ok(self):
        txn = Transaction([write("x", 1), write("x", 2), read("x", 2)])
        history = History.from_sessions([[txn]])
        assert kinds(history) == []

    def test_non_final_write_may_be_read_before_overwrite_in_same_txn(self):
        txn = Transaction([write("x", 1), read("x", 1), write("x", 2)])
        history = History.from_sessions([[txn]])
        assert kinds(history) == []


class TestMultipleViolations:
    def test_all_offending_reads_reported(self):
        t1 = Transaction([read("x", 5), read("y", 6)])
        history = History.from_sessions([[t1]])
        report = check_read_consistency(history)
        assert len(report.violations) == 2
        assert not report.ok

    def test_ok_report_has_no_bad_reads(self):
        history = History.from_sessions(
            [[Transaction([write("x", 1)])], [Transaction([read("x", 1)])]]
        )
        report = check_read_consistency(history)
        assert report.ok and not report.bad_reads
