"""Tests for the directed-graph substrate (DiGraph, SCC, cycles, topo sort)."""

import pytest

from repro.graph.cycles import (
    find_cycle,
    find_cycle_in_component,
    has_cycle,
    strongly_connected_components,
    topological_sort,
)
from repro.graph.digraph import (
    EDGE_MASK,
    EDGE_SHIFT,
    MAX_PACKED_EDGE,
    DiGraph,
    pack_edge,
    unpack_edge,
)


def chain(n):
    return DiGraph.from_edges(n, [(i, i + 1) for i in range(n - 1)])


class TestDiGraph:
    def test_empty_graph(self):
        graph = DiGraph(0)
        assert graph.num_vertices == 0
        assert graph.num_edges == 0

    def test_add_edge_and_successors(self):
        graph = DiGraph(3)
        graph.add_edge(0, 1)
        graph.add_edge(0, 2)
        assert graph.successors(0) == [1, 2]
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)

    def test_parallel_edges_counted_but_deduped(self):
        graph = DiGraph(2)
        graph.add_edge(0, 1)
        graph.add_edge(0, 1)
        assert graph.num_edges == 2
        assert graph.unique_successors(0) == [1]

    def test_add_vertex(self):
        graph = DiGraph(1)
        new = graph.add_vertex()
        assert new == 1
        assert graph.num_vertices == 2

    def test_edges_iteration(self):
        graph = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        assert sorted(graph.edges()) == [(0, 1), (1, 2)]

    def test_reverse(self):
        graph = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        assert sorted(graph.reverse().edges()) == [(1, 0), (2, 1)]

    def test_subgraph(self):
        graph = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        sub, mapping = graph.subgraph([1, 2])
        assert sub.num_vertices == 2
        assert sub.has_edge(mapping[1], mapping[2])

    def test_reachable_from(self):
        graph = DiGraph.from_edges(5, [(0, 1), (1, 2), (3, 4)])
        assert graph.reachable_from([0]) == {0, 1, 2}
        assert graph.reachable_from([3]) == {3, 4}

    def test_out_degree(self):
        graph = DiGraph.from_edges(3, [(0, 1), (0, 2), (0, 1)])
        assert graph.out_degree(0) == 3


class TestSCC:
    def test_acyclic_graph_has_singleton_components(self):
        graph = chain(5)
        components = strongly_connected_components(graph)
        assert all(len(c) == 1 for c in components)
        assert len(components) == 5

    def test_single_cycle_is_one_component(self):
        graph = DiGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        components = strongly_connected_components(graph)
        assert sorted(len(c) for c in components) == [3]

    def test_two_separate_cycles(self):
        graph = DiGraph.from_edges(6, [(0, 1), (1, 0), (2, 3), (3, 4), (4, 2), (4, 5)])
        sizes = sorted(len(c) for c in strongly_connected_components(graph))
        assert sizes == [1, 2, 3]

    def test_components_in_reverse_topological_order(self):
        graph = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        components = strongly_connected_components(graph)
        order = [c[0] for c in components]
        # A vertex is emitted only after everything it reaches.
        assert order.index(3) < order.index(0)

    def test_deep_chain_does_not_recurse(self):
        graph = chain(50_000)
        components = strongly_connected_components(graph)
        assert len(components) == 50_000


class TestTopologicalSort:
    def test_orders_a_dag(self):
        graph = DiGraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        order = topological_sort(graph)
        assert order is not None
        position = {v: i for i, v in enumerate(order)}
        for u, v in graph.edges():
            assert position[u] < position[v]

    def test_returns_none_on_cycle(self):
        graph = DiGraph.from_edges(2, [(0, 1), (1, 0)])
        assert topological_sort(graph) is None

    def test_parallel_edges_do_not_break_sorting(self):
        graph = DiGraph.from_edges(2, [(0, 1), (0, 1), (0, 1)])
        assert topological_sort(graph) == [0, 1]


class TestCycleExtraction:
    def test_has_cycle(self):
        assert not has_cycle(chain(4))
        assert has_cycle(DiGraph.from_edges(2, [(0, 1), (1, 0)]))

    def test_self_loop_detected(self):
        graph = DiGraph(2)
        graph.add_edge(1, 1)
        assert has_cycle(graph)
        assert find_cycle(graph) == [1]

    def test_find_cycle_returns_closed_walk(self):
        graph = DiGraph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 1), (3, 4)])
        cycle = find_cycle(graph)
        assert cycle is not None
        for i, u in enumerate(cycle):
            v = cycle[(i + 1) % len(cycle)]
            assert graph.has_edge(u, v)

    def test_find_cycle_none_for_dag(self):
        assert find_cycle(chain(10)) is None

    def test_find_cycle_in_component_requires_cycle(self):
        graph = chain(3)
        with pytest.raises(ValueError):
            find_cycle_in_component(graph, [0])

    def test_find_cycle_in_component_simple(self):
        graph = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)])
        cycle = find_cycle_in_component(graph, [0, 1, 2])
        assert set(cycle) <= {0, 1, 2}
        assert len(cycle) == 3


class TestPackedEdgeOverflow:
    """Node ids beyond the 32-bit endpoint limit must fail loudly.

    Regression: ``src << 32 | dst`` silently collides for ids >= 2**32 (and
    for negative ids); nothing enforced the cap before, so an oversized id
    corrupted the packed edge instead of raising.
    """

    def test_pack_edge_round_trips_at_the_limit(self):
        edge = pack_edge(EDGE_MASK, EDGE_MASK)
        assert edge == MAX_PACKED_EDGE
        assert unpack_edge(edge) == (EDGE_MASK, EDGE_MASK)

    @pytest.mark.parametrize(
        "source,target",
        [(EDGE_MASK + 1, 0), (0, EDGE_MASK + 1), (-1, 0), (0, -1)],
    )
    def test_pack_edge_rejects_out_of_range_endpoints(self, source, target):
        with pytest.raises(ValueError, match="packed-edge range"):
            pack_edge(source, target)

    def test_silent_collision_is_now_impossible(self):
        # Before the guard, these two distinct edges packed identically.
        collider = pack_edge(1, 0)
        with pytest.raises(ValueError):
            pack_edge(0, 1 << EDGE_SHIFT)
        assert unpack_edge(collider) == (1, 0)

    def test_add_edge_rejects_out_of_range_target(self):
        graph = DiGraph(2)
        with pytest.raises(ValueError, match="packed-edge range"):
            graph.add_edge(0, EDGE_MASK + 1)
        with pytest.raises(ValueError):
            graph.add_edge(-1, 1)
        assert graph.num_edges == 0

    def test_add_packed_edge_rejects_overflowed_source(self):
        graph = DiGraph(2)
        with pytest.raises(ValueError, match="out of range"):
            graph.add_packed_edge(MAX_PACKED_EDGE + 1)
        with pytest.raises(ValueError):
            graph.add_packed_edge(-1)
        assert graph.num_edges == 0

    def test_constructor_caps_vertex_count(self):
        with pytest.raises(ValueError, match="at most"):
            DiGraph(EDGE_MASK + 2)
