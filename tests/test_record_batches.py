"""The columnar record-batch ingestion layer (PR 6).

``stream_batches`` is now the canonical parse path of every format and
``stream_ops`` a per-record unbatching shim over it, so the two must
agree record-for-record at any ``batch_ops`` -- including around error
timing (a mid-batch ``ParseError`` still carries line and file context)
and the byte-range splitter's refusal of cobra files with CSV quoting.
On top of the parse layer, the full engine x jobs x batch_ops streaming
matrix over a saved file must stay byte-identical to the batch oracle
(batch-boundary-straddling transactions included), resume must cut a
straddling batch at the checkpointed transaction, and a duplicate
``(key, value)`` write arriving after its reader folded must raise the
clear diagnostic instead of silently diverging from the batch engines.
"""

import io

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import IsolationLevel, check
from repro.core.exceptions import HistoryFormatError, ParseError
from repro.core.model import History, Transaction, read, write
from repro.histories.formats import (
    cobra,
    dbcop,
    native,
    plume_text,
    save_history,
    stream_raw_batches,
    stream_raw_history,
)
from repro.histories.generator import (
    INJECTABLE_ANOMALIES,
    RandomHistoryConfig,
    generate_random_history,
    inject_anomaly,
)
from repro.shard.split import split_byte_ranges
from repro.stream import (
    CompiledIncrementalChecker,
    check_stream_file,
    iter_raw_batches,
    load_checkpoint,
)

LEVELS = list(IsolationLevel)

FORMAT_MODULES = {
    "native": native,
    "plume": plume_text,
    "dbcop": dbcop,
    "cobra": cobra,
}

#: The parity axis: degenerate single-op batches, a prime that lands
#: batch boundaries mid-transaction, and the production default.
BATCH_OPS = (1, 7, 4096)


def _assert_same(reference, result, context):
    assert result.is_consistent == reference.is_consistent, context
    assert [v.message for v in result.violations] == [
        v.message for v in reference.violations
    ], context
    assert result.stats.get("inferred_edges") == reference.stats.get(
        "inferred_edges"
    ), context
    assert result.stats.get("co_edges") == reference.stats.get("co_edges"), context


class TestStreamBatchesParity:
    """stream_batches ⇄ stream_ops agree for every format and batch size."""

    @settings(
        max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        config=st.builds(
            RandomHistoryConfig,
            num_sessions=st.integers(1, 4),
            num_transactions=st.integers(1, 24),
            num_keys=st.integers(1, 5),
            min_ops_per_txn=st.just(1),
            max_ops_per_txn=st.integers(1, 6),
            read_fraction=st.floats(0.2, 0.8),
            abort_probability=st.sampled_from([0.0, 0.2]),
            mode=st.sampled_from(["serializable", "random_reads"]),
            seed=st.integers(0, 10_000),
        ),
        fmt=st.sampled_from(sorted(FORMAT_MODULES)),
        batch_ops=st.sampled_from(BATCH_OPS),
    )
    def test_unbatched_records_match_stream_ops(self, config, fmt, batch_ops):
        history = generate_random_history(config)
        module = FORMAT_MODULES[fmt]
        text = module.dumps(history)
        reference = list(module.stream_ops(io.StringIO(text)))
        batches = list(module.stream_batches(io.StringIO(text), batch_ops=batch_ops))
        unbatched = [record for batch in batches for record in batch.iter_records()]
        assert unbatched == reference
        # A batch closes at the first record that fills it, so only the
        # final batch may run short -- the bounded-memory guarantee.
        for batch in batches[:-1]:
            assert batch.num_ops >= batch_ops
        assert sum(len(batch.txn_end) for batch in batches) == len(reference)

    @pytest.mark.parametrize("fmt", sorted(FORMAT_MODULES))
    def test_batch_ops_value_does_not_change_records(self, fmt, tmp_path):
        history = generate_random_history(
            RandomHistoryConfig(
                num_sessions=3, num_transactions=20, mode="random_reads", seed=5
            )
        )
        path = tmp_path / f"h.{fmt}"
        save_history(history, str(path), fmt=fmt)
        reference = list(stream_raw_history(str(path), fmt))
        for batch_ops in BATCH_OPS:
            records = [
                record
                for batch in stream_raw_batches(str(path), fmt, batch_ops=batch_ops)
                for record in batch.iter_records()
            ]
            assert records == reference, (fmt, batch_ops)


class TestMidBatchParseErrors:
    """A ParseError inside an accumulating batch keeps line/file context."""

    def _bad_plume(self, tmp_path):
        lines = [
            "session=0 txn=a committed ops= W(x,1)",
            "session=1 txn=b committed ops= R(x,1)",
            "this is not a history line",
        ]
        path = tmp_path / "bad.plume"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path

    def test_plume_error_carries_line_and_file(self, tmp_path):
        path = self._bad_plume(tmp_path)
        with pytest.raises(ParseError) as excinfo:
            list(stream_raw_batches(str(path), "plume", batch_ops=4096))
        message = str(excinfo.value)
        assert "bad.plume" in message
        assert "line 3" in message

    def test_records_before_the_error_still_stream(self, tmp_path):
        # batch_ops=1 keeps the legacy error timing: both closed
        # transactions come back before the corrupt line raises.
        path = self._bad_plume(tmp_path)
        batches = stream_raw_batches(str(path), "plume", batch_ops=1)
        seen = [next(batches), next(batches)]
        assert [len(batch.txn_end) for batch in seen] == [1, 1]
        with pytest.raises(ParseError, match="line 3"):
            next(batches)

    def test_cobra_error_carries_line_and_file(self, tmp_path):
        path = tmp_path / "bad.cobra"
        path.write_text("0,0,W,x,1,1\n0,1,Q,x,1,1\n", encoding="utf-8")
        with pytest.raises(ParseError) as excinfo:
            list(stream_raw_batches(str(path), "cobra", batch_ops=4096))
        message = str(excinfo.value)
        assert "bad.cobra" in message
        assert "line 2" in message


class TestCobraQuotedValues:
    """CSV quoting may hide newlines, so byte-range splitting refuses."""

    def _quoted_history(self):
        return History.from_sessions(
            [
                [Transaction([write("k", "a\nb"), write("p", "c,d")], label=None)],
                [Transaction([read("k", "a\nb")], label=None)],
            ]
        )

    def test_split_refused_but_serial_batches_parse(self, tmp_path):
        path = tmp_path / "quoted.cobra"
        save_history(self._quoted_history(), str(path), fmt="cobra")
        assert '"' in path.read_text(encoding="utf-8")
        assert split_byte_ranges(str(path), 4, fmt="cobra") is None
        # The parallel batch iterator falls back to the serial parse; the
        # embedded newline and comma survive intact.
        serial = [
            record
            for batch in stream_raw_batches(str(path), "cobra")
            for record in batch.iter_records()
        ]
        parallel = [
            record
            for batch in iter_raw_batches(str(path), fmt="cobra", jobs=2)
            for record in batch.iter_records()
        ]
        assert parallel == serial
        ops = serial[0][1][2]
        assert ("a\nb" in [value for _, _, value in ops]) and (
            "c,d" in [value for _, _, value in ops]
        )

    def test_quoted_file_checks_identically_with_jobs(self, tmp_path):
        path = tmp_path / "quoted.cobra"
        history = self._quoted_history()
        save_history(history, str(path), fmt="cobra")
        for level in LEVELS:
            reference = check(history, level, engine="object")
            result = check_stream_file(path=str(path), level=level, fmt="cobra", jobs=2)
            _assert_same(reference, result, ("quoted-jobs", level))


class TestDuplicateWriteAfterFold:
    """A duplicate (key, value) write after its reader folded is refused."""

    def _refused(self):
        # w1 writes (x,1); the reader folds bound to w1; then w2 repeats
        # the same (key, value) with a larger (sid, sidx) and would win
        # the batch engines' tie-break -- but the folded read can no
        # longer rebind, so the stream must refuse instead of diverging.
        t1 = Transaction([write("x", 1)], label="w1")
        t2 = Transaction([read("x", 1)], label="r")
        t3 = Transaction([write("x", 1)], label="w2")
        return History.from_sessions([[t1], [t2], [t3]])

    @pytest.mark.parametrize("batch_ops", [1, 2, None], ids=["1", "2", "default"])
    def test_diagnostic_raised_at_every_batch_size(self, batch_ops, tmp_path):
        history = self._refused()
        path = tmp_path / "dup.plume"
        save_history(history, str(path), fmt="plume")
        # The batch engines handle the same file fine (this is exactly the
        # divergence the diagnostic exists to prevent).
        assert check(history, IsolationLevel.CAUSAL_CONSISTENCY).is_consistent
        with pytest.raises(HistoryFormatError) as excinfo:
            check_stream_file(
                str(path),
                IsolationLevel.CAUSAL_CONSISTENCY,
                fmt="plume",
                engine="compiled",
                batch_ops=batch_ops,
            )
        message = str(excinfo.value)
        assert "duplicate write W(x, 1)" in message
        assert "w2" in message
        assert "--stream" in message

    def test_duplicate_before_reader_rebinds_cleanly(self, tmp_path):
        # Same duplicate, but the reader arrives last: its resolved read
        # rebinds to the superseding writer before folding, so there is
        # nothing to refuse and every level matches the batch oracle.
        t1 = Transaction([write("x", 1)], label="w1")
        t2 = Transaction([write("x", 1)], label="w2")
        t3 = Transaction([read("x", 1)], label="r")
        history = History.from_sessions([[t1], [t2], [t3]])
        path = tmp_path / "rebind.plume"
        save_history(history, str(path), fmt="plume")
        for level in LEVELS:
            reference = check(history, level, engine="object")
            for batch_ops in (1, None):
                result = check_stream_file(
                    str(path), level, fmt="plume", batch_ops=batch_ops
                )
                _assert_same(reference, result, ("rebind", level, batch_ops))


class TestBatchOpsMatrix:
    """engine x jobs x batch_ops verdicts are byte-identical."""

    @pytest.fixture()
    def anomalous(self, tmp_path):
        # Multi-op transactions so batch_ops=7 boundaries straddle them.
        history = inject_anomaly(
            generate_random_history(
                RandomHistoryConfig(
                    num_sessions=3,
                    num_transactions=24,
                    num_keys=4,
                    min_ops_per_txn=2,
                    max_ops_per_txn=5,
                    read_fraction=0.5,
                    mode="random_reads",
                    seed=123,
                )
            ),
            INJECTABLE_ANOMALIES[0],
        )
        path = tmp_path / "h.plume"
        save_history(history, str(path), fmt="plume")
        return history, str(path)

    def test_all_cells_agree(self, anomalous):
        history, path = anomalous
        for level in LEVELS:
            reference = check(history, level, engine="object")
            for engine, jobs_axis in (
                ("object", (None,)),
                ("compiled", (None, 2)),
                ("sharded", (None, 2)),
            ):
                for jobs in jobs_axis:
                    for batch_ops in BATCH_OPS:
                        result = check_stream_file(
                            path,
                            level,
                            fmt="plume",
                            engine=engine,
                            jobs=jobs,
                            batch_ops=batch_ops,
                        )
                        _assert_same(
                            reference, result, (engine, jobs, batch_ops, level)
                        )

    def test_resume_cuts_a_straddling_batch(self, anomalous, tmp_path):
        # Checkpoint 13 transactions in, then resume with one huge batch:
        # the resume skip lands mid-batch and RecordBatch.tail must cut
        # exactly at the checkpointed transaction.
        _history, path = anomalous
        level = IsolationLevel.CAUSAL_CONSISTENCY
        reference = check_stream_file(path, level, fmt="plume")
        state = tmp_path / "state.awd"
        checker = CompiledIncrementalChecker(levels=(level,))
        for index, batch in enumerate(iter_raw_batches(path, fmt="plume", batch_ops=1)):
            if index == 13:
                break
            checker.append_batch(batch)
        checker.save_checkpoint(str(state))
        del checker

        assert load_checkpoint(str(state)).num_transactions == 13
        result = check_stream_file(
            path,
            level,
            fmt="plume",
            checkpoint=str(state),
            resume=True,
            batch_ops=4096,
        )
        _assert_same(reference, result, ("resume-tail", level))
